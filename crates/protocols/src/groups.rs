//! In-zone replication groups.
//!
//! WanKeeper and Vertical Paxos both commit commands inside a *zone-local
//! Paxos group*: the zone leader sequences payloads per key, multicasts them
//! to its zone peers, and commits on a zone-majority of acks. [`ZoneRep`]
//! implements that sequencing/quorum bookkeeping generically over the
//! payload type, so each protocol only decides *what* to replicate and what
//! to do on commit.
//!
//! The group leader is, by convention, node `z.0` of each zone.

use paxi_core::command::Key;
use paxi_core::config::ClusterConfig;
use paxi_core::id::NodeId;
use paxi_core::quorum::majority;
use std::collections::{BTreeMap, HashMap};

#[derive(Debug)]
struct ZEntry<P> {
    payload: P,
    acks: usize,
    committed: bool,
}

#[derive(Debug, Default)]
struct ZLog<P> {
    next_seq: u64,
    commit_upto: u64,
    entries: BTreeMap<u64, ZEntry<P>>,
}

impl<P> ZLog<P> {
    fn new() -> Self {
        ZLog { next_seq: 0, commit_upto: 0, entries: BTreeMap::new() }
    }
}

/// Per-key sequencing and zone-majority commit tracking for a group leader.
#[derive(Debug)]
pub struct ZoneRep<P> {
    peers: Vec<NodeId>,
    quorum: usize,
    logs: HashMap<Key, ZLog<P>>,
}

impl<P: Clone> ZoneRep<P> {
    /// Builds the replicator for the group leader `id` over its zone's nodes.
    pub fn new(id: NodeId, cluster: &ClusterConfig) -> Self {
        let peers: Vec<NodeId> =
            cluster.zone_nodes(id.zone).into_iter().filter(|&p| p != id).collect();
        ZoneRep { peers, quorum: majority(cluster.per_zone as usize), logs: HashMap::new() }
    }

    /// The zone peers the leader multicasts to.
    pub fn peers(&self) -> &[NodeId] {
        &self.peers
    }

    /// Acks needed to commit (leader's self-ack included in the count).
    pub fn quorum(&self) -> usize {
        self.quorum
    }

    /// Appends `payload` to `key`'s zone log; returns the sequence number the
    /// caller should multicast to [`ZoneRep::peers`]. The leader's self-ack
    /// is recorded immediately (and in a single-node zone this commits at
    /// once — poll [`ZoneRep::take_committed`] afterwards).
    pub fn append(&mut self, key: Key, payload: P) -> u64 {
        let log = self.logs.entry(key).or_insert_with(ZLog::new);
        let seq = log.next_seq;
        log.next_seq += 1;
        log.entries.insert(seq, ZEntry { payload, acks: 1, committed: false });
        self.advance(key);
        seq
    }

    /// Records a peer ack for `(key, seq)`.
    pub fn ack(&mut self, key: Key, seq: u64) {
        if let Some(e) = self.logs.get_mut(&key).and_then(|l| l.entries.get_mut(&seq)) {
            e.acks += 1;
        }
        self.advance(key);
    }

    fn advance(&mut self, key: Key) {
        let quorum = self.quorum;
        let Some(log) = self.logs.get_mut(&key) else { return };
        loop {
            let upto = log.commit_upto;
            let Some(e) = log.entries.get_mut(&upto) else { break };
            if e.committed || e.acks >= quorum {
                e.committed = true;
                log.commit_upto += 1;
            } else {
                break;
            }
        }
    }

    /// Pops payloads that are newly committed for `key`, in sequence order.
    /// The caller executes them (applies state, replies to clients).
    pub fn take_committed(&mut self, key: Key) -> Vec<P> {
        let Some(log) = self.logs.get_mut(&key) else { return Vec::new() };
        let mut out = Vec::new();
        // Entries below commit_upto that are still present are executable.
        let ready: Vec<u64> =
            log.entries.range(..log.commit_upto).map(|(s, _)| *s).collect();
        for s in ready {
            if let Some(e) = log.entries.remove(&s) {
                out.push(e.payload);
            }
        }
        out
    }

    /// Whether every appended payload for `key` has committed (used before
    /// returning a token / transferring ownership).
    pub fn fully_committed(&self, key: Key) -> bool {
        self.logs.get(&key).map(|l| l.commit_upto == l.next_seq).unwrap_or(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rep() -> ZoneRep<&'static str> {
        // Zone 0 of a 3-per-zone cluster: leader 0.0, peers 0.1, 0.2.
        ZoneRep::new(NodeId::new(0, 0), &ClusterConfig::wan(2, 3, 1, 0))
    }

    #[test]
    fn quorum_is_zone_majority() {
        let r = rep();
        assert_eq!(r.quorum(), 2);
        assert_eq!(r.peers().len(), 2);
        assert!(r.peers().iter().all(|p| p.zone == 0));
    }

    #[test]
    fn commits_in_sequence_order() {
        let mut r = rep();
        let s0 = r.append(7, "a");
        let s1 = r.append(7, "b");
        assert_eq!((s0, s1), (0, 1));
        // Ack the second first: nothing commits (gap at seq 0).
        r.ack(7, s1);
        assert!(r.take_committed(7).iter().eq(["b"].iter()) == false);
        assert!(r.take_committed(7).is_empty());
        // Ack the first: both commit, in order.
        r.ack(7, s0);
        assert_eq!(r.take_committed(7), vec!["a", "b"]);
        assert!(r.fully_committed(7));
    }

    #[test]
    fn single_node_zone_commits_immediately() {
        let mut r = ZoneRep::new(NodeId::new(0, 0), &ClusterConfig::wan(2, 1, 0, 0));
        r.append(1, "x");
        assert_eq!(r.take_committed(1), vec!["x"]);
    }

    #[test]
    fn keys_are_independent() {
        let mut r = rep();
        r.append(1, "k1");
        r.append(2, "k2");
        r.ack(2, 0);
        assert_eq!(r.take_committed(2), vec!["k2"]);
        assert!(r.take_committed(1).is_empty());
        assert!(!r.fully_committed(1));
    }

    #[test]
    fn duplicate_acks_do_not_double_commit() {
        let mut r = rep();
        r.append(3, "v");
        r.ack(3, 0);
        assert_eq!(r.take_committed(3).len(), 1);
        r.ack(3, 0);
        assert!(r.take_committed(3).is_empty());
    }
}
