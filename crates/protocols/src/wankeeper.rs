//! WanKeeper: hierarchical two-level consensus with a token broker.
//!
//! WanKeeper stacks two Paxos layers. Level-1 Paxos groups — one per zone —
//! execute commands for the objects whose *token* their zone holds,
//! committing inside the zone with LAN latency. The level-2 master (a Paxos
//! group in a designated zone) brokers all token movement: when several
//! zones contend for the same object, the master retracts its token and
//! executes the contended commands itself at level-2; once access locality
//! settles to a single region the token is passed (back) down to that
//! region's group.
//!
//! Policy (the paper's behavior, §2 and Figures 11/13): the master watches
//! the stream of requests that reach it for each key. If the last
//! [`WanKeeperConfig::window`] requesters are all the same zone, the token
//! moves to that zone; while access is shared between zones, the token stays
//! at (or is retracted to) the master and commands execute in the master's
//! group — which is why, under conflict, the master region enjoys local
//! latency while other regions pay one WAN round trip. Setting
//! [`WanKeeperConfig::shared_to_master`] to `false` instead *forwards*
//! non-holder requests to the current holder zone, a decentralized variant
//! useful in LAN deployments.

use crate::groups::ZoneRep;
use paxi_core::command::{ClientRequest, ClientResponse, Command, Key, Op, Value};
use paxi_core::config::ClusterConfig;
use paxi_core::id::{NodeId, RequestId};
use paxi_core::traits::{Context, Replica};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};

/// Tuning knobs for [`WanKeeper`].
#[derive(Debug, Clone)]
pub struct WanKeeperConfig {
    /// Zone hosting the level-2 master group.
    pub master_zone: u8,
    /// Length of the per-key requester history the master's token policy
    /// looks at (the paper's three-consecutive-access policy).
    pub window: usize,
    /// `true`: shared (mixed-zone) objects are retracted to and executed at
    /// the master — the paper's WAN behavior. `false`: non-holder requests
    /// are forwarded to the holder zone (decentralized LAN variant).
    pub shared_to_master: bool,
}

impl Default for WanKeeperConfig {
    fn default() -> Self {
        WanKeeperConfig { master_zone: 0, window: 3, shared_to_master: true }
    }
}

/// Wire messages of WanKeeper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WkMsg {
    /// Level-1/2 in-zone replication of one command.
    Accept {
        /// Key.
        key: Key,
        /// Zone-log sequence number for the key.
        seq: u64,
        /// The command.
        cmd: Command,
    },
    /// In-zone acceptance.
    AcceptOk {
        /// Key.
        key: Key,
        /// Acked sequence number.
        seq: u64,
    },
    /// A zone leader without the token escalates a request to the master.
    TokenRequest {
        /// Requesting zone.
        zone: u8,
        /// The client request (the master executes it or hands it back with
        /// the token).
        req: ClientRequest,
    },
    /// Master grants the token (with the authoritative value) to a zone.
    TokenGrant {
        /// Key whose token moves.
        key: Key,
        /// Authoritative value at grant time.
        value: Option<Value>,
        /// Version counter at grant time.
        version: u64,
        /// Requests the grantee should execute immediately.
        handoff: Vec<ClientRequest>,
    },
    /// Master retracts a token from its holding zone.
    TokenRetract {
        /// Key whose token is retracted.
        key: Key,
    },
    /// Holder returns the token with the latest state.
    TokenReturn {
        /// Key.
        key: Key,
        /// Latest value.
        value: Option<Value>,
        /// Latest version.
        version: u64,
    },
}

/// Authoritative per-key state at the token holder.
#[derive(Debug, Clone, Default)]
struct TokenInfo {
    value: Option<Value>,
    version: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Holder {
    Master,
    Zone(u8),
    Retracting(u8),
    /// Decided to grant to the zone, waiting for the master's in-flight
    /// commits on the key to drain (granting earlier would hand out a stale
    /// value).
    Granting(u8),
}

struct TokenState {
    holder: Holder,
    recent: VecDeque<u8>,
    queued: Vec<ClientRequest>,
}

/// What the zone log replicates: a command plus the client to answer.
#[derive(Debug, Clone)]
struct Payload {
    cmd: Command,
    req: Option<RequestId>,
}

/// A WanKeeper replica. Only node `z.0` of each zone acts as the level-1
/// leader; the master-zone leader additionally runs the level-2 broker.
pub struct WanKeeper {
    id: NodeId,
    cfg: WanKeeperConfig,
    zone_leader: NodeId,
    master_leader: NodeId,
    rep: ZoneRep<Payload>,
    /// Tokens (and authoritative state) held by this zone. At the master
    /// leader this also covers master-held keys.
    tokens: HashMap<Key, TokenInfo>,
    /// Keys the master asked us to give back, pending in-flight commits.
    retract_pending: HashSet<Key>,
    /// Master-only: token table.
    table: HashMap<Key, TokenState>,
}

impl WanKeeper {
    /// Creates a replica for node `id` in `cluster`.
    pub fn new(id: NodeId, cluster: ClusterConfig, cfg: WanKeeperConfig) -> Self {
        assert!(cfg.master_zone < cluster.zones);
        assert!(cfg.window >= 1);
        let zone_leader = NodeId::new(id.zone, 0);
        let master_leader = NodeId::new(cfg.master_zone, 0);
        WanKeeper {
            id,
            cfg,
            zone_leader,
            master_leader,
            rep: ZoneRep::new(id, &cluster),
            tokens: HashMap::new(),
            retract_pending: HashSet::new(),
            table: HashMap::new(),
        }
    }

    fn is_zone_leader(&self) -> bool {
        self.id == self.zone_leader
    }

    fn is_master(&self) -> bool {
        self.id == self.master_leader
    }

    /// Whether this leader currently holds the token for `key`. Master-held
    /// keys count as held by the master leader.
    pub fn holds_token(&self, key: Key) -> bool {
        self.tokens.contains_key(&key)
    }

    /// Number of tokens currently held by this zone leader.
    pub fn token_count(&self) -> usize {
        self.tokens.len()
    }

    /// Diagnostic: master-side token states as
    /// `(at_master, at_zones, retracting, queued_requests)`.
    pub fn broker_state(&self) -> (usize, usize, usize, usize) {
        let mut m = (0, 0, 0, 0);
        for st in self.table.values() {
            match st.holder {
                Holder::Master => m.0 += 1,
                Holder::Zone(_) => m.1 += 1,
                Holder::Retracting(_) | Holder::Granting(_) => m.2 += 1,
            }
            m.3 += st.queued.len();
        }
        m
    }

    /// Diagnostic: keys this leader has been asked to give back but hasn't.
    pub fn retracts_pending(&self) -> usize {
        self.retract_pending.len()
    }

    /// Diagnostic: keys the master believes `zone` holds.
    pub fn keys_believed_at_zone(&self, zone: u8) -> Vec<Key> {
        let mut v: Vec<Key> = self
            .table
            .iter()
            .filter(|(_, st)| st.holder == Holder::Zone(zone))
            .map(|(k, _)| *k)
            .collect();
        v.sort_unstable();
        v
    }

    /// Diagnostic: keys whose token this leader holds.
    pub fn held_keys(&self) -> Vec<Key> {
        let mut v: Vec<Key> = self.tokens.keys().copied().collect();
        v.sort_unstable();
        v
    }

    fn replicate(&mut self, req: ClientRequest, ctx: &mut dyn Context<WkMsg>) {
        let key = req.cmd.key;
        let seq = self.rep.append(key, Payload { cmd: req.cmd.clone(), req: Some(req.id) });
        let peers: Vec<NodeId> = self.rep.peers().to_vec();
        if !peers.is_empty() {
            ctx.multicast(&peers, WkMsg::Accept { key, seq, cmd: req.cmd });
        }
        self.drain_committed(key, ctx);
    }

    fn drain_committed(&mut self, key: Key, ctx: &mut dyn Context<WkMsg>) {
        self.apply_committed(key, ctx);
        self.maybe_finish_grant(key, ctx);
        self.maybe_finish_retract(key, ctx);
    }

    fn apply_committed(&mut self, key: Key, ctx: &mut dyn Context<WkMsg>) {
        for p in self.rep.take_committed(key) {
            let info = self.tokens.entry(key).or_default();
            let reply_value = match &p.cmd.op {
                Op::Get => info.value.clone(),
                Op::Put(v) => {
                    let prev = info.value.replace(v.clone());
                    info.version += 1;
                    prev
                }
                Op::Delete => {
                    info.version += 1;
                    info.value.take()
                }
            };
            if let Some(id) = p.req {
                ctx.reply(ClientResponse::ok(id, reply_value));
            }
        }
    }

    /// Master-side: completes a pending grant once the key's level-2 commits
    /// have drained, handing the queued requests along with the token.
    fn maybe_finish_grant(&mut self, key: Key, ctx: &mut dyn Context<WkMsg>) {
        if !self.is_master() || !self.rep.fully_committed(key) {
            return;
        }
        let Some(st) = self.table.get_mut(&key) else { return };
        let Holder::Granting(zone) = st.holder else { return };
        st.holder = Holder::Zone(zone);
        st.recent.clear();
        let handoff = std::mem::take(&mut st.queued);
        let info = self.tokens.remove(&key).unwrap_or_default();
        ctx.send(
            NodeId::new(zone, 0),
            WkMsg::TokenGrant { key, value: info.value, version: info.version, handoff },
        );
    }

    fn maybe_finish_retract(&mut self, key: Key, ctx: &mut dyn Context<WkMsg>) {
        // The retract stays pending until we actually hold the token: a
        // retract can overtake the grant it cancels (network reordering),
        // and consuming it early would leave the master in `Retracting`
        // forever.
        if self.retract_pending.contains(&key)
            && self.tokens.contains_key(&key)
            && self.rep.fully_committed(key)
        {
            self.retract_pending.remove(&key);
            let info = self.tokens.remove(&key).expect("checked above");
            ctx.send(
                self.master_leader,
                WkMsg::TokenReturn { key, value: info.value, version: info.version },
            );
        }
    }

    /// Master-side brokering of one escalated request.
    fn broker(&mut self, zone: u8, req: ClientRequest, ctx: &mut dyn Context<WkMsg>) {
        let key = req.cmd.key;
        let window = self.cfg.window;
        let master_zone = self.cfg.master_zone;
        let st = self.table.entry(key).or_insert_with(|| TokenState {
            holder: Holder::Master,
            recent: VecDeque::new(),
            queued: Vec::new(),
        });
        st.recent.push_back(zone);
        while st.recent.len() > window {
            st.recent.pop_front();
        }
        let unanimous = st.recent.len() == window && st.recent.iter().all(|&z| z == zone);
        match st.holder {
            Holder::Master => {
                if unanimous && zone != master_zone {
                    // Locality settled: pass the token down — once our own
                    // in-flight commits for the key have drained.
                    st.holder = Holder::Granting(zone);
                    st.queued.push(req);
                    self.maybe_finish_grant(key, ctx);
                } else {
                    // Execute at level-2, in the master's own group.
                    self.replicate(req, ctx);
                }
            }
            Holder::Zone(holder) => {
                if holder == zone {
                    // Raced with a grant in flight; the zone will hold the
                    // token when this bounces back.
                    ctx.forward(NodeId::new(zone, 0), req);
                } else if unanimous || self.cfg.shared_to_master {
                    // Contended (or locality moved): pull the token up.
                    st.holder = Holder::Retracting(holder);
                    st.queued.push(req);
                    ctx.send(NodeId::new(holder, 0), WkMsg::TokenRetract { key });
                } else {
                    // Decentralized variant: let the holder execute it.
                    ctx.forward(NodeId::new(holder, 0), req);
                }
            }
            Holder::Retracting(_) | Holder::Granting(_) => {
                st.queued.push(req);
            }
        }
    }
}

impl Replica for WanKeeper {
    type Msg = WkMsg;

    fn on_message(&mut self, from: NodeId, msg: WkMsg, ctx: &mut dyn Context<WkMsg>) {
        match msg {
            WkMsg::Accept { key, seq, cmd } => {
                let _ = cmd; // members ack; state lives at the leader
                ctx.send(from, WkMsg::AcceptOk { key, seq });
            }
            WkMsg::AcceptOk { key, seq } => {
                self.rep.ack(key, seq);
                self.drain_committed(key, ctx);
            }
            WkMsg::TokenRequest { zone, req } => {
                if self.is_master() {
                    self.broker(zone, req, ctx);
                }
            }
            WkMsg::TokenGrant { key, value, version, handoff } => {
                self.tokens.insert(key, TokenInfo { value, version });
                for req in handoff {
                    self.replicate(req, ctx);
                }
                // A retract may have overtaken this grant (network
                // reordering): if so, finish serving the handoff and send
                // the token straight back, or the master waits forever.
                self.maybe_finish_retract(key, ctx);
            }
            WkMsg::TokenRetract { key } => {
                self.retract_pending.insert(key);
                self.maybe_finish_retract(key, ctx);
            }
            WkMsg::TokenReturn { key, value, version } => {
                if !self.is_master() {
                    return;
                }
                self.tokens.insert(key, TokenInfo { value, version });
                let queued = match self.table.get_mut(&key) {
                    Some(st) => {
                        st.holder = Holder::Master;
                        st.recent.clear();
                        std::mem::take(&mut st.queued)
                    }
                    None => Vec::new(),
                };
                for req in queued {
                    self.replicate(req, ctx);
                }
            }
        }
    }

    fn on_request(&mut self, req: ClientRequest, ctx: &mut dyn Context<WkMsg>) {
        if !self.is_zone_leader() {
            ctx.forward(self.zone_leader, req);
            return;
        }
        let key = req.cmd.key;
        if self.is_master() {
            // The master leader consults the token table directly (its own
            // requests are brokered like anyone else's).
            self.broker(self.id.zone, req, ctx);
            return;
        }
        if self.holds_token(key) && !self.retract_pending.contains(&key) {
            self.replicate(req, ctx);
        } else {
            ctx.send(self.master_leader, WkMsg::TokenRequest { zone: self.id.zone, req });
        }
    }

    fn protocol_name(&self) -> &'static str {
        "wankeeper"
    }

    /// Stable wire-type names for the per-type observability breakdown.
    fn msg_kind(msg: &WkMsg) -> &'static str {
        match msg {
            WkMsg::Accept { .. } => "accept",
            WkMsg::AcceptOk { .. } => "accept_ok",
            WkMsg::TokenRequest { .. } => "token_request",
            WkMsg::TokenGrant { .. } => "token_grant",
            WkMsg::TokenRetract { .. } => "token_retract",
            WkMsg::TokenReturn { .. } => "token_return",
        }
    }
}

/// Convenience factory for a homogeneous WanKeeper cluster.
pub fn wankeeper_cluster(
    cluster: ClusterConfig,
    cfg: WanKeeperConfig,
) -> impl Fn(NodeId) -> WanKeeper {
    move |id| WanKeeper::new(id, cluster.clone(), cfg.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxi_core::dist::Rng64;
    use paxi_core::id::ClientId;
    use paxi_core::time::Nanos;
    use paxi_sim::{ClientSetup, SimConfig, Simulator, Topology};

    fn wan3(cfg: WanKeeperConfig) -> (ClusterConfig, SimConfig) {
        let cluster = ClusterConfig::wan(3, 3, 1, 0);
        let sim = SimConfig {
            topology: Topology::aws3(),
            record_ops: true,
            warmup: Nanos::secs(1),
            measure: Nanos::secs(3),
            ..SimConfig::default()
        };
        let _ = cfg;
        (cluster, sim)
    }

    /// Hand-driven context for broker state-machine tests.
    struct Probe {
        id: NodeId,
        sent: Vec<(NodeId, WkMsg)>,
        replies: Vec<ClientResponse>,
    }

    impl paxi_core::traits::Context<WkMsg> for Probe {
        fn id(&self) -> NodeId {
            self.id
        }
        fn now(&self) -> paxi_core::Nanos {
            paxi_core::Nanos::ZERO
        }
        fn send(&mut self, to: NodeId, msg: WkMsg) {
            self.sent.push((to, msg));
        }
        fn broadcast(&mut self, msg: WkMsg) {
            self.sent.push((NodeId::new(255, 255), msg));
        }
        fn multicast(&mut self, to: &[NodeId], msg: WkMsg) {
            for &t in to {
                self.sent.push((t, msg.clone()));
            }
        }
        fn set_timer(&mut self, _after: paxi_core::Nanos, _kind: u64) -> u64 {
            0
        }
        fn reply(&mut self, resp: ClientResponse) {
            self.replies.push(resp);
        }
        fn forward(&mut self, to: NodeId, req: ClientRequest) {
            // Model forwards as sends of a token request for visibility.
            self.sent.push((to, WkMsg::TokenRequest { zone: 255, req }));
        }
        fn rand_u64(&mut self) -> u64 {
            1
        }
    }

    fn probe(id: NodeId) -> Probe {
        Probe { id, sent: Vec::new(), replies: Vec::new() }
    }

    fn wreq(client: u32, seq: u64, key: u64) -> ClientRequest {
        ClientRequest {
            id: paxi_core::RequestId::new(paxi_core::id::ClientId(client), seq),
            cmd: Command::put(key, vec![client as u8, seq as u8]),
        }
    }

    /// Single-node zones make in-zone commits immediate, isolating the
    /// broker logic.
    fn master() -> WanKeeper {
        WanKeeper::new(
            NodeId::new(0, 0),
            ClusterConfig::wan(3, 1, 0, 0),
            WanKeeperConfig::default(),
        )
    }

    #[test]
    fn master_grants_after_three_consecutive_remote_requests() {
        let mut m = master();
        let mut ctx = probe(NodeId::new(0, 0));
        for seq in 0..2 {
            m.on_message(
                NodeId::new(1, 0),
                WkMsg::TokenRequest { zone: 1, req: wreq(1, seq, 5) },
                &mut ctx,
            );
        }
        assert!(
            !ctx.sent.iter().any(|(_, m)| matches!(m, WkMsg::TokenGrant { .. })),
            "two requests are not enough"
        );
        assert_eq!(ctx.replies.len(), 2, "master executed them at level-2");
        m.on_message(
            NodeId::new(1, 0),
            WkMsg::TokenRequest { zone: 1, req: wreq(1, 2, 5) },
            &mut ctx,
        );
        let grant = ctx
            .sent
            .iter()
            .find(|(_, m)| matches!(m, WkMsg::TokenGrant { .. }))
            .expect("third consecutive request wins the token");
        assert_eq!(grant.0, NodeId::new(1, 0));
        match &grant.1 {
            WkMsg::TokenGrant { key, handoff, .. } => {
                assert_eq!(*key, 5);
                assert_eq!(handoff.len(), 1, "the triggering request rides along");
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn mixed_zone_requests_keep_the_token_at_the_master() {
        let mut m = master();
        let mut ctx = probe(NodeId::new(0, 0));
        for (seq, zone) in [(0u64, 1u8), (1, 2), (2, 1), (3, 2), (4, 1), (5, 2)] {
            m.on_message(
                NodeId::new(zone, 0),
                WkMsg::TokenRequest { zone, req: wreq(zone as u32, seq, 5) },
                &mut ctx,
            );
        }
        assert!(
            !ctx.sent.iter().any(|(_, m)| matches!(m, WkMsg::TokenGrant { .. })),
            "alternating zones never reach unanimity"
        );
        assert_eq!(ctx.replies.len(), 6, "all executed at the master");
    }

    #[test]
    fn contended_token_is_retracted_from_its_zone() {
        let mut m = master();
        let mut ctx = probe(NodeId::new(0, 0));
        // Grant to zone 1.
        for seq in 0..3 {
            m.on_message(
                NodeId::new(1, 0),
                WkMsg::TokenRequest { zone: 1, req: wreq(1, seq, 5) },
                &mut ctx,
            );
        }
        ctx.sent.clear();
        // Zone 2 now wants the key: master retracts (shared_to_master).
        m.on_message(
            NodeId::new(2, 0),
            WkMsg::TokenRequest { zone: 2, req: wreq(2, 0, 5) },
            &mut ctx,
        );
        assert!(
            ctx.sent
                .iter()
                .any(|(to, m)| *to == NodeId::new(1, 0) && matches!(m, WkMsg::TokenRetract { .. })),
            "retract must go to the holder"
        );
        // The return brings the token home and the queued request executes.
        let before = ctx.replies.len();
        m.on_message(
            NodeId::new(1, 0),
            WkMsg::TokenReturn { key: 5, value: Some(vec![9]), version: 4 },
            &mut ctx,
        );
        assert_eq!(ctx.replies.len(), before + 1, "queued request served on return");
    }

    #[test]
    fn retract_overtaking_grant_bounces_the_token_back() {
        // The zone leader receives the retract before the grant it cancels:
        // it must remember it and return the token the moment it arrives.
        let mut zone_leader = WanKeeper::new(
            NodeId::new(1, 0),
            ClusterConfig::wan(3, 1, 0, 0),
            WanKeeperConfig::default(),
        );
        let mut ctx = probe(NodeId::new(1, 0));
        zone_leader.on_message(NodeId::new(0, 0), WkMsg::TokenRetract { key: 5 }, &mut ctx);
        assert!(ctx.sent.is_empty(), "nothing to return yet");
        zone_leader.on_message(
            NodeId::new(0, 0),
            WkMsg::TokenGrant { key: 5, value: Some(vec![1]), version: 1, handoff: vec![wreq(1, 0, 5)] },
            &mut ctx,
        );
        // Handoff served, token immediately returned with the fresh state.
        assert_eq!(ctx.replies.len(), 1);
        let ret = ctx
            .sent
            .iter()
            .find_map(|(to, m)| match m {
                WkMsg::TokenReturn { key, version, .. } => Some((*to, *key, *version)),
                _ => None,
            })
            .expect("token must bounce back");
        assert_eq!(ret, (NodeId::new(0, 0), 5, 2), "version advanced by the handoff write");
        assert!(!zone_leader.holds_token(5));
    }

    #[test]
    fn local_keys_commit_with_lan_latency() {
        // Each zone works on a private key range: after the first grant,
        // everything is zone-local.
        let cfg = WanKeeperConfig { master_zone: 1, ..Default::default() };
        let (cluster, simcfg) = wan3(cfg.clone());
        let setups = ClientSetup::closed_per_zone(&cluster, 2);
        let workload = |client: ClientId, zone: u8, seq: u64, _now: paxi_core::Nanos, rng: &mut Rng64| {
            let key = 1000 * zone as u64 + rng.below(20);
            paxi_core::Command::put(key, paxi_sim::client::unique_value(client, seq))
        };
        let mut sim = Simulator::new(
            simcfg,
            cluster.clone(),
            wankeeper_cluster(cluster, cfg),
            workload,
            setups,
        );
        let report = sim.run();
        assert!(report.completed > 500, "completed {}", report.completed);
        // p50 should be LAN-scale: locality settled, tokens granted down.
        let p50 = report.latency.p50.as_millis_f64();
        assert!(p50 < 10.0, "local-token p50 {p50} ms");
        // Non-master zones ended up holding their keys' tokens.
        let va_leader = &sim.replicas()[0]; // zone 0 leader
        assert!(va_leader.token_count() > 0, "zone 0 should hold tokens");
    }

    #[test]
    fn contested_key_lives_at_master() {
        let cfg = WanKeeperConfig { master_zone: 1, ..Default::default() };
        let (cluster, simcfg) = wan3(cfg.clone());
        // All zones hammer key 0 (interleaved => never 3-consecutive).
        let setups = ClientSetup::closed_per_zone(&cluster, 2);
        let workload = |client: ClientId, _zone: u8, seq: u64, _now: paxi_core::Nanos, _rng: &mut Rng64| {
            paxi_core::Command::put(0, paxi_sim::client::unique_value(client, seq))
        };
        let mut sim = Simulator::new(
            simcfg,
            cluster.clone(),
            wankeeper_cluster(cluster, cfg),
            workload,
            setups,
        );
        let report = sim.run();
        assert!(report.completed > 100);
        // Master zone (OH, zone 1) sees LAN latency; VA pays ~11ms RTT to OH;
        // CA pays ~50ms.
        let oh = report.zone_latency[&1].mean.as_millis_f64();
        let va = report.zone_latency[&0].mean.as_millis_f64();
        let ca = report.zone_latency[&2].mean.as_millis_f64();
        assert!(oh < 5.0, "master zone latency {oh} ms");
        assert!(va > 8.0 && va < 30.0, "VA latency {va} ms");
        assert!(ca > 40.0, "CA latency {ca} ms");
    }

    #[test]
    fn token_moves_when_locality_shifts() {
        let cfg = WanKeeperConfig { master_zone: 1, ..Default::default() };
        let (cluster, simcfg) = wan3(cfg.clone());
        // Only zone 2 touches key 5.
        let setups = ClientSetup::closed_in_zone(&cluster, 2, 1);
        let workload = |client: ClientId, _zone: u8, seq: u64, _now: paxi_core::Nanos, _rng: &mut Rng64| {
            paxi_core::Command::put(5, paxi_sim::client::unique_value(client, seq))
        };
        let mut sim = Simulator::new(
            simcfg,
            cluster.clone(),
            wankeeper_cluster(cluster, cfg),
            workload,
            setups,
        );
        let report = sim.run();
        // Zone 2's leader (index 6) holds the token after three requests.
        assert!(sim.replicas()[6].holds_token(5), "token should migrate to zone 2");
        // Steady-state latency is local.
        let p50 = report.latency.p50.as_millis_f64();
        assert!(p50 < 10.0, "post-migration p50 {p50} ms");
    }

    #[test]
    fn values_are_linearizable_per_key() {
        let cfg = WanKeeperConfig { master_zone: 1, ..Default::default() };
        let (cluster, simcfg) = wan3(cfg.clone());
        let setups = ClientSetup::closed_per_zone(&cluster, 1);
        // 50/50 read/write on a handful of contested keys.
        let workload = |client: ClientId, _zone: u8, seq: u64, _now: paxi_core::Nanos, rng: &mut Rng64| {
            let key = rng.below(3);
            if rng.chance(0.5) {
                paxi_core::Command::get(key)
            } else {
                paxi_core::Command::put(key, paxi_sim::client::unique_value(client, seq))
            }
        };
        let mut sim = Simulator::new(
            simcfg,
            cluster.clone(),
            wankeeper_cluster(cluster, cfg),
            workload,
            setups,
        );
        let report = sim.run();
        assert!(report.completed > 100);
        // Every read returns either nothing or one of the 12-byte client
        // values (no corruption / phantom values).
        for op in report.ops.iter().filter(|o| o.ok) {
            if let Some(Some(v)) = &op.read {
                assert_eq!(v.len(), 12);
            }
        }
    }

    #[test]
    fn forwarding_variant_keeps_tokens_down() {
        let cfg =
            WanKeeperConfig { master_zone: 0, shared_to_master: false, ..Default::default() };
        let (cluster, simcfg) = wan3(cfg.clone());
        let setups = ClientSetup::closed_per_zone(&cluster, 2);
        let workload = |client: ClientId, _zone: u8, seq: u64, _now: paxi_core::Nanos, rng: &mut Rng64| {
            let key = rng.below(30);
            paxi_core::Command::put(key, paxi_sim::client::unique_value(client, seq))
        };
        let mut sim = Simulator::new(
            simcfg,
            cluster.clone(),
            wankeeper_cluster(cluster, cfg),
            workload,
            setups,
        );
        let report = sim.run();
        assert!(report.completed > 300);
        assert_eq!(report.errors, 0);
    }
}
