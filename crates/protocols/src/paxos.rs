//! Multi-decree Paxos (MultiPaxos) and Flexible Paxos (FPaxos).
//!
//! This is the paper's single-leader baseline: a stable leader established by
//! phase-1 drives all commands through phase-2 without re-running phase-1
//! (the multi-Paxos optimization), and the commit phase is piggybacked on
//! subsequent messages instead of costing an extra broadcast. The leader is
//! the bottleneck: per round it handles `N + 2` messages while followers
//! handle 2, which is exactly the asymmetry the paper's queueing model and
//! Figures 7–9 dissect.
//!
//! FPaxos is the same replica with a smaller phase-2 quorum `|q2| < ⌊N/2⌋+1`
//! and a correspondingly larger phase-1 quorum `|q1| = N − |q2| + 1`, so all
//! q1×q2 pairs still intersect. Use [`PaxosConfig::flexible`].
//!
//! Liveness: followers monitor leader heartbeats (the piggybacked commit
//! broadcast) and start phase-1 with a higher ballot after a randomized
//! timeout, which is what the availability experiments exercise.
//!
//! Membership changes use the classic α-window scheme (SMART / Stoppable
//! Paxos): a new stable configuration is chosen as an ordinary log value in
//! some slot `s` and governs quorums from slot `s + α` onward, so up to α
//! commands stay pipelined across the cut-over. The config rides the log as
//! a write to [`CONFIG_KEY`], is persisted by the same Accept records (plus
//! an explicit [`PaxosWal::Config`] activation record), and is re-derived
//! from the log on recovery — a replica restarting mid-transition comes up
//! in the configuration its durable log dictates, never an older one. One
//! reconfiguration in flight at a time is the supported regime.

use paxi_core::ballot::Ballot;
use paxi_core::command::{ClientRequest, ClientResponse, Command, Handoff};
use paxi_core::config::{BatchConfig, ClusterConfig};
use paxi_core::group::GroupId;
use paxi_core::id::{NodeId, RequestId};
use paxi_core::membership::{self, ConfigChange, Membership, CONFIG_KEY};
use paxi_core::migration::{as_migration_record, MigrationAction, MigrationTracker, MIGRATION_KEY};
use paxi_core::obs::{Metric, TraceStage};
use paxi_core::quorum::{majority, CountQuorum, QuorumTracker};
use paxi_core::store::{MultiVersionStore, StoreDump};
use paxi_core::time::Nanos;
use paxi_core::traits::{Context, Replica};
use paxi_storage::Storage;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Timer kind: leader heartbeat / commit flush.
const TIMER_HEARTBEAT: u64 = 1;
/// Timer kind: follower election timeout check.
const TIMER_ELECTION: u64 = 2;
/// Timer kind: batch hold-down expiry — flush a partial command batch.
const TIMER_BATCH: u64 = 3;

/// The commands decided in one slot: a batch of `(command, request)` pairs
/// executed in order. Unbatched operation puts exactly one pair per slot.
pub type SlotCmds = Vec<(Command, Option<RequestId>)>;

/// Tuning knobs for [`MultiPaxos`].
#[derive(Debug, Clone)]
pub struct PaxosConfig {
    /// Phase-2 quorum size including the leader; `None` = majority.
    pub q2: Option<usize>,
    /// The node that runs phase-1 at startup.
    pub initial_leader: NodeId,
    /// Leader heartbeat / commit-flush period.
    pub heartbeat: Nanos,
    /// Base follower election timeout (randomized ×[1, 2)).
    pub election_timeout: Nanos,
    /// Whether followers run elections when the leader goes quiet.
    pub enable_failover: bool,
    /// Thrifty messaging (ablation): the leader sends phase-2a only to the
    /// `|q2| - 1` followers it needs instead of broadcasting to all — fewer
    /// messages, but stragglers never learn commands and fault tolerance
    /// degrades to exactly the quorum.
    pub thrifty: bool,
    /// Eager commit (ablation): broadcast an explicit phase-3 message the
    /// moment the commit index advances, instead of piggybacking commits on
    /// the next phase-2a (the paper's default optimization).
    pub eager_commit: bool,
    /// Command batching: the leader packs up to `max_batch` client commands
    /// into one slot, amortizing the phase-2 round, the WAL append, and the
    /// fsync across the batch. `max_batch = 1` (the default) is behaviorally
    /// identical to unbatched operation.
    pub batch: BatchConfig,
    /// Initial voting membership; `None` means every node in the cluster
    /// votes (the static-membership behavior). Nodes outside the membership
    /// are non-voting learners until a reconfiguration adds them.
    pub initial_members: Option<Vec<NodeId>>,
    /// Reconfiguration pipeline depth α: a configuration chosen in slot `s`
    /// governs quorums from slot `s + α` onward, keeping up to α commands
    /// in flight across the cut-over. Clamped to at least 1.
    pub alpha: u64,
}

impl Default for PaxosConfig {
    fn default() -> Self {
        PaxosConfig {
            q2: None,
            initial_leader: NodeId::new(0, 0),
            heartbeat: Nanos::millis(20),
            election_timeout: Nanos::millis(500),
            enable_failover: true,
            thrifty: false,
            eager_commit: false,
            batch: BatchConfig::default(),
            initial_members: None,
            alpha: 4,
        }
    }
}

impl PaxosConfig {
    /// FPaxos configuration with phase-2 quorum size `q2` (leader included).
    pub fn flexible(q2: usize) -> Self {
        PaxosConfig {
            q2: Some(q2),
            ..Default::default()
        }
    }

    /// Configuration with command batching of up to `max_batch` per slot.
    pub fn batched(max_batch: usize) -> Self {
        PaxosConfig {
            batch: BatchConfig::of(max_batch),
            ..Default::default()
        }
    }
}

/// Wire messages of MultiPaxos.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PaxosMsg {
    /// Phase-1a: `ballot`'s owner asks to lead.
    P1a {
        /// Proposer's ballot.
        ballot: Ballot,
    },
    /// Phase-1b: promise, carrying the acceptor's uncommitted tail.
    P1b {
        /// The promised ballot.
        ballot: Ballot,
        /// `(slot, accepted_ballot, batch)` above the commit point.
        tail: Vec<(u64, Ballot, SlotCmds)>,
        /// The acceptor's commit index: the new leader floors its first
        /// fresh slot here, so a lagging just-joined winner cannot propose
        /// below what the cluster already chose.
        commit_upto: u64,
    },
    /// Phase-2a: accept request for one slot. Carries the leader's commit
    /// index so the commit phase piggybacks on the next round's broadcast.
    P2a {
        /// Leader's ballot.
        ballot: Ballot,
        /// Log slot.
        slot: u64,
        /// The command batch proposed in the slot (one command when batching
        /// is off). Requests ride along for re-proposals after failover.
        cmds: SlotCmds,
        /// All slots `< commit_upto` are committed.
        commit_upto: u64,
    },
    /// Phase-2b: acceptance of one slot.
    P2b {
        /// Ballot the acceptor accepted under.
        ballot: Ballot,
        /// The accepted slot.
        slot: u64,
    },
    /// Rejection: the sender has promised a higher ballot.
    Nack {
        /// The higher ballot the sender has seen.
        ballot: Ballot,
    },
    /// Heartbeat / commit flush for idle periods (phase-3 piggyback).
    Commit {
        /// All slots `< upto` are committed.
        upto: u64,
    },
}

#[derive(Debug)]
struct Entry {
    ballot: Ballot,
    cmds: SlotCmds,
    quorum: CountQuorum,
    committed: bool,
}

/// One durable WAL record of MultiPaxos acceptor state. A record is appended
/// (and, depending on the fsync policy, synced) *before* the acceptance it
/// witnesses is acknowledged, so a recovered replica can never have promised
/// or accepted something its disk does not know about.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PaxosWal {
    /// The replica promised (or adopted) this ballot.
    Ballot(
        /// The promised ballot.
        Ballot,
    ),
    /// The replica accepted a command batch in a slot under a ballot. One
    /// record covers the whole batch — one WAL append (and at most one
    /// fsync) per slot regardless of how many commands it carries.
    Accept {
        /// Log slot.
        slot: u64,
        /// Ballot the acceptance happened under.
        ballot: Ballot,
        /// The accepted command batch, with client requests for leader
        /// bookkeeping.
        cmds: SlotCmds,
    },
    /// A stable configuration was accepted in `slot` and governs quorums
    /// from `slot + α` onward. Redundant with the Accept record carrying
    /// the config command (recovery re-derives the map from the log), but
    /// it makes activation explicit and auditable in the WAL stream.
    Config {
        /// The slot the configuration was chosen in.
        slot: u64,
        /// The configuration's epoch.
        epoch: u64,
        /// The new voting member set, sorted.
        members: Vec<NodeId>,
    },
    /// A shard-migration record (freeze / install / commit) was executed in
    /// `slot`. Redundant with the Accept record carrying the command — the
    /// live tail re-executes through the ordinary path on recovery — but it
    /// makes every phase transition of a hand-off explicit and auditable in
    /// the WAL stream, and serves as an idempotent safety net for records
    /// whose slots fall below a later snapshot base.
    Migration {
        /// The slot the record was executed in.
        slot: u64,
        /// The encoded [`paxi_core::migration::MigrationRecord`].
        bytes: Vec<u8>,
    },
}

/// The snapshot MultiPaxos installs when it compacts its WAL: everything
/// below `base` has been executed into `store`, and the accepted-but-not-
/// yet-executed entries at `base` and above ride along in `tail`. Carrying
/// the tail *inside* the snapshot makes compaction atomic from the
/// protocol's view — `install_snapshot` replaces snapshot and log in one
/// step, so no crash point can separate the truncation from the tail's
/// re-logging and lose accepts the leader may already have counted.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PaxosSnapshot {
    /// Highest ballot the replica had promised at snapshot time.
    pub ballot: Ballot,
    /// All slots `< base` are executed into the embedded store image.
    pub base: u64,
    /// The state machine at `base`.
    pub store: StoreDump,
    /// `(slot, ballot, batch)` of every accepted entry at `base` and above
    /// — the live tail that would otherwise need WAL records.
    pub tail: Vec<(u64, Ballot, SlotCmds)>,
    /// The configuration map at snapshot time as `(effective_slot, epoch,
    /// members)` triples: configs chosen below `base` live only here once
    /// their Accept records are compacted away.
    pub configs: Vec<(u64, u64, Vec<NodeId>)>,
    /// The shard-migration tracker's state
    /// ([`MigrationTracker::dump`]) at snapshot time: freezes and
    /// cut-overs decided below `base` have no surviving log entries to
    /// re-derive them from, exactly like compacted configs.
    pub migration: Vec<u8>,
}

/// Snapshot-and-truncate the WAL once this many slots have been executed
/// since the last snapshot.
const COMPACT_EVERY: u64 = 512;

/// A MultiPaxos / FPaxos replica.
pub struct MultiPaxos {
    id: NodeId,
    cluster: ClusterConfig,
    cfg: PaxosConfig,
    ballot: Ballot,
    active: bool,
    leader_hint: Option<NodeId>,
    log: BTreeMap<u64, Entry>,
    next_slot: u64,
    commit_upto: u64,
    execute_upto: u64,
    /// Slots below this are already marked committed — keeps the
    /// piggybacked-commit scan incremental instead of O(log).
    marked_upto: u64,
    store: MultiVersionStore,
    pending: Vec<ClientRequest>,
    /// Commands accumulating toward the next batched slot (leader only,
    /// `max_batch > 1`). Flushed when full or when the hold-down fires.
    batch_buf: SlotCmds,
    /// Token of the armed batch hold-down timer, if any.
    batch_token: Option<u64>,
    p1_quorum: Option<CountQuorum>,
    p1_tails: Vec<Vec<(u64, Ballot, SlotCmds)>>,
    /// Highest commit index any phase-1 promise reported — floors the new
    /// leader's first fresh slot.
    p1_max_commit: u64,
    /// Voting configurations keyed by the slot they take effect at:
    /// `effective_slot → (epoch, members)`. Key 0 holds the initial
    /// configuration and is never removed; a config chosen in slot `s`
    /// lives at key `s + α`. The entry with the greatest key `≤ slot`
    /// governs `slot`'s quorums.
    configs: BTreeMap<u64, (u64, Vec<NodeId>)>,
    last_leader_contact: Nanos,
    election_token: u64,
    /// `commit_upto` observed at the previous heartbeat tick: if the head of
    /// the log hasn't advanced for a full heartbeat, phase-2 messages were
    /// lost and the stuck window is retransmitted.
    heartbeat_head: u64,
    /// Durable store for acceptor-critical state, if attached.
    wal: Option<Box<dyn Storage>>,
    /// All slots below this are covered by the installed snapshot.
    snapshot_base: u64,
    /// Shard-migration state machine, driven by replicated records at
    /// execute time. Inert (no group identity) outside sharded deployments.
    migration: MigrationTracker,
}

impl MultiPaxos {
    /// Creates a replica for node `id` in `cluster`.
    pub fn new(id: NodeId, cluster: ClusterConfig, cfg: PaxosConfig) -> Self {
        let mut initial = cfg
            .initial_members
            .clone()
            .unwrap_or_else(|| cluster.all_nodes());
        initial.sort_unstable();
        initial.dedup();
        let mut configs = BTreeMap::new();
        configs.insert(0u64, (0u64, initial));
        MultiPaxos {
            id,
            cluster,
            cfg,
            ballot: Ballot::default(),
            active: false,
            leader_hint: None,
            log: BTreeMap::new(),
            next_slot: 0,
            commit_upto: 0,
            execute_upto: 0,
            marked_upto: 0,
            store: MultiVersionStore::new(),
            pending: Vec::new(),
            batch_buf: Vec::new(),
            batch_token: None,
            p1_quorum: None,
            p1_tails: Vec::new(),
            p1_max_commit: 0,
            configs,
            last_leader_contact: Nanos::ZERO,
            election_token: 0,
            heartbeat_head: 0,
            wal: None,
            snapshot_base: 0,
            migration: MigrationTracker::new(),
        }
    }

    /// Tells the replica which consensus group it serves in a sharded
    /// deployment, arming the migration tracker. Unsharded deployments never
    /// call this; the tracker then ignores every record and the replica
    /// behaves exactly as before shard migration existed.
    pub fn set_group(&mut self, group: GroupId) {
        self.migration.set_group(group);
    }

    /// Phase-2 quorum size (leader included) at the proposal frontier.
    pub fn q2_size(&self) -> usize {
        self.q2_size_at(self.next_slot)
    }

    /// Phase-1 quorum size: `N − |q2| + 1` over the current members, which
    /// equals the majority when `|q2|` is the majority (N odd).
    pub fn q1_size(&self) -> usize {
        self.q1_size_at(self.next_slot)
    }

    /// The reconfiguration window, clamped so a config never governs the
    /// very slot it is chosen in.
    fn alpha(&self) -> u64 {
        self.cfg.alpha.max(1)
    }

    /// The voting member set governing `slot`.
    pub fn members_at(&self, slot: u64) -> &[NodeId] {
        &self
            .configs
            .range(..=slot)
            .next_back()
            .expect("configs always holds the initial entry at key 0")
            .1
             .1
    }

    /// The voting members at the proposal frontier.
    pub fn members(&self) -> Vec<NodeId> {
        self.members_at(self.next_slot).to_vec()
    }

    /// Epoch of the latest configuration this replica knows of — including
    /// one accepted but not yet effective.
    pub fn config_epoch(&self) -> u64 {
        self.configs
            .values()
            .next_back()
            .map(|(e, _)| *e)
            .unwrap_or(0)
    }

    fn q2_size_at(&self, slot: u64) -> usize {
        let m = self.members_at(slot).len().max(1);
        self.cfg.q2.unwrap_or_else(|| majority(m)).max(1).min(m)
    }

    fn q1_size_at(&self, slot: u64) -> usize {
        let m = self.members_at(slot).len().max(1);
        m - self.q2_size_at(slot).min(m) + 1
    }

    /// Records any stable configuration carried by the batch accepted in
    /// `slot` (and un-records one if a higher ballot overwrote the slot
    /// with a config-free batch). Called at every log-insert point —
    /// propose, accept, and both recovery paths — so activation state is a
    /// pure function of the accepted log.
    fn note_config(&mut self, slot: u64, cmds: &SlotCmds) {
        let key = slot + self.alpha();
        let found = cmds
            .iter()
            .find_map(|(cmd, _)| match membership::as_membership(cmd) {
                Some(Membership::Stable { epoch, members }) => Some((epoch, members)),
                _ => None,
            });
        match found {
            Some((epoch, members)) => {
                self.persist(&PaxosWal::Config {
                    slot,
                    epoch,
                    members: members.clone(),
                });
                self.configs.insert(key, (epoch, members));
            }
            None => {
                // Key 0 is the initial config; `key >= α ≥ 1` can't hit it.
                self.configs.remove(&key);
            }
        }
    }

    /// An established leader excluded by a committed, now-effective
    /// configuration lays down leadership: it flushes its commit index one
    /// last time (so the survivors learn everything it chose) and goes
    /// quiet; the remaining members elect among themselves when its
    /// heartbeats stop.
    fn maybe_step_down(&mut self, ctx: &mut dyn Context<PaxosMsg>) {
        if !self.active {
            return;
        }
        let Some((&key, (_, members))) = self.configs.range(..=self.next_slot).next_back() else {
            return;
        };
        if members.contains(&self.id) {
            return;
        }
        // Depose only after every slot below the cut-over point committed:
        // the outgoing leader drives its α-window slots home first, and an
        // accepted-but-overwritable config can never cost a leader (its
        // own slot sits below `key` and would have to commit first).
        if self.commit_upto < key {
            return;
        }
        ctx.broadcast(PaxosMsg::Commit {
            upto: self.commit_upto,
        });
        self.active = false;
        self.abort_batch();
        self.leader_hint = None;
    }

    /// Sequences a client-requested membership delta: resolves it against
    /// the latest configuration this leader knows (even one still inside
    /// its α window) and proposes the resulting absolute stable config in
    /// its own slot, bypassing batching so the activation point
    /// `slot + α` is pinned the moment the request is sequenced.
    fn handle_reconfig(
        &mut self,
        req: ClientRequest,
        change: ConfigChange,
        ctx: &mut dyn Context<PaxosMsg>,
    ) {
        let (epoch, members) = self
            .configs
            .values()
            .next_back()
            .cloned()
            .unwrap_or((0, Vec::new()));
        if change.is_noop_on(&members) {
            // Nothing would change: acknowledge without spending a slot, so
            // a no-op reconfiguration perturbs neither the log nor the
            // deterministic schedule.
            ctx.reply(ClientResponse::ok(req.id, None));
            return;
        }
        let target = change.apply(&members);
        if target.is_empty() {
            ctx.reply(ClientResponse::err(req.id));
            return;
        }
        let next = Membership::Stable {
            epoch: epoch + 1,
            members: target,
        };
        let slot = self.next_slot;
        self.next_slot += 1;
        self.propose_in_slot(
            slot,
            vec![(membership::membership_command(&next), Some(req.id))],
            ctx,
        );
    }

    /// Whether this replica currently believes it is the established leader.
    pub fn is_leader(&self) -> bool {
        self.active
    }

    /// The cluster this replica belongs to.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// The replica's current ballot.
    pub fn current_ballot(&self) -> Ballot {
        self.ballot
    }

    /// Appends one WAL record, honoring the persist-before-ack contract: the
    /// caller invokes this before emitting the message that acknowledges the
    /// state change. A replica that cannot write its WAL must stop (crash-
    /// stop model) — continuing would acknowledge state it may later forget.
    fn persist(&mut self, rec: &PaxosWal) {
        if let Some(wal) = &mut self.wal {
            let bytes = paxi_codec::to_bytes(rec).expect("paxos wal record must encode");
            wal.append(&bytes)
                .expect("paxos replica lost its durable store");
        }
    }

    /// Snapshot-plus-truncate compaction: once enough slots are executed,
    /// install a snapshot of the state machine with the live tail (accepted
    /// entries at or above the new base) embedded. One `install_snapshot`
    /// call replaces snapshot and log together, so a crash at any point
    /// leaves either the old WAL or the complete new snapshot — never a
    /// truncated log whose tail was still waiting to be re-appended.
    fn maybe_compact(&mut self) {
        if self.wal.is_none()
            || self.execute_upto.saturating_sub(self.snapshot_base) < COMPACT_EVERY
        {
            return;
        }
        let snap = PaxosSnapshot {
            ballot: self.ballot,
            base: self.execute_upto,
            store: self.store.dump(),
            tail: self
                .log
                .range(self.execute_upto..)
                .map(|(s, e)| (*s, e.ballot, e.cmds.clone()))
                .collect(),
            configs: self
                .configs
                .iter()
                .map(|(k, (e, m))| (*k, *e, m.clone()))
                .collect(),
            migration: self.migration.dump(),
        };
        let bytes = paxi_codec::to_bytes(&snap).expect("paxos snapshot must encode");
        self.wal
            .as_mut()
            .unwrap()
            .install_snapshot(&bytes)
            .expect("paxos replica lost its durable store");
        self.snapshot_base = self.execute_upto;
        // The log below the snapshot base is dead weight now; drop it.
        self.log = self.log.split_off(&self.snapshot_base);
    }

    fn start_phase1(&mut self, ctx: &mut dyn Context<PaxosMsg>) {
        if !self.members_at(self.next_slot).contains(&self.id) {
            // A learner outside the voting membership never campaigns.
            return;
        }
        self.ballot = self.ballot.next(self.id);
        self.persist(&PaxosWal::Ballot(self.ballot));
        self.active = false;
        self.abort_batch();
        let mut q = CountQuorum::new(self.q1_size());
        q.ack(self.id);
        self.p1_tails = vec![self.uncommitted_tail()];
        self.p1_max_commit = self.commit_upto;
        if q.satisfied() {
            // Single-node cluster: become leader immediately.
            self.p1_quorum = Some(q);
            self.become_leader(ctx);
            return;
        }
        self.p1_quorum = Some(q);
        ctx.broadcast(PaxosMsg::P1a {
            ballot: self.ballot,
        });
    }

    fn uncommitted_tail(&self) -> Vec<(u64, Ballot, SlotCmds)> {
        self.log
            .range(self.commit_upto..)
            .map(|(s, e)| (*s, e.ballot, e.cmds.clone()))
            .collect()
    }

    fn become_leader(&mut self, ctx: &mut dyn Context<PaxosMsg>) {
        self.active = true;
        self.leader_hint = Some(self.id);
        self.p1_quorum = None;
        // Merge the highest-ballot accepted value per uncommitted slot and
        // re-propose them under our ballot.
        let mut merged: BTreeMap<u64, (Ballot, SlotCmds)> = BTreeMap::new();
        for tail in std::mem::take(&mut self.p1_tails) {
            for (slot, b, cmds) in tail {
                match merged.get(&slot) {
                    Some((mb, _)) if *mb >= b => {}
                    _ => {
                        merged.insert(slot, (b, cmds));
                    }
                }
            }
        }
        if let Some((&max_slot, _)) = merged.iter().next_back() {
            self.next_slot = self.next_slot.max(max_slot + 1);
        }
        self.next_slot = self.next_slot.max(self.commit_upto).max(self.p1_max_commit);
        for (slot, (_, cmds)) in merged {
            if slot < self.commit_upto {
                continue;
            }
            self.propose_in_slot(slot, cmds, ctx);
        }
        // Serve requests buffered during the election.
        for req in std::mem::take(&mut self.pending) {
            self.propose(req, ctx);
        }
        ctx.set_timer(self.cfg.heartbeat, TIMER_HEARTBEAT);
    }

    fn propose(&mut self, req: ClientRequest, ctx: &mut dyn Context<PaxosMsg>) {
        if !self.cfg.batch.enabled() {
            // Unbatched fast path: exactly the pre-batching behavior — one
            // command, one slot, one phase-2 round, immediately.
            let slot = self.next_slot;
            self.next_slot += 1;
            self.propose_in_slot(slot, vec![(req.cmd, Some(req.id))], ctx);
            return;
        }
        self.batch_buf.push((req.cmd, Some(req.id)));
        if self.batch_buf.len() >= self.cfg.batch.max_batch {
            self.flush_batch(ctx);
        } else if self.batch_token.is_none() {
            // First command of a partial batch: bound its wait.
            self.batch_token = Some(ctx.set_timer(self.cfg.batch.batch_delay, TIMER_BATCH));
        }
    }

    /// Proposes the accumulated batch in one slot: one phase-2 round, one
    /// WAL record, one fsync for the whole batch.
    fn flush_batch(&mut self, ctx: &mut dyn Context<PaxosMsg>) {
        self.batch_token = None;
        if self.batch_buf.is_empty() {
            return;
        }
        let cmds = std::mem::take(&mut self.batch_buf);
        let slot = self.next_slot;
        self.next_slot += 1;
        self.propose_in_slot(slot, cmds, ctx);
    }

    /// Folds a not-yet-proposed batch back into the pending queue — called
    /// when leadership is lost so buffered commands are re-routed (or
    /// re-proposed if we win again) instead of silently dropped.
    fn abort_batch(&mut self) {
        self.batch_token = None;
        for (cmd, req) in self.batch_buf.drain(..) {
            if let Some(id) = req {
                self.pending.push(ClientRequest { id, cmd });
            }
        }
    }

    fn propose_in_slot(&mut self, slot: u64, cmds: SlotCmds, ctx: &mut dyn Context<PaxosMsg>) {
        for (_, req) in &cmds {
            if let Some(id) = req {
                ctx.trace(TraceStage::Propose, *id);
            }
        }
        let mut quorum = CountQuorum::new(self.q2_size_at(slot));
        if self.members_at(slot).contains(&self.id) {
            // Self-vote — but only with a vote to cast: a leader already
            // excluded by the config governing this slot is a proposer, not
            // an acceptor, and must collect the full quorum from members.
            quorum.ack(self.id);
        }
        // The leader is an acceptor of its own proposal: persist before the
        // self-vote counts toward the quorum. One record per slot covers the
        // whole batch.
        self.persist(&PaxosWal::Accept {
            slot,
            ballot: self.ballot,
            cmds: cmds.clone(),
        });
        self.log.insert(
            slot,
            Entry {
                ballot: self.ballot,
                cmds: cmds.clone(),
                quorum,
                committed: false,
            },
        );
        self.note_config(slot, &cmds);
        let msg = PaxosMsg::P2a {
            ballot: self.ballot,
            slot,
            cmds,
            commit_upto: self.commit_upto,
        };
        if self.cfg.thrifty {
            // Exactly the quorum: the first |q2|-1 voting peers in node
            // order. Non-members are learners and never help the quorum,
            // so thrifty mode skips them entirely.
            let peers: Vec<NodeId> = self
                .members_at(slot)
                .iter()
                .copied()
                .filter(|&p| p != self.id)
                .take(self.q2_size_at(slot).saturating_sub(1))
                .collect();
            ctx.multicast(&peers, msg);
        } else {
            ctx.broadcast(msg);
        }
        self.next_slot = self.next_slot.max(slot + 1);
        self.maybe_commit(ctx); // single-node cluster commits immediately
    }

    fn mark_committed(&mut self, upto: u64) {
        if upto > self.marked_upto {
            for (_, e) in self.log.range_mut(self.marked_upto..upto) {
                e.committed = true;
            }
            self.marked_upto = upto;
        }
    }

    fn maybe_commit(&mut self, ctx: &mut dyn Context<PaxosMsg>) {
        // Advance the contiguous commit index.
        let before = self.commit_upto;
        while let Some(e) = self.log.get(&self.commit_upto) {
            if e.committed || (self.active && e.quorum.satisfied()) {
                // A slot committing via its own quorum (not a piggybacked
                // mark) is the leader's quorum-ack moment for its requests.
                let quorum_now = !e.committed && self.active;
                let entry = self.log.get_mut(&self.commit_upto).unwrap();
                entry.committed = true;
                if quorum_now {
                    for (_, req) in &entry.cmds {
                        if let Some(id) = req {
                            ctx.trace(TraceStage::QuorumAck, *id);
                        }
                    }
                }
                self.commit_upto += 1;
            } else {
                break;
            }
        }
        if self.commit_upto > before {
            ctx.count(Metric::Commits, self.commit_upto - before);
        }
        if self.cfg.eager_commit && self.active && self.commit_upto > before {
            ctx.broadcast(PaxosMsg::Commit {
                upto: self.commit_upto,
            });
        }
        self.execute(ctx);
        self.maybe_step_down(ctx);
    }

    fn execute(&mut self, ctx: &mut dyn Context<PaxosMsg>) {
        while self.execute_upto < self.commit_upto {
            let slot = self.execute_upto;
            let Some(e) = self.log.get(&slot) else { break };
            if !e.committed {
                break;
            }
            // Execute the batch in order; replies fan back out per command.
            for (cmd, req) in &e.cmds {
                // Data commands on a range this group froze (or already
                // handed off) are deterministically rejected instead of
                // executed — this is what pins the frozen range's contents
                // at the `MigrationStart` log position on every replica. The
                // client is told to retry (freeze window) or follow the
                // epoch-tagged hand-off (after the source commit).
                if cmd.key != CONFIG_KEY && cmd.key != MIGRATION_KEY {
                    if let Some(rej) = self.migration.rejects(cmd.key) {
                        if self.active {
                            if let Some(id) = req {
                                ctx.count(Metric::Redirects, 1);
                                let resp = if rej.committed {
                                    ClientResponse::handed_off(
                                        *id,
                                        Handoff {
                                            lo: rej.spec.range.lo,
                                            hi: rej.spec.range.hi,
                                            group: rej.spec.to,
                                            epoch: rej.spec.epoch,
                                        },
                                    )
                                } else {
                                    ClientResponse::err(*id)
                                };
                                ctx.reply(resp);
                            }
                        }
                        continue;
                    }
                }
                // Config commands mutate the configuration (at accept time,
                // via `note_config`), not the store — but their client still
                // gets an acknowledgment at the commit point. Migration
                // records likewise mutate the tracker (here, at execute
                // time, so replay reconstructs the same transitions).
                let value = if cmd.key == CONFIG_KEY {
                    None
                } else if cmd.key == MIGRATION_KEY {
                    if let Some(rec) = as_migration_record(cmd) {
                        // Audit record first (persist-before-effect); direct
                        // field access because `e` still borrows the log.
                        if let Some(wal) = &mut self.wal {
                            let wal_rec = PaxosWal::Migration {
                                slot,
                                bytes: rec.encode(),
                            };
                            let bytes = paxi_codec::to_bytes(&wal_rec)
                                .expect("paxos wal record must encode");
                            wal.append(&bytes)
                                .expect("paxos replica lost its durable store");
                        }
                        match self.migration.apply(&rec) {
                            MigrationAction::Install(dump) => self.store.install_range(dump),
                            MigrationAction::DropRange(r) => self.store.remove_range(r.lo, r.hi),
                            MigrationAction::None => {}
                        }
                    }
                    None
                } else {
                    let v = self.store.execute(cmd);
                    ctx.count(Metric::Executes, 1);
                    v
                };
                if self.active {
                    if let Some(id) = req {
                        ctx.trace(TraceStage::Execute, *id);
                        ctx.reply(ClientResponse::ok(*id, value));
                    }
                }
            }
            self.execute_upto += 1;
        }
        self.maybe_compact();
    }
}

impl Replica for MultiPaxos {
    type Msg = PaxosMsg;

    /// Rebuilds acceptor state from the store: snapshot first (ballot,
    /// executed state machine, base index), then the WAL records in append
    /// order. Commit/execute indices above the snapshot base are volatile by
    /// design — the leader's piggybacked `commit_upto` re-teaches them, and
    /// re-execution is safe because the restored store is exactly at `base`.
    fn attach_storage(&mut self, mut storage: Box<dyn Storage>) {
        let rec = storage.recover().expect("paxos storage must recover");
        if let Some(snap) = &rec.snapshot {
            let snap: PaxosSnapshot =
                paxi_codec::from_bytes(snap).expect("paxos snapshot must decode");
            self.ballot = snap.ballot;
            self.store = MultiVersionStore::restore(snap.store);
            self.snapshot_base = snap.base;
            self.commit_upto = snap.base;
            self.execute_upto = snap.base;
            self.marked_upto = snap.base;
            self.next_slot = snap.base;
            self.heartbeat_head = snap.base;
            // The configuration map rides whole inside the snapshot:
            // configs chosen below the base have no surviving Accept
            // records to re-derive them from.
            for (key, epoch, members) in snap.configs {
                self.configs.insert(key, (epoch, members));
            }
            // Likewise the migration tracker: freezes and cut-overs below
            // the base live only here. (The restored store already carries
            // their effects — installs and drops — inside its image.)
            if !self.migration.restore(&snap.migration) {
                panic!("paxos snapshot carried a malformed migration tracker");
            }
            // The live tail rides inside the snapshot (atomic compaction):
            // restore it exactly as replaying its Accept records would.
            for (slot, ballot, cmds) in snap.tail {
                if slot < self.snapshot_base {
                    continue;
                }
                self.ballot = self.ballot.max(ballot);
                let mut quorum = CountQuorum::new(self.q2_size_at(slot));
                quorum.ack(ballot.id);
                quorum.ack(self.id);
                self.note_config(slot, &cmds);
                self.log.insert(
                    slot,
                    Entry {
                        ballot,
                        cmds,
                        quorum,
                        committed: false,
                    },
                );
                self.next_slot = self.next_slot.max(slot + 1);
            }
        }
        for bytes in &rec.records {
            match paxi_codec::from_bytes::<PaxosWal>(bytes).expect("paxos wal must decode") {
                PaxosWal::Ballot(b) => self.ballot = self.ballot.max(b),
                PaxosWal::Accept { slot, ballot, cmds } => {
                    if slot < self.snapshot_base {
                        continue;
                    }
                    self.ballot = self.ballot.max(ballot);
                    let mut quorum = CountQuorum::new(self.q2_size_at(slot));
                    quorum.ack(ballot.id);
                    quorum.ack(self.id);
                    self.note_config(slot, &cmds);
                    self.log.insert(
                        slot,
                        Entry {
                            ballot,
                            cmds,
                            quorum,
                            committed: false,
                        },
                    );
                    self.next_slot = self.next_slot.max(slot + 1);
                }
                PaxosWal::Config {
                    slot,
                    epoch,
                    members,
                } => {
                    // Explicit activation record: idempotent with the
                    // `note_config` the Accept replay above just did.
                    self.configs.insert(slot + self.alpha(), (epoch, members));
                }
                PaxosWal::Migration { slot, bytes } => {
                    // Records at or above the snapshot base must NOT be
                    // applied here: their slots re-execute through the
                    // ordinary path once commits re-arrive, and freezing
                    // the range early would wrongly reject data commands
                    // that originally executed *before* the freeze —
                    // diverging the store. Records below the base are an
                    // idempotent safety net (the snapshot's tracker dump
                    // normally already covers them).
                    if slot < self.snapshot_base {
                        if let Some(rec) = paxi_core::migration::MigrationRecord::decode(&bytes) {
                            match self.migration.apply(&rec) {
                                MigrationAction::Install(dump) => self.store.install_range(dump),
                                MigrationAction::DropRange(r) => {
                                    self.store.remove_range(r.lo, r.hi)
                                }
                                MigrationAction::None => {}
                            }
                        }
                    }
                }
            }
        }
        self.active = false;
        self.wal = Some(storage);
    }

    fn sync_storage(&mut self) {
        if let Some(wal) = &mut self.wal {
            wal.tick().expect("paxos replica lost its durable store");
        }
    }

    fn on_start(&mut self, ctx: &mut dyn Context<PaxosMsg>) {
        self.last_leader_contact = ctx.now();
        if self.id == self.cfg.initial_leader {
            self.start_phase1(ctx);
        } else {
            self.leader_hint = Some(self.cfg.initial_leader);
            if self.cfg.enable_failover {
                let jitter = ctx.rand_u64() % self.cfg.election_timeout.0.max(1);
                self.election_token =
                    ctx.set_timer(self.cfg.election_timeout + Nanos(jitter), TIMER_ELECTION);
            }
        }
    }

    fn on_message(&mut self, from: NodeId, msg: PaxosMsg, ctx: &mut dyn Context<PaxosMsg>) {
        match msg {
            PaxosMsg::P1a { ballot } => {
                if ballot > self.ballot {
                    self.ballot = ballot;
                    // Persist the promise before sending it: a promise the
                    // disk doesn't know about could be broken after amnesia.
                    self.persist(&PaxosWal::Ballot(ballot));
                    self.active = false;
                    self.abort_batch();
                    self.leader_hint = Some(ballot.id);
                    self.last_leader_contact = ctx.now();
                    ctx.send(
                        from,
                        PaxosMsg::P1b {
                            ballot,
                            tail: self.uncommitted_tail(),
                            commit_upto: self.commit_upto,
                        },
                    );
                } else {
                    ctx.send(
                        from,
                        PaxosMsg::Nack {
                            ballot: self.ballot,
                        },
                    );
                }
            }
            PaxosMsg::P1b {
                ballot,
                tail,
                commit_upto,
            } => {
                if ballot == self.ballot && !self.active {
                    // Promises from nodes outside the voting membership are
                    // learner echoes — they must not help phase-1 succeed.
                    if !self.members_at(self.next_slot).contains(&from) {
                        return;
                    }
                    if let Some(q) = self.p1_quorum.as_mut() {
                        if q.ack(from) {
                            self.p1_tails.push(tail);
                            self.p1_max_commit = self.p1_max_commit.max(commit_upto);
                        }
                        if q.satisfied() {
                            self.become_leader(ctx);
                        }
                    }
                }
            }
            PaxosMsg::P2a {
                ballot,
                slot,
                cmds,
                commit_upto,
            } => {
                if ballot >= self.ballot {
                    if ballot > self.ballot {
                        self.ballot = ballot;
                        self.persist(&PaxosWal::Ballot(ballot));
                    }
                    self.active = false;
                    self.abort_batch();
                    self.leader_hint = Some(ballot.id);
                    self.last_leader_contact = ctx.now();
                    // Persist the acceptance before the P2b below: once the
                    // leader counts this vote toward a commit, the accepted
                    // batch must survive any crash here. One record, one
                    // fsync, however many commands the batch carries.
                    self.persist(&PaxosWal::Accept {
                        slot,
                        ballot,
                        cmds: cmds.clone(),
                    });
                    let mut quorum = CountQuorum::new(self.q2_size_at(slot));
                    quorum.ack(ballot.id);
                    quorum.ack(self.id);
                    self.note_config(slot, &cmds);
                    self.log.insert(
                        slot,
                        Entry {
                            ballot,
                            cmds,
                            quorum,
                            committed: slot < commit_upto,
                        },
                    );
                    // Piggybacked phase-3: everything below commit_upto is
                    // committed (incremental scan from the last mark).
                    self.mark_committed(commit_upto);
                    self.maybe_commit(ctx);
                    ctx.send(from, PaxosMsg::P2b { ballot, slot });
                } else {
                    ctx.send(
                        from,
                        PaxosMsg::Nack {
                            ballot: self.ballot,
                        },
                    );
                }
            }
            PaxosMsg::P2b { ballot, slot } => {
                if self.active && ballot == self.ballot {
                    // Acks only count from the members governing the slot:
                    // a removed node still accepting as a learner must not
                    // pollute the quorum.
                    if !self.members_at(slot).contains(&from) {
                        return;
                    }
                    if let Some(e) = self.log.get_mut(&slot) {
                        if e.ballot == ballot {
                            e.quorum.ack(from);
                        }
                    }
                    self.maybe_commit(ctx);
                }
            }
            PaxosMsg::Nack { ballot } => {
                if ballot > self.ballot {
                    self.ballot = ballot;
                    self.persist(&PaxosWal::Ballot(ballot));
                    self.active = false;
                    self.abort_batch();
                    self.p1_quorum = None;
                    self.leader_hint = Some(ballot.id);
                    self.last_leader_contact = ctx.now();
                }
            }
            PaxosMsg::Commit { upto } => {
                self.last_leader_contact = ctx.now();
                self.leader_hint = Some(from);
                self.mark_committed(upto);
                self.maybe_commit(ctx);
            }
        }
    }

    fn on_request(&mut self, req: ClientRequest, ctx: &mut dyn Context<PaxosMsg>) {
        if self.active {
            if let Some(change) = membership::as_config_change(&req.cmd) {
                self.handle_reconfig(req, change, ctx);
            } else {
                self.propose(req, ctx);
            }
        } else if let Some(leader) = self.leader_hint {
            if leader == self.id {
                self.pending.push(req);
            } else {
                ctx.forward(leader, req);
            }
        } else {
            self.pending.push(req);
        }
    }

    fn on_timer(&mut self, kind: u64, token: u64, ctx: &mut dyn Context<PaxosMsg>) {
        match kind {
            TIMER_HEARTBEAT => {
                if self.active {
                    // Nothing retries phase-2, so a P2a (or its P2b) lost to
                    // a fault would block the commit index forever. If the
                    // head hasn't moved since the last tick, retransmit the
                    // stuck window — duplicates are harmless (acceptors
                    // re-ack, quorums are sets), and a healthy run never
                    // stalls a full heartbeat, so this costs nothing.
                    if self.commit_upto == self.heartbeat_head {
                        let stuck: Vec<(u64, SlotCmds)> = self
                            .log
                            .range(self.commit_upto..)
                            .filter(|(_, e)| {
                                !e.committed && !e.quorum.satisfied() && e.ballot == self.ballot
                            })
                            .take(32)
                            .map(|(s, e)| (*s, e.cmds.clone()))
                            .collect();
                        if !stuck.is_empty() {
                            ctx.count(Metric::Retransmissions, stuck.len() as u64);
                        }
                        for (slot, cmds) in stuck {
                            ctx.broadcast(PaxosMsg::P2a {
                                ballot: self.ballot,
                                slot,
                                cmds,
                                commit_upto: self.commit_upto,
                            });
                        }
                    }
                    self.heartbeat_head = self.commit_upto;
                    ctx.broadcast(PaxosMsg::Commit {
                        upto: self.commit_upto,
                    });
                    ctx.set_timer(self.cfg.heartbeat, TIMER_HEARTBEAT);
                }
            }
            TIMER_BATCH => {
                if Some(token) != self.batch_token {
                    return; // stale: the batch already flushed (or aborted)
                }
                if self.active {
                    // Hold-down expired with a partial batch: flush it.
                    self.flush_batch(ctx);
                } else {
                    self.abort_batch();
                }
            }
            TIMER_ELECTION => {
                if token != self.election_token || !self.cfg.enable_failover {
                    return;
                }
                let now = ctx.now();
                if !self.active
                    && self.members_at(self.next_slot).contains(&self.id)
                    && now.saturating_sub(self.last_leader_contact) >= self.cfg.election_timeout
                {
                    self.start_phase1(ctx);
                }
                let jitter = ctx.rand_u64() % self.cfg.election_timeout.0.max(1);
                self.election_token =
                    ctx.set_timer(self.cfg.election_timeout + Nanos(jitter), TIMER_ELECTION);
            }
            _ => {}
        }
    }

    fn protocol_name(&self) -> &'static str {
        if self.cfg.q2.is_some() {
            "fpaxos"
        } else {
            "paxos"
        }
    }

    /// Phase-2a messages weigh as many commands as the slot batch carries,
    /// so the simulator charges the model's per-command marginal cost on top
    /// of the per-message fixed cost. Everything else (acks, phase-1,
    /// commits) weighs 1 — exactly the pre-batching accounting, which keeps
    /// `max_batch = 1` runs bit-identical to the unbatched protocol.
    fn msg_cmds(msg: &PaxosMsg) -> u64 {
        match msg {
            PaxosMsg::P2a { cmds, .. } => cmds.len().max(1) as u64,
            _ => 1,
        }
    }

    fn msg_kind(msg: &PaxosMsg) -> &'static str {
        match msg {
            PaxosMsg::P1a { .. } => "p1a",
            PaxosMsg::P1b { .. } => "p1b",
            PaxosMsg::P2a { .. } => "p2a",
            PaxosMsg::P2b { .. } => "p2b",
            PaxosMsg::Nack { .. } => "nack",
            PaxosMsg::Commit { .. } => "commit",
        }
    }

    fn store(&self) -> Option<&MultiVersionStore> {
        Some(&self.store)
    }

    /// The ballot owner this replica would forward requests to (itself when
    /// it is the active leader) â the redirect surface for sharded routing.
    fn leader_hint(&self) -> Option<NodeId> {
        self.leader_hint
    }

    /// The union of the configuration governing the proposal frontier and
    /// every configuration still inside its α window — a joining node needs
    /// its peer links *before* its config takes effect.
    fn current_members(&self) -> Option<Vec<NodeId>> {
        let governing = self
            .configs
            .range(..=self.next_slot)
            .next_back()
            .map(|(k, _)| *k)
            .unwrap_or(0);
        let mut v: Vec<NodeId> = self
            .configs
            .range(governing..)
            .flat_map(|(_, (_, m))| m.iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        Some(v)
    }

    fn migration(&self) -> Option<&MigrationTracker> {
        Some(&self.migration)
    }
}

/// Convenience factory for a homogeneous MultiPaxos cluster.
pub fn paxos_cluster(cluster: ClusterConfig, cfg: PaxosConfig) -> impl Fn(NodeId) -> MultiPaxos {
    move |id| MultiPaxos::new(id, cluster.clone(), cfg.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxi_core::command::Op;
    use paxi_core::id::ClientId;
    use paxi_sim::{ClientSetup, SimConfig, Simulator};

    fn lan_sim(n: u8, cfg: PaxosConfig, clients: usize) -> Simulator<MultiPaxos> {
        let cluster = ClusterConfig::lan(n);
        let setups = ClientSetup::closed_per_zone(&cluster, clients);
        Simulator::new(
            SimConfig {
                record_ops: true,
                ..SimConfig::default()
            },
            cluster.clone(),
            paxos_cluster(cluster, cfg),
            paxi_sim::client::uniform_workload(100),
            setups,
        )
    }

    #[test]
    fn three_node_cluster_serves_requests() {
        let mut sim = lan_sim(3, PaxosConfig::default(), 4);
        let report = sim.run();
        assert!(report.completed > 1000, "completed {}", report.completed);
        assert_eq!(report.errors, 0);
        // Mean latency: ~2 LAN RTTs (client->leader + leader->quorum).
        let mean = report.latency.mean.as_millis_f64();
        assert!((0.6..2.5).contains(&mean), "mean {mean} ms");
    }

    #[test]
    fn leader_is_the_busiest_node() {
        let mut sim = lan_sim(9, PaxosConfig::default(), 8);
        let report = sim.run();
        assert_eq!(report.busiest_node(), Some(NodeId::new(0, 0)));
        // Leader handles ~N+2 messages per round vs 2 at followers.
        let leader = &report.node_stats[0];
        let follower = &report.node_stats[5];
        assert!(
            leader.handled > 3 * follower.handled,
            "leader {} follower {}",
            leader.handled,
            follower.handled
        );
    }

    #[test]
    fn stores_agree_across_replicas() {
        let mut sim = lan_sim(3, PaxosConfig::default(), 4);
        let _ = sim.run();
        // All replicas executed a common prefix; with the heartbeat flush the
        // logs are near-identical. Compare per-key histories prefix-wise.
        let stores: Vec<_> = sim.replicas().iter().map(|r| r.store().unwrap()).collect();
        let reference = stores[0];
        for s in &stores[1..] {
            for key in reference.keys() {
                let a = reference.history(key);
                let b = s.history(key);
                let common = a.len().min(b.len());
                assert_eq!(
                    &a[..common],
                    &b[..common],
                    "divergent history for key {key}"
                );
            }
        }
    }

    #[test]
    fn fpaxos_q2_quorum_sizes() {
        let cluster = ClusterConfig::lan(9);
        let p = MultiPaxos::new(NodeId::new(0, 0), cluster.clone(), PaxosConfig::flexible(3));
        assert_eq!(p.q2_size(), 3);
        assert_eq!(p.q1_size(), 7);
        let m = MultiPaxos::new(NodeId::new(0, 0), cluster, PaxosConfig::default());
        assert_eq!(m.q2_size(), 5);
        assert_eq!(m.q1_size(), 5);
    }

    #[test]
    fn fpaxos_commits_with_small_quorum() {
        let mut sim = lan_sim(9, PaxosConfig::flexible(3), 4);
        let report = sim.run();
        assert!(report.completed > 1000, "completed {}", report.completed);
        assert_eq!(report.errors, 0);
    }

    #[test]
    fn leader_crash_triggers_failover() {
        let cluster = ClusterConfig::lan(3);
        let setups = ClientSetup::closed_per_zone(&cluster, 3);
        let cfg = SimConfig {
            warmup: Nanos::millis(100),
            measure: Nanos::secs(4),
            client_retry: Some(Nanos::millis(700)),
            timeline_bucket: Some(Nanos::millis(100)),
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(
            cfg,
            cluster.clone(),
            paxos_cluster(
                cluster,
                PaxosConfig {
                    election_timeout: Nanos::millis(300),
                    ..PaxosConfig::default()
                },
            ),
            paxi_sim::client::uniform_workload(100),
            setups,
        );
        // Kill the initial leader at t=1s for the rest of the run.
        sim.faults_mut()
            .crash(NodeId::new(0, 0), Nanos::secs(1), Nanos::secs(30));
        let report = sim.run();
        // Progress resumed after the election: completions exist late in the run.
        let late = report
            .timeline
            .iter()
            .filter(|(t, _)| *t > Nanos::secs(2))
            .map(|(_, c)| *c)
            .sum::<u64>();
        assert!(
            late > 100,
            "no post-failover progress: {late} (timeline {:?})",
            report.timeline
        );
    }

    #[test]
    fn reads_return_previously_written_values() {
        let mut sim = lan_sim(3, PaxosConfig::default(), 2);
        let report = sim.run();
        // Every successful read of a key must return either None or a value
        // some client wrote (12-byte unique tag).
        for op in report.ops.iter().filter(|o| o.ok) {
            if let Some(Some(v)) = &op.read {
                assert_eq!(v.len(), 12, "read returned a non-client value");
            }
        }
        // And at least some reads returned data.
        let data_reads = report
            .ops
            .iter()
            .filter(|o| matches!(&o.read, Some(Some(_))))
            .count();
        assert!(data_reads > 0);
    }

    #[test]
    fn unique_write_values_appear_in_some_store() {
        let mut sim = lan_sim(3, PaxosConfig::default(), 2);
        let report = sim.run();
        let store = sim.replicas()[0].store().unwrap();
        // Pick a few acknowledged writes; their values must be in the
        // replicated history of the leader's store.
        let mut checked = 0;
        for op in report
            .ops
            .iter()
            .filter(|o| o.ok && o.write.is_some())
            .take(20)
        {
            let hist = store.history(op.key);
            let v = op.write.as_ref().unwrap();
            assert!(
                hist.iter().any(|ver| ver.value.as_ref() == Some(v)),
                "acknowledged write missing from leader store"
            );
            checked += 1;
        }
        assert!(checked > 0);
        let _ = Op::Get; // keep import used
    }

    #[test]
    fn client_id_routing_is_consistent() {
        let mut sim = lan_sim(3, PaxosConfig::default(), 3);
        let report = sim.run();
        let clients: std::collections::HashSet<ClientId> =
            report.ops.iter().map(|o| o.client).collect();
        assert_eq!(clients.len(), 3);
    }

    /// Minimal probe context for driving handlers directly.
    struct Probe {
        id: NodeId,
        sent: Vec<(Option<NodeId>, PaxosMsg)>, // None = broadcast
        replies: Vec<ClientResponse>,
    }

    impl Context<PaxosMsg> for Probe {
        fn id(&self) -> NodeId {
            self.id
        }
        fn now(&self) -> Nanos {
            Nanos::ZERO
        }
        fn send(&mut self, to: NodeId, msg: PaxosMsg) {
            self.sent.push((Some(to), msg));
        }
        fn broadcast(&mut self, msg: PaxosMsg) {
            self.sent.push((None, msg));
        }
        fn multicast(&mut self, to: &[NodeId], msg: PaxosMsg) {
            for &t in to {
                self.sent.push((Some(t), msg.clone()));
            }
        }
        fn set_timer(&mut self, _after: Nanos, _kind: u64) -> u64 {
            0
        }
        fn reply(&mut self, resp: ClientResponse) {
            self.replies.push(resp);
        }
        fn forward(&mut self, _to: NodeId, _req: ClientRequest) {}
        fn rand_u64(&mut self) -> u64 {
            1
        }
    }

    fn probe(id: NodeId) -> Probe {
        Probe {
            id,
            sent: Vec::new(),
            replies: Vec::new(),
        }
    }

    fn durable_follower(hub: &paxi_storage::MemHub<u32>) -> MultiPaxos {
        let mut r = MultiPaxos::new(
            NodeId::new(0, 1),
            ClusterConfig::lan(3),
            PaxosConfig::default(),
        );
        r.attach_storage(Box::new(hub.open(1)));
        r
    }

    /// Drives a 3-node replica to leadership via a probe: phase-1 completes
    /// with one empty-tailed promise.
    fn probe_leader(cfg: PaxosConfig) -> (MultiPaxos, Probe) {
        let id = NodeId::new(0, 0);
        let mut r = MultiPaxos::new(id, ClusterConfig::lan(3), cfg);
        let mut ctx = probe(id);
        r.on_start(&mut ctx);
        let ballot = r.current_ballot();
        r.on_message(
            NodeId::new(0, 1),
            PaxosMsg::P1b {
                ballot,
                tail: vec![],
                commit_upto: 0,
            },
            &mut ctx,
        );
        assert!(r.is_leader());
        ctx.sent.clear();
        (r, ctx)
    }

    fn request(seq: u64) -> ClientRequest {
        ClientRequest {
            id: RequestId::new(ClientId(1), seq),
            cmd: Command::put(seq, vec![1]),
        }
    }

    fn p2a_batches(sent: &[(Option<NodeId>, PaxosMsg)]) -> Vec<&SlotCmds> {
        sent.iter()
            .filter_map(|(_, m)| match m {
                PaxosMsg::P2a { cmds, .. } => Some(cmds),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn full_batch_goes_out_as_one_p2a() {
        let (mut r, mut ctx) = probe_leader(PaxosConfig::batched(4));
        for seq in 0..4 {
            r.on_request(request(seq), &mut ctx);
        }
        let batches = p2a_batches(&ctx.sent);
        assert_eq!(
            batches.len(),
            1,
            "4 commands, max_batch 4: exactly one phase-2 round"
        );
        assert_eq!(batches[0].len(), 4);
        // Order preserved within the batch.
        for (i, (cmd, req)) in batches[0].iter().enumerate() {
            assert_eq!(*cmd, Command::put(i as u64, vec![1]));
            assert_eq!(*req, Some(RequestId::new(ClientId(1), i as u64)));
        }
    }

    #[test]
    fn partial_batch_flushes_on_the_hold_down_timer() {
        let (mut r, mut ctx) = probe_leader(PaxosConfig::batched(4));
        r.on_request(request(0), &mut ctx);
        r.on_request(request(1), &mut ctx);
        assert!(
            p2a_batches(&ctx.sent).is_empty(),
            "partial batch must wait for the hold-down"
        );
        // Probe's set_timer always returns token 0.
        r.on_timer(TIMER_BATCH, 0, &mut ctx);
        let batches = p2a_batches(&ctx.sent);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].len(), 2);
        // A stale timer fire after the flush must not emit an empty batch.
        r.on_timer(TIMER_BATCH, 0, &mut ctx);
        assert_eq!(p2a_batches(&ctx.sent).len(), 1);
    }

    #[test]
    fn unbatched_config_proposes_immediately_per_command() {
        let (mut r, mut ctx) = probe_leader(PaxosConfig::default());
        for seq in 0..3 {
            r.on_request(request(seq), &mut ctx);
        }
        let batches = p2a_batches(&ctx.sent);
        assert_eq!(
            batches.len(),
            3,
            "max_batch = 1: one P2a per command, no buffering"
        );
        assert!(batches.iter().all(|b| b.len() == 1));
    }

    #[test]
    fn losing_leadership_requeues_the_buffered_batch() {
        let (mut r, mut ctx) = probe_leader(PaxosConfig::batched(8));
        r.on_request(request(0), &mut ctx);
        r.on_request(request(1), &mut ctx);
        // A higher ballot arrives: step down; the buffered commands must not
        // be lost (they re-enter the pending queue).
        let usurper = Ballot::default()
            .next(NodeId::new(0, 2))
            .next(NodeId::new(0, 2));
        r.on_message(
            NodeId::new(0, 2),
            PaxosMsg::P1a { ballot: usurper },
            &mut ctx,
        );
        assert!(!r.is_leader());
        assert_eq!(r.pending.len(), 2, "aborted batch folds back into pending");
        assert!(r.batch_buf.is_empty());
    }

    #[test]
    fn batched_cluster_serves_requests_and_stores_agree() {
        let mut sim = lan_sim(3, PaxosConfig::batched(8), 4);
        let report = sim.run();
        assert!(report.completed > 1000, "completed {}", report.completed);
        assert_eq!(report.errors, 0);
        let stores: Vec<_> = sim.replicas().iter().map(|r| r.store().unwrap()).collect();
        let reference = stores[0];
        for s in &stores[1..] {
            for key in reference.keys() {
                let a = reference.history(key);
                let b = s.history(key);
                let common = a.len().min(b.len());
                assert_eq!(
                    &a[..common],
                    &b[..common],
                    "divergent history for key {key}"
                );
            }
        }
    }

    #[test]
    fn acceptor_state_survives_amnesia() {
        use paxi_storage::{FsyncPolicy, MemHub};
        let hub: MemHub<u32> = MemHub::new(FsyncPolicy::Always);
        let leader = NodeId::new(0, 0);
        let ballot = Ballot::default().next(leader);
        let mut r = durable_follower(&hub);
        let mut ctx = probe(NodeId::new(0, 1));
        r.on_message(
            leader,
            PaxosMsg::P2a {
                ballot,
                slot: 0,
                cmds: vec![(Command::put(7, vec![9]), None)],
                commit_upto: 0,
            },
            &mut ctx,
        );
        assert_eq!(r.current_ballot(), ballot);
        // The node forgets everything (amnesia) and is rebuilt from disk.
        drop(r);
        hub.crash(&1);
        let r2 = durable_follower(&hub);
        assert_eq!(r2.current_ballot(), ballot, "the promise must survive");
        let tail = r2.uncommitted_tail();
        assert_eq!(tail.len(), 1, "the accepted entry must survive");
        assert_eq!(tail[0].0, 0);
        assert_eq!(tail[0].2, vec![(Command::put(7, vec![9]), None)]);
    }

    #[test]
    fn snapshot_alone_carries_the_accepted_tail() {
        // The disk state compaction leaves if the process dies the instant
        // install_snapshot returns: a snapshot and zero WAL records. Every
        // accepted-but-unexecuted slot must live inside the snapshot itself
        // — a truncate-then-reappend scheme loses those accepts (whose P2bs
        // the leader may already have counted) at exactly this crash point.
        use paxi_storage::{FsyncPolicy, MemHub};
        let hub: MemHub<u32> = MemHub::new(FsyncPolicy::Always);
        let leader = NodeId::new(0, 0);
        let ballot = Ballot::default().next(leader);
        let mut r = durable_follower(&hub);
        let mut ctx = probe(NodeId::new(0, 1));
        // Slot 512's P2a commits (and executes) 0..512, which crosses the
        // compaction threshold inside the handler; slot 512 itself stays
        // accepted-but-unexecuted.
        for slot in 0..=COMPACT_EVERY {
            r.on_message(
                leader,
                PaxosMsg::P2a {
                    ballot,
                    slot,
                    cmds: vec![(Command::put(slot % 8, vec![slot as u8]), None)],
                    commit_upto: slot,
                },
                &mut ctx,
            );
        }
        assert_eq!(
            hub.synced_len(&1),
            0,
            "compaction must leave no post-snapshot WAL records behind"
        );
        hub.crash(&1);
        let r2 = durable_follower(&hub);
        assert_eq!(r2.current_ballot(), ballot);
        assert_eq!(r2.store().unwrap().executed(), COMPACT_EVERY);
        let tail = r2.uncommitted_tail();
        assert_eq!(
            tail.len(),
            1,
            "the accepted tail must survive the compaction crash"
        );
        assert_eq!(tail[0].0, COMPACT_EVERY);
        assert_eq!(
            tail[0].2,
            vec![(
                Command::put(COMPACT_EVERY % 8, vec![COMPACT_EVERY as u8]),
                None
            )]
        );
    }

    #[test]
    fn compaction_snapshots_the_store_and_recovery_resumes_from_it() {
        use paxi_storage::{FsyncPolicy, MemHub};
        let hub: MemHub<u32> = MemHub::new(FsyncPolicy::Always);
        let leader = NodeId::new(0, 0);
        let ballot = Ballot::default().next(leader);
        let mut r = durable_follower(&hub);
        let mut ctx = probe(NodeId::new(0, 1));
        for slot in 0..600u64 {
            r.on_message(
                leader,
                PaxosMsg::P2a {
                    ballot,
                    slot,
                    cmds: vec![(Command::put(slot % 8, vec![slot as u8]), None)],
                    commit_upto: slot,
                },
                &mut ctx,
            );
        }
        r.on_message(leader, PaxosMsg::Commit { upto: 600 }, &mut ctx);
        assert_eq!(r.store().unwrap().executed(), 600);
        // Crash and rebuild: the snapshot covers the compacted prefix (one
        // compaction fired at 512 executed slots), the WAL the rest.
        hub.crash(&1);
        let mut r2 = durable_follower(&hub);
        assert_eq!(
            r2.store().unwrap().executed(),
            512,
            "snapshot restores exactly the compacted prefix"
        );
        // The leader's next commit flush re-teaches the volatile indices and
        // re-executes the WAL tail on top of the snapshot.
        let mut ctx2 = probe(NodeId::new(0, 1));
        r2.on_message(leader, PaxosMsg::Commit { upto: 600 }, &mut ctx2);
        assert_eq!(r2.store().unwrap().executed(), 600);
        for key in 0..8u64 {
            assert_eq!(
                r2.store().unwrap().history(key),
                r.store().unwrap().history(key),
                "recovered history diverges on key {key}"
            );
        }
    }

    fn reconfig_request(seq: u64, change: ConfigChange) -> ClientRequest {
        ClientRequest {
            id: RequestId::new(ClientId(9), seq),
            cmd: membership::reconfig_command(&change),
        }
    }

    #[test]
    fn reconfig_rides_the_log_and_activates_after_alpha() {
        let (mut r, mut ctx) = probe_leader(PaxosConfig::default());
        let n2 = NodeId::new(0, 2);
        r.on_request(
            reconfig_request(0, ConfigChange::remove(vec![n2])),
            &mut ctx,
        );
        // The config is chosen in slot 0 but governs only from slot α = 4:
        // the epoch advances immediately, the member set does not.
        assert_eq!(r.config_epoch(), 1);
        assert_eq!(
            r.members().len(),
            3,
            "inside the α window the old config still governs"
        );
        assert_eq!(
            p2a_batches(&ctx.sent).len(),
            1,
            "the config entry gets its own slot"
        );
        for seq in 0..3 {
            r.on_request(request(seq), &mut ctx);
        }
        assert_eq!(r.members(), vec![NodeId::new(0, 0), NodeId::new(0, 1)]);
        // Commit everything: the removed node's acks must not be needed.
        let ballot = r.current_ballot();
        for slot in 0..4 {
            r.on_message(NodeId::new(0, 1), PaxosMsg::P2b { ballot, slot }, &mut ctx);
        }
        assert_eq!(r.commit_upto, 4);
    }

    #[test]
    fn removed_acceptor_acks_never_count_after_cut_over() {
        let (mut r, mut ctx) = probe_leader(PaxosConfig::default());
        let n1 = NodeId::new(0, 1);
        let n2 = NodeId::new(0, 2);
        r.on_request(
            reconfig_request(0, ConfigChange::remove(vec![n2])),
            &mut ctx,
        );
        for seq in 0..4 {
            r.on_request(request(seq), &mut ctx);
        }
        let ballot = r.current_ballot();
        // Slot 4 is governed by the 2-member config; the removed node's
        // learner ack must not commit it.
        r.on_message(n2, PaxosMsg::P2b { ballot, slot: 4 }, &mut ctx);
        assert_eq!(r.commit_upto, 0, "outsider ack polluted the quorum");
        for slot in 0..5 {
            r.on_message(n1, PaxosMsg::P2b { ballot, slot }, &mut ctx);
        }
        assert_eq!(r.commit_upto, 5);
    }

    #[test]
    fn excluded_leader_steps_down_after_cut_over() {
        let (mut r, mut ctx) = probe_leader(PaxosConfig::default());
        let me = NodeId::new(0, 0);
        r.on_request(
            reconfig_request(0, ConfigChange::remove(vec![me])),
            &mut ctx,
        );
        let ballot = r.current_ballot();
        // Inside the window the deposed-to-be leader keeps driving slots.
        for seq in 0..3 {
            r.on_request(request(seq), &mut ctx);
            assert!(r.is_leader());
        }
        for slot in 0..4 {
            r.on_message(NodeId::new(0, 1), PaxosMsg::P2b { ballot, slot }, &mut ctx);
        }
        assert!(
            !r.is_leader(),
            "committed + effective exclusion must depose the leader"
        );
        // The farewell is a final commit flush so survivors learn slot 3.
        let farewell = ctx.sent.iter().rev().find_map(|(_, m)| match m {
            PaxosMsg::Commit { upto } => Some(*upto),
            _ => None,
        });
        assert_eq!(farewell, Some(4));
    }

    #[test]
    fn noop_reconfig_answers_without_a_slot() {
        let (mut r, mut ctx) = probe_leader(PaxosConfig::default());
        let change = ConfigChange {
            add: vec![NodeId::new(1, 0)],
            remove: vec![NodeId::new(1, 0)],
        };
        r.on_request(reconfig_request(0, change), &mut ctx);
        assert_eq!(r.config_epoch(), 0);
        assert!(
            p2a_batches(&ctx.sent).is_empty(),
            "a no-op change must not spend a slot"
        );
        assert_eq!(r.next_slot, 0);
    }

    #[test]
    fn removed_node_never_campaigns() {
        let me = NodeId::new(0, 2);
        let mut r = MultiPaxos::new(
            me,
            ClusterConfig::lan(3),
            PaxosConfig {
                election_timeout: Nanos::ZERO,
                ..PaxosConfig::default()
            },
        );
        let mut ctx = probe(me);
        r.on_start(&mut ctx);
        let leader = NodeId::new(0, 0);
        let ballot = Ballot::default().next(leader);
        let gone = Membership::Stable {
            epoch: 1,
            members: vec![NodeId::new(0, 0), NodeId::new(0, 1)],
        };
        for slot in 0..5 {
            let cmd = if slot == 0 {
                membership::membership_command(&gone)
            } else {
                Command::put(slot, vec![1])
            };
            r.on_message(
                leader,
                PaxosMsg::P2a {
                    ballot,
                    slot,
                    cmds: vec![(cmd, None)],
                    commit_upto: slot,
                },
                &mut ctx,
            );
        }
        assert_eq!(r.members(), vec![NodeId::new(0, 0), NodeId::new(0, 1)]);
        ctx.sent.clear();
        // Election timeout of zero: the timer condition holds, only the
        // membership gate can stop the campaign.
        r.on_timer(TIMER_ELECTION, 0, &mut ctx);
        assert!(!r.is_leader());
        assert!(
            !ctx.sent
                .iter()
                .any(|(_, m)| matches!(m, PaxosMsg::P1a { .. })),
            "a removed node must stay a quiet learner"
        );
    }

    #[test]
    fn config_survives_amnesia_never_recovering_the_old_one() {
        use paxi_storage::{FsyncPolicy, MemHub};
        let hub: MemHub<u32> = MemHub::new(FsyncPolicy::Always);
        let leader = NodeId::new(0, 0);
        let ballot = Ballot::default().next(leader);
        let mut r = durable_follower(&hub);
        let mut ctx = probe(NodeId::new(0, 1));
        let next = Membership::Stable {
            epoch: 1,
            members: vec![NodeId::new(0, 0), NodeId::new(0, 1)],
        };
        for slot in 0..5 {
            let cmd = if slot == 0 {
                membership::membership_command(&next)
            } else {
                Command::put(slot, vec![1])
            };
            r.on_message(
                leader,
                PaxosMsg::P2a {
                    ballot,
                    slot,
                    cmds: vec![(cmd, None)],
                    commit_upto: slot,
                },
                &mut ctx,
            );
        }
        assert_eq!(r.config_epoch(), 1);
        // Amnesia: the rebuilt replica must come up in the new config —
        // never the pre-transition 3-member one.
        drop(r);
        hub.crash(&1);
        let r2 = durable_follower(&hub);
        assert_eq!(
            r2.config_epoch(),
            1,
            "the chosen config must survive the crash"
        );
        assert_eq!(
            r2.members(),
            vec![NodeId::new(0, 0), NodeId::new(0, 1)],
            "recovery resurrected the old configuration"
        );
    }

    use paxi_core::migration::{
        migration_command, CommitHalf, KeyRange, MigrationRecord, MigrationSpec,
    };

    fn mig_spec() -> MigrationSpec {
        MigrationSpec {
            id: 1,
            from: GroupId(0),
            to: GroupId(1),
            range: KeyRange::new(10, 20),
            epoch: 1,
        }
    }

    /// Commits one command through the probe leader: propose, then ack the
    /// phase-2 round from a follower so the slot commits and executes.
    fn commit_request(r: &mut MultiPaxos, ctx: &mut Probe, seq: u64, cmd: Command) {
        let slot = r.next_slot;
        r.on_request(
            ClientRequest {
                id: RequestId::new(ClientId(1), seq),
                cmd,
            },
            ctx,
        );
        let ballot = r.current_ballot();
        r.on_message(NodeId::new(0, 1), PaxosMsg::P2b { ballot, slot }, ctx);
    }

    #[test]
    fn frozen_range_rejects_writes_then_hands_off_after_commit() {
        let (mut r, mut ctx) = probe_leader(PaxosConfig::default());
        r.set_group(GroupId(0));
        let spec = mig_spec();
        // A pre-freeze write to the range executes normally.
        commit_request(&mut r, &mut ctx, 0, Command::put(12, vec![7]));
        assert!(ctx.replies.last().unwrap().ok);
        // Freeze the range; the migration command itself acks ok.
        commit_request(
            &mut r,
            &mut ctx,
            1,
            migration_command(&MigrationRecord::Start(spec)),
        );
        assert!(ctx.replies.last().unwrap().ok);
        // A frozen-range write is rejected retryably (no hand-off yet)...
        commit_request(&mut r, &mut ctx, 2, Command::put(12, vec![9]));
        let rej = ctx.replies.last().unwrap();
        assert!(
            !rej.ok && rej.handoff.is_none(),
            "freeze window rejects retryably"
        );
        // ...and never executed: the store keeps the pre-freeze value.
        assert_eq!(r.store.get(12), Some(&vec![7]));
        // Writes outside the range are untouched.
        commit_request(&mut r, &mut ctx, 3, Command::put(3, vec![1]));
        assert!(ctx.replies.last().unwrap().ok);
        // The source commit drops the range and switches rejections to the
        // epoch-tagged hand-off.
        commit_request(
            &mut r,
            &mut ctx,
            4,
            migration_command(&MigrationRecord::Commit {
                spec,
                half: CommitHalf::Source,
            }),
        );
        assert_eq!(r.store.get(12), None, "committed hand-off drops the range");
        assert_eq!(r.migration.epoch(), 1);
        commit_request(&mut r, &mut ctx, 5, Command::put(12, vec![9]));
        let h = ctx
            .replies
            .last()
            .unwrap()
            .handoff
            .expect("post-commit rejection carries the hand-off");
        assert_eq!(h.group, GroupId(1));
        assert_eq!(h.epoch, 1);
        assert_eq!((h.lo, h.hi), (10, 20));
    }

    #[test]
    fn installed_range_survives_amnesia_via_commit_reteaching() {
        use paxi_core::migration::encode_range_state;
        use paxi_storage::{FsyncPolicy, MemHub};
        let hub: MemHub<u32> = MemHub::new(FsyncPolicy::Always);
        let leader = NodeId::new(0, 0);
        let ballot = Ballot::default().next(leader);
        let spec = mig_spec();
        // Frozen-range state as streamed from the source group.
        let mut src = MultiVersionStore::new();
        src.execute(&Command::put(12, vec![4]));
        src.execute(&Command::put(12, vec![5]));
        let state = encode_range_state(&src.extract_range(10, 20));
        // A durable follower of the DESTINATION group applies the install
        // and the dest-half commit from its leader's log.
        let mut r = durable_follower(&hub);
        r.set_group(GroupId(1));
        let mut ctx = probe(NodeId::new(0, 1));
        let cmds = [
            migration_command(&MigrationRecord::Install { spec, state }),
            migration_command(&MigrationRecord::Commit {
                spec,
                half: CommitHalf::Dest,
            }),
        ];
        for (slot, cmd) in cmds.into_iter().enumerate() {
            let slot = slot as u64;
            r.on_message(
                leader,
                PaxosMsg::P2a {
                    ballot,
                    slot,
                    cmds: vec![(cmd, None)],
                    commit_upto: slot,
                },
                &mut ctx,
            );
        }
        r.on_message(leader, PaxosMsg::Commit { upto: 2 }, &mut ctx);
        assert_eq!(r.store.get(12), Some(&vec![5]), "install spliced the chain");
        assert!(r.migration.installed(1) && r.migration.done(1));
        assert_eq!(r.migration.epoch(), 1);
        // Amnesia: the rebuilt replica restores the log tail from its WAL
        // Accept records; migration WAL records at or above the snapshot
        // base are deliberately NOT replayed — the commit re-teaching
        // re-executes the tail and rebuilds tracker and store identically.
        drop(r);
        hub.crash(&1);
        let mut r2 = durable_follower(&hub);
        r2.set_group(GroupId(1));
        assert_eq!(r2.store.get(12), None, "nothing re-executed yet");
        let mut ctx2 = probe(NodeId::new(0, 1));
        r2.on_message(leader, PaxosMsg::Commit { upto: 2 }, &mut ctx2);
        assert_eq!(r2.store.get(12), Some(&vec![5]));
        assert!(r2.migration.done(1));
        assert_eq!(r2.migration.epoch(), 1);
    }

    #[test]
    fn compaction_snapshot_carries_the_migration_tracker() {
        use paxi_storage::{FsyncPolicy, MemHub};
        let hub: MemHub<u32> = MemHub::new(FsyncPolicy::Always);
        let leader = NodeId::new(0, 0);
        let ballot = Ballot::default().next(leader);
        let spec = mig_spec();
        let mut r = durable_follower(&hub);
        r.set_group(GroupId(0));
        let mut ctx = probe(NodeId::new(0, 1));
        let total = COMPACT_EVERY + 8;
        for slot in 0..total {
            let cmd = match slot {
                0 => migration_command(&MigrationRecord::Start(spec)),
                1 => migration_command(&MigrationRecord::Commit {
                    spec,
                    half: CommitHalf::Source,
                }),
                // Keys 0..5 — outside the migrating [10, 20) range.
                _ => Command::put(slot % 5, vec![1]),
            };
            r.on_message(
                leader,
                PaxosMsg::P2a {
                    ballot,
                    slot,
                    cmds: vec![(cmd, None)],
                    commit_upto: slot,
                },
                &mut ctx,
            );
        }
        r.on_message(leader, PaxosMsg::Commit { upto: total }, &mut ctx);
        assert!(r.snapshot_base > 0, "compaction must have run");
        assert_eq!(r.migration.epoch(), 1);
        // Freeze-crash rebuild: the hand-off's log slots were compacted
        // away, so the tracker state now lives only in the snapshot.
        drop(r);
        let mut r2 = durable_follower(&hub);
        r2.set_group(GroupId(0));
        assert_eq!(r2.migration.epoch(), 1, "snapshot must carry the tracker");
        assert!(
            r2.migration
                .rejects(12)
                .expect("dropped range still rejects")
                .committed
        );
        assert_eq!(r2.store.get(12), None);
    }
}
