//! Egalitarian Paxos (EPaxos).
//!
//! EPaxos is the paper's leaderless (opportunistic-leader) representative:
//! every replica may become the *command leader* for the commands its clients
//! submit. A command that does not interfere with concurrent commands commits
//! in one round trip to a **fast quorum** (≈ 3/4 of the cluster); when the
//! fast-quorum replies disagree about the command's dependencies — i.e. a
//! conflict was detected — the protocol falls back to a classic Paxos accept
//! round on the unioned attributes. This is why the paper's EPaxos results
//! degrade with the conflict ratio `c` (Figures 11 and 12): a `c` fraction of
//! commands pays a second quorum round plus dependency-resolution work.
//!
//! Commands carry `(seq, deps)` attributes; committed commands form a
//! dependency graph which every replica executes by strongly-connected
//! components in reverse topological order (ties broken by `seq`), yielding
//! the same linearizable execution order everywhere without a designated
//! leader.
//!
//! Scope: the commit and execution protocols are complete; explicit failure
//! recovery of another replica's instances is not implemented (the paper's
//! experiments never exercise it).

use paxi_core::command::{ClientRequest, ClientResponse, Command};
use paxi_core::config::ClusterConfig;
use paxi_core::id::{NodeId, RequestId};
use paxi_core::obs::{Metric, TraceStage};
use paxi_core::quorum::{fast_quorum_size, majority};
use paxi_core::store::MultiVersionStore;
use paxi_core::traits::{Context, Replica};
use paxi_storage::Storage;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Reference to an instance: the `idx`-th command led by `leader`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IRef {
    /// The command leader that owns the instance.
    pub leader: NodeId,
    /// Per-leader instance index.
    pub idx: u64,
}

/// Wire messages of EPaxos.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum EpaxosMsg {
    /// Fast-path round: propose `cmd` with the leader's view of its
    /// attributes.
    PreAccept {
        /// Instance being proposed.
        iref: IRef,
        /// The command.
        cmd: Command,
        /// Leader-computed sequence number.
        seq: u64,
        /// Leader-computed dependencies.
        deps: Vec<IRef>,
    },
    /// Acceptor reply, carrying possibly-augmented attributes.
    PreAcceptOk {
        /// Instance.
        iref: IRef,
        /// Acceptor's (possibly larger) sequence number.
        seq: u64,
        /// Acceptor's (possibly larger) dependency set.
        deps: Vec<IRef>,
        /// Whether the acceptor changed the attributes — any change forces
        /// the slow path.
        changed: bool,
    },
    /// Slow-path Paxos accept on the unioned attributes.
    Accept {
        /// Instance.
        iref: IRef,
        /// The command.
        cmd: Command,
        /// Final sequence number.
        seq: u64,
        /// Final dependencies.
        deps: Vec<IRef>,
    },
    /// Slow-path acceptance.
    AcceptOk {
        /// Instance.
        iref: IRef,
    },
    /// Commit notification with final attributes.
    Commit {
        /// Instance.
        iref: IRef,
        /// The command.
        cmd: Command,
        /// Final sequence number.
        seq: u64,
        /// Final dependencies.
        deps: Vec<IRef>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    PreAccepted,
    Accepted,
    Committed,
    Executed,
}

/// Replication stage an [`EpaxosWal`] record witnesses. `Executed` is
/// deliberately absent: execution is volatile (it is a deterministic
/// function of the committed dependency graph) and re-runs after recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WalStatus {
    /// Pre-accepted with (possibly augmented) attributes.
    PreAccepted,
    /// Slow-path accepted attributes.
    Accepted,
    /// Final committed attributes.
    Committed,
}

/// One durable WAL record of EPaxos acceptor state: the full attribute set
/// of one instance at one replication stage. Appended before the message
/// (PreAcceptOk / AcceptOk / Commit) that acknowledges the stage; replaying
/// records in append order converges to the pre-crash instance space.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpaxosWal {
    /// The instance.
    pub iref: IRef,
    /// The command.
    pub cmd: Command,
    /// Sequence number at this stage.
    pub seq: u64,
    /// Dependencies at this stage.
    pub deps: Vec<IRef>,
    /// The stage witnessed.
    pub status: WalStatus,
}

#[derive(Debug)]
struct Instance {
    cmd: Command,
    seq: u64,
    deps: Vec<IRef>,
    status: Status,
    req: Option<RequestId>,
    // Command-leader bookkeeping.
    replies: usize,
    any_changed: bool,
    accept_oks: usize,
}

#[derive(Debug, Default)]
struct KeyInfo {
    /// Latest interfering instance per command leader.
    last: HashMap<NodeId, u64>,
    /// Highest seq among interfering instances.
    max_seq: u64,
}

/// An EPaxos replica.
pub struct EPaxos {
    id: NodeId,
    n: usize,
    fast: usize,
    slow: usize,
    next_idx: u64,
    instances: HashMap<NodeId, BTreeMap<u64, Instance>>,
    key_info: HashMap<u64, KeyInfo>,
    pending_exec: HashSet<IRef>,
    store: MultiVersionStore,
    wal: Option<Box<dyn Storage>>,
}

impl EPaxos {
    /// Creates a replica for node `id` in `cluster`.
    pub fn new(id: NodeId, cluster: ClusterConfig) -> Self {
        let n = cluster.n();
        EPaxos {
            id,
            n,
            fast: fast_quorum_size(n),
            slow: majority(n),
            next_idx: 0,
            instances: HashMap::new(),
            key_info: HashMap::new(),
            pending_exec: HashSet::new(),
            store: MultiVersionStore::new(),
            wal: None,
        }
    }

    /// Fast-quorum size for this cluster (command leader included).
    pub fn fast_quorum(&self) -> usize {
        self.fast
    }

    /// Cluster size.
    pub fn n(&self) -> usize {
        self.n
    }

    fn get(&self, iref: IRef) -> Option<&Instance> {
        self.instances.get(&iref.leader)?.get(&iref.idx)
    }

    /// Appends the current attributes of `iref` to the WAL at `status` and
    /// syncs per policy. Must run before the message acknowledging that
    /// stage leaves this node. A storage failure is crash-stop.
    fn persist(&mut self, iref: IRef, status: WalStatus) {
        if self.wal.is_none() {
            return;
        }
        let Some(inst) = self.get(iref) else { return };
        let rec = EpaxosWal {
            iref,
            cmd: inst.cmd.clone(),
            seq: inst.seq,
            deps: inst.deps.clone(),
            status,
        };
        let bytes = paxi_codec::to_bytes(&rec).expect("epaxos wal record must encode");
        let wal = self.wal.as_mut().unwrap();
        wal.append(&bytes).expect("epaxos replica lost its durable store");
    }

    fn get_mut(&mut self, iref: IRef) -> Option<&mut Instance> {
        self.instances.get_mut(&iref.leader)?.get_mut(&iref.idx)
    }

    /// Computes `(seq, deps)` for `cmd` from local knowledge, excluding
    /// `iref` itself.
    fn attributes(&self, cmd: &Command, iref: IRef) -> (u64, Vec<IRef>) {
        let Some(info) = self.key_info.get(&cmd.key) else {
            return (1, Vec::new());
        };
        let mut deps: Vec<IRef> = info
            .last
            .iter()
            .map(|(&leader, &idx)| IRef { leader, idx })
            .filter(|d| *d != iref)
            .filter(|d| {
                // Reads don't interfere with reads.
                self.get(*d).map(|i| cmd.interferes(&i.cmd)).unwrap_or(true)
            })
            .collect();
        deps.sort_unstable();
        (info.max_seq + 1, deps)
    }

    /// Records `iref` as the latest instance touching its key.
    fn note_instance(&mut self, iref: IRef, key: u64, seq: u64) {
        let info = self.key_info.entry(key).or_default();
        let e = info.last.entry(iref.leader).or_insert(iref.idx);
        if *e <= iref.idx {
            *e = iref.idx;
        }
        info.max_seq = info.max_seq.max(seq);
    }

    fn insert_instance(
        &mut self,
        iref: IRef,
        cmd: Command,
        seq: u64,
        deps: Vec<IRef>,
        status: Status,
        req: Option<RequestId>,
    ) {
        let key = cmd.key;
        let inst = Instance {
            cmd,
            seq,
            deps,
            status,
            req,
            replies: 0,
            any_changed: false,
            accept_oks: 0,
        };
        self.instances.entry(iref.leader).or_default().insert(iref.idx, inst);
        self.note_instance(iref, key, seq);
    }

    fn commit(&mut self, iref: IRef, ctx: &mut dyn Context<EpaxosMsg>) {
        let inst = self.get_mut(iref).expect("commit of unknown instance");
        if matches!(inst.status, Status::Committed | Status::Executed) {
            return;
        }
        inst.status = Status::Committed;
        let (cmd, seq, deps) = (inst.cmd.clone(), inst.seq, inst.deps.clone());
        let req = inst.req;
        self.pending_exec.insert(iref);
        self.persist(iref, WalStatus::Committed);
        ctx.count(Metric::Commits, 1);
        if let Some(id) = req {
            ctx.trace(TraceStage::QuorumAck, id);
        }
        ctx.broadcast(EpaxosMsg::Commit { iref, cmd, seq, deps });
        self.execute_ready(ctx);
    }

    fn record_commit(&mut self, iref: IRef, cmd: Command, seq: u64, deps: Vec<IRef>, ctx: &mut dyn Context<EpaxosMsg>) {
        let newly_committed;
        match self.get_mut(iref) {
            Some(inst) => {
                if inst.status == Status::Executed {
                    return;
                }
                newly_committed = inst.status != Status::Committed;
                inst.cmd = cmd;
                inst.seq = seq;
                inst.deps = deps;
                inst.status = Status::Committed;
            }
            None => {
                self.insert_instance(iref, cmd, seq, deps, Status::Committed, None);
                newly_committed = true;
            }
        }
        if newly_committed {
            ctx.count(Metric::Commits, 1);
        }
        let (key, seq) = {
            let i = self.get(iref).unwrap();
            (i.cmd.key, i.seq)
        };
        self.note_instance(iref, key, seq);
        self.pending_exec.insert(iref);
        self.persist(iref, WalStatus::Committed);
        self.execute_ready(ctx);
    }

    /// Tries to execute every committed-but-unexecuted instance whose
    /// transitive dependencies are all committed, in SCC order.
    fn execute_ready(&mut self, ctx: &mut dyn Context<EpaxosMsg>) {
        let mut progress = true;
        while progress {
            progress = false;
            let roots: Vec<IRef> = self.pending_exec.iter().copied().collect();
            for root in roots {
                if !self.pending_exec.contains(&root) {
                    continue; // executed as part of an earlier SCC pass
                }
                if let Some(order) = self.executable_order(root) {
                    for iref in order {
                        self.execute_one(iref, ctx);
                        progress = true;
                    }
                }
            }
        }
    }

    /// Iterative Tarjan SCC over the committed-unexecuted subgraph reachable
    /// from `root`. Returns instances in execution order, or `None` if any
    /// reachable dependency is not yet committed.
    fn executable_order(&self, root: IRef) -> Option<Vec<IRef>> {
        #[derive(Default)]
        struct TState {
            index: HashMap<IRef, usize>,
            low: HashMap<IRef, usize>,
            on_stack: HashSet<IRef>,
            stack: Vec<IRef>,
            next_index: usize,
            order: Vec<Vec<IRef>>,
        }
        let mut st = TState::default();
        // Explicit DFS stack: (node, dep cursor).
        let mut dfs: Vec<(IRef, usize)> = Vec::new();

        let committed_unexecuted = |s: &Self, v: IRef| -> Option<bool> {
            // None = uncommitted (abort), Some(true) = traverse, Some(false) = skip (executed)
            match s.get(v).map(|i| i.status) {
                Some(Status::Executed) => Some(false),
                Some(Status::Committed) => Some(true),
                _ => None,
            }
        };

        match committed_unexecuted(self, root)? {
            false => return Some(Vec::new()),
            true => {}
        }
        st.index.insert(root, 0);
        st.low.insert(root, 0);
        st.next_index = 1;
        st.stack.push(root);
        st.on_stack.insert(root);
        dfs.push((root, 0));

        while let Some(&mut (v, ref mut cursor)) = dfs.last_mut() {
            let deps = &self.get(v).unwrap().deps;
            if *cursor < deps.len() {
                let w = deps[*cursor];
                *cursor += 1;
                match committed_unexecuted(self, w)? {
                    false => continue, // executed dep: satisfied
                    true => {}
                }
                if let Some(&wi) = st.index.get(&w) {
                    if st.on_stack.contains(&w) {
                        let lv = st.low[&v].min(wi);
                        st.low.insert(v, lv);
                    }
                } else {
                    let i = st.next_index;
                    st.next_index += 1;
                    st.index.insert(w, i);
                    st.low.insert(w, i);
                    st.stack.push(w);
                    st.on_stack.insert(w);
                    dfs.push((w, 0));
                }
            } else {
                // Finished v: pop and propagate lowlink.
                dfs.pop();
                if let Some(&(p, _)) = dfs.last() {
                    let lp = st.low[&p].min(st.low[&v]);
                    st.low.insert(p, lp);
                }
                if st.low[&v] == st.index[&v] {
                    // v is an SCC root: pop the component.
                    let mut comp = Vec::new();
                    while let Some(w) = st.stack.pop() {
                        st.on_stack.remove(&w);
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    // Deterministic order inside the SCC: by (seq, leader, idx).
                    comp.sort_by_key(|r| {
                        let i = self.get(*r).unwrap();
                        (i.seq, r.leader, r.idx)
                    });
                    st.order.push(comp);
                }
            }
        }
        // Tarjan emits SCCs dependencies-first along dep edges.
        Some(st.order.into_iter().flatten().collect())
    }

    fn execute_one(&mut self, iref: IRef, ctx: &mut dyn Context<EpaxosMsg>) {
        let mine = iref.leader == self.id;
        let inst = self.get_mut(iref).expect("executing unknown instance");
        if inst.status == Status::Executed {
            return;
        }
        inst.status = Status::Executed;
        let cmd = inst.cmd.clone();
        let req = inst.req;
        let value = self.store.execute(&cmd);
        ctx.count(Metric::Executes, 1);
        self.pending_exec.remove(&iref);
        if mine {
            if let Some(id) = req {
                ctx.trace(TraceStage::Execute, id);
                ctx.reply(ClientResponse::ok(id, value));
            }
        }
    }
}

impl Replica for EPaxos {
    type Msg = EpaxosMsg;

    fn on_message(&mut self, from: NodeId, msg: EpaxosMsg, ctx: &mut dyn Context<EpaxosMsg>) {
        match msg {
            EpaxosMsg::PreAccept { iref, cmd, seq, deps } => {
                // Union the leader's attributes with local knowledge.
                let (local_seq, local_deps) = self.attributes(&cmd, iref);
                let new_seq = seq.max(local_seq);
                let mut new_deps = deps.clone();
                for d in local_deps {
                    if !new_deps.contains(&d) {
                        new_deps.push(d);
                    }
                }
                new_deps.sort_unstable();
                let changed = new_seq != seq || new_deps != deps;
                self.insert_instance(iref, cmd, new_seq, new_deps.clone(), Status::PreAccepted, None);
                self.persist(iref, WalStatus::PreAccepted);
                ctx.send(from, EpaxosMsg::PreAcceptOk { iref, seq: new_seq, deps: new_deps, changed });
            }
            EpaxosMsg::PreAcceptOk { iref, seq, deps, changed } => {
                let fast = self.fast;
                let my_id = self.id;
                let Some(inst) = self.get_mut(iref) else { return };
                if inst.status != Status::PreAccepted || iref.leader != my_id {
                    return; // stale reply (already decided)
                }
                inst.replies += 1;
                inst.any_changed |= changed;
                inst.seq = inst.seq.max(seq);
                for d in deps {
                    if !inst.deps.contains(&d) {
                        inst.deps.push(d);
                    }
                }
                inst.deps.sort_unstable();
                // Leader's self-vote counts toward the fast quorum.
                if inst.replies + 1 >= fast {
                    if inst.any_changed {
                        // Slow path: Paxos accept on the union.
                        inst.status = Status::Accepted;
                        inst.accept_oks = 0;
                        let (cmd, seq, deps) = (inst.cmd.clone(), inst.seq, inst.deps.clone());
                        // The leader's own accept counts toward the slow
                        // quorum, so it must be durable before peers vote.
                        self.persist(iref, WalStatus::Accepted);
                        ctx.broadcast(EpaxosMsg::Accept { iref, cmd, seq, deps });
                    } else {
                        self.commit(iref, ctx);
                    }
                }
            }
            EpaxosMsg::Accept { iref, cmd, seq, deps } => {
                let advanced = match self.get_mut(iref) {
                    Some(inst) if inst.status != Status::Executed && inst.status != Status::Committed => {
                        inst.cmd = cmd;
                        inst.seq = seq;
                        inst.deps = deps;
                        inst.status = Status::Accepted;
                        true
                    }
                    Some(_) => false,
                    None => {
                        self.insert_instance(iref, cmd, seq, deps, Status::Accepted, None);
                        true
                    }
                };
                let (key, seq) = {
                    let i = self.get(iref).unwrap();
                    (i.cmd.key, i.seq)
                };
                self.note_instance(iref, key, seq);
                // Already-committed instances still get an AcceptOk but must
                // not log a status downgrade.
                if advanced {
                    self.persist(iref, WalStatus::Accepted);
                }
                ctx.send(from, EpaxosMsg::AcceptOk { iref });
            }
            EpaxosMsg::AcceptOk { iref } => {
                let slow = self.slow;
                let my_id = self.id;
                let Some(inst) = self.get_mut(iref) else { return };
                if inst.status != Status::Accepted || iref.leader != my_id {
                    return;
                }
                inst.accept_oks += 1;
                if inst.accept_oks + 1 >= slow {
                    self.commit(iref, ctx);
                }
            }
            EpaxosMsg::Commit { iref, cmd, seq, deps } => {
                self.record_commit(iref, cmd, seq, deps, ctx);
            }
        }
    }

    fn on_request(&mut self, req: ClientRequest, ctx: &mut dyn Context<EpaxosMsg>) {
        // Every replica is an opportunistic leader for its own clients.
        let iref = IRef { leader: self.id, idx: self.next_idx };
        self.next_idx += 1;
        ctx.trace(TraceStage::Propose, req.id);
        let (seq, deps) = self.attributes(&req.cmd, iref);
        self.insert_instance(iref, req.cmd.clone(), seq, deps.clone(), Status::PreAccepted, Some(req.id));
        // The leader's own pre-accept is a fast-quorum vote: make it durable
        // before soliciting the others.
        self.persist(iref, WalStatus::PreAccepted);
        if self.fast <= 1 {
            self.commit(iref, ctx);
        } else {
            ctx.broadcast(EpaxosMsg::PreAccept { iref, cmd: req.cmd, seq, deps });
        }
    }

    fn protocol_name(&self) -> &'static str {
        "epaxos"
    }

    /// Stable wire-type names for the per-type observability breakdown.
    fn msg_kind(msg: &EpaxosMsg) -> &'static str {
        match msg {
            EpaxosMsg::PreAccept { .. } => "pre_accept",
            EpaxosMsg::PreAcceptOk { .. } => "pre_accept_ok",
            EpaxosMsg::Accept { .. } => "accept",
            EpaxosMsg::AcceptOk { .. } => "accept_ok",
            EpaxosMsg::Commit { .. } => "commit",
        }
    }

    /// Recovers acceptor state from `storage` and keeps the handle for
    /// future appends. Records replay in append order, so the last record
    /// for an instance carries its final pre-crash attributes — except that
    /// `Committed` is sticky (a stale `Accepted` from a concurrent handler
    /// never downgrades it). `req` is not persisted: a recovered replica
    /// never re-sends client replies, the retry path covers those.
    fn attach_storage(&mut self, mut storage: Box<dyn Storage>) {
        let rec = storage.recover().expect("epaxos storage must recover");
        for bytes in &rec.records {
            let w: EpaxosWal = paxi_codec::from_bytes(bytes).expect("epaxos wal record must decode");
            let status = match w.status {
                WalStatus::PreAccepted => Status::PreAccepted,
                WalStatus::Accepted => Status::Accepted,
                WalStatus::Committed => Status::Committed,
            };
            match self.get_mut(w.iref) {
                Some(inst) => {
                    if inst.status != Status::Committed || status == Status::Committed {
                        inst.cmd = w.cmd;
                        inst.seq = w.seq;
                        inst.deps = w.deps;
                        inst.status = status;
                    }
                }
                None => self.insert_instance(w.iref, w.cmd, w.seq, w.deps, status, None),
            }
            let (key, seq) = {
                let i = self.get(w.iref).unwrap();
                (i.cmd.key, i.seq)
            };
            self.note_instance(w.iref, key, seq);
            if status == Status::Committed {
                self.pending_exec.insert(w.iref);
            }
            if w.iref.leader == self.id {
                self.next_idx = self.next_idx.max(w.iref.idx + 1);
            }
        }
        self.wal = Some(storage);
    }

    fn sync_storage(&mut self) {
        if let Some(wal) = &mut self.wal {
            wal.tick().expect("epaxos replica lost its durable store");
        }
    }

    fn on_recover(&mut self, ctx: &mut dyn Context<EpaxosMsg>) {
        // The state machine is volatile; re-run the recovered commit graph.
        // Execution order is a deterministic function of that graph, so the
        // rebuilt store converges with what survivors hold.
        self.execute_ready(ctx);
    }

    fn store(&self) -> Option<&MultiVersionStore> {
        Some(&self.store)
    }

    /// EPaxos is leaderless: every replica serves requests as a command
    /// leader, so the best place to send a request is wherever it already
    /// is. Returning our own id makes the sharded runtime treat this node
    /// as always-right (it never redirects).
    fn leader_hint(&self) -> Option<NodeId> {
        Some(self.id)
    }
}

/// Convenience factory for a homogeneous EPaxos cluster.
pub fn epaxos_cluster(cluster: ClusterConfig) -> impl Fn(NodeId) -> EPaxos {
    move |id| EPaxos::new(id, cluster.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxi_core::dist::Rng64;
    use paxi_core::id::ClientId;
    use paxi_core::time::Nanos;
    use paxi_sim::{ClientSetup, SimConfig, Simulator, Topology};

    fn lan_sim(n: u8, clients: usize, conflict_key: Option<f64>) -> Simulator<EPaxos> {
        let cluster = ClusterConfig::lan(n);
        let setups = ClientSetup::closed_per_zone(&cluster, clients);
        // conflict_key = Some(p): with probability p write hot key 0, else
        // write a per-client private key (never conflicts).
        let workload = move |client: ClientId, _z: u8, seq: u64, _now: paxi_core::Nanos, rng: &mut Rng64| {
            let hot = conflict_key.map(|p| rng.chance(p)).unwrap_or(false);
            let key = if hot { 0 } else { 1000 + client.0 as u64 };
            paxi_core::Command::put(key, paxi_sim::client::unique_value(client, seq))
        };
        Simulator::new(
            SimConfig { record_ops: true, ..SimConfig::default() },
            cluster.clone(),
            epaxos_cluster(cluster),
            workload,
            setups,
        )
    }

    /// Hand-driven context for unit-testing handler logic.
    struct Probe {
        id: NodeId,
        sent: Vec<(Option<NodeId>, EpaxosMsg)>, // None = broadcast
        replies: Vec<paxi_core::ClientResponse>,
    }

    impl paxi_core::traits::Context<EpaxosMsg> for Probe {
        fn id(&self) -> NodeId {
            self.id
        }
        fn now(&self) -> paxi_core::Nanos {
            paxi_core::Nanos::ZERO
        }
        fn send(&mut self, to: NodeId, msg: EpaxosMsg) {
            self.sent.push((Some(to), msg));
        }
        fn broadcast(&mut self, msg: EpaxosMsg) {
            self.sent.push((None, msg));
        }
        fn multicast(&mut self, to: &[NodeId], msg: EpaxosMsg) {
            for &t in to {
                self.sent.push((Some(t), msg.clone()));
            }
        }
        fn set_timer(&mut self, _after: paxi_core::Nanos, _kind: u64) -> u64 {
            0
        }
        fn reply(&mut self, resp: paxi_core::ClientResponse) {
            self.replies.push(resp);
        }
        fn forward(&mut self, _to: NodeId, _req: paxi_core::ClientRequest) {}
        fn rand_u64(&mut self) -> u64 {
            1
        }
    }

    fn probe(id: NodeId) -> Probe {
        Probe { id, sent: Vec::new(), replies: Vec::new() }
    }

    fn req(client: u32, seq: u64, cmd: paxi_core::Command) -> paxi_core::ClientRequest {
        paxi_core::ClientRequest {
            id: paxi_core::RequestId::new(ClientId(client), seq),
            cmd,
        }
    }

    #[test]
    fn first_command_gets_empty_deps_and_seq_one() {
        let mut e = EPaxos::new(NodeId::new(0, 0), ClusterConfig::lan(5));
        let mut ctx = probe(NodeId::new(0, 0));
        e.on_request(req(1, 0, paxi_core::Command::put(7, vec![1])), &mut ctx);
        match &ctx.sent[0] {
            (None, EpaxosMsg::PreAccept { iref, seq, deps, .. }) => {
                assert_eq!(iref.leader, NodeId::new(0, 0));
                assert_eq!(*seq, 1);
                assert!(deps.is_empty());
            }
            other => panic!("expected PreAccept broadcast, got {other:?}"),
        }
    }

    #[test]
    fn interfering_commands_pick_up_dependencies() {
        let mut e = EPaxos::new(NodeId::new(0, 0), ClusterConfig::lan(5));
        let mut ctx = probe(NodeId::new(0, 0));
        e.on_request(req(1, 0, paxi_core::Command::put(7, vec![1])), &mut ctx);
        e.on_request(req(1, 1, paxi_core::Command::put(7, vec![2])), &mut ctx);
        match &ctx.sent[1] {
            (None, EpaxosMsg::PreAccept { seq, deps, .. }) => {
                assert_eq!(*seq, 2, "seq grows past interfering commands");
                assert_eq!(deps.len(), 1);
                assert_eq!(deps[0], IRef { leader: NodeId::new(0, 0), idx: 0 });
            }
            other => panic!("expected PreAccept, got {other:?}"),
        }
        // Reads of a different key stay independent.
        e.on_request(req(1, 2, paxi_core::Command::get(8)), &mut ctx);
        match &ctx.sent[2] {
            (None, EpaxosMsg::PreAccept { deps, .. }) => assert!(deps.is_empty()),
            other => panic!("expected PreAccept, got {other:?}"),
        }
    }

    #[test]
    fn acceptor_augments_attributes_and_flags_change() {
        // An acceptor that already knows an interfering instance must extend
        // deps and report `changed = true`, forcing the slow path.
        let mut acceptor = EPaxos::new(NodeId::new(0, 1), ClusterConfig::lan(5));
        let mut ctx = probe(NodeId::new(0, 1));
        // Instance A from leader 0.2 on key 7, committed knowledge.
        acceptor.on_message(
            NodeId::new(0, 2),
            EpaxosMsg::Commit {
                iref: IRef { leader: NodeId::new(0, 2), idx: 0 },
                cmd: paxi_core::Command::put(7, vec![9]),
                seq: 1,
                deps: vec![],
            },
            &mut ctx,
        );
        // Now a PreAccept for an interfering command that doesn't know A.
        acceptor.on_message(
            NodeId::new(0, 0),
            EpaxosMsg::PreAccept {
                iref: IRef { leader: NodeId::new(0, 0), idx: 0 },
                cmd: paxi_core::Command::put(7, vec![1]),
                seq: 1,
                deps: vec![],
            },
            &mut ctx,
        );
        let reply = ctx
            .sent
            .iter()
            .find_map(|(to, m)| match m {
                EpaxosMsg::PreAcceptOk { seq, deps, changed, .. } => {
                    Some((*to, *seq, deps.clone(), *changed))
                }
                _ => None,
            })
            .expect("acceptor must reply");
        let (to, seq, deps, changed) = reply;
        assert_eq!(to, Some(NodeId::new(0, 0)));
        assert!(changed, "conflict must be reported");
        assert_eq!(seq, 2, "seq bumped past the known instance");
        assert!(deps.contains(&IRef { leader: NodeId::new(0, 2), idx: 0 }));
    }

    #[test]
    fn committed_chain_executes_in_dependency_order() {
        // Feed commits out of order: B depends on A; B commits first. B must
        // not execute until A commits, then both execute A-then-B.
        let mut e = EPaxos::new(NodeId::new(0, 1), ClusterConfig::lan(5));
        let mut ctx = probe(NodeId::new(0, 1));
        let a = IRef { leader: NodeId::new(0, 0), idx: 0 };
        let b = IRef { leader: NodeId::new(0, 2), idx: 0 };
        e.on_message(
            NodeId::new(0, 2),
            EpaxosMsg::Commit {
                iref: b,
                cmd: paxi_core::Command::put(7, vec![2]),
                seq: 2,
                deps: vec![a],
            },
            &mut ctx,
        );
        assert!(e.store().unwrap().history(7).is_empty(), "B must wait for A");
        e.on_message(
            NodeId::new(0, 0),
            EpaxosMsg::Commit {
                iref: a,
                cmd: paxi_core::Command::put(7, vec![1]),
                seq: 1,
                deps: vec![],
            },
            &mut ctx,
        );
        let hist = e.store().unwrap().history(7);
        assert_eq!(hist.len(), 2);
        assert_eq!(hist[0].value, Some(vec![1]), "A executes first");
        assert_eq!(hist[1].value, Some(vec![2]));
    }

    #[test]
    fn dependency_cycles_execute_by_seq_everywhere() {
        // A and B mutually depend (committed concurrently): the SCC rule
        // orders them by seq, identically at every replica.
        let mk = || EPaxos::new(NodeId::new(0, 1), ClusterConfig::lan(5));
        let a = IRef { leader: NodeId::new(0, 0), idx: 0 };
        let b = IRef { leader: NodeId::new(0, 2), idx: 0 };
        let commit_a = EpaxosMsg::Commit {
            iref: a,
            cmd: paxi_core::Command::put(7, vec![1]),
            seq: 2,
            deps: vec![b],
        };
        let commit_b = EpaxosMsg::Commit {
            iref: b,
            cmd: paxi_core::Command::put(7, vec![2]),
            seq: 1,
            deps: vec![a],
        };
        // Delivery order 1: A then B.
        let mut e1 = mk();
        let mut ctx = probe(NodeId::new(0, 1));
        e1.on_message(NodeId::new(0, 0), commit_a.clone(), &mut ctx);
        e1.on_message(NodeId::new(0, 2), commit_b.clone(), &mut ctx);
        // Delivery order 2: B then A.
        let mut e2 = mk();
        e2.on_message(NodeId::new(0, 2), commit_b, &mut ctx);
        e2.on_message(NodeId::new(0, 0), commit_a, &mut ctx);
        let h1: Vec<_> = e1.store().unwrap().history(7).to_vec();
        let h2: Vec<_> = e2.store().unwrap().history(7).to_vec();
        assert_eq!(h1, h2, "SCC execution order must not depend on delivery order");
        assert_eq!(h1[0].value, Some(vec![2]), "lower seq (B) first");
    }

    #[test]
    fn non_conflicting_commands_commit_fast() {
        let mut sim = lan_sim(5, 3, Some(0.0));
        let report = sim.run();
        assert!(report.completed > 1000, "completed {}", report.completed);
        assert_eq!(report.errors, 0);
        // Fast path: ~2 RTTs total (client->replica + PreAccept round).
        let mean = report.latency.mean.as_millis_f64();
        assert!((0.5..2.0).contains(&mean), "mean {mean} ms");
    }

    #[test]
    fn full_conflict_still_completes_and_linearizes() {
        let mut sim = lan_sim(5, 3, Some(1.0));
        let report = sim.run();
        assert!(report.completed > 500, "completed {}", report.completed);
        // All replicas execute the hot key in the same order.
        let stores: Vec<_> = sim.replicas().iter().map(|r| r.store().unwrap()).collect();
        let a = stores[0].history(0);
        assert!(!a.is_empty());
        for s in &stores[1..] {
            let b = s.history(0);
            let common = a.len().min(b.len());
            assert!(common > 0);
            assert_eq!(&a[..common], &b[..common], "hot-key execution order diverged");
        }
    }

    #[test]
    fn conflicts_increase_latency() {
        let mut low = lan_sim(5, 4, Some(0.0));
        let mut high = lan_sim(5, 4, Some(1.0));
        let l = low.run().latency.mean;
        let h = high.run().latency.mean;
        assert!(h > l, "conflict latency {h} should exceed no-conflict {l}");
    }

    #[test]
    fn all_nodes_share_load() {
        // No single-leader bottleneck: with clients attached round-robin the
        // message load spreads across replicas.
        let mut sim = lan_sim(5, 5, Some(0.0));
        let report = sim.run();
        let handled: Vec<u64> = report.node_stats.iter().map(|n| n.handled).collect();
        let max = *handled.iter().max().unwrap() as f64;
        let min = *handled.iter().min().unwrap() as f64;
        assert!(max / min < 1.5, "unbalanced load: {handled:?}");
    }

    #[test]
    fn fast_quorum_size_exposed() {
        let e = EPaxos::new(NodeId::new(0, 0), ClusterConfig::lan(5));
        assert_eq!(e.fast_quorum(), 4);
    }

    #[test]
    fn wan_conflict_latency_matches_epaxos_story() {
        // In WAN, conflicts force a second wide-area round.
        let cluster = ClusterConfig::wan(5, 1, 0, 0);
        let mk = |p: f64| {
            let setups = ClientSetup::closed_per_zone(&cluster, 2);
            let workload = move |client: ClientId, _z: u8, seq: u64, _now: paxi_core::Nanos, rng: &mut Rng64| {
                let key = if rng.chance(p) { 0 } else { 1000 + client.0 as u64 };
                paxi_core::Command::put(key, paxi_sim::client::unique_value(client, seq))
            };
            Simulator::new(
                SimConfig {
                    topology: Topology::aws5(),
                    warmup: Nanos::secs(1),
                    measure: Nanos::secs(4),
                    ..SimConfig::default()
                },
                cluster.clone(),
                epaxos_cluster(cluster.clone()),
                workload,
                setups,
            )
        };
        let no_conflict = mk(0.0).run().latency.mean.as_millis_f64();
        let full_conflict = mk(1.0).run().latency.mean.as_millis_f64();
        assert!(
            full_conflict > no_conflict * 1.2,
            "WAN conflicts should add a round: {no_conflict} vs {full_conflict}"
        );
    }

    fn durable_acceptor(hub: &paxi_storage::MemHub<u32>) -> EPaxos {
        let mut e = EPaxos::new(NodeId::new(0, 1), ClusterConfig::lan(5));
        e.attach_storage(Box::new(hub.open(1)));
        e
    }

    #[test]
    fn preaccepted_attributes_survive_amnesia() {
        let hub = paxi_storage::MemHub::new(paxi_storage::FsyncPolicy::Always);
        let mut e = durable_acceptor(&hub);
        let mut ctx = probe(NodeId::new(0, 1));
        let known = IRef { leader: NodeId::new(0, 2), idx: 0 };
        let probed = IRef { leader: NodeId::new(0, 0), idx: 0 };
        e.on_message(
            NodeId::new(0, 2),
            EpaxosMsg::Commit {
                iref: known,
                cmd: paxi_core::Command::put(7, vec![9]),
                seq: 1,
                deps: vec![],
            },
            &mut ctx,
        );
        e.on_message(
            NodeId::new(0, 0),
            EpaxosMsg::PreAccept {
                iref: probed,
                cmd: paxi_core::Command::put(7, vec![1]),
                seq: 1,
                deps: vec![],
            },
            &mut ctx,
        );
        drop(e);
        hub.crash(&1);
        let e2 = durable_acceptor(&hub);
        // The acceptor promised (seq=2, deps=[known]) in its PreAcceptOk;
        // after amnesia it must still know those attributes, or the leader's
        // fast-path commit could order against a forgotten conflict.
        let inst = e2.get(probed).expect("pre-accepted instance survives");
        assert_eq!(inst.seq, 2);
        assert_eq!(inst.deps, vec![known]);
        assert_eq!(inst.status, Status::PreAccepted);
        // And the committed instance it conflicted with is back too.
        assert_eq!(e2.get(known).map(|i| i.status), Some(Status::Committed));
    }

    #[test]
    fn recovery_replays_commits_and_reexecutes_the_graph() {
        let hub = paxi_storage::MemHub::new(paxi_storage::FsyncPolicy::Always);
        let mut e = durable_acceptor(&hub);
        let mut ctx = probe(NodeId::new(0, 1));
        let a = IRef { leader: NodeId::new(0, 0), idx: 0 };
        let b = IRef { leader: NodeId::new(0, 2), idx: 0 };
        e.on_message(
            NodeId::new(0, 0),
            EpaxosMsg::Commit { iref: a, cmd: paxi_core::Command::put(7, vec![1]), seq: 1, deps: vec![] },
            &mut ctx,
        );
        e.on_message(
            NodeId::new(0, 2),
            EpaxosMsg::Commit { iref: b, cmd: paxi_core::Command::put(7, vec![2]), seq: 2, deps: vec![a] },
            &mut ctx,
        );
        let before: Vec<_> = e.store().unwrap().history(7).to_vec();
        assert_eq!(before.len(), 2);
        drop(e);
        hub.crash(&1);
        let mut e2 = durable_acceptor(&hub);
        assert!(
            e2.store().unwrap().history(7).is_empty(),
            "the state machine is volatile until on_recover"
        );
        let mut ctx2 = probe(NodeId::new(0, 1));
        e2.on_recover(&mut ctx2);
        assert_eq!(e2.store().unwrap().history(7), before, "re-execution converges");
        assert!(ctx2.replies.is_empty(), "no client replies are re-sent");
    }

    #[test]
    fn own_instance_numbering_resumes_past_persisted_instances() {
        let hub = paxi_storage::MemHub::new(paxi_storage::FsyncPolicy::Always);
        let mut e = EPaxos::new(NodeId::new(0, 0), ClusterConfig::lan(5));
        e.attach_storage(Box::new(hub.open(0)));
        let mut ctx = probe(NodeId::new(0, 0));
        e.on_request(req(1, 0, paxi_core::Command::put(7, vec![1])), &mut ctx);
        e.on_request(req(1, 1, paxi_core::Command::put(8, vec![2])), &mut ctx);
        drop(e);
        hub.crash(&0);
        let mut e2 = EPaxos::new(NodeId::new(0, 0), ClusterConfig::lan(5));
        e2.attach_storage(Box::new(hub.open(0)));
        // Reusing instance slots 0 or 1 would let the recovered leader
        // overwrite its own in-flight proposals.
        e2.on_request(req(1, 2, paxi_core::Command::put(9, vec![3])), &mut ctx);
        match ctx.sent.last() {
            Some((None, EpaxosMsg::PreAccept { iref, .. })) => assert_eq!(iref.idx, 2),
            other => panic!("expected PreAccept, got {other:?}"),
        }
    }
}
