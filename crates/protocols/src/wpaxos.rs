//! WPaxos: multi-leader WAN Paxos with flexible grid quorums.
//!
//! WPaxos shards leadership per object: every (zone-designated) leader owns a
//! set of keys and runs phase-2 for them independently. Ownership moves by
//! running phase-1 *for that key* over a wide q1 quorum — object migration is
//! plain Paxos, so no external master is needed (contrast with Vertical
//! Paxos and WanKeeper). Quorums come from the flexible grid
//! ([`paxi_core::quorum::FlexibleGridQuorum`]): with zone-failure tolerance
//! `fz = 0`, a phase-2 quorum fits inside the leader's own zone, giving
//! local-area commit latency for local keys; `fz ≥ 1` pays one extra zone per
//! commit but survives region outages — exactly the WPaxos `fz=0`/`fz=1`
//! trade the paper's Figure 11 measures.
//!
//! Locality adaptation uses the paper's simple three-consecutive-access
//! policy, evaluated at the key's **owner** (the only node that sees every
//! access): requests for a remotely-owned key are submitted to its owner,
//! which tracks the origin zones of the last [`WPaxosConfig::window`]
//! accesses; when they are unanimously from one remote zone, the owner sends
//! that zone's leader a handover hint and the new zone steals the key with a
//! phase-1. Objects contested from several zones keep being served by their
//! current owner — interfering commands are forwarded, not ping-ponged
//! (paper §5.3, observation 1).

use paxi_core::ballot::Ballot;
use paxi_core::command::{ClientRequest, ClientResponse, Command, Key};
use paxi_core::config::ClusterConfig;
use paxi_core::id::{NodeId, RequestId};
use paxi_core::quorum::{FlexibleGridQuorum, GridPhase, QuorumTracker};
use paxi_core::store::MultiVersionStore;
use paxi_core::time::Nanos;
use paxi_core::traits::{Context, Replica};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};

const TIMER_COMMIT_FLUSH: u64 = 1;

/// Tuning knobs for [`WPaxos`].
#[derive(Debug, Clone)]
pub struct WPaxosConfig {
    /// Node-failure tolerance per zone (grid `f`).
    pub f: u8,
    /// Zone-failure tolerance (grid `fz`). `0` = region-local commits.
    pub fz: u8,
    /// Length of the per-key access window the owner's adaptation policy
    /// looks at (the paper's three-consecutive-access policy).
    pub window: usize,
    /// If set, every key is initially owned by this node (the paper's
    /// locality experiment starts with all objects in Ohio). When unset,
    /// keys are hash-partitioned across the zone leaders (`key % zones`),
    /// the balanced default a fresh deployment starts from.
    pub initial_owner: Option<NodeId>,
    /// Restrict leadership to one node per zone (node `z.0`), matching the
    /// paper's WPaxos deployment.
    pub single_leader_per_zone: bool,
    /// Commit-flush (piggybacked phase-3) period.
    pub flush_interval: Nanos,
}

impl Default for WPaxosConfig {
    fn default() -> Self {
        WPaxosConfig {
            f: 1,
            fz: 0,
            window: 3,
            initial_owner: None,
            single_leader_per_zone: true,
            flush_interval: Nanos::millis(10),
        }
    }
}

impl WPaxosConfig {
    /// Config with the given zone fault-tolerance.
    pub fn with_fz(fz: u8) -> Self {
        WPaxosConfig { fz, ..Default::default() }
    }
}

/// Wire messages of WPaxos. All per-key.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum WPaxosMsg {
    /// Phase-1a for one key: ownership acquisition over a q1 quorum.
    P1a {
        /// Key being stolen.
        key: Key,
        /// Thief's ballot for the key.
        ballot: Ballot,
        /// The thief's commit index for the key: acceptors send their log
        /// from here, *including* entries they already know are committed —
        /// the thief may be behind the commit flush, and skipping those
        /// slots would leave a permanent gap in its log.
        commit_upto: u64,
    },
    /// Phase-1b promise with the acceptor's uncommitted tail for the key.
    P1b {
        /// Key.
        key: Key,
        /// Promised ballot.
        ballot: Ballot,
        /// `(slot, ballot, cmd, req)` above the acceptor's commit point.
        tail: Vec<(u64, Ballot, Command, Option<RequestId>)>,
    },
    /// Rejection carrying the higher ballot the sender promised.
    Nack {
        /// Key.
        key: Key,
        /// The higher ballot.
        ballot: Ballot,
    },
    /// Phase-2a for one slot of one key's log.
    P2a {
        /// Key.
        key: Key,
        /// Owner's ballot.
        ballot: Ballot,
        /// Per-key slot.
        slot: u64,
        /// Proposed command.
        cmd: Command,
        /// Client request to answer once executed.
        req: Option<RequestId>,
        /// Slots `< commit_upto` of this key are committed (piggybacked
        /// phase-3).
        commit_upto: u64,
    },
    /// Phase-2b acceptance.
    P2b {
        /// Key.
        key: Key,
        /// Accepted ballot.
        ballot: Ballot,
        /// Accepted slot.
        slot: u64,
    },
    /// Periodic batched commit flush: `(key, commit_upto)` pairs.
    CommitBatch {
        /// Commit indexes per key.
        items: Vec<(Key, u64)>,
    },
    /// A request for a remotely-owned key, submitted to its owner with the
    /// originating zone (drives the owner-side adaptation policy).
    Submit {
        /// Zone the request originated in.
        zone: u8,
        /// The client request.
        req: ClientRequest,
        /// Forwarding hops so far; ownership beliefs can be mutually stale
        /// for a moment, and a bounded chase falls back to a phase-1 (which
        /// establishes the truth) instead of looping.
        hops: u8,
    },
    /// Owner-side policy verdict: locality has settled in the recipient's
    /// zone; it should steal the key.
    Handover {
        /// The key to steal.
        key: Key,
    },
}

#[derive(Debug)]
struct KEntry {
    ballot: Ballot,
    cmd: Command,
    req: Option<RequestId>,
    q2: FlexibleGridQuorum,
    committed: bool,
}

struct KeyState {
    ballot: Ballot,
    owner: Option<NodeId>,
    active: bool,
    log: BTreeMap<u64, KEntry>,
    next_slot: u64,
    commit_upto: u64,
    execute_upto: u64,
    /// Slots below this are already marked committed (incremental scan).
    marked_upto: u64,
    pending: Vec<ClientRequest>,
    p1: Option<FlexibleGridQuorum>,
    p1_tails: Vec<Vec<(u64, Ballot, Command, Option<RequestId>)>>,
    /// When the in-flight phase-1 started (liveness watchdog).
    p1_started: Nanos,
    /// Owner-side: origin zones of the most recent accesses.
    recent: std::collections::VecDeque<u8>,
}

impl KeyState {
    fn new(initial_owner: Option<NodeId>) -> Self {
        KeyState {
            ballot: Ballot::default(),
            owner: initial_owner,
            active: false,
            log: BTreeMap::new(),
            next_slot: 0,
            commit_upto: 0,
            execute_upto: 0,
            marked_upto: 0,
            pending: Vec::new(),
            p1: None,
            p1_tails: Vec::new(),
            p1_started: Nanos::ZERO,
            recent: std::collections::VecDeque::new(),
        }
    }
}

/// A WPaxos replica.
pub struct WPaxos {
    id: NodeId,
    cluster: ClusterConfig,
    cfg: WPaxosConfig,
    keys: HashMap<Key, KeyState>,
    dirty: HashSet<Key>,
    /// Keys with an in-flight phase-1, watched for liveness.
    p1_inflight: HashSet<Key>,
    store: MultiVersionStore,
}

impl WPaxos {
    /// Creates a replica for node `id` in `cluster`.
    pub fn new(id: NodeId, cluster: ClusterConfig, cfg: WPaxosConfig) -> Self {
        assert!(cfg.f < cluster.per_zone && cfg.fz < cluster.zones);
        WPaxos {
            id,
            cluster,
            cfg,
            keys: HashMap::new(),
            dirty: HashSet::new(),
            p1_inflight: HashSet::new(),
            store: MultiVersionStore::new(),
        }
    }

    /// Whether this node may lead (steal and own keys).
    pub fn leader_capable(&self) -> bool {
        !self.cfg.single_leader_per_zone || self.id.node == 0
    }

    /// Number of keys this node currently owns (phase-1 complete).
    pub fn owned_keys(&self) -> usize {
        self.keys.values().filter(|k| k.active).count()
    }

    /// Diagnostic: per-key stuck detail — `(key, active, ballot, next_slot,
    /// commit_upto, execute_upto, first_uncommitted_acks)`.
    pub fn stuck_detail(&self) -> Vec<(Key, bool, String, u64, u64, u64, usize)> {
        self.keys
            .iter()
            .filter(|(_, ks)| {
                (ks.active && ks.commit_upto < ks.next_slot) || ks.execute_upto < ks.commit_upto
            })
            .map(|(k, ks)| {
                let acks = ks
                    .log
                    .get(&ks.commit_upto)
                    .map(|e| paxi_core::quorum::QuorumTracker::count(&e.q2))
                    .unwrap_or(usize::MAX);
                (*k, ks.active, ks.ballot.to_string(), ks.next_slot, ks.commit_upto, ks.execute_upto, acks)
            })
            .collect()
    }

    /// Diagnostic: `(keys_with_buffered_requests, buffered_total,
    /// phase1_in_flight, keys_with_commit_lag)` for wedge hunting.
    pub fn debug_state(&self) -> (usize, usize, usize, usize) {
        let mut d = (0, 0, 0, 0);
        for ks in self.keys.values() {
            if !ks.pending.is_empty() {
                d.0 += 1;
                d.1 += ks.pending.len();
            }
            if ks.p1.is_some() {
                d.2 += 1;
            }
            if ks.active && ks.commit_upto < ks.next_slot {
                d.3 += 1;
            }
        }
        d
    }

    fn q1(&self) -> FlexibleGridQuorum {
        FlexibleGridQuorum::new(self.cluster.zones, self.cluster.per_zone, self.cfg.f, self.cfg.fz, GridPhase::One)
    }

    fn q2(&self) -> FlexibleGridQuorum {
        FlexibleGridQuorum::new(self.cluster.zones, self.cluster.per_zone, self.cfg.f, self.cfg.fz, GridPhase::Two)
    }

    fn key_state(&mut self, key: Key) -> &mut KeyState {
        let init = self
            .cfg
            .initial_owner
            .unwrap_or_else(|| NodeId::new((key % self.cluster.zones as u64) as u8, 0));
        self.keys.entry(key).or_insert_with(|| KeyState::new(Some(init)))
    }

    fn start_phase1(&mut self, key: Key, ctx: &mut dyn Context<WPaxosMsg>) {
        let me = self.id;
        let now = ctx.now();
        let mut q1 = self.q1();
        q1.ack(me);
        self.p1_inflight.insert(key);
        let ks = self.key_state(key);
        ks.ballot = ks.ballot.next(me);
        ks.active = false;
        ks.p1_started = now;
        let ballot = ks.ballot;
        let tail: Vec<_> = ks
            .log
            .range(ks.commit_upto..)
            .map(|(s, e)| (*s, e.ballot, e.cmd.clone(), e.req))
            .collect();
        #[cfg(feature = "wp-debug")]
        eprintln!("P1-START {} key={key} ballot={}", me, ks.ballot);
        let commit_upto = ks.commit_upto;
        ks.p1_tails = vec![tail];
        if q1.satisfied() {
            ks.p1 = Some(q1);
            self.become_owner(key, ctx);
            return;
        }
        ks.p1 = Some(q1);
        ctx.broadcast(WPaxosMsg::P1a { key, ballot, commit_upto });
    }

    fn become_owner(&mut self, key: Key, ctx: &mut dyn Context<WPaxosMsg>) {
        let me = self.id;
        self.p1_inflight.remove(&key);
        let ks = self.keys.get_mut(&key).unwrap();
        ks.active = true;
        ks.owner = Some(me);
        ks.p1 = None;
        ks.recent.clear();
        let mut merged: BTreeMap<u64, (Ballot, Command, Option<RequestId>)> = BTreeMap::new();
        for tail in std::mem::take(&mut ks.p1_tails) {
            for (slot, b, cmd, req) in tail {
                match merged.get(&slot) {
                    Some((mb, _, _)) if *mb >= b => {}
                    _ => {
                        merged.insert(slot, (b, cmd, req));
                    }
                }
            }
        }
        if let Some((&max_slot, _)) = merged.iter().next_back() {
            ks.next_slot = ks.next_slot.max(max_slot + 1);
        }
        ks.next_slot = ks.next_slot.max(ks.commit_upto);
        let commit_upto = ks.commit_upto;
        let pending = std::mem::take(&mut ks.pending);
        for (slot, (_, cmd, req)) in merged {
            if slot < commit_upto {
                continue;
            }
            self.propose_in_slot(key, slot, cmd, req, ctx);
        }
        for req in pending {
            self.propose(key, req, ctx);
        }
    }

    fn propose(&mut self, key: Key, req: ClientRequest, ctx: &mut dyn Context<WPaxosMsg>) {
        let ks = self.keys.get_mut(&key).unwrap();
        let slot = ks.next_slot;
        ks.next_slot += 1;
        self.propose_in_slot(key, slot, req.cmd, Some(req.id), ctx);
    }

    fn propose_in_slot(
        &mut self,
        key: Key,
        slot: u64,
        cmd: Command,
        req: Option<RequestId>,
        ctx: &mut dyn Context<WPaxosMsg>,
    ) {
        let me = self.id;
        let mut q2 = self.q2();
        q2.ack(me);
        let ks = self.keys.get_mut(&key).unwrap();
        let ballot = ks.ballot;
        ks.log.insert(slot, KEntry { ballot, cmd: cmd.clone(), req, q2, committed: false });
        ks.next_slot = ks.next_slot.max(slot + 1);
        let commit_upto = ks.commit_upto;
        ctx.broadcast(WPaxosMsg::P2a { key, ballot, slot, cmd, req, commit_upto });
        self.maybe_commit(key, ctx);
    }

    fn maybe_commit(&mut self, key: Key, ctx: &mut dyn Context<WPaxosMsg>) {
        let ks = self.keys.get_mut(&key).unwrap();
        let active = ks.active;
        let mut advanced = false;
        loop {
            let upto = ks.commit_upto;
            let Some(e) = ks.log.get_mut(&upto) else { break };
            if e.committed || (active && e.q2.satisfied()) {
                e.committed = true;
                ks.commit_upto += 1;
                advanced = true;
            } else {
                break;
            }
        }
        if advanced && active {
            self.dirty.insert(key);
        }
        self.execute(key, ctx);
    }

    fn execute(&mut self, key: Key, ctx: &mut dyn Context<WPaxosMsg>) {
        loop {
            let ks = self.keys.get_mut(&key).unwrap();
            if ks.execute_upto >= ks.commit_upto {
                break;
            }
            let slot = ks.execute_upto;
            let Some(e) = ks.log.get(&slot) else { break };
            if !e.committed {
                break;
            }
            let cmd = e.cmd.clone();
            let req = e.req;
            let active = ks.active;
            ks.execute_upto += 1;
            let value = self.store.execute(&cmd);
            if active {
                if let Some(id) = req {
                    ctx.reply(ClientResponse::ok(id, value));
                }
            }
        }
    }
}

impl Replica for WPaxos {
    type Msg = WPaxosMsg;

    fn on_start(&mut self, ctx: &mut dyn Context<WPaxosMsg>) {
        ctx.set_timer(self.cfg.flush_interval, TIMER_COMMIT_FLUSH);
    }

    fn on_message(&mut self, from: NodeId, msg: WPaxosMsg, ctx: &mut dyn Context<WPaxosMsg>) {
        match msg {
            WPaxosMsg::P1a { key, ballot, commit_upto: thief_commit } => {
                let my_zone = self.id.zone;
                let ks = self.key_state(key);
                if ballot > ks.ballot {
                    ks.ballot = ballot;
                    ks.active = false;
                    ks.owner = Some(ballot.id);
                    ks.recent.clear();
                    // A competing thief outbid our own in-flight phase-1:
                    // abort it and hand our buffered requests to the winner,
                    // or they would wait forever on stale-ballot promises.
                    if ks.p1.take().is_some() {
                        let owner = ballot.id;
                        for req in std::mem::take(&mut ks.pending) {
                            ctx.send(owner, WPaxosMsg::Submit { zone: my_zone, req, hops: 0 });
                        }
                        self.p1_inflight.remove(&key);
                    }
                    let ks = self.key_state(key);
                    // Send from the *thief's* commit point: it may lack
                    // entries we already committed.
                    let start = thief_commit.min(ks.commit_upto);
                    let tail: Vec<_> = ks
                        .log
                        .range(start..)
                        .map(|(s, e)| (*s, e.ballot, e.cmd.clone(), e.req))
                        .collect();
                    ctx.send(from, WPaxosMsg::P1b { key, ballot, tail });
                } else {
                    let b = ks.ballot;
                    ctx.send(from, WPaxosMsg::Nack { key, ballot: b });
                }
            }
            WPaxosMsg::P1b { key, ballot, tail } => {
                let my_id = self.id;
                let ks = self.key_state(key);
                #[cfg(feature = "wp-debug")]
                eprintln!(
                    "P1B {} key={key} from={from} msg_ballot={} my_ballot={} active={} p1={}",
                    my_id, ballot, ks.ballot, ks.active, ks.p1.is_some()
                );
                let _ = my_id;
                if ballot == ks.ballot && !ks.active {
                    if let Some(q) = ks.p1.as_mut() {
                        if q.ack(from) {
                            ks.p1_tails.push(tail);
                        }
                        if q.satisfied() {
                            self.become_owner(key, ctx);
                        }
                    }
                }
            }
            WPaxosMsg::Nack { key, ballot } => {
                let ks = self.key_state(key);
                if ballot > ks.ballot {
                    self.p1_inflight.remove(&key);
                    let ks = self.key_state(key);
                    ks.ballot = ballot;
                    ks.active = false;
                    ks.p1 = None;
                    ks.owner = Some(ballot.id);
                    ks.recent.clear();
                    // Hand buffered requests to the stronger owner.
                    let owner = ballot.id;
                    for req in std::mem::take(&mut ks.pending) {
                        ctx.send(owner, WPaxosMsg::Submit { zone: self.id.zone, req, hops: 0 });
                    }
                }
            }
            WPaxosMsg::P2a { key, ballot, slot, cmd, req, commit_upto } => {
                let q2 = self.q2();
                let my_id = self.id;
                {
                    let ks = self.key_state(key);
                    if ballot > ks.ballot && ks.p1.take().is_some() {
                        // Same superseded-phase-1 situation via phase-2.
                        let owner = ballot.id;
                        let my_zone = my_id.zone;
                        for req in std::mem::take(&mut ks.pending) {
                            ctx.send(owner, WPaxosMsg::Submit { zone: my_zone, req, hops: 0 });
                        }
                        self.p1_inflight.remove(&key);
                    }
                }
                let ks = self.key_state(key);
                if ballot >= ks.ballot {
                    ks.ballot = ballot;
                    ks.active = ballot.id == my_id;
                    ks.owner = Some(ballot.id);
                    let mut q = q2;
                    q.ack(ballot.id);
                    q.ack(my_id);
                    ks.log.insert(slot, KEntry { ballot, cmd, req, q2: q, committed: slot < commit_upto });
                    if commit_upto > ks.marked_upto {
                        for (_, e) in ks.log.range_mut(ks.marked_upto..commit_upto) {
                            e.committed = true;
                        }
                        ks.marked_upto = commit_upto;
                    }
                    self.maybe_commit(key, ctx);
                    ctx.send(from, WPaxosMsg::P2b { key, ballot, slot });
                } else {
                    let b = ks.ballot;
                    ctx.send(from, WPaxosMsg::Nack { key, ballot: b });
                }
            }
            WPaxosMsg::P2b { key, ballot, slot } => {
                let ks = self.key_state(key);
                if ks.active && ballot == ks.ballot {
                    if let Some(e) = ks.log.get_mut(&slot) {
                        if e.ballot == ballot {
                            e.q2.ack(from);
                        }
                    }
                    self.maybe_commit(key, ctx);
                }
            }
            WPaxosMsg::Submit { zone, req, hops } => {
                let window = self.cfg.window;
                let my_zone = self.id.zone;
                let my_id = self.id;
                let key = req.cmd.key;
                let ks = self.key_state(key);
                if ks.p1.is_some() {
                    // We are acquiring this key right now: serve the request
                    // once phase-1 resolves. (Chasing a stale owner from
                    // here ping-pongs into competing steals.)
                    ks.pending.push(req);
                    return;
                }
                if !ks.active {
                    // Ownership moved on; chase the believed owner — or
                    // acquire the key ourselves if we are its nominal owner
                    // but have not run phase-1 yet (initial placement), or
                    // if the chase has gone on long enough that beliefs are
                    // clearly stale.
                    match ks.owner {
                        Some(owner) if owner != my_id && hops < 8 => {
                            ctx.send(owner, WPaxosMsg::Submit { zone, req, hops: hops + 1 });
                        }
                        _ => {
                            ks.pending.push(req);
                            if ks.p1.is_none() {
                                self.start_phase1(key, ctx);
                            }
                        }
                    }
                    return;
                }
                ks.recent.push_back(zone);
                while ks.recent.len() > window {
                    ks.recent.pop_front();
                }
                let unanimous = ks.recent.len() == window
                    && ks.recent.iter().all(|&z| z == zone)
                    && zone != my_zone;
                if unanimous {
                    #[cfg(feature = "wp-debug")]
                    eprintln!("HANDOVER key={key} -> zone {zone}");
                    ks.recent.clear();
                    ctx.send(NodeId::new(zone, 0), WPaxosMsg::Handover { key });
                }
                self.propose(key, req, ctx);
            }
            WPaxosMsg::Handover { key } => {
                if !self.leader_capable() {
                    return;
                }
                let my_id = self.id;
                let ks = self.key_state(key);
                #[cfg(feature = "wp-debug")]
                eprintln!("HANDOVER-RECV {} key={key} active={} p1={}", my_id, ks.active, ks.p1.is_some());
                let _ = my_id;
                if !ks.active && ks.p1.is_none() {
                    self.start_phase1(key, ctx);
                }
            }
            WPaxosMsg::CommitBatch { items } => {
                for (key, upto) in items {
                    let ks = self.key_state(key);
                    if upto > ks.marked_upto {
                        for (_, e) in ks.log.range_mut(ks.marked_upto..upto) {
                            e.committed = true;
                        }
                        ks.marked_upto = upto;
                    }
                    self.maybe_commit(key, ctx);
                }
            }
        }
    }

    fn on_request(&mut self, req: ClientRequest, ctx: &mut dyn Context<WPaxosMsg>) {
        if !self.leader_capable() {
            // One leader per zone: hand the request to our zone's leader.
            ctx.forward(NodeId::new(self.id.zone, 0), req);
            return;
        }
        let key = req.cmd.key;
        let window = self.cfg.window;
        let my_id = self.id;
        let my_zone = self.id.zone;
        let ks = self.key_state(key);
        if ks.active {
            // The policy window sees the owner's local traffic too, so a
            // remote zone only wins the key once it truly dominates access.
            ks.recent.push_back(my_zone);
            while ks.recent.len() > window {
                ks.recent.pop_front();
            }
            self.propose(key, req, ctx);
            return;
        }
        if ks.p1.is_some() {
            ks.pending.push(req);
            return;
        }
        match ks.owner {
            Some(owner) if owner != my_id => {
                ctx.send(owner, WPaxosMsg::Submit { zone: my_zone, req, hops: 0 });
            }
            _ => {
                // Unowned key (or stale self-ownership): acquire it.
                ks.pending.push(req);
                self.start_phase1(key, ctx);
            }
        }
    }

    fn on_timer(&mut self, kind: u64, _token: u64, ctx: &mut dyn Context<WPaxosMsg>) {
        if kind == TIMER_COMMIT_FLUSH {
            // Liveness watchdog: restart any phase-1 stuck past the WAN
            // round-trip budget with a fresh, higher ballot. Residual races
            // (however rare) become delays instead of wedges.
            let now = ctx.now();
            let stuck: Vec<Key> = self
                .p1_inflight
                .iter()
                .copied()
                .filter(|k| {
                    self.keys
                        .get(k)
                        .map(|ks| {
                            ks.p1.is_some()
                                && now.saturating_sub(ks.p1_started) > Nanos::millis(1500)
                        })
                        .unwrap_or(false)
                })
                .collect();
            for key in stuck {
                self.keys.get_mut(&key).unwrap().p1 = None;
                self.start_phase1(key, ctx);
            }
            if !self.dirty.is_empty() {
                let items: Vec<(Key, u64)> = self
                    .dirty
                    .drain()
                    .map(|k| (k, self.keys[&k].commit_upto))
                    .collect();
                ctx.broadcast(WPaxosMsg::CommitBatch { items });
            }
            ctx.set_timer(self.cfg.flush_interval, TIMER_COMMIT_FLUSH);
        }
    }

    fn protocol_name(&self) -> &'static str {
        "wpaxos"
    }

    /// Stable wire-type names for the per-type observability breakdown.
    fn msg_kind(msg: &WPaxosMsg) -> &'static str {
        match msg {
            WPaxosMsg::P1a { .. } => "p1a",
            WPaxosMsg::P1b { .. } => "p1b",
            WPaxosMsg::Nack { .. } => "nack",
            WPaxosMsg::P2a { .. } => "p2a",
            WPaxosMsg::P2b { .. } => "p2b",
            WPaxosMsg::CommitBatch { .. } => "commit_batch",
            WPaxosMsg::Submit { .. } => "submit",
            WPaxosMsg::Handover { .. } => "handover",
        }
    }

    fn store(&self) -> Option<&MultiVersionStore> {
        Some(&self.store)
    }
}

/// Convenience factory for a homogeneous WPaxos cluster.
pub fn wpaxos_cluster(cluster: ClusterConfig, cfg: WPaxosConfig) -> impl Fn(NodeId) -> WPaxos {
    move |id| WPaxos::new(id, cluster.clone(), cfg.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxi_core::dist::Rng64;
    use paxi_core::id::ClientId;
    use paxi_sim::{ClientSetup, SimConfig, Simulator, Topology};

    /// 3×3 grid in a LAN (the paper's 9-node LAN deployment).
    fn lan_grid_sim(cfg: WPaxosConfig, clients_per_zone: usize) -> Simulator<WPaxos> {
        let cluster = ClusterConfig::wan(3, 3, 1, cfg.fz);
        let setups = ClientSetup::closed_per_zone(&cluster, clients_per_zone);
        Simulator::new(
            SimConfig {
                topology: Topology::lan_zones(3),
                record_ops: true,
                ..SimConfig::default()
            },
            cluster.clone(),
            wpaxos_cluster(cluster, cfg),
            paxi_sim::client::uniform_workload(100),
            setups,
        )
    }

    #[test]
    fn grid_cluster_serves_requests() {
        let mut sim = lan_grid_sim(WPaxosConfig::default(), 3);
        let report = sim.run();
        assert!(report.completed > 1000, "completed {}", report.completed);
        assert_eq!(report.errors, 0);
    }

    #[test]
    fn keys_get_distributed_across_leaders() {
        // At the paper's scale (1000 keys), hash-partitioned initial
        // ownership keeps all three zone leaders serving a healthy share of
        // the keyspace. (With very few hot keys, greedy locality stealing
        // under uniform closed-loop load slowly drifts ownership toward the
        // fastest zone — a real property of the adaptation policy.)
        let cluster = ClusterConfig::wan(3, 3, 1, 0);
        let setups = ClientSetup::closed_per_zone(&cluster, 3);
        let mut sim = Simulator::new(
            SimConfig { topology: Topology::lan_zones(3), ..SimConfig::default() },
            cluster.clone(),
            wpaxos_cluster(cluster, WPaxosConfig::default()),
            paxi_sim::client::uniform_workload(1000),
            setups,
        );
        let _ = sim.run();
        let owned: Vec<usize> = sim.replicas().iter().map(|r| r.owned_keys()).collect();
        let total: usize = owned.iter().sum();
        for leader in [0, 3, 6] {
            assert!(owned[leader] * 5 > total, "leader {leader} owns too little: {owned:?}");
        }
        // Non-leader-capable nodes own nothing.
        assert_eq!(owned[1] + owned[2] + owned[4], 0);
    }

    #[test]
    fn stores_share_common_prefix() {
        let mut sim = lan_grid_sim(WPaxosConfig::default(), 2);
        let _ = sim.run();
        let stores: Vec<_> = sim.replicas().iter().map(|r| r.store().unwrap()).collect();
        for s in &stores[1..] {
            for key in stores[0].keys() {
                let a = stores[0].history(key);
                let b = s.history(key);
                let common = a.len().min(b.len());
                assert_eq!(&a[..common], &b[..common], "key {key} diverged");
            }
        }
    }

    #[test]
    fn fz0_commits_locally_in_wan() {
        // 5 regions × 3 nodes; all clients in VA work on VA-owned keys; with
        // fz=0 commits need only VA's zone, so latency ≈ LAN RTTs, far below
        // any WAN RTT. The warmup absorbs the initial ownership acquisition
        // (each first touch runs a cross-WAN phase-1 gated on Japan's RTT).
        let cluster = ClusterConfig::wan(5, 3, 1, 0);
        let setups = ClientSetup::closed_in_zone(&cluster, 0, 3);
        let workload = |client: ClientId, _z: u8, seq: u64, _now: paxi_core::Nanos, rng: &mut Rng64| {
            let key = rng.below(15);
            paxi_core::Command::put(key, paxi_sim::client::unique_value(client, seq))
        };
        let mut sim = Simulator::new(
            SimConfig {
                topology: Topology::aws5(),
                warmup: Nanos::millis(1500),
                measure: Nanos::secs(2),
                ..SimConfig::default()
            },
            cluster.clone(),
            wpaxos_cluster(cluster, WPaxosConfig::default()),
            workload,
            setups,
        );
        let report = sim.run();
        assert!(report.completed > 500, "completed {}", report.completed);
        let mean = report.latency.mean.as_millis_f64();
        assert!(mean < 5.0, "fz=0 local commits should be LAN-fast, got {mean} ms");
    }

    #[test]
    fn fz1_pays_one_wan_zone() {
        let cluster = ClusterConfig::wan(5, 3, 1, 1);
        let setups = ClientSetup::closed_in_zone(&cluster, 0, 3);
        let workload = |client: ClientId, _z: u8, seq: u64, _now: paxi_core::Nanos, rng: &mut Rng64| {
            let key = rng.below(50);
            paxi_core::Command::put(key, paxi_sim::client::unique_value(client, seq))
        };
        let mut sim = Simulator::new(
            SimConfig { topology: Topology::aws5(), ..SimConfig::default() },
            cluster.clone(),
            wpaxos_cluster(cluster, WPaxosConfig::with_fz(1)),
            workload,
            setups,
        );
        let report = sim.run();
        let mean = report.latency.mean.as_millis_f64();
        // VA's nearest region is OH at 11 ms RTT; fz=1 commit needs it.
        assert!(mean > 8.0, "fz=1 should pay a WAN RTT, got {mean} ms");
    }

    #[test]
    fn ownership_migrates_with_locality() {
        // All keys start in zone 1 (OH-like); zone 0's clients hammer keys
        // 0..20; after three accesses per key, zone 0's leader steals them.
        let cluster = ClusterConfig::wan(3, 3, 1, 0);
        let setups = ClientSetup::closed_in_zone(&cluster, 0, 2);
        let workload = |client: ClientId, _z: u8, seq: u64, _now: paxi_core::Nanos, rng: &mut Rng64| {
            let key = rng.below(20);
            paxi_core::Command::put(key, paxi_sim::client::unique_value(client, seq))
        };
        let mut sim = Simulator::new(
            SimConfig { topology: Topology::aws3(), ..SimConfig::default() },
            cluster.clone(),
            wpaxos_cluster(
                cluster,
                WPaxosConfig {
                    initial_owner: Some(NodeId::new(1, 0)),
                    ..WPaxosConfig::default()
                },
            ),
            workload,
            setups,
        );
        let report = sim.run();
        assert!(report.completed > 100);
        // Zone 0's leader ends up owning the hot keys.
        let zone0_leader = &sim.replicas()[0];
        assert!(
            zone0_leader.owned_keys() >= 15,
            "zone 0 should have stolen most hot keys, owns {}",
            zone0_leader.owned_keys()
        );
        // Post-migration latency is local: p50 well below the 100ms-ish WAN.
        let p50 = report.latency.p50.as_millis_f64();
        assert!(p50 < 10.0, "after stealing, commits are local; p50 {p50} ms");
    }
}
