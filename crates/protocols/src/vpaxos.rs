//! Vertical Paxos (VPaxos), augmented for WAN object relocation.
//!
//! Vertical Paxos separates the control plane from the data plane: a master
//! Paxos cluster sits above the data Paxos groups and is the only authority
//! for configuration changes — here, the assignment of each object (key) to
//! the zone-local Paxos group that leads it. Commands for a key execute in
//! its owner zone's group with LAN commit latency; changing a key's owner is
//! a master-committed reconfiguration followed by a state handshake between
//! the old and new owner (one group finishes the commands of the old
//! configuration before the next group starts — no stop time).
//!
//! This is the paper's "augmented version of Vertical Paxos": relocation is
//! driven by the same three-consecutive-access policy as WPaxos/WanKeeper,
//! evaluated at the master, which observes every request that reaches it for
//! a remotely-owned key. Unlike WanKeeper, the master never executes data
//! commands for other zones — contested keys simply stay with their current
//! owner and remote requests are forwarded there.

use crate::groups::ZoneRep;
use paxi_core::command::{ClientRequest, ClientResponse, Command, Key, Op, Value};
use paxi_core::config::ClusterConfig;
use paxi_core::id::{NodeId, RequestId};
use paxi_core::traits::{Context, Replica};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};

/// Tuning knobs for [`VPaxos`].
#[derive(Debug, Clone)]
pub struct VPaxosConfig {
    /// Zone hosting the master (configuration) Paxos group.
    pub master_zone: u8,
    /// Zone that initially owns every key.
    pub initial_zone: u8,
    /// Consecutive same-zone requests (observed at the master) before a key
    /// is relocated to that zone.
    pub window: usize,
}

impl Default for VPaxosConfig {
    fn default() -> Self {
        VPaxosConfig { master_zone: 0, initial_zone: 0, window: 3 }
    }
}

/// Payload replicated through a zone group's log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum VpWire {
    /// A data command.
    Cmd(Command),
    /// A master-side configuration change: reassign the key to `zone`.
    Map {
        /// The new owner zone.
        zone: u8,
    },
}

/// Wire messages of VPaxos.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum VpMsg {
    /// In-zone replication of one payload.
    Accept {
        /// Key.
        key: Key,
        /// Zone-log sequence for the key.
        seq: u64,
        /// Replicated payload.
        payload: VpWire,
    },
    /// In-zone acceptance.
    AcceptOk {
        /// Key.
        key: Key,
        /// Acked sequence.
        seq: u64,
    },
    /// A zone leader escalates a remotely-owned request to the master.
    Escalate {
        /// Requesting zone.
        zone: u8,
        /// The client request.
        req: ClientRequest,
    },
    /// Master announces a new owner for a key (sent to all zone leaders).
    OwnerChange {
        /// Key.
        key: Key,
        /// New owner zone.
        zone: u8,
    },
    /// Old owner hands the authoritative state to the new owner.
    Transfer {
        /// Key.
        key: Key,
        /// Latest value.
        value: Option<Value>,
        /// Latest version.
        version: u64,
    },
}

#[derive(Debug, Clone, Default)]
struct ValState {
    value: Option<Value>,
    version: u64,
}

/// Leader-side payload in the zone log: a command plus reply routing, or a
/// committed map change.
#[derive(Debug, Clone)]
enum Payload {
    Cmd { cmd: Command, req: Option<RequestId> },
    Map { key: Key, zone: u8 },
}

struct MasterEntry {
    owner: u8,
    recent: VecDeque<u8>,
    /// Requests waiting for a relocation to finish (forwarded to the new
    /// owner once the map change commits).
    queued: Vec<ClientRequest>,
    relocating: bool,
}

/// A VPaxos replica. Node `z.0` leads zone `z`'s data group; the leader of
/// [`VPaxosConfig::master_zone`] additionally runs the configuration master.
pub struct VPaxos {
    id: NodeId,
    cluster: ClusterConfig,
    cfg: VPaxosConfig,
    zone_leader: NodeId,
    master_leader: NodeId,
    rep: ZoneRep<Payload>,
    /// Cached key → owner-zone map (authoritative copy lives at the master).
    map: HashMap<Key, u8>,
    /// Authoritative values for keys this zone owns.
    values: HashMap<Key, ValState>,
    /// Keys whose ownership we received but whose state transfer is pending.
    awaiting_transfer: HashSet<Key>,
    /// Transfers that arrived before their `OwnerChange` (reordering race).
    early_transfers: HashSet<Key>,
    /// Keys we must hand off once our in-flight commits drain: key → new owner.
    outgoing: HashMap<Key, u8>,
    /// Requests queued locally until a transfer completes.
    queued: HashMap<Key, Vec<ClientRequest>>,
    /// Master-only: per-key ownership and policy state.
    table: HashMap<Key, MasterEntry>,
}

impl VPaxos {
    /// Creates a replica for node `id` in `cluster`.
    pub fn new(id: NodeId, cluster: ClusterConfig, cfg: VPaxosConfig) -> Self {
        assert!(cfg.master_zone < cluster.zones && cfg.initial_zone < cluster.zones);
        assert!(cfg.window >= 1);
        let zone_leader = NodeId::new(id.zone, 0);
        let master_leader = NodeId::new(cfg.master_zone, 0);
        VPaxos {
            id,
            cluster: cluster.clone(),
            cfg,
            zone_leader,
            master_leader,
            rep: ZoneRep::new(id, &cluster),
            map: HashMap::new(),
            values: HashMap::new(),
            awaiting_transfer: HashSet::new(),
            early_transfers: HashSet::new(),
            outgoing: HashMap::new(),
            queued: HashMap::new(),
            table: HashMap::new(),
        }
    }

    fn is_zone_leader(&self) -> bool {
        self.id == self.zone_leader
    }

    fn is_master(&self) -> bool {
        self.id == self.master_leader
    }

    /// The zone this replica believes owns `key`.
    pub fn owner_zone(&self, key: Key) -> u8 {
        *self.map.get(&key).unwrap_or(&self.cfg.initial_zone)
    }

    /// Number of keys this zone owns with live state (for tests/inspection).
    pub fn owned_keys(&self) -> usize {
        self.values.len()
    }

    fn owns(&self, key: Key) -> bool {
        self.owner_zone(key) == self.id.zone && !self.awaiting_transfer.contains(&key)
    }

    /// Queue-or-replicate for a key this zone owns, without touching the
    /// master's access-policy window (used for forwarded/handoff requests).
    fn serve_locally(&mut self, req: ClientRequest, ctx: &mut dyn Context<VpMsg>) {
        let key = req.cmd.key;
        if !self.owns(key) {
            self.queued.entry(key).or_default().push(req);
        } else {
            #[cfg(feature = "vp-debug")]
            if key == 4 && !self.values.contains_key(&key) {
                eprintln!("{} t={} serving key4 with EMPTY state", self.id, ctx.now());
            }
            self.values.entry(key).or_default();
            self.replicate_cmd(req, ctx);
        }
    }

    fn replicate_cmd(&mut self, req: ClientRequest, ctx: &mut dyn Context<VpMsg>) {
        let key = req.cmd.key;
        let seq = self.rep.append(key, Payload::Cmd { cmd: req.cmd.clone(), req: Some(req.id) });
        let peers = self.rep.peers().to_vec();
        if !peers.is_empty() {
            ctx.multicast(&peers, VpMsg::Accept { key, seq, payload: VpWire::Cmd(req.cmd) });
        }
        self.drain(key, ctx);
    }

    fn replicate_map(&mut self, key: Key, zone: u8, ctx: &mut dyn Context<VpMsg>) {
        let seq = self.rep.append(key, Payload::Map { key, zone });
        let peers = self.rep.peers().to_vec();
        if !peers.is_empty() {
            ctx.multicast(&peers, VpMsg::Accept { key, seq, payload: VpWire::Map { zone } });
        }
        self.drain(key, ctx);
    }

    fn drain(&mut self, key: Key, ctx: &mut dyn Context<VpMsg>) {
        for p in self.rep.take_committed(key) {
            match p {
                Payload::Cmd { cmd, req } => {
                    if self.owner_zone(key) != self.id.zone {
                        // A relocation committed *earlier in this key's log*:
                        // commands sequenced after the map change belong to
                        // the new owner. Executing them against our zombie
                        // state would lose writes and serve stale reads.
                        if let Some(id) = req {
                            let owner = NodeId::new(self.owner_zone(key), 0);
                            ctx.forward(owner, ClientRequest { id, cmd });
                        }
                        continue;
                    }
                    let st = self.values.entry(key).or_default();
                    let reply_value = match &cmd.op {
                        Op::Get => st.value.clone(),
                        Op::Put(v) => {
                            let prev = st.value.replace(v.clone());
                            st.version += 1;
                            prev
                        }
                        Op::Delete => {
                            st.version += 1;
                            st.value.take()
                        }
                    };
                    if let Some(id) = req {
                        ctx.reply(ClientResponse::ok(id, reply_value));
                    }
                }
                Payload::Map { key, zone } => self.apply_map_change(key, zone, ctx),
            }
        }
        self.maybe_transfer_out(key, ctx);
    }

    /// Master-side: a committed reconfiguration takes effect.
    fn apply_map_change(&mut self, key: Key, zone: u8, ctx: &mut dyn Context<VpMsg>) {
        #[cfg(feature = "vp-debug")]
        if key == 4 {
            eprintln!("{} t={} MAP key4 -> zone {zone}", self.id, ctx.now());
        }
        let queued = if let Some(e) = self.table.get_mut(&key) {
            e.owner = zone;
            e.relocating = false;
            e.recent.clear();
            std::mem::take(&mut e.queued)
        } else {
            Vec::new()
        };
        // Announce to every zone leader (including ourselves via local map).
        let leaders: Vec<NodeId> = (0..self.cluster.zones)
            .map(|z| NodeId::new(z, 0))
            .filter(|&l| l != self.id)
            .collect();
        ctx.multicast(&leaders, VpMsg::OwnerChange { key, zone });
        self.handle_owner_change(key, zone, ctx);
        // Hand queued requests to the new owner.
        let new_leader = NodeId::new(zone, 0);
        for req in queued {
            if new_leader == self.id {
                self.serve_locally(req, ctx);
            } else {
                ctx.forward(new_leader, req);
            }
        }
    }

    fn handle_owner_change(&mut self, key: Key, zone: u8, ctx: &mut dyn Context<VpMsg>) {
        let was_owner = self.owner_zone(key) == self.id.zone;
        self.map.insert(key, zone);
        if zone == self.id.zone {
            // We gained the key; wait for the old owner's state — unless the
            // transfer outran this announcement.
            if self.early_transfers.remove(&key) {
                self.activate_transferred(key, ctx);
            } else {
                self.awaiting_transfer.insert(key);
            }
        } else if was_owner {
            // We lost it; hand the state over once in-flight commits drain.
            self.outgoing.insert(key, zone);
            self.maybe_transfer_out(key, ctx);
        }
    }

    /// Ownership + state are both in hand: serve everything we queued.
    fn activate_transferred(&mut self, key: Key, ctx: &mut dyn Context<VpMsg>) {
        for req in self.queued.remove(&key).unwrap_or_default() {
            self.replicate_cmd(req, ctx);
        }
    }

    fn maybe_transfer_out(&mut self, key: Key, ctx: &mut dyn Context<VpMsg>) {
        #[cfg(feature = "vp-debug")]
        if key == 4 && self.outgoing.contains_key(&key) {
            eprintln!(
                "{} t={} TRANSFER-OUT-check key4 awaiting={} fully={} val={:?}",
                self.id,
                ctx.now(),
                self.awaiting_transfer.contains(&key),
                self.rep.fully_committed(key),
                self.values.get(&key).map(|v| v.version)
            );
        }
        // Never hand off state we do not hold yet: in a relocation chain
        // A -> B -> C, B must wait for A's transfer before serving C, or C
        // would start from an empty default value.
        if self.awaiting_transfer.contains(&key) {
            return;
        }
        if let Some(&zone) = self.outgoing.get(&key) {
            if self.rep.fully_committed(key) {
                self.outgoing.remove(&key);
                let st = self.values.remove(&key).unwrap_or_default();
                ctx.send(
                    NodeId::new(zone, 0),
                    VpMsg::Transfer { key, value: st.value, version: st.version },
                );
            }
        }
    }

    /// Master-side policy for a request that reached it.
    fn master_route(&mut self, zone: u8, req: ClientRequest, ctx: &mut dyn Context<VpMsg>) {
        let key = req.cmd.key;
        let window = self.cfg.window;
        let initial = self.cfg.initial_zone;
        let e = self.table.entry(key).or_insert_with(|| MasterEntry {
            owner: initial,
            recent: VecDeque::new(),
            queued: Vec::new(),
            relocating: false,
        });
        if e.relocating {
            e.queued.push(req);
            return;
        }
        if e.owner == zone {
            // Requester already owns it (stale escalation during a move).
            let leader = NodeId::new(zone, 0);
            if leader == self.id {
                self.serve_locally(req, ctx);
            } else {
                ctx.forward(leader, req);
            }
            return;
        }
        e.recent.push_back(zone);
        while e.recent.len() > window {
            e.recent.pop_front();
        }
        let unanimous = e.recent.len() == window && e.recent.iter().all(|&z| z == zone);
        if unanimous {
            // Locality settled: relocate via a master-committed map change.
            e.relocating = true;
            e.queued.push(req);
            e.recent.clear();
            self.replicate_map(key, zone, ctx);
        } else {
            let owner = e.owner;
            let leader = NodeId::new(owner, 0);
            if leader == self.id {
                self.serve_locally(req, ctx);
            } else {
                ctx.forward(leader, req);
            }
        }
    }
}

impl Replica for VPaxos {
    type Msg = VpMsg;

    fn on_message(&mut self, from: NodeId, msg: VpMsg, ctx: &mut dyn Context<VpMsg>) {
        match msg {
            VpMsg::Accept { key, seq, payload } => {
                let _ = payload; // members only ack; state lives at leaders
                ctx.send(from, VpMsg::AcceptOk { key, seq });
            }
            VpMsg::AcceptOk { key, seq } => {
                self.rep.ack(key, seq);
                self.drain(key, ctx);
            }
            VpMsg::Escalate { zone, req } => {
                if self.is_master() {
                    self.master_route(zone, req, ctx);
                }
            }
            VpMsg::OwnerChange { key, zone } => {
                self.handle_owner_change(key, zone, ctx);
            }
            VpMsg::Transfer { key, value, version } => {
                #[cfg(feature = "vp-debug")]
                if key == 4 {
                    eprintln!("{} t={} TRANSFER key4 v={:?} ver={version}", self.id, ctx.now(), value.as_ref().map(|v| (v[3], v[11])));
                }
                self.values.insert(key, ValState { value, version });
                if self.awaiting_transfer.remove(&key) {
                    if let Some(&dest) = self.outgoing.get(&key) {
                        // Ownership moved on while the state was in flight:
                        // relay the queued requests and the state to the
                        // real owner.
                        let leader = NodeId::new(dest, 0);
                        for req in self.queued.remove(&key).unwrap_or_default() {
                            ctx.forward(leader, req);
                        }
                        self.maybe_transfer_out(key, ctx);
                    } else {
                        self.activate_transferred(key, ctx);
                    }
                } else {
                    // OwnerChange has not reached us yet; remember the state.
                    self.early_transfers.insert(key);
                }
            }
        }
    }

    fn on_request(&mut self, req: ClientRequest, ctx: &mut dyn Context<VpMsg>) {
        if !self.is_zone_leader() {
            ctx.forward(self.zone_leader, req);
            return;
        }
        let key = req.cmd.key;
        if self.owner_zone(key) == self.id.zone {
            if self.is_master() {
                // The relocation policy must see the owner's own accesses,
                // or a remote zone's escalations would look unanimous and
                // steal a key its home zone uses constantly.
                let initial = self.cfg.initial_zone;
                let window = self.cfg.window;
                let zone = self.id.zone;
                let e = self.table.entry(key).or_insert_with(|| MasterEntry {
                    owner: initial,
                    recent: VecDeque::new(),
                    queued: Vec::new(),
                    relocating: false,
                });
                e.recent.push_back(zone);
                while e.recent.len() > window {
                    e.recent.pop_front();
                }
            }
            self.serve_locally(req, ctx);
        } else if self.is_master() {
            self.master_route(self.id.zone, req, ctx);
        } else {
            ctx.send(self.master_leader, VpMsg::Escalate { zone: self.id.zone, req });
        }
    }

    fn protocol_name(&self) -> &'static str {
        "vpaxos"
    }

    /// Stable wire-type names for the per-type observability breakdown.
    fn msg_kind(msg: &VpMsg) -> &'static str {
        match msg {
            VpMsg::Accept { .. } => "accept",
            VpMsg::AcceptOk { .. } => "accept_ok",
            VpMsg::Escalate { .. } => "escalate",
            VpMsg::OwnerChange { .. } => "owner_change",
            VpMsg::Transfer { .. } => "transfer",
        }
    }
}

/// Convenience factory for a homogeneous VPaxos cluster.
pub fn vpaxos_cluster(cluster: ClusterConfig, cfg: VPaxosConfig) -> impl Fn(NodeId) -> VPaxos {
    move |id| VPaxos::new(id, cluster.clone(), cfg.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxi_core::dist::Rng64;
    use paxi_core::id::ClientId;
    use paxi_core::time::Nanos;
    use paxi_sim::{ClientSetup, SimConfig, Simulator, Topology};

    fn wan3_sim(
        cfg: VPaxosConfig,
        setups: Vec<ClientSetup>,
        workload: impl paxi_sim::Workload + 'static,
    ) -> Simulator<VPaxos> {
        let cluster = ClusterConfig::wan(3, 3, 1, 0);
        Simulator::new(
            SimConfig {
                topology: Topology::aws3(),
                record_ops: true,
                warmup: Nanos::secs(1),
                measure: Nanos::secs(3),
                ..SimConfig::default()
            },
            cluster.clone(),
            vpaxos_cluster(cluster, cfg),
            workload,
            setups,
        )
    }

    #[test]
    fn initial_zone_serves_locally() {
        let cluster = ClusterConfig::wan(3, 3, 1, 0);
        let cfg = VPaxosConfig { master_zone: 1, initial_zone: 1, window: 3 };
        let setups = ClientSetup::closed_in_zone(&cluster, 1, 2);
        let workload = |client: ClientId, _z: u8, seq: u64, _now: paxi_core::Nanos, rng: &mut Rng64| {
            paxi_core::Command::put(rng.below(20), paxi_sim::client::unique_value(client, seq))
        };
        let mut sim = wan3_sim(cfg, setups, workload);
        let report = sim.run();
        assert!(report.completed > 500);
        let mean = report.latency.mean.as_millis_f64();
        assert!(mean < 5.0, "owner-zone latency should be LAN: {mean} ms");
    }

    #[test]
    fn remote_zone_requests_are_forwarded_to_owner() {
        // Interleaved access from all zones: never 3-consecutive from one
        // zone, so keys stay at the initial owner (zone 1 = OH).
        let cfg = VPaxosConfig { master_zone: 1, initial_zone: 1, window: 3 };
        let cluster = ClusterConfig::wan(3, 3, 1, 0);
        let setups = ClientSetup::closed_per_zone(&cluster, 1);
        let workload = |client: ClientId, _z: u8, seq: u64, _now: paxi_core::Nanos, _rng: &mut Rng64| {
            paxi_core::Command::put(0, paxi_sim::client::unique_value(client, seq))
        };
        let mut sim = wan3_sim(cfg, setups, workload);
        let report = sim.run();
        // OH (zone 1) local, VA (zone 0) ~1 RTT(VA,OH)=11ms, CA ~RTT(CA,OH)=50ms.
        let oh = report.zone_latency[&1].mean.as_millis_f64();
        let va = report.zone_latency[&0].mean.as_millis_f64();
        let ca = report.zone_latency[&2].mean.as_millis_f64();
        assert!(oh < 5.0, "OH {oh} ms");
        assert!(va > 8.0 && va < 30.0, "VA {va} ms");
        assert!(ca > 40.0, "CA {ca} ms");
    }

    #[test]
    fn keys_relocate_under_settled_locality() {
        // Zone 2 exclusively uses keys 0..10; they should move to zone 2.
        let cfg = VPaxosConfig { master_zone: 1, initial_zone: 1, window: 3 };
        let cluster = ClusterConfig::wan(3, 3, 1, 0);
        let setups = ClientSetup::closed_in_zone(&cluster, 2, 2);
        let workload = |client: ClientId, _z: u8, seq: u64, _now: paxi_core::Nanos, rng: &mut Rng64| {
            paxi_core::Command::put(rng.below(10), paxi_sim::client::unique_value(client, seq))
        };
        let mut sim = wan3_sim(cfg, setups, workload);
        let report = sim.run();
        assert!(report.completed > 200);
        // Zone 2's leader owns the keys now.
        let z2_leader = &sim.replicas()[6];
        assert!(z2_leader.owned_keys() >= 8, "owned {}", z2_leader.owned_keys());
        assert_eq!(z2_leader.owner_zone(3), 2);
        // Steady-state latency is local.
        let p50 = report.latency.p50.as_millis_f64();
        assert!(p50 < 10.0, "post-relocation p50 {p50} ms");
    }

    #[test]
    fn values_survive_relocation() {
        // Write from zone 1 (initial owner), relocate to zone 0 by repeated
        // access, then read from zone 0: the value must have transferred.
        let cfg = VPaxosConfig { master_zone: 1, initial_zone: 1, window: 3 };
        // One client in zone 1 writes key 0 a few times, then zone 0 reads
        // key 0 repeatedly.
        let setups = vec![
            ClientSetup {
                zone: 1,
                attach: NodeId::new(1, 0),
                mode: paxi_sim::LoadMode::Closed { think: Nanos::millis(200) },
            },
            ClientSetup {
                zone: 0,
                attach: NodeId::new(0, 0),
                mode: paxi_sim::LoadMode::Closed { think: Nanos::millis(10) },
            },
        ];
        let workload = |client: ClientId, _z: u8, seq: u64, _now: paxi_core::Nanos, _rng: &mut Rng64| {
            if client == ClientId(0) {
                paxi_core::Command::put(0, paxi_sim::client::unique_value(client, seq))
            } else {
                paxi_core::Command::get(0)
            }
        };
        let mut sim = wan3_sim(cfg, setups, workload);
        let report = sim.run();
        // Reads from zone 0 eventually observe writes from zone 1 even after
        // the key relocates to zone 0.
        let reads_with_data = report
            .ops
            .iter()
            .filter(|o| o.ok && matches!(&o.read, Some(Some(_))))
            .count();
        assert!(reads_with_data > 10, "reads observed {reads_with_data} values");
        for op in report.ops.iter().filter(|o| o.ok) {
            if let Some(Some(v)) = &op.read {
                assert_eq!(v.len(), 12, "phantom value after transfer");
            }
        }
    }
}
