//! Raft.
//!
//! The paper validates Paxi against etcd's Raft (Figure 7): without
//! reconfiguration and recovery differences, Raft and MultiPaxos are
//! essentially the same single-stable-leader protocol and should converge to
//! the same leader-bottleneck throughput. This is a from-scratch Raft with
//! terms, randomized election timeouts, log replication via AppendEntries
//! (with consistency check and conflict truncation), and the
//! commit-only-current-term rule. Snapshots stay out of scope (persistent
//! logging and snapshots are disabled in etcd for the paper's benchmarks),
//! but membership changes are implemented as Raft joint consensus: a
//! C_old,new log entry switches the node to dual-majority rules the moment
//! it is *appended*, the committed joint entry triggers the C_new entry,
//! and a leader excluded by the committed new configuration hands off and
//! steps down. Configuration entries ride the log as ordinary commands on
//! the reserved [`paxi_core::membership::CONFIG_KEY`], so the existing
//! splice WAL records make every transition crash-survivable — a node
//! restarting mid-transition rescans its recovered log and rejoins in the
//! joint or new configuration, never the old one.

use paxi_core::command::{ClientRequest, ClientResponse, Command, Handoff};
use paxi_core::config::{BatchConfig, ClusterConfig};
use paxi_core::group::GroupId;
use paxi_core::id::{NodeId, RequestId};
use paxi_core::membership::{self, ConfigChange, JointQuorum, Membership, CONFIG_KEY};
use paxi_core::migration::{as_migration_record, MigrationAction, MigrationTracker, MIGRATION_KEY};
use paxi_core::obs::{Metric, TraceStage};
use paxi_core::quorum::{majority, QuorumTracker};
use paxi_core::store::MultiVersionStore;
use paxi_core::time::Nanos;
use paxi_core::traits::{Context, Replica};
use paxi_storage::Storage;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

const TIMER_ELECTION: u64 = 1;
const TIMER_HEARTBEAT: u64 = 2;
/// Timer kind: batch hold-down expiry — flush a partial command batch.
const TIMER_BATCH: u64 = 3;
/// Maximum entries per repair AppendEntries.
const REPAIR_BATCH: usize = 256;
/// Checkpoint (snapshot-and-truncate the WAL) after this many WAL records.
const CHECKPOINT_EVERY: u64 = 512;

/// Tuning knobs for [`Raft`].
#[derive(Debug, Clone)]
pub struct RaftConfig {
    /// Base election timeout; actual timeouts are randomized ×[1, 2).
    pub election_timeout: Nanos,
    /// Leader heartbeat period (empty AppendEntries).
    pub heartbeat: Nanos,
    /// Node that may start an election immediately, to converge fast at
    /// startup (set to `None` for fully symmetric startup).
    pub preferred_leader: Option<NodeId>,
    /// Command batching: the leader packs up to `max_batch` client commands
    /// into one AppendEntries (and one WAL splice, hence one fsync).
    /// `max_batch = 1` (the default) is behaviorally identical to unbatched
    /// operation.
    pub batch: BatchConfig,
    /// The initial voting membership. `None` (the default) means every node
    /// of the cluster universe votes — the static-membership behavior. A
    /// subset turns the remaining universe nodes into passive learners that
    /// can later be added via a [`ConfigChange`].
    pub initial_members: Option<Vec<NodeId>>,
}

impl Default for RaftConfig {
    fn default() -> Self {
        RaftConfig {
            election_timeout: Nanos::millis(300),
            heartbeat: Nanos::millis(20),
            preferred_leader: Some(NodeId::new(0, 0)),
            batch: BatchConfig::default(),
            initial_members: None,
        }
    }
}

impl RaftConfig {
    /// Configuration with command batching of up to `max_batch` per append.
    pub fn batched(max_batch: usize) -> Self {
        RaftConfig {
            batch: BatchConfig::of(max_batch),
            ..Default::default()
        }
    }
}

/// One replicated log entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RaftEntry {
    /// Term the entry was proposed in.
    pub term: u64,
    /// The replicated command.
    pub cmd: Command,
    /// Client request to answer (meaningful on the proposing leader).
    pub req: Option<RequestId>,
}

/// Wire messages of Raft.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum RaftMsg {
    /// Candidate requests a vote.
    RequestVote {
        /// Candidate's term.
        term: u64,
        /// Index of candidate's last log entry.
        last_log_index: u64,
        /// Term of candidate's last log entry.
        last_log_term: u64,
    },
    /// Vote reply.
    Vote {
        /// Voter's current term.
        term: u64,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Log replication / heartbeat.
    AppendEntries {
        /// Leader's term.
        term: u64,
        /// Index of the entry immediately preceding `entries`.
        prev_index: u64,
        /// Term of the `prev_index` entry.
        prev_term: u64,
        /// New entries (empty for heartbeat).
        entries: Vec<RaftEntry>,
        /// Leader's commit index.
        commit: u64,
    },
    /// AppendEntries reply.
    AppendAck {
        /// Follower's term.
        term: u64,
        /// Whether the consistency check passed and entries were appended.
        success: bool,
        /// On success: index of the follower's last matching entry. On
        /// failure: the follower's last log index, as a fast-backoff hint —
        /// network jitter reorders pipelined appends, and without the hint
        /// the leader would walk `next_index` back one entry at a time,
        /// resending ever-larger suffixes.
        match_index: u64,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    Follower,
    Candidate,
    Leader,
}

/// One durable WAL record of Raft's persistent state (Figure 2 of the Raft
/// paper: `currentTerm`, `votedFor`, `log[]`). Appended before the message
/// that acknowledges the change, so a recovered replica can never deny a
/// vote it granted or drop an entry it acked.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RaftWal {
    /// The term advanced and/or the vote was cast.
    Term {
        /// Current term.
        term: u64,
        /// Who this replica voted for in `term` (if anyone yet).
        voted_for: Option<NodeId>,
    },
    /// A log mutation: `entries` spliced in after `prev_index`, truncating
    /// any conflicting suffix — replaying the record re-runs the exact same
    /// truncate-on-conflict logic the live path used.
    Splice {
        /// Index of the entry immediately preceding `entries`.
        prev_index: u64,
        /// The spliced entries.
        entries: Vec<RaftEntry>,
    },
    /// A membership adoption: the configuration carried by the log entry at
    /// `index` became this node's active configuration. Written right after
    /// the splice record that introduced (or truncated away) the config
    /// entry, so activation is crash-atomic with the log mutation — replay
    /// lands in exactly the configuration the live node was using.
    Membership {
        /// Log index of the adopted configuration entry (0 = the initial
        /// configuration, after a truncation removed every config entry).
        index: u64,
        /// The adopted configuration.
        membership: Membership,
    },
    /// A shard-migration record (freeze / install / commit) was applied at
    /// log `index`. Purely an audit record: the checkpoint embeds the full
    /// log and `commit`/`applied` are volatile, so recovery re-applies
    /// every migration record through the ordinary path when the leader's
    /// commit index re-drives execution — replay ignores these.
    Migration {
        /// Log index the record was applied at.
        index: u64,
        /// The encoded [`paxi_core::migration::MigrationRecord`].
        bytes: Vec<u8>,
    },
}

/// The checkpoint Raft installs when compacting its WAL. The whole log is
/// embedded (this implementation never discards its prefix — matching the
/// paper's benchmark configuration with snapshots disabled), so the state
/// machine is deliberately *not* persisted: commit/applied are volatile and
/// the leader's next commit index re-drives execution from the log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RaftCheckpoint {
    /// Current term at checkpoint time.
    pub term: u64,
    /// Vote cast in that term.
    pub voted_for: Option<NodeId>,
    /// The full log, sentinel included.
    pub log: Vec<RaftEntry>,
}

/// A Raft replica.
pub struct Raft {
    id: NodeId,
    cluster: ClusterConfig,
    cfg: RaftConfig,
    peers: Vec<NodeId>,
    role: Role,
    term: u64,
    voted_for: Option<NodeId>,
    votes: JointQuorum,
    /// The epoch-0 voting membership, used when the log holds no config
    /// entry (and re-adopted if truncation removes every config entry).
    initial_members: Vec<NodeId>,
    /// The active configuration: the *latest* config entry in the log
    /// (committed or not, per Raft's adopt-on-append rule), or the initial
    /// membership.
    membership: Membership,
    /// Log index of the entry `membership` was adopted from (0 = initial).
    membership_index: u64,
    /// A reconfiguration request waiting for the in-flight transition to
    /// finish (one config change at a time).
    pending_reconfig: Option<ClientRequest>,
    // Log is 1-indexed: log[0] is a sentinel.
    log: Vec<RaftEntry>,
    commit: u64,
    applied: u64,
    next_index: HashMap<NodeId, u64>,
    match_index: HashMap<NodeId, u64>,
    leader_hint: Option<NodeId>,
    last_contact: Nanos,
    election_token: u64,
    store: MultiVersionStore,
    pending: Vec<ClientRequest>,
    /// Requests accumulating toward the next batched append (leader only,
    /// `max_batch > 1`). Flushed when full or when the hold-down fires.
    batch_buf: Vec<ClientRequest>,
    /// Token of the armed batch hold-down timer, if any.
    batch_token: Option<u64>,
    /// Out-of-order appends buffered until their gap fills. Real Raft rides
    /// on TCP's ordering; our network model can reorder messages, and
    /// rejecting every early append degenerates into repair storms.
    stash: BTreeMap<u64, (u64, Vec<RaftEntry>, u64)>,
    /// Durable store for term/vote/log, if attached.
    wal: Option<Box<dyn Storage>>,
    /// WAL records since the last checkpoint.
    wal_records: u64,
    /// Shard-migration state machine, driven by replicated records at
    /// apply time. Inert (no group identity) outside sharded deployments.
    migration: MigrationTracker,
}

impl Raft {
    /// Creates a replica for node `id` in `cluster`.
    pub fn new(id: NodeId, cluster: ClusterConfig, cfg: RaftConfig) -> Self {
        let initial_members = cfg
            .initial_members
            .clone()
            .unwrap_or_else(|| cluster.all_nodes());
        let membership = Membership::initial(initial_members.clone());
        let peers = membership
            .voters()
            .into_iter()
            .filter(|&p| p != id)
            .collect();
        Raft {
            id,
            cluster,
            cfg,
            peers,
            role: Role::Follower,
            term: 0,
            voted_for: None,
            votes: JointQuorum::of(&membership),
            initial_members,
            membership,
            membership_index: 0,
            pending_reconfig: None,
            log: vec![RaftEntry {
                term: 0,
                cmd: Command::get(0),
                req: None,
            }],
            commit: 0,
            applied: 0,
            next_index: HashMap::new(),
            match_index: HashMap::new(),
            leader_hint: None,
            last_contact: Nanos::ZERO,
            election_token: 0,
            store: MultiVersionStore::new(),
            pending: Vec::new(),
            batch_buf: Vec::new(),
            batch_token: None,
            stash: BTreeMap::new(),
            wal: None,
            wal_records: 0,
            migration: MigrationTracker::new(),
        }
    }

    /// Tells the replica which consensus group it serves in a sharded
    /// deployment, arming the migration tracker. Unsharded deployments never
    /// call this; the tracker then ignores every record and the replica
    /// behaves exactly as before shard migration existed.
    pub fn set_group(&mut self, group: GroupId) {
        self.migration.set_group(group);
    }

    /// Appends one WAL record before the caller acknowledges the change it
    /// witnesses. A replica that cannot write its WAL must stop (crash-stop
    /// model).
    fn persist(&mut self, rec: &RaftWal) {
        if self.wal.is_none() {
            return;
        }
        let bytes = paxi_codec::to_bytes(rec).expect("raft wal record must encode");
        self.wal
            .as_mut()
            .unwrap()
            .append(&bytes)
            .expect("raft replica lost its durable store");
        self.wal_records += 1;
    }

    /// Checkpoints once enough WAL records accumulate. Callers invoke this
    /// only after the in-memory state reflects every record persisted so
    /// far: splice records are written *before* the log mutation they
    /// describe, so checkpointing inside [`Raft::persist`] would snapshot a
    /// log missing the just-persisted entries and then destroy the WAL
    /// record carrying them — losing acked entries on recovery.
    fn maybe_checkpoint(&mut self) {
        if self.wal.is_some() && self.wal_records >= CHECKPOINT_EVERY {
            self.checkpoint();
        }
    }

    /// Snapshot-plus-truncate: replaces the WAL with one checkpoint record.
    fn checkpoint(&mut self) {
        let snap = RaftCheckpoint {
            term: self.term,
            voted_for: self.voted_for,
            log: self.log.clone(),
        };
        let bytes = paxi_codec::to_bytes(&snap).expect("raft checkpoint must encode");
        self.wal
            .as_mut()
            .unwrap()
            .install_snapshot(&bytes)
            .expect("raft replica lost its durable store");
        self.wal_records = 0;
    }

    /// Persists and records the durable term/vote pair. Every caller
    /// updates `term`/`voted_for` before calling, so the in-memory state
    /// already reflects the record and checkpointing here is safe.
    fn persist_term(&mut self) {
        self.persist(&RaftWal::Term {
            term: self.term,
            voted_for: self.voted_for,
        });
        self.maybe_checkpoint();
    }

    /// Whether this node is the current leader.
    pub fn is_leader(&self) -> bool {
        self.role == Role::Leader
    }

    /// Current term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// The active configuration (latest config entry in the log, committed
    /// or not, per Raft's adopt-on-append rule).
    pub fn membership(&self) -> &Membership {
        &self.membership
    }

    /// Every node with a vote in the active configuration.
    pub fn members(&self) -> Vec<NodeId> {
        self.membership.voters()
    }

    /// Epoch of the active configuration (0 = initial).
    pub fn config_epoch(&self) -> u64 {
        self.membership.epoch()
    }

    fn last_index(&self) -> u64 {
        (self.log.len() - 1) as u64
    }

    fn last_term(&self) -> u64 {
        self.log.last().map(|e| e.term).unwrap_or(0)
    }

    fn arm_election_timer(&mut self, ctx: &mut dyn Context<RaftMsg>) {
        let jitter = ctx.rand_u64() % self.cfg.election_timeout.0.max(1);
        self.election_token =
            ctx.set_timer(self.cfg.election_timeout + Nanos(jitter), TIMER_ELECTION);
    }

    fn step_down(&mut self, term: u64, ctx: &mut dyn Context<RaftMsg>) {
        let was_leader = self.role == Role::Leader;
        self.term = term;
        self.role = Role::Follower;
        self.voted_for = None;
        self.persist_term();
        self.votes.reset();
        self.last_contact = ctx.now();
        self.abort_batch();
        if let Some(req) = self.pending_reconfig.take() {
            self.pending.push(req);
        }
        if was_leader {
            self.arm_election_timer(ctx);
        }
    }

    /// Leadership hand-off after committing a configuration that excludes
    /// this node. Unlike [`Raft::step_down`] the term does not change (so
    /// the durable vote for this term stays intact — resetting it would
    /// allow a second vote in the same term) and the node simply becomes a
    /// passive follower: the election gate keeps a non-member from ever
    /// campaigning again.
    fn retire(&mut self, ctx: &mut dyn Context<RaftMsg>) {
        self.role = Role::Follower;
        self.leader_hint = None;
        self.votes.reset();
        self.last_contact = ctx.now();
        self.abort_batch();
        if let Some(req) = self.pending_reconfig.take() {
            self.pending.push(req);
        }
        self.arm_election_timer(ctx);
    }

    /// Folds a not-yet-appended batch back into the pending queue — called
    /// on leadership loss so buffered commands are re-routed to the new
    /// leader instead of silently dropped.
    fn abort_batch(&mut self) {
        self.batch_token = None;
        self.pending.append(&mut self.batch_buf);
    }

    fn start_election(&mut self, ctx: &mut dyn Context<RaftMsg>) {
        if !self.membership.contains(self.id) {
            // Non-voters (not-yet-added learners, removed nodes) never
            // campaign — a departed node cannot disrupt the new cluster.
            return;
        }
        self.term += 1;
        self.role = Role::Candidate;
        self.voted_for = Some(self.id);
        // The self-vote counts toward the majority the moment the candidacy
        // is announced, so it must hit the disk first.
        self.persist_term();
        // A joint configuration elects with a majority of *both* member
        // sets (the dual-quorum rule); a stable one with a plain majority.
        self.votes = JointQuorum::of(&self.membership);
        self.votes.ack(self.id);
        if self.votes.satisfied() {
            self.become_leader(ctx);
            return;
        }
        self.cast(
            ctx,
            RaftMsg::RequestVote {
                term: self.term,
                last_log_index: self.last_index(),
                last_log_term: self.last_term(),
            },
        );
    }

    /// Sends `msg` to every voting peer: a true broadcast when the voters
    /// span the whole cluster universe (bit-identical to the static-
    /// membership build), a multicast to the voter subset otherwise.
    fn cast(&self, ctx: &mut dyn Context<RaftMsg>, msg: RaftMsg) {
        if self.peers.len() + 1 >= self.cluster.n() {
            ctx.broadcast(msg);
        } else {
            ctx.multicast(&self.peers, msg);
        }
    }

    fn become_leader(&mut self, ctx: &mut dyn Context<RaftMsg>) {
        self.role = Role::Leader;
        self.leader_hint = Some(self.id);
        // Append a no-op for the new term: Raft only commits entries from
        // the current term via counting (§5.4.2), so without this a quiet
        // leader could never commit inherited entries — wedging the clients
        // waiting on them.
        let noop = RaftEntry {
            term: self.term,
            cmd: Command::get(0),
            req: None,
        };
        self.splice(self.last_index(), vec![noop]);
        let next = self.last_index() + 1;
        for &p in &self.peers {
            self.next_index.insert(p, next.saturating_sub(1).max(1));
            self.match_index.insert(p, 0);
        }
        // Establish authority immediately.
        self.broadcast_append(ctx);
        ctx.set_timer(self.cfg.heartbeat, TIMER_HEARTBEAT);
        for req in std::mem::take(&mut self.pending) {
            self.append_request(req, ctx);
        }
    }

    fn append_request(&mut self, req: ClientRequest, ctx: &mut dyn Context<RaftMsg>) {
        if !self.cfg.batch.enabled() {
            // Unbatched fast path: exactly the pre-batching behavior — ship
            // only the new entry, immediately (optimistic pipelining; the
            // AppendAck failure path repairs any gap).
            self.flush_entries(vec![req], ctx);
            return;
        }
        self.batch_buf.push(req);
        if self.batch_buf.len() >= self.cfg.batch.max_batch {
            self.flush_batch(ctx);
        } else if self.batch_token.is_none() {
            // First command of a partial batch: bound its wait.
            self.batch_token = Some(ctx.set_timer(self.cfg.batch.batch_delay, TIMER_BATCH));
        }
    }

    /// Appends the accumulated batch as one multi-entry AppendEntries: one
    /// broadcast, one WAL splice, one fsync for the whole batch.
    fn flush_batch(&mut self, ctx: &mut dyn Context<RaftMsg>) {
        self.batch_token = None;
        if self.batch_buf.is_empty() {
            return;
        }
        let reqs = std::mem::take(&mut self.batch_buf);
        self.flush_entries(reqs, ctx);
    }

    fn flush_entries(&mut self, reqs: Vec<ClientRequest>, ctx: &mut dyn Context<RaftMsg>) {
        for req in &reqs {
            ctx.trace(TraceStage::Propose, req.id);
        }
        let prev_index = self.last_index();
        let prev_term = self.last_term();
        let entries: Vec<RaftEntry> = reqs
            .into_iter()
            .map(|req| RaftEntry {
                term: self.term,
                cmd: req.cmd,
                req: Some(req.id),
            })
            .collect();
        self.splice(prev_index, entries.clone());
        ctx.broadcast(RaftMsg::AppendEntries {
            term: self.term,
            prev_index,
            prev_term,
            entries,
            commit: self.commit,
        });
        self.advance_commit(ctx); // single-node cluster
    }

    /// Forwards requests buffered while no leader was known.
    fn drain_pending(&mut self, ctx: &mut dyn Context<RaftMsg>) {
        if self.pending.is_empty() || self.role == Role::Leader {
            return;
        }
        if let Some(leader) = self.leader_hint {
            if leader != self.id {
                for req in std::mem::take(&mut self.pending) {
                    ctx.forward(leader, req);
                }
            }
        }
    }

    /// Appends `entries` after `prev_index`, truncating on conflict; returns
    /// the new match index. Persists the mutation first — the ack the caller
    /// sends makes the leader count these entries as replicated here.
    fn splice(&mut self, prev_index: u64, entries: Vec<RaftEntry>) -> u64 {
        if !entries.is_empty() {
            self.persist(&RaftWal::Splice {
                prev_index,
                entries: entries.clone(),
            });
        }
        let match_index = self.apply_splice(prev_index, entries);
        // Checkpoint only now that the log contains the spliced entries.
        self.maybe_checkpoint();
        match_index
    }

    /// The pure splice body, shared by the live path and WAL replay.
    /// Membership adoption happens here — on *append*, not commit, per the
    /// Raft rule — so a recovered log replays into exactly the joint or new
    /// configuration the live node was using.
    fn apply_splice(&mut self, prev_index: u64, entries: Vec<RaftEntry>) -> u64 {
        let mut config_touched = entries.iter().any(|e| e.cmd.key == CONFIG_KEY);
        let mut idx = prev_index as usize + 1;
        for e in entries {
            if idx < self.log.len() {
                if self.log[idx].term != e.term {
                    if (idx as u64) <= self.membership_index {
                        // Truncation swallowed the adopted config entry:
                        // fall back to the latest surviving one.
                        config_touched = true;
                    }
                    self.log.truncate(idx);
                    self.log.push(e);
                }
            } else {
                self.log.push(e);
            }
            idx += 1;
        }
        if config_touched {
            self.rescan_membership();
        }
        (idx - 1) as u64
    }

    /// Re-derives the active configuration from the log: the latest config
    /// entry wins; a log without one falls back to the initial membership.
    /// Persists the adoption (crash-atomic with the splice that caused it)
    /// and refreshes the peer set.
    fn rescan_membership(&mut self) {
        let mut found: Option<(u64, Membership)> = None;
        for idx in (1..self.log.len()).rev() {
            if self.log[idx].cmd.key != CONFIG_KEY {
                continue;
            }
            if let Some(m) = membership::as_membership(&self.log[idx].cmd) {
                found = Some((idx as u64, m));
                break;
            }
        }
        let (index, m) =
            found.unwrap_or_else(|| (0, Membership::initial(self.initial_members.clone())));
        if index == self.membership_index && m == self.membership {
            return;
        }
        self.membership_index = index;
        self.membership = m;
        self.persist(&RaftWal::Membership {
            index,
            membership: self.membership.clone(),
        });
        self.refresh_peers();
    }

    /// Rebuilds the peer list from the active configuration's voters. A
    /// leader seeds replication state for newly added peers (their first
    /// nack's fast-backoff hint walks `next_index` to wherever their log
    /// actually ends, then bounded repair batches catch them up).
    fn refresh_peers(&mut self) {
        self.peers = self
            .membership
            .voters()
            .into_iter()
            .filter(|&p| p != self.id)
            .collect();
        if self.role == Role::Leader {
            let seed_next = self.last_index().max(1);
            for &p in &self.peers {
                self.next_index.entry(p).or_insert(seed_next);
                self.match_index.entry(p).or_insert(0);
            }
        }
        let peers = &self.peers;
        self.next_index.retain(|k, _| peers.contains(k));
        self.match_index.retain(|k, _| peers.contains(k));
    }

    /// Sends a bounded catch-up batch to one straggler.
    fn send_repair(&mut self, to: NodeId, ctx: &mut dyn Context<RaftMsg>) {
        ctx.count(Metric::Retransmissions, 1);
        let ni = *self.next_index.get(&to).unwrap_or(&1);
        let prev_index = ni - 1;
        let prev_term = self.log[prev_index as usize].term;
        let start = ni as usize;
        let end = (start + REPAIR_BATCH).min(self.log.len());
        let entries = self.log[start.min(self.log.len())..end].to_vec();
        ctx.send(
            to,
            RaftMsg::AppendEntries {
                term: self.term,
                prev_index,
                prev_term,
                entries,
                commit: self.commit,
            },
        );
    }

    fn broadcast_append(&mut self, ctx: &mut dyn Context<RaftMsg>) {
        // Uniform next_index in the steady state lets us broadcast one
        // serialization; stragglers get individually tailored messages.
        let groups: HashMap<u64, Vec<NodeId>> =
            self.peers.iter().fold(HashMap::new(), |mut acc, &p| {
                let ni = *self.next_index.get(&p).unwrap_or(&1);
                acc.entry(ni).or_default().push(p);
                acc
            });
        for (ni, peers) in groups {
            let prev_index = ni - 1;
            let prev_term = self
                .log
                .get(prev_index as usize)
                .map(|e| e.term)
                .unwrap_or(0);
            let start = (ni as usize).min(self.log.len());
            let end = (start + REPAIR_BATCH).min(self.log.len());
            let entries: Vec<RaftEntry> = self.log[start..end].to_vec();
            let msg = RaftMsg::AppendEntries {
                term: self.term,
                prev_index,
                prev_term,
                entries,
                commit: self.commit,
            };
            if peers.len() == self.peers.len() {
                ctx.broadcast(msg);
            } else {
                ctx.multicast(&peers, msg);
            }
        }
    }

    /// The index replicated on a majority of *every* member set of the
    /// active configuration — the joint-consensus commit rule. For a stable
    /// configuration spanning the whole universe this is exactly the
    /// classic single-majority computation.
    fn quorum_commit_floor(&self) -> u64 {
        let mut floor = u64::MAX;
        for set in self.membership.member_sets() {
            let mut matches: Vec<u64> = set
                .iter()
                .map(|&p| {
                    if p == self.id {
                        self.last_index()
                    } else {
                        *self.match_index.get(&p).unwrap_or(&0)
                    }
                })
                .collect();
            matches.sort_unstable_by(|a, b| b.cmp(a));
            let need = majority(set.len().max(1));
            floor = floor.min(matches.get(need - 1).copied().unwrap_or(0));
        }
        if floor == u64::MAX {
            0
        } else {
            floor
        }
    }

    fn advance_commit(&mut self, ctx: &mut dyn Context<RaftMsg>) {
        if self.role != Role::Leader {
            return;
        }
        let quorum_match = self.quorum_commit_floor();
        // Only commit entries from the current term (Raft §5.4.2).
        if quorum_match > self.commit
            && self.log.get(quorum_match as usize).map(|e| e.term) == Some(self.term)
        {
            let before = self.commit;
            self.commit = quorum_match;
            ctx.count(Metric::Commits, self.commit - before);
            for idx in (before + 1)..=self.commit {
                if let Some(id) = self.log[idx as usize].req {
                    ctx.trace(TraceStage::QuorumAck, id);
                }
            }
        }
        self.apply(ctx);
        self.maybe_advance_transition(ctx);
    }

    /// Drives the two-step joint-consensus transition from the leader side:
    /// a *committed* C_old,new entry triggers the C_new entry, and a
    /// committed stable configuration that excludes the leader makes it
    /// hand off (one last commit-bearing heartbeat) and retire. Runs after
    /// every commit advance, so a leader elected mid-transition finishes
    /// the job its predecessor started.
    fn maybe_advance_transition(&mut self, ctx: &mut dyn Context<RaftMsg>) {
        if self.role != Role::Leader {
            return;
        }
        if self.membership_index > self.commit || self.membership_index == 0 {
            return; // transition entry (if any) not yet committed
        }
        if self.membership.is_joint() {
            let stable = self.membership.to_stable();
            let prev_index = self.last_index();
            let prev_term = self.last_term();
            let entries = vec![RaftEntry {
                term: self.term,
                cmd: membership::membership_command(&stable),
                req: None,
            }];
            self.splice(prev_index, entries.clone());
            self.cast(
                ctx,
                RaftMsg::AppendEntries {
                    term: self.term,
                    prev_index,
                    prev_term,
                    entries,
                    commit: self.commit,
                },
            );
            self.advance_commit(ctx); // single-node new config commits now
        } else if !self.membership.contains(self.id) {
            // The committed configuration excludes us: teach the commit
            // index with a final heartbeat, then become a passive learner.
            ctx.broadcast(RaftMsg::AppendEntries {
                term: self.term,
                prev_index: self.last_index(),
                prev_term: self.last_term(),
                entries: Vec::new(),
                commit: self.commit,
            });
            self.retire(ctx);
        } else if let Some(req) = self.pending_reconfig.take() {
            // Transition complete and we still lead: admit the queued
            // change.
            self.on_request(req, ctx);
        }
    }

    fn apply(&mut self, ctx: &mut dyn Context<RaftMsg>) {
        while self.applied < self.commit {
            self.applied += 1;
            let index = self.applied;
            let e = &self.log[index as usize];
            // Migration records mutate the tracker at apply time so crash
            // recovery (which re-drives apply from the recovered log)
            // reconstructs freezes, installs, and cut-overs exactly.
            if e.cmd.key == MIGRATION_KEY {
                let cmd = e.cmd.clone();
                let req = e.req;
                if let Some(rec) = as_migration_record(&cmd) {
                    // Audit record (persist-before-effect).
                    self.persist(&RaftWal::Migration {
                        index,
                        bytes: rec.encode(),
                    });
                    match self.migration.apply(&rec) {
                        MigrationAction::Install(dump) => self.store.install_range(dump),
                        MigrationAction::DropRange(r) => self.store.remove_range(r.lo, r.hi),
                        MigrationAction::None => {}
                    }
                }
                if self.role == Role::Leader {
                    if let Some(id) = req {
                        ctx.trace(TraceStage::Execute, id);
                        ctx.reply(ClientResponse::ok(id, None));
                    }
                }
                continue;
            }
            // Data commands on a range this group froze (or handed off) are
            // deterministically rejected instead of executed, pinning the
            // frozen range's contents on every replica. The client retries
            // (freeze window) or follows the epoch-tagged hand-off.
            if e.cmd.key != CONFIG_KEY {
                if let Some(rej) = self.migration.rejects(e.cmd.key) {
                    if self.role == Role::Leader {
                        if let Some(id) = e.req {
                            ctx.count(Metric::Redirects, 1);
                            let resp = if rej.committed {
                                ClientResponse::handed_off(
                                    id,
                                    Handoff {
                                        lo: rej.spec.range.lo,
                                        hi: rej.spec.range.hi,
                                        group: rej.spec.to,
                                        epoch: rej.spec.epoch,
                                    },
                                )
                            } else {
                                ClientResponse::err(id)
                            };
                            ctx.reply(resp);
                        }
                    }
                    continue;
                }
            }
            // Config entries act at append time, not execute time: they
            // never touch the key-value store (the reserved key must not
            // shadow application data), but the proposing leader still
            // answers the client that requested the change.
            let is_config = e.cmd.key == CONFIG_KEY;
            let value = if is_config {
                None
            } else {
                self.store.execute(&e.cmd)
            };
            if !is_config {
                ctx.count(Metric::Executes, 1);
            }
            if self.role == Role::Leader {
                if let Some(id) = e.req {
                    ctx.trace(TraceStage::Execute, id);
                    ctx.reply(ClientResponse::ok(id, value));
                }
            }
        }
    }

    /// Leader-side handling of a client [`ConfigChange`]: resolves the
    /// delta against the current membership and replicates the resulting
    /// C_old,new entry (adopted on append, committed under dual majority).
    /// No-op changes answer immediately without touching the log, so an
    /// add-then-remove of the same node leaves the run bit-identical to a
    /// static one. One transition at a time: a change arriving mid-flight
    /// waits in `pending_reconfig` (or is rejected if that seat is taken).
    fn handle_reconfig(
        &mut self,
        mut req: ClientRequest,
        change: ConfigChange,
        ctx: &mut dyn Context<RaftMsg>,
    ) {
        if self.membership.is_joint() || self.membership_index > self.commit {
            if self.pending_reconfig.is_none() {
                self.pending_reconfig = Some(req);
            } else {
                ctx.reply(ClientResponse::err(req.id));
            }
            return;
        }
        let members = self.membership.target().to_vec();
        if change.is_noop_on(&members) {
            ctx.reply(ClientResponse::ok(req.id, None));
            return;
        }
        let new = change.apply(&members);
        if new.is_empty() {
            ctx.reply(ClientResponse::err(req.id));
            return;
        }
        let joint = Membership::Joint {
            epoch: self.membership.epoch() + 1,
            old: members,
            new,
        };
        req.cmd = membership::membership_command(&joint);
        // Bypasses batching: a config entry gets its own append and fsync.
        self.flush_entries(vec![req], ctx);
    }
}

impl Replica for Raft {
    type Msg = RaftMsg;

    /// Rebuilds Figure-2 persistent state: checkpoint first (term, vote,
    /// full log), then WAL records in append order. `commit`/`applied` and
    /// the state machine are volatile — the next leader commit index
    /// re-drives execution from the recovered log.
    fn attach_storage(&mut self, mut storage: Box<dyn Storage>) {
        let rec = storage.recover().expect("raft storage must recover");
        if let Some(snap) = &rec.snapshot {
            let snap: RaftCheckpoint =
                paxi_codec::from_bytes(snap).expect("raft checkpoint must decode");
            self.term = snap.term;
            self.voted_for = snap.voted_for;
            self.log = snap.log;
        }
        for bytes in &rec.records {
            match paxi_codec::from_bytes::<RaftWal>(bytes).expect("raft wal must decode") {
                RaftWal::Term { term, voted_for } => {
                    self.term = term;
                    self.voted_for = voted_for;
                }
                RaftWal::Splice {
                    prev_index,
                    entries,
                } => {
                    self.apply_splice(prev_index, entries);
                }
                RaftWal::Membership { index, membership } => {
                    self.membership_index = index;
                    self.membership = membership;
                }
                RaftWal::Migration { .. } => {
                    // Audit-only: `commit`/`applied` are volatile and the
                    // recovered log re-applies every migration record
                    // through the ordinary apply path when the leader's
                    // commit index re-drives execution. Applying them here
                    // would freeze ranges *before* the data commands below
                    // the freeze re-execute — diverging the store.
                }
            }
        }
        // The log is the configuration's source of truth: one final rescan
        // guarantees the recovered node wakes up in the latest (joint or
        // new) configuration its durable log witnessed — never the old one.
        self.rescan_membership();
        self.refresh_peers();
        // Count the replayed records toward the next checkpoint, or a
        // replica that keeps crashing would grow its WAL without bound.
        self.wal_records = rec.records.len() as u64;
        self.wal = Some(storage);
    }

    fn sync_storage(&mut self) {
        if let Some(wal) = &mut self.wal {
            wal.tick().expect("raft replica lost its durable store");
        }
    }

    fn on_start(&mut self, ctx: &mut dyn Context<RaftMsg>) {
        self.last_contact = ctx.now();
        // Requests arriving before the first election resolves are forwarded
        // toward the expected leader rather than buffered indefinitely.
        self.leader_hint = self.cfg.preferred_leader;
        if self.cfg.preferred_leader == Some(self.id) {
            self.start_election(ctx);
        }
        self.arm_election_timer(ctx);
    }

    fn on_message(&mut self, from: NodeId, msg: RaftMsg, ctx: &mut dyn Context<RaftMsg>) {
        match msg {
            RaftMsg::RequestVote {
                term,
                last_log_index,
                last_log_term,
            } => {
                if term > self.term {
                    self.step_down(term, ctx);
                }
                let up_to_date =
                    (last_log_term, last_log_index) >= (self.last_term(), self.last_index());
                let grant = term == self.term
                    && up_to_date
                    && (self.voted_for.is_none() || self.voted_for == Some(from));
                if grant {
                    self.voted_for = Some(from);
                    // A granted vote the disk doesn't know about could be
                    // re-cast for a different candidate after amnesia —
                    // persist before the Vote leaves.
                    self.persist_term();
                    self.last_contact = ctx.now();
                }
                ctx.send(
                    from,
                    RaftMsg::Vote {
                        term: self.term,
                        granted: grant,
                    },
                );
            }
            RaftMsg::Vote { term, granted } => {
                if term > self.term {
                    self.step_down(term, ctx);
                    return;
                }
                if self.role == Role::Candidate && term == self.term && granted {
                    // JointQuorum ignores acks from outside the member
                    // sets, so a removed node's vote can never elect.
                    self.votes.ack(from);
                    if self.votes.satisfied() {
                        self.become_leader(ctx);
                    }
                }
            }
            RaftMsg::AppendEntries {
                term,
                prev_index,
                prev_term,
                entries,
                commit,
            } => {
                if term > self.term || (term == self.term && self.role == Role::Candidate) {
                    self.step_down(term, ctx);
                }
                if term < self.term {
                    ctx.send(
                        from,
                        RaftMsg::AppendAck {
                            term: self.term,
                            success: false,
                            match_index: 0,
                        },
                    );
                    return;
                }
                self.last_contact = ctx.now();
                self.leader_hint = Some(from);
                self.drain_pending(ctx);
                // Consistency check.
                let ok = self
                    .log
                    .get(prev_index as usize)
                    .map(|e| e.term == prev_term)
                    .unwrap_or(false);
                if !ok {
                    if prev_index > self.last_index() && self.stash.len() < 1024 {
                        // The append outran its predecessors (network
                        // reordering): hold it until the gap fills instead
                        // of making the leader back off.
                        self.stash.insert(prev_index, (prev_term, entries, commit));
                        return;
                    }
                    let hint = self.last_index().min(prev_index.saturating_sub(1));
                    ctx.send(
                        from,
                        RaftMsg::AppendAck {
                            term: self.term,
                            success: false,
                            match_index: hint,
                        },
                    );
                    return;
                }
                let match_index = self.splice(prev_index, entries);
                // Drain any stashed appends that now fit.
                let mut match_index = match_index;
                let mut commit_hint = commit;
                loop {
                    let last = self.last_index();
                    let Some((p_term, _, _)) = self.stash.get(&last) else {
                        break;
                    };
                    if self.log[last as usize].term != *p_term {
                        break;
                    }
                    let (_, stashed, c) = self.stash.remove(&last).unwrap();
                    match_index = self.splice(last, stashed);
                    commit_hint = commit_hint.max(c);
                }
                let last = self.last_index();
                self.stash.retain(|&p, _| p > last);
                let before = self.commit;
                self.commit = self.commit.max(commit_hint.min(match_index));
                if self.commit > before {
                    ctx.count(Metric::Commits, self.commit - before);
                }
                self.apply(ctx);
                ctx.send(
                    from,
                    RaftMsg::AppendAck {
                        term: self.term,
                        success: true,
                        match_index,
                    },
                );
            }
            RaftMsg::AppendAck {
                term,
                success,
                match_index,
            } => {
                if term > self.term {
                    self.step_down(term, ctx);
                    return;
                }
                if self.role != Role::Leader || term != self.term {
                    return;
                }
                if success {
                    // Acks from nodes outside the replication set (learners
                    // reached by a universe broadcast, just-removed peers)
                    // carry no quorum weight and are dropped here.
                    let Some(&prev) = self.match_index.get(&from) else {
                        return;
                    };
                    let best = match_index.max(prev);
                    self.match_index.insert(from, best);
                    self.next_index.insert(from, best + 1);
                    self.advance_commit(ctx);
                    // Keep repairing if the follower is still behind a
                    // previous bounded batch.
                    if best + (REPAIR_BATCH as u64) < self.last_index() {
                        self.send_repair(from, ctx);
                    }
                } else {
                    // Back off using the follower's hint and retry with a
                    // bounded batch (an unbounded suffix here turns jitter-
                    // induced reorders into O(log²) repair traffic).
                    let Some(ni) = self.next_index.get_mut(&from) else {
                        return;
                    };
                    *ni = (match_index + 1).min((*ni).saturating_sub(1)).max(1);
                    self.send_repair(from, ctx);
                }
            }
        }
    }

    fn on_request(&mut self, req: ClientRequest, ctx: &mut dyn Context<RaftMsg>) {
        match self.role {
            Role::Leader => {
                if let Some(change) = membership::as_config_change(&req.cmd) {
                    self.handle_reconfig(req, change, ctx);
                } else {
                    self.append_request(req, ctx);
                }
            }
            _ => match self.leader_hint {
                Some(l) if l != self.id => ctx.forward(l, req),
                _ => self.pending.push(req),
            },
        }
    }

    fn on_timer(&mut self, kind: u64, token: u64, ctx: &mut dyn Context<RaftMsg>) {
        match kind {
            TIMER_ELECTION => {
                if token != self.election_token {
                    return;
                }
                if self.role != Role::Leader
                    && ctx.now().saturating_sub(self.last_contact) >= self.cfg.election_timeout
                {
                    self.start_election(ctx);
                }
                self.arm_election_timer(ctx);
            }
            TIMER_HEARTBEAT => {
                if self.role == Role::Leader {
                    ctx.broadcast(RaftMsg::AppendEntries {
                        term: self.term,
                        prev_index: self.last_index(),
                        prev_term: self.last_term(),
                        entries: Vec::new(),
                        commit: self.commit,
                    });
                    ctx.set_timer(self.cfg.heartbeat, TIMER_HEARTBEAT);
                }
            }
            TIMER_BATCH => {
                if Some(token) != self.batch_token {
                    return; // stale: the batch already flushed (or aborted)
                }
                if self.role == Role::Leader {
                    // Hold-down expired with a partial batch: flush it.
                    self.flush_batch(ctx);
                } else {
                    self.abort_batch();
                }
            }
            _ => {}
        }
    }

    fn protocol_name(&self) -> &'static str {
        "raft"
    }

    /// AppendEntries weighs as many commands as it carries (batched appends
    /// and repair bursts alike); heartbeats and everything else weigh 1, so
    /// the simulator's per-command marginal cost only applies where commands
    /// actually flow.
    fn msg_cmds(msg: &RaftMsg) -> u64 {
        match msg {
            RaftMsg::AppendEntries { entries, .. } => entries.len().max(1) as u64,
            _ => 1,
        }
    }

    /// Stable wire-type names for the per-type observability breakdown.
    /// Empty appends are heartbeats and named separately, so the per-commit
    /// replication traffic can be audited without the keepalive noise.
    fn msg_kind(msg: &RaftMsg) -> &'static str {
        match msg {
            RaftMsg::RequestVote { .. } => "request_vote",
            RaftMsg::Vote { .. } => "vote",
            RaftMsg::AppendEntries { entries, .. } if entries.is_empty() => "heartbeat",
            RaftMsg::AppendEntries { .. } => "append_entries",
            RaftMsg::AppendAck { .. } => "append_ack",
        }
    }

    fn store(&self) -> Option<&MultiVersionStore> {
        Some(&self.store)
    }

    /// The node this replica believes is the current Raft leader â the
    /// redirect surface for sharded routing.
    fn leader_hint(&self) -> Option<NodeId> {
        self.leader_hint
    }

    /// The voters of the active configuration — the live runtimes poll this
    /// after each event to add/remove peer links when a transition lands.
    fn current_members(&self) -> Option<Vec<NodeId>> {
        Some(self.membership.voters())
    }

    /// The replica-local migration tracker — the shard runtime polls this to
    /// drive hand-off phases and audit range ownership.
    fn migration(&self) -> Option<&MigrationTracker> {
        Some(&self.migration)
    }
}

/// Convenience factory for a homogeneous Raft cluster.
pub fn raft_cluster(cluster: ClusterConfig, cfg: RaftConfig) -> impl Fn(NodeId) -> Raft {
    move |id| Raft::new(id, cluster.clone(), cfg.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxi_sim::{ClientSetup, SimConfig, Simulator};

    fn lan_sim(n: u8, cfg: RaftConfig, clients: usize) -> Simulator<Raft> {
        let cluster = ClusterConfig::lan(n);
        let setups = ClientSetup::closed_per_zone(&cluster, clients);
        Simulator::new(
            SimConfig {
                record_ops: true,
                ..SimConfig::default()
            },
            cluster.clone(),
            raft_cluster(cluster, cfg),
            paxi_sim::client::uniform_workload(100),
            setups,
        )
    }

    #[test]
    fn raft_serves_requests() {
        let mut sim = lan_sim(3, RaftConfig::default(), 4);
        let report = sim.run();
        assert!(report.completed > 1000, "completed {}", report.completed);
        assert_eq!(report.errors, 0);
    }

    #[test]
    fn heartbeats_keep_a_single_leader() {
        let mut sim = lan_sim(5, RaftConfig::default(), 2);
        let _ = sim.run();
        let leaders: Vec<_> = sim.replicas().iter().filter(|r| r.is_leader()).collect();
        assert_eq!(leaders.len(), 1, "exactly one leader at steady state");
        // All nodes share the leader's term.
        let term = leaders[0].term();
        assert!(sim.replicas().iter().all(|r| r.term() == term));
    }

    #[test]
    fn logs_share_common_prefix() {
        let mut sim = lan_sim(3, RaftConfig::default(), 4);
        let _ = sim.run();
        let stores: Vec<_> = sim.replicas().iter().map(|r| r.store().unwrap()).collect();
        for s in &stores[1..] {
            for key in stores[0].keys() {
                let a = stores[0].history(key);
                let b = s.history(key);
                let common = a.len().min(b.len());
                assert_eq!(&a[..common], &b[..common]);
            }
        }
    }

    #[test]
    fn leader_crash_elects_new_leader_and_resumes() {
        let cluster = ClusterConfig::lan(5);
        let setups = ClientSetup::closed_per_zone(&cluster, 3);
        let cfg = SimConfig {
            warmup: Nanos::millis(100),
            measure: Nanos::secs(4),
            client_retry: Some(Nanos::millis(700)),
            timeline_bucket: Some(Nanos::millis(100)),
            record_ops: false,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(
            cfg,
            cluster.clone(),
            raft_cluster(cluster, RaftConfig::default()),
            paxi_sim::client::uniform_workload(100),
            setups,
        );
        sim.faults_mut()
            .crash(NodeId::new(0, 0), Nanos::secs(1), Nanos::secs(30));
        let report = sim.run();
        let late: u64 = report
            .timeline
            .iter()
            .filter(|(t, _)| *t > Nanos::secs(2))
            .map(|(_, c)| *c)
            .sum();
        assert!(late > 100, "no post-failover progress: {late}");
        let leaders = sim.replicas().iter().filter(|r| r.is_leader()).count();
        assert!(leaders >= 1);
    }

    /// A minimal hand-driven context for unit-testing handler logic without
    /// the simulator.
    struct Probe {
        id: NodeId,
        sent: Vec<(NodeId, RaftMsg)>,
        replies: Vec<paxi_core::ClientResponse>,
    }

    impl paxi_core::traits::Context<RaftMsg> for Probe {
        fn id(&self) -> NodeId {
            self.id
        }
        fn now(&self) -> Nanos {
            Nanos::ZERO
        }
        fn send(&mut self, to: NodeId, msg: RaftMsg) {
            self.sent.push((to, msg));
        }
        fn broadcast(&mut self, msg: RaftMsg) {
            self.sent.push((NodeId::new(255, 255), msg));
        }
        fn multicast(&mut self, to: &[NodeId], msg: RaftMsg) {
            for &t in to {
                self.sent.push((t, msg.clone()));
            }
        }
        fn set_timer(&mut self, _after: Nanos, _kind: u64) -> u64 {
            0
        }
        fn reply(&mut self, resp: paxi_core::ClientResponse) {
            self.replies.push(resp);
        }
        fn forward(&mut self, _to: NodeId, _req: paxi_core::ClientRequest) {}
        fn rand_u64(&mut self) -> u64 {
            7
        }
    }

    fn probe(id: NodeId) -> Probe {
        Probe {
            id,
            sent: Vec::new(),
            replies: Vec::new(),
        }
    }

    #[test]
    fn votes_are_denied_to_stale_logs() {
        let cluster = ClusterConfig::lan(3);
        let mut r = Raft::new(NodeId::new(0, 1), cluster, RaftConfig::default());
        // Give the voter a log entry at term 2.
        r.term = 2;
        r.log.push(RaftEntry {
            term: 2,
            cmd: Command::get(1),
            req: None,
        });
        let mut ctx = probe(NodeId::new(0, 1));
        // Candidate with an older last-log term must be rejected.
        r.on_message(
            NodeId::new(0, 2),
            RaftMsg::RequestVote {
                term: 3,
                last_log_index: 5,
                last_log_term: 1,
            },
            &mut ctx,
        );
        match &ctx.sent[0].1 {
            RaftMsg::Vote { granted, .. } => assert!(!granted, "stale log must not win votes"),
            other => panic!("expected a vote, got {other:?}"),
        }
        // Candidate with an up-to-date log gets the vote.
        r.on_message(
            NodeId::new(0, 2),
            RaftMsg::RequestVote {
                term: 3,
                last_log_index: 5,
                last_log_term: 2,
            },
            &mut ctx,
        );
        match &ctx.sent[1].1 {
            RaftMsg::Vote { granted, .. } => assert!(granted),
            other => panic!("expected a vote, got {other:?}"),
        }
    }

    #[test]
    fn at_most_one_vote_per_term() {
        let cluster = ClusterConfig::lan(3);
        let mut r = Raft::new(NodeId::new(0, 1), cluster, RaftConfig::default());
        let mut ctx = probe(NodeId::new(0, 1));
        r.on_message(
            NodeId::new(0, 0),
            RaftMsg::RequestVote {
                term: 1,
                last_log_index: 0,
                last_log_term: 0,
            },
            &mut ctx,
        );
        r.on_message(
            NodeId::new(0, 2),
            RaftMsg::RequestVote {
                term: 1,
                last_log_index: 0,
                last_log_term: 0,
            },
            &mut ctx,
        );
        let grants: Vec<bool> = ctx
            .sent
            .iter()
            .filter_map(|(_, m)| match m {
                RaftMsg::Vote { granted, .. } => Some(*granted),
                _ => None,
            })
            .collect();
        assert_eq!(
            grants,
            vec![true, false],
            "second candidate in same term denied"
        );
    }

    #[test]
    fn out_of_order_appends_are_stashed_and_drained() {
        let cluster = ClusterConfig::lan(3);
        let mut r = Raft::new(NodeId::new(0, 1), cluster, RaftConfig::default());
        let mut ctx = probe(NodeId::new(0, 1));
        let e = |i: u8| RaftEntry {
            term: 1,
            cmd: Command::put(i as u64, vec![i]),
            req: None,
        };
        // Entry for slot 2 arrives before slot 1: stashed, no nack.
        r.on_message(
            NodeId::new(0, 0),
            RaftMsg::AppendEntries {
                term: 1,
                prev_index: 1,
                prev_term: 1,
                entries: vec![e(2)],
                commit: 0,
            },
            &mut ctx,
        );
        assert!(
            ctx.sent.is_empty(),
            "early append must be buffered silently"
        );
        assert_eq!(r.last_index(), 0);
        // The gap filler arrives: both entries apply, one ack for the pair.
        r.on_message(
            NodeId::new(0, 0),
            RaftMsg::AppendEntries {
                term: 1,
                prev_index: 0,
                prev_term: 0,
                entries: vec![e(1)],
                commit: 0,
            },
            &mut ctx,
        );
        assert_eq!(r.last_index(), 2, "stash drained");
        match &ctx.sent[0].1 {
            RaftMsg::AppendAck {
                success,
                match_index,
                ..
            } => {
                assert!(success);
                assert_eq!(*match_index, 2);
            }
            other => panic!("expected ack, got {other:?}"),
        }
    }

    #[test]
    fn new_leader_appends_a_noop_to_unlock_old_entries() {
        let cluster = ClusterConfig::lan(1); // single node: elects itself
        let mut r = Raft::new(NodeId::new(0, 0), cluster, RaftConfig::default());
        let mut ctx = probe(NodeId::new(0, 0));
        r.on_start(&mut ctx);
        assert!(r.is_leader());
        // Log: sentinel + the term-1 no-op.
        assert_eq!(r.last_index(), 1);
        assert_eq!(r.term(), 1);
    }

    fn request(seq: u64) -> paxi_core::ClientRequest {
        paxi_core::ClientRequest {
            id: RequestId::new(paxi_core::ClientId(1), seq),
            cmd: Command::put(seq, vec![1]),
        }
    }

    fn append_batches(sent: &[(NodeId, RaftMsg)]) -> Vec<usize> {
        sent.iter()
            .filter_map(|(_, m)| match m {
                RaftMsg::AppendEntries { entries, .. } if !entries.is_empty() => {
                    Some(entries.len())
                }
                _ => None,
            })
            .collect()
    }

    #[test]
    fn full_batch_goes_out_as_one_append() {
        let cluster = ClusterConfig::lan(1); // single node: elects itself
        let mut r = Raft::new(NodeId::new(0, 0), cluster, RaftConfig::batched(4));
        let mut ctx = probe(NodeId::new(0, 0));
        r.on_start(&mut ctx);
        assert!(r.is_leader());
        ctx.sent.clear();
        for seq in 0..4 {
            r.on_request(request(seq), &mut ctx);
        }
        assert_eq!(
            append_batches(&ctx.sent),
            vec![4],
            "4 commands: one 4-entry append"
        );
        // Single-node cluster commits immediately: replies fan back out per
        // command, in order.
        assert_eq!(ctx.replies.len(), 4);
        for (i, resp) in ctx.replies.iter().enumerate() {
            assert_eq!(resp.id.seq, i as u64);
        }
    }

    #[test]
    fn partial_batch_flushes_on_the_hold_down_timer() {
        let cluster = ClusterConfig::lan(1);
        let mut r = Raft::new(NodeId::new(0, 0), cluster, RaftConfig::batched(4));
        let mut ctx = probe(NodeId::new(0, 0));
        r.on_start(&mut ctx);
        ctx.sent.clear();
        r.on_request(request(0), &mut ctx);
        r.on_request(request(1), &mut ctx);
        assert!(
            append_batches(&ctx.sent).is_empty(),
            "partial batch must wait"
        );
        // Probe's set_timer always returns token 0.
        r.on_timer(TIMER_BATCH, 0, &mut ctx);
        assert_eq!(append_batches(&ctx.sent), vec![2]);
        assert_eq!(ctx.replies.len(), 2);
        // A stale fire after the flush must not emit an empty batch.
        r.on_timer(TIMER_BATCH, 0, &mut ctx);
        assert_eq!(append_batches(&ctx.sent), vec![2]);
    }

    #[test]
    fn batched_raft_cluster_serves_requests() {
        let mut sim = lan_sim(3, RaftConfig::batched(8), 4);
        let report = sim.run();
        assert!(report.completed > 1000, "completed {}", report.completed);
        assert_eq!(report.errors, 0);
    }

    fn durable_follower(hub: &paxi_storage::MemHub<u32>) -> Raft {
        let mut r = Raft::new(
            NodeId::new(0, 1),
            ClusterConfig::lan(3),
            RaftConfig::default(),
        );
        r.attach_storage(Box::new(hub.open(1)));
        r
    }

    #[test]
    fn term_vote_and_log_survive_amnesia() {
        use paxi_storage::{FsyncPolicy, MemHub};
        let hub: MemHub<u32> = MemHub::new(FsyncPolicy::Always);
        let leader = NodeId::new(0, 0);
        let mut r = durable_follower(&hub);
        let mut ctx = probe(NodeId::new(0, 1));
        r.on_message(
            leader,
            RaftMsg::RequestVote {
                term: 3,
                last_log_index: 0,
                last_log_term: 0,
            },
            &mut ctx,
        );
        let e = |i: u8| RaftEntry {
            term: 3,
            cmd: Command::put(i as u64, vec![i]),
            req: None,
        };
        r.on_message(
            leader,
            RaftMsg::AppendEntries {
                term: 3,
                prev_index: 0,
                prev_term: 0,
                entries: vec![e(1), e(2)],
                commit: 0,
            },
            &mut ctx,
        );
        assert_eq!(r.term(), 3);
        assert_eq!(r.last_index(), 2);
        // Amnesia: rebuild from disk alone.
        drop(r);
        hub.crash(&1);
        let mut r2 = durable_follower(&hub);
        assert_eq!(r2.term(), 3, "current term must survive");
        assert_eq!(r2.last_index(), 2, "acked log entries must survive");
        // The vote is sticky: a different candidate in the same term is
        // denied even after the crash.
        let mut ctx2 = probe(NodeId::new(0, 1));
        r2.on_message(
            NodeId::new(0, 2),
            RaftMsg::RequestVote {
                term: 3,
                last_log_index: 9,
                last_log_term: 3,
            },
            &mut ctx2,
        );
        match &ctx2.sent[0].1 {
            RaftMsg::Vote { granted, .. } => {
                assert!(!granted, "recovered replica must not double-vote in a term");
            }
            other => panic!("expected a vote, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_compacts_the_wal_and_commit_redrives_the_state_machine() {
        use paxi_storage::{FsyncPolicy, MemHub};
        let hub: MemHub<u32> = MemHub::new(FsyncPolicy::Always);
        let leader = NodeId::new(0, 0);
        let mut r = durable_follower(&hub);
        let mut ctx = probe(NodeId::new(0, 1));
        let e = |i: u64| RaftEntry {
            term: 1,
            cmd: Command::put(i % 8, vec![i as u8]),
            req: None,
        };
        for i in 1..=600u64 {
            r.on_message(
                leader,
                RaftMsg::AppendEntries {
                    term: 1,
                    prev_index: i - 1,
                    prev_term: if i == 1 { 0 } else { 1 },
                    entries: vec![e(i)],
                    commit: i - 1,
                },
                &mut ctx,
            );
        }
        assert_eq!(r.last_index(), 600);
        // Flush the commit index so the pre-crash store reflects all 600.
        r.on_message(
            leader,
            RaftMsg::AppendEntries {
                term: 1,
                prev_index: 600,
                prev_term: 1,
                entries: Vec::new(),
                commit: 600,
            },
            &mut ctx,
        );
        assert_eq!(r.store().unwrap().executed(), 600);
        hub.crash(&1);
        let mut r2 = durable_follower(&hub);
        assert_eq!(
            r2.last_index(),
            600,
            "checkpoint + WAL must rebuild the whole log"
        );
        assert_eq!(r2.term(), 1);
        assert_eq!(
            r2.store().unwrap().executed(),
            0,
            "state machine is volatile; nothing executes until commit is re-learned"
        );
        // The next heartbeat re-teaches the commit index and execution
        // catches up from the recovered log.
        let mut ctx2 = probe(NodeId::new(0, 1));
        r2.on_message(
            leader,
            RaftMsg::AppendEntries {
                term: 1,
                prev_index: 600,
                prev_term: 1,
                entries: Vec::new(),
                commit: 600,
            },
            &mut ctx2,
        );
        assert_eq!(r2.store().unwrap().executed(), 600);
        for key in 0..8u64 {
            assert_eq!(
                r2.store().unwrap().history(key),
                r.store().unwrap().history(key)
            );
        }
    }

    fn mig_spec() -> paxi_core::migration::MigrationSpec {
        paxi_core::migration::MigrationSpec {
            id: 1,
            from: GroupId(0),
            to: GroupId(1),
            range: paxi_core::migration::KeyRange::new(10, 20),
            epoch: 1,
        }
    }

    fn put_req(seq: u64, key: u64) -> paxi_core::ClientRequest {
        paxi_core::ClientRequest {
            id: RequestId::new(paxi_core::ClientId(1), seq),
            cmd: Command::put(key, vec![7]),
        }
    }

    #[test]
    fn frozen_range_rejects_writes_then_hands_off_after_commit() {
        use paxi_core::migration::{migration_command, CommitHalf, MigrationRecord};
        let cluster = ClusterConfig::lan(1); // single node: commits immediately
        let mut r = Raft::new(NodeId::new(0, 0), cluster, RaftConfig::default());
        r.set_group(GroupId(0));
        let mut ctx = probe(NodeId::new(0, 0));
        r.on_start(&mut ctx);
        assert!(r.is_leader());

        // Pre-freeze write into the range succeeds.
        r.on_request(put_req(0, 12), &mut ctx);
        assert!(ctx.replies.last().unwrap().ok);

        // The replicated Start freezes [10, 20).
        let start = migration_command(&MigrationRecord::Start(mig_spec()));
        r.on_request(
            paxi_core::ClientRequest {
                id: RequestId::new(paxi_core::ClientId(1), 1),
                cmd: start,
            },
            &mut ctx,
        );
        assert!(ctx.replies.last().unwrap().ok, "start itself is acked");

        // Frozen-range writes are rejected (retryable, no hand-off yet) and
        // never executed.
        r.on_request(put_req(2, 12), &mut ctx);
        let rej = ctx.replies.last().unwrap();
        assert!(!rej.ok);
        assert!(rej.handoff.is_none(), "not committed yet: plain retry");
        assert_eq!(r.store().unwrap().get(12), Some(&vec![7]));

        // Keys outside the range are untouched by the freeze.
        r.on_request(put_req(3, 30), &mut ctx);
        assert!(ctx.replies.last().unwrap().ok);

        // Commit (source half): range dropped, epoch bumped, hand-off taught.
        let commit = migration_command(&MigrationRecord::Commit {
            spec: mig_spec(),
            half: CommitHalf::Source,
        });
        r.on_request(
            paxi_core::ClientRequest {
                id: RequestId::new(paxi_core::ClientId(1), 4),
                cmd: commit,
            },
            &mut ctx,
        );
        assert_eq!(r.store().unwrap().get(12), None, "range dropped at source");
        assert_eq!(r.migration.epoch(), 1);
        r.on_request(put_req(5, 12), &mut ctx);
        let handed = ctx.replies.last().unwrap();
        assert!(!handed.ok);
        let h = handed
            .handoff
            .expect("committed hand-off carries the route");
        assert_eq!((h.lo, h.hi), (10, 20));
        assert_eq!(h.group, GroupId(1));
        assert_eq!(h.epoch, 1);
    }

    #[test]
    fn installed_range_survives_amnesia_via_commit_reteaching() {
        use paxi_core::migration::{
            encode_range_state, migration_command, CommitHalf, MigrationRecord,
        };
        use paxi_storage::{FsyncPolicy, MemHub};
        let hub: MemHub<u32> = MemHub::new(FsyncPolicy::Always);
        let leader = NodeId::new(0, 0);

        // Range state streamed by the source: key 12 with one version.
        let mut src = MultiVersionStore::new();
        src.execute(&Command::put(12, vec![5]));
        let state = encode_range_state(&src.extract_range(10, 20));

        let entries = vec![
            RaftEntry {
                term: 1,
                cmd: migration_command(&MigrationRecord::Install {
                    spec: mig_spec(),
                    state,
                }),
                req: None,
            },
            RaftEntry {
                term: 1,
                cmd: migration_command(&MigrationRecord::Commit {
                    spec: mig_spec(),
                    half: CommitHalf::Dest,
                }),
                req: None,
            },
        ];

        let mut r = durable_follower(&hub);
        r.set_group(GroupId(1)); // destination group
        let mut ctx = probe(NodeId::new(0, 1));
        r.on_message(
            leader,
            RaftMsg::AppendEntries {
                term: 1,
                prev_index: 0,
                prev_term: 0,
                entries: entries.clone(),
                commit: 0,
            },
            &mut ctx,
        );
        r.on_message(
            leader,
            RaftMsg::AppendEntries {
                term: 1,
                prev_index: 2,
                prev_term: 1,
                entries: Vec::new(),
                commit: 2,
            },
            &mut ctx,
        );
        assert_eq!(r.store().unwrap().get(12), Some(&vec![5]));
        assert!(r.migration.installed(1) && r.migration.done(1));
        assert_eq!(r.migration.epoch(), 1);

        // Amnesia: rebuild from disk. Replay ignores the audit records — the
        // tracker and store stay empty until commit is re-taught, which
        // re-applies the migration entries from the recovered log.
        drop(r);
        hub.crash(&1);
        let mut r2 = durable_follower(&hub);
        r2.set_group(GroupId(1));
        assert_eq!(r2.last_index(), 2, "log entries survive");
        assert_eq!(r2.store().unwrap().get(12), None, "state machine volatile");
        assert!(!r2.migration.installed(1));
        let mut ctx2 = probe(NodeId::new(0, 1));
        r2.on_message(
            leader,
            RaftMsg::AppendEntries {
                term: 1,
                prev_index: 2,
                prev_term: 1,
                entries: Vec::new(),
                commit: 2,
            },
            &mut ctx2,
        );
        assert_eq!(r2.store().unwrap().get(12), Some(&vec![5]));
        assert!(r2.migration.installed(1) && r2.migration.done(1));
        assert_eq!(r2.migration.epoch(), 1);
    }

    #[test]
    fn checkpointed_migration_entries_rebuild_the_tracker_on_reteach() {
        use paxi_core::migration::{migration_command, CommitHalf, MigrationRecord};
        use paxi_storage::{FsyncPolicy, MemHub};
        let hub: MemHub<u32> = MemHub::new(FsyncPolicy::Always);
        let leader = NodeId::new(0, 0);
        let mut r = durable_follower(&hub);
        r.set_group(GroupId(0)); // source group
        let mut ctx = probe(NodeId::new(0, 1));
        // Entry 1 freezes the range, entry 2 cuts it over; 600 data entries
        // (outside the range) push the WAL past the checkpoint threshold.
        let cmd_at = |i: u64| match i {
            1 => migration_command(&MigrationRecord::Start(mig_spec())),
            2 => migration_command(&MigrationRecord::Commit {
                spec: mig_spec(),
                half: CommitHalf::Source,
            }),
            _ => Command::put(i % 8, vec![i as u8]),
        };
        for i in 1..=600u64 {
            r.on_message(
                leader,
                RaftMsg::AppendEntries {
                    term: 1,
                    prev_index: i - 1,
                    prev_term: if i == 1 { 0 } else { 1 },
                    entries: vec![RaftEntry {
                        term: 1,
                        cmd: cmd_at(i),
                        req: None,
                    }],
                    commit: i - 1,
                },
                &mut ctx,
            );
        }
        r.on_message(
            leader,
            RaftMsg::AppendEntries {
                term: 1,
                prev_index: 600,
                prev_term: 1,
                entries: Vec::new(),
                commit: 600,
            },
            &mut ctx,
        );
        assert_eq!(r.migration.epoch(), 1);
        assert!(r.migration.rejects(12).unwrap().committed);

        // Amnesia across a checkpoint: the checkpoint embeds the full log
        // (migration entries included), so re-teaching commit rebuilds the
        // tracker even though the WAL tail was compacted away.
        hub.crash(&1);
        let mut r2 = durable_follower(&hub);
        r2.set_group(GroupId(0));
        assert_eq!(r2.last_index(), 600);
        let mut ctx2 = probe(NodeId::new(0, 1));
        r2.on_message(
            leader,
            RaftMsg::AppendEntries {
                term: 1,
                prev_index: 600,
                prev_term: 1,
                entries: Vec::new(),
                commit: 600,
            },
            &mut ctx2,
        );
        assert_eq!(r2.migration.epoch(), 1);
        assert!(r2.migration.rejects(12).unwrap().committed);
        for key in 0..8u64 {
            assert_eq!(
                r2.store().unwrap().history(key),
                r.store().unwrap().history(key)
            );
        }
    }

    #[test]
    fn raft_throughput_is_in_the_same_class_as_paxos() {
        // Fig 7's claim: Raft and Paxos converge to similar max throughput.
        let mut raft_sim = lan_sim(9, RaftConfig::default(), 40);
        let raft_tput = raft_sim.run().throughput;
        let cluster = ClusterConfig::lan(9);
        let setups = ClientSetup::closed_per_zone(&cluster, 40);
        let mut paxos_sim = Simulator::new(
            SimConfig::default(),
            cluster.clone(),
            crate::paxos::paxos_cluster(cluster, crate::paxos::PaxosConfig::default()),
            paxi_sim::client::uniform_workload(100),
            setups,
        );
        let paxos_tput = paxos_sim.run().throughput;
        let ratio = raft_tput / paxos_tput;
        assert!(
            (0.6..1.6).contains(&ratio),
            "raft {raft_tput} vs paxos {paxos_tput}"
        );
    }

    // --- joint-consensus reconfiguration ---

    fn reconfig_request(seq: u64, change: &ConfigChange) -> paxi_core::ClientRequest {
        paxi_core::ClientRequest {
            id: RequestId::new(paxi_core::ClientId(9), seq),
            cmd: membership::reconfig_command(change),
        }
    }

    #[test]
    fn joint_reconfig_adds_a_node_end_to_end() {
        let n0 = NodeId::new(0, 0);
        let n1 = NodeId::new(0, 1);
        // Universe of two, but only n0 votes initially: n1 is a learner.
        let cfg = RaftConfig {
            initial_members: Some(vec![n0]),
            ..Default::default()
        };
        let mut r = Raft::new(n0, ClusterConfig::lan(2), cfg);
        let mut ctx = probe(n0);
        r.on_start(&mut ctx);
        assert!(r.is_leader(), "sole member elects itself");
        r.on_request(reconfig_request(1, &ConfigChange::add(vec![n1])), &mut ctx);
        assert!(r.membership().is_joint(), "C_old,new adopted on append");
        assert_eq!(r.config_epoch(), 1);
        // The joint entry cannot commit on the old majority alone: it needs
        // the new set's majority, i.e. the joiner's ack.
        r.on_message(
            n1,
            RaftMsg::AppendAck {
                term: r.term(),
                success: true,
                match_index: 2,
            },
            &mut ctx,
        );
        assert!(
            !r.membership().is_joint(),
            "committed joint entry triggers C_new"
        );
        assert_eq!(r.members(), vec![n0, n1]);
        assert_eq!(r.config_epoch(), 1);
        assert!(
            ctx.replies.iter().any(|resp| resp.id.seq == 1 && resp.ok),
            "client is answered when the joint entry commits"
        );
    }

    #[test]
    fn leader_hands_off_and_retires_when_removed() {
        let n0 = NodeId::new(0, 0);
        let n1 = NodeId::new(0, 1);
        let mut r = Raft::new(n0, ClusterConfig::lan(2), RaftConfig::default());
        let mut ctx = probe(n0);
        r.on_start(&mut ctx);
        r.on_message(
            n1,
            RaftMsg::Vote {
                term: 1,
                granted: true,
            },
            &mut ctx,
        );
        assert!(r.is_leader());
        r.on_message(
            n1,
            RaftMsg::AppendAck {
                term: 1,
                success: true,
                match_index: 1,
            },
            &mut ctx,
        );
        r.on_request(
            reconfig_request(1, &ConfigChange::remove(vec![n0])),
            &mut ctx,
        );
        assert!(r.membership().is_joint());
        // n1 acks the joint entry (index 2): dual majority met, C_new out.
        r.on_message(
            n1,
            RaftMsg::AppendAck {
                term: 1,
                success: true,
                match_index: 2,
            },
            &mut ctx,
        );
        assert!(!r.membership().is_joint());
        assert!(
            r.is_leader(),
            "leader manages the cluster until C_new commits"
        );
        // n1 acks C_new (index 3): the excluded leader hands off and retires.
        r.on_message(
            n1,
            RaftMsg::AppendAck {
                term: 1,
                success: true,
                match_index: 3,
            },
            &mut ctx,
        );
        assert!(
            !r.is_leader(),
            "excluded leader steps down after C_new commits"
        );
        assert_eq!(r.members(), vec![n1]);
        // And it can never campaign again.
        r.start_election(&mut ctx);
        assert!(!r.is_leader());
        assert_eq!(r.term(), 1, "non-member must not inflate terms");
    }

    #[test]
    fn noop_reconfig_answers_without_touching_the_log() {
        let n0 = NodeId::new(0, 0);
        let mut r = Raft::new(n0, ClusterConfig::lan(1), RaftConfig::default());
        let mut ctx = probe(n0);
        r.on_start(&mut ctx);
        let before = r.last_index();
        let change = ConfigChange {
            add: vec![n0],
            remove: vec![],
        };
        r.on_request(reconfig_request(1, &change), &mut ctx);
        assert_eq!(r.last_index(), before, "no-op change must not grow the log");
        assert_eq!(r.config_epoch(), 0);
        assert!(ctx.replies[0].ok);
    }

    #[test]
    fn learner_outside_the_membership_never_campaigns() {
        let n0 = NodeId::new(0, 0);
        let n1 = NodeId::new(0, 1);
        let cfg = RaftConfig {
            initial_members: Some(vec![n0]),
            preferred_leader: Some(n1),
            ..Default::default()
        };
        let mut r = Raft::new(n1, ClusterConfig::lan(2), cfg);
        let mut ctx = probe(n1);
        r.on_start(&mut ctx);
        assert!(!r.is_leader());
        assert_eq!(r.term(), 0);
        assert!(ctx.sent.is_empty(), "no RequestVote may leave a non-member");
    }

    #[test]
    fn truncation_rolls_the_membership_back() {
        let n1 = NodeId::new(0, 1);
        let leader = NodeId::new(0, 0);
        let mut r = Raft::new(n1, ClusterConfig::lan(3), RaftConfig::default());
        let mut ctx = probe(n1);
        let joint = Membership::Joint {
            epoch: 1,
            old: ClusterConfig::lan(3).all_nodes(),
            new: vec![leader, n1],
        };
        let cfg_entry = RaftEntry {
            term: 1,
            cmd: membership::membership_command(&joint),
            req: None,
        };
        r.on_message(
            leader,
            RaftMsg::AppendEntries {
                term: 1,
                prev_index: 0,
                prev_term: 0,
                entries: vec![cfg_entry],
                commit: 0,
            },
            &mut ctx,
        );
        assert!(r.membership().is_joint());
        // A higher-term leader overwrites the uncommitted config entry.
        r.on_message(
            leader,
            RaftMsg::AppendEntries {
                term: 2,
                prev_index: 0,
                prev_term: 0,
                entries: vec![RaftEntry {
                    term: 2,
                    cmd: Command::put(1, vec![1]),
                    req: None,
                }],
                commit: 0,
            },
            &mut ctx,
        );
        assert!(
            !r.membership().is_joint(),
            "truncated config entry must be un-adopted"
        );
        assert_eq!(
            r.config_epoch(),
            0,
            "fell back to the initial configuration"
        );
    }

    #[test]
    fn mid_transition_restart_recovers_joint_then_new_config() {
        use paxi_storage::{FsyncPolicy, MemHub};
        let hub: MemHub<u32> = MemHub::new(FsyncPolicy::Always);
        let leader = NodeId::new(0, 0);
        let n1 = NodeId::new(0, 1);
        let all = ClusterConfig::lan(3).all_nodes();
        let joint = Membership::Joint {
            epoch: 1,
            old: all.clone(),
            new: vec![leader, n1],
        };
        let mut r = durable_follower(&hub);
        let mut ctx = probe(n1);
        r.on_message(
            leader,
            RaftMsg::AppendEntries {
                term: 1,
                prev_index: 0,
                prev_term: 0,
                entries: vec![RaftEntry {
                    term: 1,
                    cmd: membership::membership_command(&joint),
                    req: None,
                }],
                commit: 0,
            },
            &mut ctx,
        );
        assert!(r.membership().is_joint());
        // Amnesia mid-transition: the rebuilt node must wake up joint —
        // never in the old configuration.
        drop(r);
        hub.crash(&1);
        let mut r2 = durable_follower(&hub);
        assert!(
            r2.membership().is_joint(),
            "restart lands in the joint config"
        );
        assert_eq!(r2.config_epoch(), 1);
        assert_eq!(r2.members(), all, "joint voters span old ∪ new");
        // The transition completes: C_new arrives, then another crash.
        let stable = joint.to_stable();
        let mut ctx2 = probe(n1);
        r2.on_message(
            leader,
            RaftMsg::AppendEntries {
                term: 1,
                prev_index: 1,
                prev_term: 1,
                entries: vec![RaftEntry {
                    term: 1,
                    cmd: membership::membership_command(&stable),
                    req: None,
                }],
                commit: 1,
            },
            &mut ctx2,
        );
        drop(r2);
        hub.crash(&1);
        let r3 = durable_follower(&hub);
        assert!(!r3.membership().is_joint());
        assert_eq!(
            r3.members(),
            vec![leader, n1],
            "restart lands in the new config"
        );
        assert_eq!(r3.config_epoch(), 1);
    }
}
