//! # paxi-protocols
//!
//! Strongly-consistent replication protocols implemented over `paxi-core`.

#![warn(missing_docs)]

pub mod paxos;
pub mod wpaxos;
pub mod epaxos;
pub mod groups;
pub mod vpaxos;
pub mod wankeeper;
pub mod raft;

pub use paxos::{MultiPaxos, PaxosConfig, PaxosMsg};
pub use epaxos::{EPaxos, EpaxosMsg, IRef};
pub use raft::{Raft, RaftConfig, RaftMsg};
pub use vpaxos::{VPaxos, VPaxosConfig, VpMsg};
pub use wankeeper::{WanKeeper, WanKeeperConfig, WkMsg};
pub use wpaxos::{WPaxos, WPaxosConfig, WPaxosMsg};
