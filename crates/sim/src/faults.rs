//! Fault injection (re-exported from `paxi_core::faults`).
//!
//! The Crash / Drop / Slow / Flaky primitives and the [`FaultPlan`] schedule
//! live in `paxi-core` so the exact same plan type drives both this
//! simulator (under virtual time) and the live transports in
//! `paxi-transport` (under wall-clock time, via
//! `paxi_transport::FaultInjector`). This module re-exports them under
//! their historical `paxi_sim` paths.
//!
//! The simulator queries [`FaultPlan::is_crashed`] before dispatching any
//! event to a node, [`FaultPlan::message_fate`] for every emitted message,
//! and schedules a restart event ([`paxi_core::traits::Replica::on_restart`])
//! at each crash window's end so recovered nodes rejoin the protocol.

pub use paxi_core::faults::{CrashMode, FaultPlan, FaultWindow, MsgFate};
