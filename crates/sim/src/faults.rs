//! Fault injection.
//!
//! Paxi exposes four fault-injection commands realized inside the networking
//! module — `Crash(t)`, `Drop(i, j, t)`, `Slow(i, j, t)`, and `Flaky(i, j,
//! t)` — so availability experiments don't need OS-level tooling like Jepsen
//! or Chaos Monkey. The simulator implements the same four primitives plus a
//! convenience bidirectional [`FaultPlan::partition`].
//!
//! Semantics:
//! * **Crash** freezes a node for an interval: events addressed to it
//!   (messages, requests, timers) are silently discarded while frozen.
//! * **Drop** discards every message from `i` to `j` during the interval.
//! * **Slow** adds a random extra delay (uniform in `[0, max_delay)`) to
//!   messages from `i` to `j`.
//! * **Flaky** drops each message from `i` to `j` independently with
//!   probability `p`.

use paxi_core::dist::Rng64;
use paxi_core::id::NodeId;
use paxi_core::time::Nanos;

#[derive(Debug, Clone)]
struct Window {
    from: Nanos,
    until: Nanos,
}

impl Window {
    fn contains(&self, t: Nanos) -> bool {
        t >= self.from && t < self.until
    }
}

#[derive(Debug, Clone)]
struct LinkRule {
    src: NodeId,
    dst: NodeId,
    window: Window,
    kind: LinkFault,
}

#[derive(Debug, Clone)]
enum LinkFault {
    Drop,
    Flaky { p: f64 },
    Slow { max_delay: Nanos },
}

/// What the fault plan decided about one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgFate {
    /// Deliver, possibly with extra delay.
    Deliver {
        /// Extra delay injected by a `Slow` rule.
        extra_delay: Nanos,
    },
    /// Discard the message.
    Dropped,
}

/// A schedule of injected faults, queried by the simulator at delivery time.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    crashes: Vec<(NodeId, Window)>,
    links: Vec<LinkRule>,
}

impl FaultPlan {
    /// Empty plan (no faults).
    pub fn new() -> Self {
        Self::default()
    }

    /// Freezes `node` from `at` for `duration`.
    pub fn crash(&mut self, node: NodeId, at: Nanos, duration: Nanos) -> &mut Self {
        self.crashes.push((node, Window { from: at, until: at + duration }));
        self
    }

    /// Drops all messages `src → dst` in the window.
    pub fn drop_link(&mut self, src: NodeId, dst: NodeId, at: Nanos, duration: Nanos) -> &mut Self {
        self.links.push(LinkRule {
            src,
            dst,
            window: Window { from: at, until: at + duration },
            kind: LinkFault::Drop,
        });
        self
    }

    /// Drops each message `src → dst` with probability `p` in the window.
    pub fn flaky_link(
        &mut self,
        src: NodeId,
        dst: NodeId,
        p: f64,
        at: Nanos,
        duration: Nanos,
    ) -> &mut Self {
        self.links.push(LinkRule {
            src,
            dst,
            window: Window { from: at, until: at + duration },
            kind: LinkFault::Flaky { p },
        });
        self
    }

    /// Adds up to `max_delay` of random extra latency on `src → dst`.
    pub fn slow_link(
        &mut self,
        src: NodeId,
        dst: NodeId,
        max_delay: Nanos,
        at: Nanos,
        duration: Nanos,
    ) -> &mut Self {
        self.links.push(LinkRule {
            src,
            dst,
            window: Window { from: at, until: at + duration },
            kind: LinkFault::Slow { max_delay },
        });
        self
    }

    /// Symmetric partition: drops all traffic between every node of `a` and
    /// every node of `b`, both directions, in the window.
    pub fn partition(&mut self, a: &[NodeId], b: &[NodeId], at: Nanos, duration: Nanos) -> &mut Self {
        for &x in a {
            for &y in b {
                self.drop_link(x, y, at, duration);
                self.drop_link(y, x, at, duration);
            }
        }
        self
    }

    /// Whether `node` is frozen at time `t`.
    pub fn is_crashed(&self, node: NodeId, t: Nanos) -> bool {
        self.crashes.iter().any(|(n, w)| *n == node && w.contains(t))
    }

    /// Decides the fate of a message sent `src → dst` at time `t`.
    pub fn message_fate(&self, src: NodeId, dst: NodeId, t: Nanos, rng: &mut Rng64) -> MsgFate {
        let mut extra = Nanos::ZERO;
        for rule in &self.links {
            if rule.src != src || rule.dst != dst || !rule.window.contains(t) {
                continue;
            }
            match rule.kind {
                LinkFault::Drop => return MsgFate::Dropped,
                LinkFault::Flaky { p } => {
                    if rng.chance(p) {
                        return MsgFate::Dropped;
                    }
                }
                LinkFault::Slow { max_delay } => {
                    extra += Nanos(rng.below(max_delay.0.max(1)));
                }
            }
        }
        MsgFate::Deliver { extra_delay: extra }
    }

    /// Whether the plan contains any fault at all.
    pub fn is_empty(&self) -> bool {
        self.crashes.is_empty() && self.links.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(z: u8, i: u8) -> NodeId {
        NodeId::new(z, i)
    }

    #[test]
    fn crash_window_is_half_open() {
        let mut p = FaultPlan::new();
        p.crash(n(0, 0), Nanos::secs(1), Nanos::secs(2));
        assert!(!p.is_crashed(n(0, 0), Nanos::millis(999)));
        assert!(p.is_crashed(n(0, 0), Nanos::secs(1)));
        assert!(p.is_crashed(n(0, 0), Nanos::millis(2_999)));
        assert!(!p.is_crashed(n(0, 0), Nanos::secs(3)));
        assert!(!p.is_crashed(n(0, 1), Nanos::secs(2)), "other nodes unaffected");
    }

    #[test]
    fn drop_is_directional() {
        let mut p = FaultPlan::new();
        p.drop_link(n(0, 0), n(0, 1), Nanos::ZERO, Nanos::secs(10));
        let mut rng = Rng64::seed(1);
        assert_eq!(p.message_fate(n(0, 0), n(0, 1), Nanos::secs(1), &mut rng), MsgFate::Dropped);
        assert_eq!(
            p.message_fate(n(0, 1), n(0, 0), Nanos::secs(1), &mut rng),
            MsgFate::Deliver { extra_delay: Nanos::ZERO }
        );
    }

    #[test]
    fn flaky_drops_roughly_p_fraction() {
        let mut p = FaultPlan::new();
        p.flaky_link(n(0, 0), n(0, 1), 0.3, Nanos::ZERO, Nanos::secs(100));
        let mut rng = Rng64::seed(9);
        let mut dropped = 0;
        let trials = 20_000;
        for _ in 0..trials {
            if p.message_fate(n(0, 0), n(0, 1), Nanos::secs(1), &mut rng) == MsgFate::Dropped {
                dropped += 1;
            }
        }
        let frac = dropped as f64 / trials as f64;
        assert!((frac - 0.3).abs() < 0.02, "drop fraction {}", frac);
    }

    #[test]
    fn slow_adds_bounded_delay() {
        let mut p = FaultPlan::new();
        p.slow_link(n(0, 0), n(0, 1), Nanos::millis(5), Nanos::ZERO, Nanos::secs(100));
        let mut rng = Rng64::seed(2);
        for _ in 0..1000 {
            match p.message_fate(n(0, 0), n(0, 1), Nanos::secs(1), &mut rng) {
                MsgFate::Deliver { extra_delay } => assert!(extra_delay < Nanos::millis(5)),
                MsgFate::Dropped => panic!("slow must not drop"),
            }
        }
    }

    #[test]
    fn partition_blocks_both_directions() {
        let mut p = FaultPlan::new();
        p.partition(&[n(0, 0)], &[n(1, 0), n(1, 1)], Nanos::ZERO, Nanos::secs(5));
        let mut rng = Rng64::seed(3);
        for (a, b) in [(n(0, 0), n(1, 0)), (n(1, 0), n(0, 0)), (n(0, 0), n(1, 1))] {
            assert_eq!(p.message_fate(a, b, Nanos::secs(1), &mut rng), MsgFate::Dropped);
        }
        // Unrelated pair unaffected.
        assert_eq!(
            p.message_fate(n(1, 0), n(1, 1), Nanos::secs(1), &mut rng),
            MsgFate::Deliver { extra_delay: Nanos::ZERO }
        );
        // After the window traffic flows again.
        assert_eq!(
            p.message_fate(n(0, 0), n(1, 0), Nanos::secs(6), &mut rng),
            MsgFate::Deliver { extra_delay: Nanos::ZERO }
        );
    }
}
