//! Simulation results.

use paxi_core::command::{Key, Value};
use paxi_core::id::{ClientId, NodeId};
use paxi_core::metrics::{Histogram, LatencySummary};
use paxi_core::obs::{ClusterMetrics, TraceRing};
use paxi_core::time::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One completed (or abandoned) client operation, as consumed by the
/// linearizability checker.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpRecord {
    /// Issuing client.
    pub client: ClientId,
    /// Key the operation targeted.
    pub key: Key,
    /// `Some(v)` when the operation wrote `v`.
    pub write: Option<Value>,
    /// `Some(result)` when the operation was a read; `result` is the value
    /// the system returned (`None` = key absent).
    pub read: Option<Option<Value>>,
    /// Invocation time at the client.
    pub invoke: Nanos,
    /// Response time at the client (or abandonment time for failed ops).
    pub ret: Nanos,
    /// Whether the operation completed successfully.
    pub ok: bool,
}

/// Per-node accounting.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct NodeStats {
    /// The node.
    pub id: NodeId,
    /// Events (messages, requests, timers) handled.
    pub handled: u64,
    /// Messages transmitted on the wire.
    pub sent: u64,
    /// Total busy (service) time accumulated.
    pub busy: Nanos,
    /// Fraction of the run the node's queue was busy — the paper's queue
    /// utilization ρ. The busiest node determines system capacity.
    pub utilization: f64,
}

/// Everything a simulation run produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Length of the measurement window.
    pub window: Nanos,
    /// Requests issued during the window.
    pub issued: u64,
    /// Requests completed during the window.
    pub completed: u64,
    /// Requests that returned an error response.
    pub errors: u64,
    /// Requests abandoned by the retry timeout.
    pub abandoned: u64,
    /// Completions per second over the window.
    pub throughput: f64,
    /// Latency summary over all completions in the window.
    pub latency: LatencySummary,
    /// Full latency histogram (for CDFs, Figure 13b).
    pub histogram: Histogram,
    /// Latency summaries split by client zone (Figures 11, 13a).
    pub zone_latency: BTreeMap<u8, LatencySummary>,
    /// Full per-zone histograms.
    pub zone_histogram: BTreeMap<u8, Histogram>,
    /// Per-node accounting; exposes the leader bottleneck directly.
    pub node_stats: Vec<NodeStats>,
    /// Operation log (only when `record_ops` was set).
    pub ops: Vec<OpRecord>,
    /// Completions per timeline bucket (only when `timeline_bucket` was
    /// set) — used by availability experiments to see service gaps.
    pub timeline: Vec<(Nanos, u64)>,
    /// Total simulator events processed (diagnostic).
    pub events_processed: u64,
    /// Per-node observability metrics (only when [`crate::SimConfig`]'s
    /// `metrics` flag was set). Deterministic: two runs with the same seed
    /// produce identical snapshots.
    pub metrics: Option<ClusterMetrics>,
    /// The request-lifecycle trace ring (only with `metrics` on and a
    /// nonzero `trace_capacity`).
    pub trace: Option<TraceRing>,
}

impl SimReport {
    /// The busiest node's utilization — the load on the bottleneck node.
    pub fn max_utilization(&self) -> f64 {
        self.node_stats
            .iter()
            .map(|n| n.utilization)
            .fold(0.0, f64::max)
    }

    /// The node that handled the most messages (the de-facto leader in
    /// single-leader protocols).
    pub fn busiest_node(&self) -> Option<NodeId> {
        self.node_stats
            .iter()
            .max_by_key(|n| n.handled)
            .map(|n| n.id)
    }

    /// Mean latency in milliseconds (convenience for tables).
    pub fn mean_latency_ms(&self) -> f64 {
        self.latency.mean.as_millis_f64()
    }
}
