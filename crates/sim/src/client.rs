//! Simulated clients and the workload interface.
//!
//! Clients attach to one replica (normally in their own zone, like Paxi's
//! RESTful clients attaching to the nearest node) and drive load in one of
//! two modes:
//!
//! * **Closed loop** — a client keeps exactly one request outstanding,
//!   issuing the next one `think` after the previous response. Sweeping the
//!   number of closed-loop clients is how the paper pushes systems to
//!   saturation.
//! * **Open loop** — requests arrive as a Poisson process of the given rate
//!   regardless of outstanding responses; this matches the arrival
//!   assumption of the queueing models and is used to cross-validate them.

use paxi_core::command::Command;
use paxi_core::config::ClusterConfig;
use paxi_core::dist::Rng64;
use paxi_core::id::{ClientId, NodeId};
use paxi_core::membership::{reconfig_command, ConfigChange};
use paxi_core::migration::{migration_command, MigrationRecord, MigrationSpec};
use paxi_core::time::Nanos;

/// How a client issues requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// One outstanding request; next issued `think` after each response.
    Closed {
        /// Think time between response and next request.
        think: Nanos,
    },
    /// Poisson arrivals at `rate` requests/second, independent of responses.
    Open {
        /// Mean request rate in requests per second.
        rate: f64,
    },
}

/// Static description of one simulated client.
#[derive(Debug, Clone)]
pub struct ClientSetup {
    /// The zone the client lives in (determines its network latency).
    pub zone: u8,
    /// The replica it sends requests to.
    pub attach: NodeId,
    /// Its load mode.
    pub mode: LoadMode,
}

impl ClientSetup {
    /// `count` closed-loop clients in every zone, attached round-robin to
    /// the replicas of their zone, with zero think time.
    pub fn closed_per_zone(cluster: &ClusterConfig, count: usize) -> Vec<ClientSetup> {
        let mut v = Vec::new();
        for z in 0..cluster.zones {
            for i in 0..count {
                v.push(ClientSetup {
                    zone: z,
                    attach: NodeId::new(z, (i % cluster.per_zone as usize) as u8),
                    mode: LoadMode::Closed { think: Nanos::ZERO },
                });
            }
        }
        v
    }

    /// `count` closed-loop clients in a single zone.
    pub fn closed_in_zone(cluster: &ClusterConfig, zone: u8, count: usize) -> Vec<ClientSetup> {
        (0..count)
            .map(|i| ClientSetup {
                zone,
                attach: NodeId::new(zone, (i % cluster.per_zone as usize) as u8),
                mode: LoadMode::Closed { think: Nanos::ZERO },
            })
            .collect()
    }

    /// Open-loop clients, one per zone, each at `rate_per_zone` req/s.
    pub fn open_per_zone(cluster: &ClusterConfig, rate_per_zone: f64) -> Vec<ClientSetup> {
        (0..cluster.zones)
            .map(|z| ClientSetup {
                zone: z,
                attach: NodeId::new(z, 0),
                mode: LoadMode::Open {
                    rate: rate_per_zone,
                },
            })
            .collect()
    }

    /// A single open-loop client in zone 0 at `rate` req/s — the setup used
    /// to validate the queueing models (Figure 4).
    pub fn open_single(rate: f64) -> Vec<ClientSetup> {
        vec![ClientSetup {
            zone: 0,
            attach: NodeId::new(0, 0),
            mode: LoadMode::Open { rate },
        }]
    }
}

/// A workload generates the next command for a client. Implemented by the
/// generators in `paxi-bench`; closures work too.
pub trait Workload {
    /// Produces the command for the `seq`-th request of `client` in `zone`,
    /// issued at (virtual or wall-clock) time `now` — the timestamp lets
    /// workloads implement time-varying patterns like a moving hotspot.
    fn next(
        &mut self,
        client: ClientId,
        zone: u8,
        seq: u64,
        now: Nanos,
        rng: &mut Rng64,
    ) -> Command;
}

impl<F: FnMut(ClientId, u8, u64, Nanos, &mut Rng64) -> Command> Workload for F {
    fn next(
        &mut self,
        client: ClientId,
        zone: u8,
        seq: u64,
        now: Nanos,
        rng: &mut Rng64,
    ) -> Command {
        self(client, zone, seq, now, rng)
    }
}

/// A trivial workload: 50/50 read/write over `k` uniformly random keys, with
/// unique write payloads (client id + sequence encoded as 12 bytes) so the
/// linearizability checker can identify every write.
pub fn uniform_workload(k: u64) -> impl Workload {
    move |client: ClientId, _zone: u8, seq: u64, _now: Nanos, rng: &mut Rng64| {
        let key = rng.below(k);
        if rng.chance(0.5) {
            Command::get(key)
        } else {
            Command::put(key, unique_value(client, seq))
        }
    }
}

/// Wraps a workload so that one designated client issues a
/// membership-change request once virtual time reaches `at`; every other
/// request (and every other client) passes through to the inner workload
/// untouched.
///
/// The change is re-submitted every [`ReconfigWorkload::REFIRE_EVERY`]-th
/// request of the designated client: a lone submission can be eaten by a
/// crashed leader and the simulator's retry machinery abandons lost
/// requests rather than re-sending them. Re-fires are safe by construction
/// — once the change is applied it decodes as a no-op against the current
/// membership and is acknowledged without consuming a log slot.
///
/// A change that is a no-op against `initial` (e.g. add-then-remove the
/// same node) is elided entirely — the wrapper becomes bit-identical to the
/// inner workload, which is exactly what the reconfiguration determinism
/// fingerprints assert.
pub struct ReconfigWorkload<W> {
    inner: W,
    at: Nanos,
    change: ConfigChange,
    client: ClientId,
    elide: bool,
    fired: u64,
    since_fire: u64,
}

impl<W: Workload> ReconfigWorkload<W> {
    /// The designated client re-submits the change every this-many of its
    /// own requests (first submission at `at`, then on this cadence).
    pub const REFIRE_EVERY: u64 = 8;

    /// Wraps `inner` so `client` submits `change` starting at the first
    /// request it issues at or after `at`. `initial` is the membership the
    /// cluster starts with, used only to detect (and elide) no-op changes.
    pub fn new(
        inner: W,
        client: ClientId,
        at: Nanos,
        change: ConfigChange,
        initial: &[NodeId],
    ) -> Self {
        let elide = change.is_noop_on(initial);
        ReconfigWorkload {
            inner,
            at,
            change,
            client,
            elide,
            fired: 0,
            since_fire: 0,
        }
    }

    /// Whether the reconfiguration request has been issued at least once.
    pub fn fired(&self) -> bool {
        self.fired > 0
    }
}

impl<W: Workload> Workload for ReconfigWorkload<W> {
    fn next(
        &mut self,
        client: ClientId,
        zone: u8,
        seq: u64,
        now: Nanos,
        rng: &mut Rng64,
    ) -> Command {
        if !self.elide && client == self.client && now >= self.at {
            if self.fired == 0 || self.since_fire + 1 >= Self::REFIRE_EVERY {
                self.fired += 1;
                self.since_fire = 0;
                return reconfig_command(&self.change);
            }
            self.since_fire += 1;
        }
        self.inner.next(client, zone, seq, now, rng)
    }
}

/// Wraps a workload so that one designated client kicks off a shard
/// migration (the replicated `MigrationStart` record, routed to the source
/// group) once virtual time reaches `at`; every other request — and every
/// other client — passes through to the inner workload untouched. The
/// remaining phases (stream, install, commit) are driven server-side by the
/// sharded runtime's migration driver.
///
/// Like [`ReconfigWorkload`], the kick-off is re-submitted every
/// [`MigrationWorkload::REFIRE_EVERY`]-th request of the designated client:
/// a lone submission can be eaten by a crashed source leader, and re-fires
/// are safe by construction — a `Start` for an id the tracker already
/// carries is an acknowledged no-op.
///
/// An invalid spec (empty range, or source == destination) is elided
/// entirely, making the wrapper bit-identical to the inner workload — what
/// the migration determinism fingerprints assert.
pub struct MigrationWorkload<W> {
    inner: W,
    at: Nanos,
    spec: MigrationSpec,
    client: ClientId,
    elide: bool,
    fired: u64,
    since_fire: u64,
}

impl<W: Workload> MigrationWorkload<W> {
    /// The designated client re-submits the kick-off every this-many of its
    /// own requests (first submission at `at`, then on this cadence).
    pub const REFIRE_EVERY: u64 = 8;

    /// Wraps `inner` so `client` submits `MigrationStart(spec)` starting at
    /// the first request it issues at or after `at`.
    pub fn new(inner: W, client: ClientId, at: Nanos, spec: MigrationSpec) -> Self {
        let elide = !spec.is_valid();
        MigrationWorkload {
            inner,
            at,
            spec,
            client,
            elide,
            fired: 0,
            since_fire: 0,
        }
    }

    /// Whether the kick-off request has been issued at least once.
    pub fn fired(&self) -> bool {
        self.fired > 0
    }
}

impl<W: Workload> Workload for MigrationWorkload<W> {
    fn next(
        &mut self,
        client: ClientId,
        zone: u8,
        seq: u64,
        now: Nanos,
        rng: &mut Rng64,
    ) -> Command {
        if !self.elide && client == self.client && now >= self.at {
            if self.fired == 0 || self.since_fire + 1 >= Self::REFIRE_EVERY {
                self.fired += 1;
                self.since_fire = 0;
                return migration_command(&MigrationRecord::Start(self.spec));
            }
            self.since_fire += 1;
        }
        self.inner.next(client, zone, seq, now, rng)
    }
}

/// Encodes `(client, seq)` into a 12-byte unique value.
pub fn unique_value(client: ClientId, seq: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(12);
    v.extend_from_slice(&client.0.to_be_bytes());
    v.extend_from_slice(&seq.to_be_bytes());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_per_zone_spreads_over_zone_replicas() {
        let c = ClusterConfig::wan(3, 3, 1, 0);
        let clients = ClientSetup::closed_per_zone(&c, 5);
        assert_eq!(clients.len(), 15);
        for cl in &clients {
            assert_eq!(cl.attach.zone, cl.zone);
        }
        // Round-robin: 5 clients over 3 replicas covers all of them.
        let zone0: Vec<u8> = clients
            .iter()
            .filter(|c| c.zone == 0)
            .map(|c| c.attach.node)
            .collect();
        assert_eq!(zone0, vec![0, 1, 2, 0, 1]);
    }

    #[test]
    fn unique_values_are_unique() {
        let a = unique_value(ClientId(1), 1);
        let b = unique_value(ClientId(1), 2);
        let c = unique_value(ClientId(2), 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 12);
    }

    #[test]
    fn migration_workload_fires_then_refires_on_cadence() {
        use paxi_core::group::GroupId;
        use paxi_core::migration::{KeyRange, MIGRATION_KEY};
        let spec = MigrationSpec {
            id: 1,
            from: GroupId(0),
            to: GroupId(1),
            range: KeyRange::new(2, 4),
            epoch: 1,
        };
        let driver = ClientId(0);
        let mut w = MigrationWorkload::new(uniform_workload(10), driver, Nanos::millis(5), spec);
        let mut rng = Rng64::seed(1);
        // Before `at`: pure passthrough.
        let cmd = w.next(driver, 0, 0, Nanos::ZERO, &mut rng);
        assert_ne!(cmd.key, MIGRATION_KEY);
        assert!(!w.fired());
        // At `at`: the designated client submits the kick-off, then refires
        // every REFIRE_EVERY-th of its own requests.
        let mut migs = 0;
        for seq in 1..=32u64 {
            let cmd = w.next(driver, 0, seq, Nanos::millis(6), &mut rng);
            if cmd.key == MIGRATION_KEY {
                migs += 1;
            }
        }
        assert!(w.fired());
        assert_eq!(migs, 4, "1 kick-off + refires every 8th over 32 reqs");
        // Other clients are never hijacked.
        for seq in 0..32u64 {
            let cmd = w.next(ClientId(7), 0, seq, Nanos::millis(9), &mut rng);
            assert_ne!(cmd.key, MIGRATION_KEY);
        }
    }

    #[test]
    fn invalid_migration_specs_are_elided() {
        use paxi_core::group::GroupId;
        use paxi_core::migration::KeyRange;
        let noop = MigrationSpec {
            id: 1,
            from: GroupId(0),
            to: GroupId(0), // source == destination: invalid
            range: KeyRange::new(2, 4),
            epoch: 1,
        };
        let mut w = MigrationWorkload::new(uniform_workload(10), ClientId(0), Nanos::ZERO, noop);
        let mut plain = uniform_workload(10);
        let mut ra = Rng64::seed(9);
        let mut rb = Rng64::seed(9);
        for seq in 0..64u64 {
            let a = w.next(ClientId(0), 0, seq, Nanos::secs(1), &mut ra);
            let b = plain.next(ClientId(0), 0, seq, Nanos::secs(1), &mut rb);
            assert_eq!(a, b, "elided wrapper must be bit-identical to inner");
        }
        assert!(!w.fired());
    }

    #[test]
    fn closure_workload_is_a_workload() {
        let mut w = uniform_workload(10);
        let mut rng = Rng64::seed(1);
        let mut writes = 0;
        for seq in 0..1000 {
            let cmd = w.next(ClientId(0), 0, seq, Nanos::ZERO, &mut rng);
            assert!(cmd.key < 10);
            if cmd.is_write() {
                writes += 1;
            }
        }
        assert!((350..650).contains(&writes), "write ratio ~50%: {}", writes);
    }
}
