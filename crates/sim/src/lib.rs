//! # paxi-sim
//!
//! A deterministic discrete-event simulator for the Paxi protocol framework.
//!
//! The paper evaluates its protocols on AWS EC2; this crate substitutes a
//! simulator whose semantics mirror the paper's own analytic model (§3):
//! every node is a single-server FIFO queue combining CPU and NIC, message
//! delays are drawn from per-zone-pair Normal distributions, and client load
//! is generated open-loop (Poisson, as the queueing models assume) or
//! closed-loop (as the Paxi benchmarker does). Because the same replica code
//! (`paxi_core::traits::Replica`) also runs on the wall-clock runtimes in
//! `paxi-transport`, the simulator provides a controlled, reproducible
//! environment for the protocol comparisons of §5.
//!
//! * [`topology`] — LAN/WAN latency models (AWS-calibrated presets).
//! * [`cost`] — per-message CPU/NIC service costs (the leader bottleneck).
//! * [`faults`] — Crash / Drop / Slow / Flaky / partition injection.
//! * [`client`] — open- and closed-loop clients, the [`client::Workload`] trait.
//! * [`sim`] — the simulator itself.
//! * [`report`] — run results: latency histograms, per-zone summaries,
//!   per-node utilization, operation logs for the checkers.

#![warn(missing_docs)]

pub mod client;
pub mod cost;
pub mod faults;
pub mod report;
pub mod sim;
pub mod topology;

pub use client::{ClientSetup, LoadMode, MigrationWorkload, ReconfigWorkload, Workload};
pub use cost::CostModel;
pub use faults::{CrashMode, FaultPlan, FaultWindow, MsgFate};
pub use report::{NodeStats, OpRecord, SimReport};
pub use sim::{SimConfig, SimDisks, Simulator};
pub use topology::Topology;
