//! Message-processing cost model.
//!
//! Following the paper's §3, every node is a single processing pipeline (one
//! CPU + one NIC treated as a single queue). Handling a round costs CPU time
//! for each incoming message (`t_in`), CPU time per outgoing *serialization*
//! (`t_out`; a broadcast serializes once), and NIC transmission time
//! per outgoing message (`message_bytes / bandwidth`). These service times
//! alone determine the maximum throughput of a node (µ = 1/ts), which is how
//! the single-leader bottleneck emerges in both the model and the simulator.

use paxi_core::time::Nanos;
use serde::{Deserialize, Serialize};

/// Per-node processing costs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostModel {
    /// CPU time to deserialize + handle one incoming message.
    pub t_in: Nanos,
    /// CPU time to serialize one outgoing message (charged once per
    /// broadcast).
    pub t_out: Nanos,
    /// Size of a protocol message on the wire, bytes.
    pub msg_bytes: u64,
    /// NIC bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// Multiplier on CPU costs, modeling protocols whose message handling is
    /// inherently heavier (the paper penalizes EPaxos for dependency
    /// computation and conflict detection).
    pub cpu_penalty: f64,
    /// Fixed extra delay added to every inter-node message hop, modeling a
    /// heavier transport stack (the paper attributes etcd's latency gap in
    /// Figure 7 to HTTP inter-node communication; this reproduces it).
    pub wire_overhead: Nanos,
    /// Time one `fsync` holds the node's pipeline, charged per sync the
    /// node's durable store performed while handling an event (the
    /// durability tax). SSD-class by default; only incurred when a replica
    /// actually has storage attached, so purely-volatile runs are unchanged.
    pub t_fsync: Nanos,
    /// Marginal CPU time per *additional* command carried by a batched
    /// message (the first command rides on `t_in`/`t_out`). This is the
    /// model's amortization term: a batch of k commands costs the fixed
    /// per-message work once plus `(k-1) · t_cmd`, so per-command service
    /// time falls toward `t_cmd` as k grows.
    pub t_cmd: Nanos,
    /// Marginal wire bytes per additional command in a batched message
    /// (headers and the first command ride on `msg_bytes`).
    pub cmd_bytes: u64,
}

impl Default for CostModel {
    /// Calibrated so a 9-node MultiPaxos leader saturates around 8–10 k
    /// rounds/s, matching the paper's m5.large measurements (Figs 7 and 9).
    fn default() -> Self {
        CostModel {
            t_in: Nanos::micros(10),
            t_out: Nanos::micros(5),
            msg_bytes: 128,
            bandwidth_bps: 1_000_000_000,
            cpu_penalty: 1.0,
            wire_overhead: Nanos::ZERO,
            t_fsync: Nanos::micros(100),
            t_cmd: Nanos::micros(1),
            cmd_bytes: 64,
        }
    }
}

impl CostModel {
    /// NIC transmission time for one message.
    pub fn nic(&self) -> Nanos {
        Nanos((self.msg_bytes * 8).saturating_mul(1_000_000_000) / self.bandwidth_bps)
    }

    /// Total service time for a handler invocation that received one message
    /// and produced `serializations` distinct outgoing serializations and
    /// `transmissions` messages on the wire.
    pub fn service_time(&self, serializations: u64, transmissions: u64) -> Nanos {
        let cpu = self.t_in.0 + self.t_out.0 * serializations;
        let cpu = (cpu as f64 * self.cpu_penalty) as u64;
        Nanos(cpu + self.nic().0 * transmissions)
    }

    /// NIC transmission time for one additional command's worth of payload
    /// in a batched message.
    pub fn cmd_nic(&self) -> Nanos {
        Nanos((self.cmd_bytes * 8).saturating_mul(1_000_000_000) / self.bandwidth_bps)
    }

    /// Raw (pre-penalty) marginal CPU nanoseconds for a message carrying
    /// `cmds` commands: zero at `cmds <= 1`, `(cmds - 1) · t_cmd` beyond.
    /// The caller folds this into its CPU total before applying
    /// `cpu_penalty`, exactly like `t_in`/`t_out`.
    pub fn cmd_cpu_extra(&self, cmds: u64) -> u64 {
        self.t_cmd.0 * cmds.saturating_sub(1)
    }

    /// Marginal NIC nanoseconds for one transmission of a message carrying
    /// `cmds` commands: zero at `cmds <= 1`.
    pub fn cmd_nic_extra(&self, cmds: u64) -> u64 {
        self.cmd_nic().0 * cmds.saturating_sub(1)
    }

    /// Total service time for a handler invocation whose incoming message
    /// carried `in_cmds` commands and whose `serializations` outgoing
    /// serializations each carried `out_cmds`, transmitted `transmissions`
    /// times. With all weights at 1 this is exactly
    /// [`CostModel::service_time`] — the amortized model degenerates to the
    /// per-message model when batching is off.
    pub fn service_time_batched(
        &self,
        serializations: u64,
        transmissions: u64,
        in_cmds: u64,
        out_cmds: u64,
    ) -> Nanos {
        let cpu = self.t_in.0
            + self.cmd_cpu_extra(in_cmds)
            + (self.t_out.0 + self.cmd_cpu_extra(out_cmds)) * serializations;
        let cpu = (cpu as f64 * self.cpu_penalty) as u64;
        Nanos(cpu + (self.nic().0 + self.cmd_nic_extra(out_cmds)) * transmissions)
    }

    /// Returns a copy with a different CPU penalty.
    pub fn with_penalty(mut self, penalty: f64) -> Self {
        self.cpu_penalty = penalty;
        self
    }

    /// Returns a copy with a different message size.
    pub fn with_msg_bytes(mut self, bytes: u64) -> Self {
        self.msg_bytes = bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_nic_cost_is_about_a_microsecond() {
        let c = CostModel::default();
        // 128 B = 1024 bits over 1 Gbps = 1.024 us.
        assert_eq!(c.nic(), Nanos(1024));
    }

    #[test]
    fn paxos_leader_round_service_time_matches_calibration() {
        // Leader round, N = 9: receive request (t_in charged per handler),
        // one broadcast serialization + 8 transmissions, then 8 incoming
        // accepted messages, then one reply. Total CPU ~ 10*10 + 2*5 us.
        let c = CostModel::default();
        // service for the request handler: 1 serialization, 8 transmissions
        let req = c.service_time(1, 8);
        // each accepted handler: no output until quorum; final one replies.
        let ack = c.service_time(0, 0);
        let reply = c.service_time(1, 1);
        let total = Nanos(req.0 + 7 * ack.0 + reply.0);
        // ~ (10+5+8.2) + 7*10 + (10+5+1) us ≈ 109 us -> ~9.2k rounds/s.
        assert!(
            total >= Nanos::micros(100) && total <= Nanos::micros(120),
            "total {total}"
        );
    }

    #[test]
    fn batched_service_time_with_weight_one_is_the_unbatched_model() {
        let c = CostModel::default();
        for (s, t) in [(0u64, 0u64), (1, 1), (1, 8), (2, 3)] {
            assert_eq!(c.service_time_batched(s, t, 1, 1), c.service_time(s, t));
        }
    }

    #[test]
    fn per_command_service_time_amortizes_with_batch_size() {
        // The model's amortization term: a leader round that carries k
        // commands per message costs fixed-per-message work once, so the
        // per-command cost falls monotonically toward t_cmd + cmd_nic.
        let c = CostModel::default();
        let per_cmd = |k: u64| {
            let round = c.service_time_batched(1, 8, k, k);
            round.0 as f64 / k as f64
        };
        assert!(
            per_cmd(4) < per_cmd(1) / 2.0,
            "4-batch should halve per-command cost"
        );
        assert!(per_cmd(16) < per_cmd(4));
        // Floor: marginal cost per command (1 serialization + 8 transmissions).
        let floor = (c.t_cmd.0 as f64) + 8.0 * c.cmd_nic().0 as f64;
        assert!(per_cmd(1024) < floor * 1.2);
    }

    #[test]
    fn penalty_scales_cpu_not_nic() {
        let base = CostModel::default();
        let pen = base.with_penalty(2.0);
        let b = base.service_time(1, 1);
        let p = pen.service_time(1, 1);
        let cpu_base = b.0 - base.nic().0;
        let cpu_pen = p.0 - pen.nic().0;
        assert_eq!(cpu_pen, cpu_base * 2);
    }
}
