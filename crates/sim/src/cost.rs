//! Message-processing cost model.
//!
//! Following the paper's §3, every node is a single processing pipeline (one
//! CPU + one NIC treated as a single queue). Handling a round costs CPU time
//! for each incoming message (`t_in`), CPU time per outgoing *serialization*
//! (`t_out`; a broadcast serializes once), and NIC transmission time
//! per outgoing message (`message_bytes / bandwidth`). These service times
//! alone determine the maximum throughput of a node (µ = 1/ts), which is how
//! the single-leader bottleneck emerges in both the model and the simulator.

use paxi_core::time::Nanos;
use serde::{Deserialize, Serialize};

/// Per-node processing costs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostModel {
    /// CPU time to deserialize + handle one incoming message.
    pub t_in: Nanos,
    /// CPU time to serialize one outgoing message (charged once per
    /// broadcast).
    pub t_out: Nanos,
    /// Size of a protocol message on the wire, bytes.
    pub msg_bytes: u64,
    /// NIC bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// Multiplier on CPU costs, modeling protocols whose message handling is
    /// inherently heavier (the paper penalizes EPaxos for dependency
    /// computation and conflict detection).
    pub cpu_penalty: f64,
    /// Fixed extra delay added to every inter-node message hop, modeling a
    /// heavier transport stack (the paper attributes etcd's latency gap in
    /// Figure 7 to HTTP inter-node communication; this reproduces it).
    pub wire_overhead: Nanos,
    /// Time one `fsync` holds the node's pipeline, charged per sync the
    /// node's durable store performed while handling an event (the
    /// durability tax). SSD-class by default; only incurred when a replica
    /// actually has storage attached, so purely-volatile runs are unchanged.
    pub t_fsync: Nanos,
}

impl Default for CostModel {
    /// Calibrated so a 9-node MultiPaxos leader saturates around 8–10 k
    /// rounds/s, matching the paper's m5.large measurements (Figs 7 and 9).
    fn default() -> Self {
        CostModel {
            t_in: Nanos::micros(10),
            t_out: Nanos::micros(5),
            msg_bytes: 128,
            bandwidth_bps: 1_000_000_000,
            cpu_penalty: 1.0,
            wire_overhead: Nanos::ZERO,
            t_fsync: Nanos::micros(100),
        }
    }
}

impl CostModel {
    /// NIC transmission time for one message.
    pub fn nic(&self) -> Nanos {
        Nanos((self.msg_bytes * 8).saturating_mul(1_000_000_000) / self.bandwidth_bps)
    }

    /// Total service time for a handler invocation that received one message
    /// and produced `serializations` distinct outgoing serializations and
    /// `transmissions` messages on the wire.
    pub fn service_time(&self, serializations: u64, transmissions: u64) -> Nanos {
        let cpu = self.t_in.0 + self.t_out.0 * serializations;
        let cpu = (cpu as f64 * self.cpu_penalty) as u64;
        Nanos(cpu + self.nic().0 * transmissions)
    }

    /// Returns a copy with a different CPU penalty.
    pub fn with_penalty(mut self, penalty: f64) -> Self {
        self.cpu_penalty = penalty;
        self
    }

    /// Returns a copy with a different message size.
    pub fn with_msg_bytes(mut self, bytes: u64) -> Self {
        self.msg_bytes = bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_nic_cost_is_about_a_microsecond() {
        let c = CostModel::default();
        // 128 B = 1024 bits over 1 Gbps = 1.024 us.
        assert_eq!(c.nic(), Nanos(1024));
    }

    #[test]
    fn paxos_leader_round_service_time_matches_calibration() {
        // Leader round, N = 9: receive request (t_in charged per handler),
        // one broadcast serialization + 8 transmissions, then 8 incoming
        // accepted messages, then one reply. Total CPU ~ 10*10 + 2*5 us.
        let c = CostModel::default();
        // service for the request handler: 1 serialization, 8 transmissions
        let req = c.service_time(1, 8);
        // each accepted handler: no output until quorum; final one replies.
        let ack = c.service_time(0, 0);
        let reply = c.service_time(1, 1);
        let total = Nanos(req.0 + 7 * ack.0 + reply.0);
        // ~ (10+5+8.2) + 7*10 + (10+5+1) us ≈ 109 us -> ~9.2k rounds/s.
        assert!(total >= Nanos::micros(100) && total <= Nanos::micros(120), "total {total}");
    }

    #[test]
    fn penalty_scales_cpu_not_nic() {
        let base = CostModel::default();
        let pen = base.with_penalty(2.0);
        let b = base.service_time(1, 1);
        let p = pen.service_time(1, 1);
        let cpu_base = b.0 - base.nic().0;
        let cpu_pen = p.0 - pen.nic().0;
        assert_eq!(cpu_pen, cpu_base * 2);
    }
}
