//! Network topologies and latency models.
//!
//! The paper's model assumes LAN round-trip times are Normal-distributed
//! (validated against AWS EC2 in its Figure 3: μ = 0.4271 ms, σ = 0.0476 ms)
//! and that WAN latencies differ per datacenter pair, so each pair gets its
//! own distribution. A [`Topology`] carries the symmetric RTT matrix between
//! zones plus the intra-zone LAN distribution, and samples *one-way* message
//! delays from them.

use paxi_core::dist::Rng64;
use paxi_core::time::Nanos;
use serde::{Deserialize, Serialize};

/// Mean/σ of the intra-zone LAN RTT measured by the paper on AWS (ms).
pub const AWS_LAN_RTT_MEAN_MS: f64 = 0.4271;
/// Standard deviation of the AWS LAN RTT (ms).
pub const AWS_LAN_RTT_STD_MS: f64 = 0.0476;

/// A deployment topology: zone names and the RTT distribution between every
/// pair of zones.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    /// Human-readable zone (region) names.
    pub zone_names: Vec<String>,
    /// Symmetric mean RTT matrix in milliseconds; the diagonal holds the
    /// intra-zone LAN RTT.
    rtt_ms: Vec<Vec<f64>>,
    /// Standard deviation of intra-zone RTT in ms.
    lan_std_ms: f64,
    /// σ of inter-zone RTTs, as a fraction of the mean (WAN jitter).
    wan_jitter: f64,
}

impl Topology {
    /// Single-zone LAN topology with the paper's AWS-calibrated RTT.
    pub fn lan() -> Self {
        Topology {
            zone_names: vec!["LAN".to_string()],
            rtt_ms: vec![vec![AWS_LAN_RTT_MEAN_MS]],
            lan_std_ms: AWS_LAN_RTT_STD_MS,
            wan_jitter: 0.02,
        }
    }

    /// Builds a WAN topology from zone names and a symmetric RTT matrix (ms).
    /// Diagonal entries give each zone's internal LAN RTT.
    pub fn wan(zone_names: Vec<String>, rtt_ms: Vec<Vec<f64>>) -> Self {
        let z = zone_names.len();
        assert!(z > 0 && rtt_ms.len() == z && rtt_ms.iter().all(|r| r.len() == z));
        for a in 0..z {
            for b in 0..z {
                assert!(
                    (rtt_ms[a][b] - rtt_ms[b][a]).abs() < 1e-9,
                    "RTT matrix must be symmetric"
                );
            }
        }
        Topology {
            zone_names,
            rtt_ms,
            lan_std_ms: AWS_LAN_RTT_STD_MS,
            wan_jitter: 0.02,
        }
    }

    /// The paper's five-region AWS deployment: N. Virginia, Ohio,
    /// California, Ireland, Japan, with RTTs approximating AWS inter-region
    /// latencies at the time of the study.
    pub fn aws5() -> Self {
        let names = ["VA", "OH", "CA", "IR", "JP"];
        let lan = AWS_LAN_RTT_MEAN_MS;
        // Symmetric matrix, ms. Order: VA OH CA IR JP.
        let m = vec![
            vec![lan, 11.0, 61.0, 75.0, 162.0],
            vec![11.0, lan, 50.0, 86.0, 156.0],
            vec![61.0, 50.0, lan, 138.0, 102.0],
            vec![75.0, 86.0, 138.0, lan, 220.0],
            vec![162.0, 156.0, 102.0, 220.0, lan],
        ];
        Topology::wan(names.iter().map(|s| s.to_string()).collect(), m)
    }

    /// `z` logical zones that all live in one LAN — used to deploy
    /// multi-leader protocols (WPaxos grids, WanKeeper groups) inside a
    /// single datacenter, as the paper's LAN experiments do with 9 nodes.
    pub fn lan_zones(z: usize) -> Self {
        let names = (0..z).map(|i| format!("LAN{i}")).collect();
        let m = vec![vec![AWS_LAN_RTT_MEAN_MS; z]; z];
        Topology::wan(names, m)
    }

    /// The three-region subset (VA, OH, CA) used in several of the paper's
    /// WAN experiments.
    pub fn aws3() -> Self {
        let five = Self::aws5();
        let names = vec!["VA".to_string(), "OH".to_string(), "CA".to_string()];
        let m = (0..3)
            .map(|a| (0..3).map(|b| five.rtt_ms[a][b]).collect())
            .collect();
        Topology::wan(names, m)
    }

    /// Number of zones.
    pub fn zones(&self) -> usize {
        self.zone_names.len()
    }

    /// Mean RTT between two zones in milliseconds.
    pub fn rtt_ms(&self, a: u8, b: u8) -> f64 {
        self.rtt_ms[a as usize][b as usize]
    }

    /// Mean one-way delay between two zones.
    pub fn one_way_mean(&self, a: u8, b: u8) -> Nanos {
        Nanos::from_millis_f64(self.rtt_ms(a, b) / 2.0)
    }

    /// Samples a one-way message delay between zones `a` and `b`.
    ///
    /// One-way delays are Normal(RTT/2, σ/√2) so that the *sum of two*
    /// one-way samples — a round trip, the quantity the paper measured in
    /// Figure 3 — comes out Normal(RTT, σ). Samples are clamped to a small
    /// positive floor so causality is never violated.
    pub fn sample_one_way(&self, rng: &mut Rng64, a: u8, b: u8) -> Nanos {
        let rtt = self.rtt_ms(a, b);
        let std = if a == b {
            self.lan_std_ms
        } else {
            rtt * self.wan_jitter
        };
        let ms = rng
            .normal(rtt / 2.0, std / std::f64::consts::SQRT_2)
            .max(0.001);
        Nanos::from_millis_f64(ms)
    }

    /// Overrides the WAN jitter fraction.
    pub fn with_wan_jitter(mut self, jitter: f64) -> Self {
        self.wan_jitter = jitter;
        self
    }

    /// Overrides the intra-zone RTT standard deviation (ms).
    pub fn with_lan_std_ms(mut self, std: f64) -> Self {
        self.lan_std_ms = std;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lan_topology_is_single_zone() {
        let t = Topology::lan();
        assert_eq!(t.zones(), 1);
        assert!((t.rtt_ms(0, 0) - AWS_LAN_RTT_MEAN_MS).abs() < 1e-12);
    }

    #[test]
    fn aws5_matches_paper_regions() {
        let t = Topology::aws5();
        assert_eq!(t.zone_names, ["VA", "OH", "CA", "IR", "JP"]);
        assert_eq!(t.rtt_ms(0, 1), 11.0);
        assert_eq!(t.rtt_ms(3, 4), 220.0);
        assert_eq!(t.rtt_ms(4, 3), 220.0);
    }

    #[test]
    fn one_way_samples_center_on_half_rtt() {
        let t = Topology::aws5();
        let mut rng = Rng64::seed(3);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            sum += t.sample_one_way(&mut rng, 0, 4).as_millis_f64();
        }
        let mean = sum / n as f64;
        assert!((mean - 81.0).abs() < 1.0, "mean one-way VA-JP {}", mean);
    }

    #[test]
    fn samples_are_always_positive() {
        let t = Topology::lan();
        let mut rng = Rng64::seed(5);
        for _ in 0..50_000 {
            assert!(t.sample_one_way(&mut rng, 0, 0) > Nanos::ZERO);
        }
    }

    #[test]
    #[should_panic]
    fn asymmetric_matrix_rejected() {
        Topology::wan(
            vec!["a".into(), "b".into()],
            vec![vec![0.4, 10.0], vec![11.0, 0.4]],
        );
    }
}
