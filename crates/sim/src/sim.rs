//! The deterministic discrete-event simulator.
//!
//! Every node is modeled as a single-server FIFO queue (CPU + NIC combined,
//! exactly as the paper's analytic model assumes): an event that reaches a
//! node at time `t` begins service at `max(t, busy_until)`, and the service
//! time is derived from the [`CostModel`] — `t_in` for the incoming message,
//! `t_out` per outgoing serialization (a broadcast serializes once), and the
//! NIC transmission time per message on the wire. Message transit times are
//! sampled from the [`Topology`]'s per-zone-pair Normal distributions.
//!
//! Determinism: all randomness flows from one seeded [`Rng64`], and the event
//! queue breaks time ties by insertion sequence, so a `(seed, workload,
//! protocol)` triple always reproduces the same run bit-for-bit.

use crate::client::{ClientSetup, LoadMode, Workload};
use crate::cost::CostModel;
use crate::faults::{CrashMode, FaultPlan, MsgFate};
use crate::report::{NodeStats, OpRecord, SimReport};
use crate::topology::Topology;
use paxi_core::command::{ClientRequest, ClientResponse, Command, Op};
use paxi_core::config::ClusterConfig;
use paxi_core::dist::Rng64;
use paxi_core::id::{ClientId, NodeId, RequestId};
use paxi_core::metrics::Histogram;
use paxi_core::obs::{
    ClusterMetrics, DropCause, Gauge, Metric, MetricsRegistry, MetricsSnapshot, TraceEvent,
    TraceRing, TraceStage,
};
use paxi_core::time::Nanos;
use paxi_core::traits::{Context, Replica, ReplicaFactory};
use paxi_storage::MemHub;
use std::collections::{BTreeMap, BinaryHeap, HashMap};

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Seed for all randomness in the run.
    pub seed: u64,
    /// Time to run before measurement starts.
    pub warmup: Nanos,
    /// Length of the measurement window.
    pub measure: Nanos,
    /// Network topology (zones and latency distributions).
    pub topology: Topology,
    /// Per-node processing cost model.
    pub cost: CostModel,
    /// Record every operation for the linearizability checker.
    pub record_ops: bool,
    /// If set, a client whose request has not completed within this duration
    /// abandons it and issues a fresh request (availability experiments).
    pub client_retry: Option<Nanos>,
    /// If set, the report includes completions bucketed by this interval.
    pub timeline_bucket: Option<Nanos>,
    /// Collect per-node observability metrics (counters, drop causes,
    /// gauges — see [`paxi_core::obs`]). Off by default: a disabled run
    /// allocates nothing for metrics and its hot path is untouched.
    pub metrics: bool,
    /// Capacity of the request-lifecycle trace ring (newest events win).
    /// Only honored when `metrics` is on; `0` disables tracing.
    pub trace_capacity: usize,
    /// After the measurement window closes, keep delivering in-flight
    /// messages (but issue no new requests and fire no timers) until the
    /// queue empties. Every request the clients issued then runs to
    /// completion, which makes per-commit message accounting exact — the
    /// mode the model cross-check tests use. Off by default; the report's
    /// measurement window is unaffected either way.
    pub drain: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 42,
            warmup: Nanos::millis(500),
            measure: Nanos::secs(2),
            topology: Topology::lan(),
            cost: CostModel::default(),
            record_ops: false,
            client_retry: None,
            timeline_bucket: None,
            metrics: false,
            trace_capacity: 0,
            drain: false,
        }
    }
}

enum Input<M> {
    Start,
    Restart,
    /// Recovery from an amnesia crash: the simulator rebuilds the replica
    /// from the factory (volatile state is gone) before delivering this.
    Recover,
    Msg {
        from: NodeId,
        msg: M,
    },
    Request(ClientRequest),
    Timer {
        kind: u64,
        token: u64,
    },
}

enum EventKind<M> {
    Node { to: NodeId, input: Input<M> },
    ClientIssue { ci: usize },
    ClientDone { resp: ClientResponse },
    RetryCheck { id: RequestId },
}

struct Event<M> {
    at: Nanos,
    seq: u64,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    // Reversed so BinaryHeap (a max-heap) pops the earliest event first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Side effects a handler produced, applied by the simulator afterwards.
enum Effect<M> {
    Send { to: NodeId, msg: M },
    Broadcast { msg: M },
    Multicast { to: Vec<NodeId>, msg: M },
    Timer { after: Nanos, kind: u64, token: u64 },
    Reply { resp: ClientResponse },
    Forward { to: NodeId, req: ClientRequest },
}

struct SimCtx<'a, M> {
    id: NodeId,
    now: Nanos,
    effects: &'a mut Vec<Effect<M>>,
    rng: &'a mut Rng64,
    token_counter: &'a mut u64,
    /// The handling node's registry, when metrics are enabled.
    metrics: Option<&'a mut MetricsRegistry>,
    /// The cluster-wide trace ring, when tracing is enabled.
    trace: Option<&'a mut TraceRing>,
}

impl<M> Context<M> for SimCtx<'_, M> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn now(&self) -> Nanos {
        self.now
    }
    fn send(&mut self, to: NodeId, msg: M) {
        self.effects.push(Effect::Send { to, msg });
    }
    fn broadcast(&mut self, msg: M) {
        self.effects.push(Effect::Broadcast { msg });
    }
    fn multicast(&mut self, to: &[NodeId], msg: M) {
        self.effects.push(Effect::Multicast {
            to: to.to_vec(),
            msg,
        });
    }
    fn set_timer(&mut self, after: Nanos, kind: u64) -> u64 {
        *self.token_counter += 1;
        let token = *self.token_counter;
        self.effects.push(Effect::Timer { after, kind, token });
        token
    }
    fn reply(&mut self, resp: ClientResponse) {
        self.effects.push(Effect::Reply { resp });
    }
    fn forward(&mut self, to: NodeId, req: ClientRequest) {
        self.effects.push(Effect::Forward { to, req });
    }
    fn rand_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
    fn count(&mut self, metric: Metric, n: u64) {
        if let Some(m) = &mut self.metrics {
            m.add(metric, n);
        }
    }
    fn count_drop(&mut self, cause: DropCause, n: u64) {
        if let Some(m) = &mut self.metrics {
            m.add_drop(cause, n);
        }
    }
    fn trace(&mut self, stage: TraceStage, req: RequestId) {
        if let Some(ring) = &mut self.trace {
            ring.push(TraceEvent {
                at: self.now,
                node: self.id,
                req,
                stage,
            });
        }
    }
}

struct NodeState {
    busy_until: Nanos,
    busy_total: Nanos,
    handled: u64,
    sent: u64,
    /// Events queued for this node and not yet dispatched — only maintained
    /// when metrics are enabled (feeds the queue-depth high-water gauge).
    inflight: u64,
}

/// The simulator's view of a cluster's disk array: everything it needs from
/// durable storage without fixing how disks are keyed. A plain durable run
/// registers a [`MemHub`] keyed by node; a sharded run registers an array
/// keyed by `(node, group)` whose `crash_node` wipes *all* of the node's
/// per-group WAL namespaces at once and whose `drain_syncs` aggregates fsync
/// counts across them — one node, one pipeline, however many groups live on
/// it.
pub trait SimDisks: Send {
    /// Applies an amnesia crash to every disk `node` owns: the unsynced
    /// suffix is lost and armed storage faults fire.
    fn crash_node(&self, node: NodeId);
    /// Returns and resets the number of fsyncs all of `node`'s disks
    /// performed since the last call (each is charged `t_fsync` of service
    /// time).
    fn drain_syncs(&self, node: NodeId) -> u64;
    /// Returns and resets the number of WAL records all of `node`'s disks
    /// appended since the last call — feeds the observability layer's
    /// per-node WAL-append counter. The default reports nothing (a backend
    /// predating the counter).
    fn drain_appends(&self, node: NodeId) -> u64 {
        let _ = node;
        0
    }
}

impl SimDisks for MemHub<NodeId> {
    fn crash_node(&self, node: NodeId) {
        self.crash(&node);
    }

    fn drain_syncs(&self, node: NodeId) -> u64 {
        MemHub::drain_syncs(self, &node)
    }

    fn drain_appends(&self, node: NodeId) -> u64 {
        MemHub::drain_appends(self, &node)
    }
}

struct ClientState {
    setup: ClientSetup,
    next_seq: u64,
}

struct Pending {
    ci: usize,
    invoke: Nanos,
    cmd: Command,
}

/// The simulator: a cluster of replicas, a set of clients, a network, and a
/// virtual clock.
pub struct Simulator<R: Replica> {
    cfg: SimConfig,
    cluster: ClusterConfig,
    replicas: Vec<R>,
    /// Retained so amnesia recovery can rebuild a replica from scratch.
    factory: Box<dyn ReplicaFactory<R = R>>,
    /// The cluster's simulated disk array, if the run is durable. The
    /// simulator crashes disks on amnesia recovery and converts each disk's
    /// fsync count into service time.
    hub: Option<Box<dyn SimDisks>>,
    nodes: Vec<NodeState>,
    all_nodes: Vec<NodeId>,
    queue: BinaryHeap<Event<R::Msg>>,
    event_seq: u64,
    now: Nanos,
    rng: Rng64,
    token_counter: u64,
    clients: Vec<ClientState>,
    workload: Box<dyn Workload>,
    faults: FaultPlan,
    pending: HashMap<RequestId, Pending>,
    // measurement
    hist: Histogram,
    zone_hist: BTreeMap<u8, Histogram>,
    issued: u64,
    completed: u64,
    errors: u64,
    abandoned: u64,
    ops: Vec<OpRecord>,
    timeline: BTreeMap<u64, u64>,
    events_processed: u64,
    scratch: Vec<Effect<R::Msg>>,
    /// Per-node metrics registries, `None` unless `cfg.metrics` — the
    /// disabled hot path never touches (or allocates) them.
    metrics: Option<Vec<MetricsRegistry>>,
    /// Cluster-wide request-lifecycle trace ring, when tracing is enabled.
    trace_ring: Option<TraceRing>,
    /// True once the run is past its window in drain mode: in-flight work
    /// finishes but clients issue nothing new.
    draining: bool,
}

impl<R: Replica> Simulator<R> {
    /// Builds a simulator over a homogeneous cluster.
    pub fn new<F>(
        cfg: SimConfig,
        cluster: ClusterConfig,
        factory: F,
        workload: impl Workload + 'static,
        clients: Vec<ClientSetup>,
    ) -> Self
    where
        F: ReplicaFactory<R = R> + 'static,
    {
        assert_eq!(
            cluster.zones as usize,
            cfg.topology.zones(),
            "cluster zones must match topology zones"
        );
        let all_nodes = cluster.all_nodes();
        let replicas: Vec<R> = all_nodes.iter().map(|&id| factory.make(id)).collect();
        let nodes = all_nodes
            .iter()
            .map(|_| NodeState {
                busy_until: Nanos::ZERO,
                busy_total: Nanos::ZERO,
                handled: 0,
                sent: 0,
                inflight: 0,
            })
            .collect();
        let rng = Rng64::seed(cfg.seed);
        let metrics = if cfg.metrics {
            Some(all_nodes.iter().map(|_| MetricsRegistry::new()).collect())
        } else {
            None
        };
        let trace_ring = if cfg.metrics && cfg.trace_capacity > 0 {
            Some(TraceRing::new(cfg.trace_capacity))
        } else {
            None
        };
        Simulator {
            cfg,
            cluster,
            replicas,
            factory: Box::new(factory),
            hub: None,
            nodes,
            all_nodes,
            queue: BinaryHeap::new(),
            event_seq: 0,
            now: Nanos::ZERO,
            rng,
            token_counter: 0,
            clients: clients
                .into_iter()
                .map(|setup| ClientState { setup, next_seq: 0 })
                .collect(),
            workload: Box::new(workload),
            faults: FaultPlan::new(),
            pending: HashMap::new(),
            hist: Histogram::new(),
            zone_hist: BTreeMap::new(),
            issued: 0,
            completed: 0,
            errors: 0,
            abandoned: 0,
            ops: Vec::new(),
            timeline: BTreeMap::new(),
            events_processed: 0,
            scratch: Vec::new(),
            metrics,
            trace_ring,
            draining: false,
        }
    }

    /// Mutable access to the fault plan (install faults before `run`).
    pub fn faults_mut(&mut self) -> &mut FaultPlan {
        &mut self.faults
    }

    /// Registers the cluster's simulated disk array. The factory passed to
    /// [`Simulator::new`] is expected to open a handle on the same hub and
    /// attach it to each replica it builds; handing the hub to the simulator
    /// additionally (a) loses each amnesia-crashed node's unsynced suffix
    /// and applies armed storage faults before the node is rebuilt, and
    /// (b) charges [`CostModel::t_fsync`] for every fsync a node's disk
    /// performs while handling an event.
    pub fn set_storage(&mut self, hub: impl SimDisks + 'static) {
        self.hub = Some(Box::new(hub));
    }

    /// The replicas, for post-run state inspection (consensus checking).
    pub fn replicas(&self) -> &[R] {
        &self.replicas
    }

    /// The cluster configuration.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }

    fn push(&mut self, at: Nanos, kind: EventKind<R::Msg>) {
        if self.metrics.is_some() {
            // Queue-depth bookkeeping (high-water gauge) — enabled runs
            // only, so the disabled hot path stays untouched.
            if let EventKind::Node { to, .. } = &kind {
                let idx = self.cluster.index_of(*to);
                let depth = self.nodes[idx].inflight.saturating_add(1);
                self.nodes[idx].inflight = depth;
                if let Some(ms) = &mut self.metrics {
                    ms[idx].gauge_max(Gauge::QueueDepthHwm, depth);
                }
            }
        }
        self.event_seq += 1;
        self.queue.push(Event {
            at,
            seq: self.event_seq,
            kind,
        });
    }

    /// Runs the simulation to the end of the measurement window and returns
    /// the report.
    pub fn run(&mut self) -> SimReport {
        let end = self.cfg.warmup + self.cfg.measure;

        // Start every replica.
        for id in self.all_nodes.clone() {
            self.dispatch(id, Input::Start);
        }
        // Schedule a recovery event at the end of every crash window so
        // recovered nodes re-arm their timers and rejoin the protocol
        // (their own timers were discarded while down). Freeze crashes
        // restart the retained replica; amnesia crashes rebuild it from the
        // factory, so only durable state survives.
        let recoveries: Vec<_> = self.faults.recoveries().collect();
        for (node, at, mode) in recoveries {
            let input = match mode {
                CrashMode::Freeze => Input::Restart,
                CrashMode::Amnesia => Input::Recover,
            };
            self.push(at, EventKind::Node { to: node, input });
        }
        // Kick off every client with a small deterministic stagger so
        // closed-loop clients don't move in lockstep.
        for ci in 0..self.clients.len() {
            let jitter = Nanos(self.rng.below(Nanos::millis(1).0.max(1)));
            let at = match self.clients[ci].setup.mode {
                LoadMode::Closed { .. } => jitter,
                LoadMode::Open { rate } => {
                    Nanos((self.rng.exponential(rate.max(1e-9)) * 1e9) as u64)
                }
            };
            self.push(at, EventKind::ClientIssue { ci });
        }

        while let Some(ev) = self.queue.pop() {
            if ev.at > end {
                if !self.cfg.drain {
                    break;
                }
                // Drain phase: deliver what is already in flight, create
                // nothing new. Client issues, retry checks, and timer fires
                // are skipped (a heartbeat would re-arm itself forever), so
                // the queue empties once every outstanding message chain
                // runs out — at which point each issued request has either
                // completed or died at a counted drop site.
                self.draining = true;
                match &ev.kind {
                    EventKind::ClientIssue { .. } | EventKind::RetryCheck { .. } => continue,
                    EventKind::Node {
                        input: Input::Timer { .. },
                        ..
                    } => continue,
                    _ => {}
                }
            }
            self.now = ev.at;
            self.events_processed += 1;
            if self.metrics.is_some() {
                if let EventKind::Node { to, .. } = &ev.kind {
                    let idx = self.cluster.index_of(*to);
                    self.nodes[idx].inflight = self.nodes[idx].inflight.saturating_sub(1);
                }
            }
            match ev.kind {
                EventKind::Node { to, input } => self.dispatch(to, input),
                EventKind::ClientIssue { ci } => self.client_issue(ci),
                EventKind::ClientDone { resp } => self.client_done(resp),
                EventKind::RetryCheck { id } => self.retry_check(id),
            }
        }

        self.build_report(end)
    }

    fn dispatch(&mut self, node: NodeId, input: Input<R::Msg>) {
        if self.faults.is_crashed(node, self.now) {
            // A crashed node silently discards everything addressed to it.
            // Messages and requests are real losses — charge them to the
            // target's drop accounting so chaos digests can explain them.
            if let Some(ms) = &mut self.metrics {
                if matches!(input, Input::Msg { .. } | Input::Request(_)) {
                    ms[self.cluster.index_of(node)].add_drop(DropCause::Crashed, 1);
                }
            }
            return;
        }
        let idx = self.cluster.index_of(node);
        if matches!(input, Input::Recover) {
            // Amnesia: the node lost everything volatile. Crash its disk
            // first (the unsynced suffix dies with the process, and armed
            // storage faults fire — while crashed the node processed
            // nothing, so applying the loss now is equivalent to applying
            // it at crash time), then rebuild the replica from the factory,
            // which re-attaches storage and replays snapshot + WAL.
            if let Some(hub) = &self.hub {
                hub.crash_node(node);
            }
            self.replicas[idx] = self.factory.make(node);
        }
        let start = self.now.max(self.nodes[idx].busy_until);
        let mut effects = std::mem::take(&mut self.scratch);
        effects.clear();
        let charge_input = matches!(input, Input::Msg { .. } | Input::Request(_));
        // Batch weight of the incoming message: handling a k-command batch
        // costs the fixed t_in once plus (k-1)·t_cmd. Weight 1 (everything
        // unbatched) adds exactly zero, keeping the accounting bit-identical
        // to the per-message model.
        let in_cmds = match &input {
            Input::Msg { msg, .. } => R::msg_cmds(msg),
            _ => 1,
        };
        if let Some(ms) = &mut self.metrics {
            let m = &mut ms[idx];
            match &input {
                Input::Msg { msg, .. } => m.received(R::msg_kind(msg), 1),
                Input::Request(_) => m.add(Metric::Requests, 1),
                Input::Timer { .. } => m.add(Metric::TimerFires, 1),
                _ => {}
            }
        }
        {
            let mut ctx = SimCtx {
                id: node,
                now: start,
                effects: &mut effects,
                rng: &mut self.rng,
                token_counter: &mut self.token_counter,
                metrics: self.metrics.as_mut().map(|ms| &mut ms[idx]),
                trace: self.trace_ring.as_mut(),
            };
            let replica = &mut self.replicas[idx];
            match input {
                Input::Start => replica.on_start(&mut ctx),
                Input::Restart => replica.on_restart(&mut ctx),
                Input::Recover => replica.on_recover(&mut ctx),
                Input::Msg { from, msg } => replica.on_message(from, msg, &mut ctx),
                Input::Request(req) => replica.on_request(req, &mut ctx),
                Input::Timer { kind, token } => replica.on_timer(kind, token, &mut ctx),
            }
        }

        // Service-time accounting per the paper's cost model.
        let cost = &self.cfg.cost;
        let mut serializations = 0u64;
        let mut transmissions = 0u64;
        // Marginal batching terms, zero whenever every message has weight 1:
        // each serialization of a k-command batch adds (k-1)·t_cmd of CPU,
        // each transmission adds (k-1)·cmd_nic of NIC time.
        let mut cmd_cpu = 0u64;
        let mut cmd_nic = 0u64;
        for e in &effects {
            match e {
                Effect::Reply { .. } | Effect::Forward { .. } => {
                    serializations += 1;
                    transmissions += 1;
                }
                Effect::Send { msg, .. } => {
                    serializations += 1;
                    transmissions += 1;
                    cmd_cpu += cost.cmd_cpu_extra(R::msg_cmds(msg));
                    cmd_nic += cost.cmd_nic_extra(R::msg_cmds(msg));
                }
                Effect::Broadcast { msg } => {
                    let fanout = (self.all_nodes.len() - 1) as u64;
                    serializations += 1;
                    transmissions += fanout;
                    cmd_cpu += cost.cmd_cpu_extra(R::msg_cmds(msg));
                    cmd_nic += cost.cmd_nic_extra(R::msg_cmds(msg)) * fanout;
                }
                Effect::Multicast { to, msg } => {
                    serializations += 1;
                    transmissions += to.len() as u64;
                    cmd_cpu += cost.cmd_cpu_extra(R::msg_cmds(msg));
                    cmd_nic += cost.cmd_nic_extra(R::msg_cmds(msg)) * to.len() as u64;
                }
                Effect::Timer { .. } => {}
            }
        }
        // Observability accounting over the same effect list the cost model
        // walked: per-type sent counters (broadcast fans out per recipient),
        // command payload totals, batch-size high-water, replies, forwards.
        if let Some(ms) = &mut self.metrics {
            let m = &mut ms[idx];
            let fanout = (self.all_nodes.len() - 1) as u64;
            for e in &effects {
                match e {
                    Effect::Send { msg, .. } => {
                        let cmds = R::msg_cmds(msg);
                        m.sent(R::msg_kind(msg), 1);
                        m.add(Metric::CmdsSent, cmds);
                        m.gauge_max(Gauge::BatchHwm, cmds);
                    }
                    Effect::Broadcast { msg } => {
                        let cmds = R::msg_cmds(msg);
                        m.sent(R::msg_kind(msg), fanout);
                        m.add(Metric::CmdsSent, cmds.saturating_mul(fanout));
                        m.gauge_max(Gauge::BatchHwm, cmds);
                    }
                    Effect::Multicast { to, msg } => {
                        let cmds = R::msg_cmds(msg);
                        m.sent(R::msg_kind(msg), to.len() as u64);
                        m.add(Metric::CmdsSent, cmds.saturating_mul(to.len() as u64));
                        m.gauge_max(Gauge::BatchHwm, cmds);
                    }
                    Effect::Reply { .. } => m.add(Metric::Replies, 1),
                    Effect::Forward { .. } => m.add(Metric::Forwards, 1),
                    Effect::Timer { .. } => {}
                }
            }
        }
        let cpu = (if charge_input {
            cost.t_in.0 + cost.cmd_cpu_extra(in_cmds)
        } else {
            0
        }) + cost.t_out.0 * serializations
            + cmd_cpu;
        let cpu = (cpu as f64 * cost.cpu_penalty) as u64;
        // Disk time: every fsync the handler triggered stalls the pipeline
        // for t_fsync (the durability tax). Not scaled by cpu_penalty — it
        // models the device, not the protocol's compute.
        let syncs = self.hub.as_ref().map(|h| h.drain_syncs(node)).unwrap_or(0);
        if let Some(ms) = &mut self.metrics {
            let appends = self
                .hub
                .as_ref()
                .map(|h| h.drain_appends(node))
                .unwrap_or(0);
            let m = &mut ms[idx];
            if appends > 0 {
                m.add(Metric::WalAppends, appends);
            }
            if syncs > 0 {
                m.add(Metric::WalFsyncs, syncs);
            }
        }
        let service = Nanos(cpu + cost.nic().0 * transmissions + cmd_nic + cost.t_fsync.0 * syncs);
        let departure = start + service;
        self.nodes[idx].busy_until = departure;
        self.nodes[idx].busy_total += service;
        self.nodes[idx].handled += 1;
        self.nodes[idx].sent += transmissions;

        for effect in effects.drain(..) {
            match effect {
                Effect::Send { to, msg } => self.emit_msg(node, to, msg, departure),
                Effect::Broadcast { msg } => {
                    for &to in &self.all_nodes.clone() {
                        if to != node {
                            self.emit_msg(node, to, msg.clone(), departure);
                        }
                    }
                }
                Effect::Multicast { to, msg } => {
                    for t in to {
                        self.emit_msg(node, t, msg.clone(), departure);
                    }
                }
                Effect::Timer { after, kind, token } => {
                    self.push(
                        start + after,
                        EventKind::Node {
                            to: node,
                            input: Input::Timer { kind, token },
                        },
                    );
                }
                Effect::Reply { resp } => {
                    if let Some(ring) = &mut self.trace_ring {
                        ring.push(TraceEvent {
                            at: departure,
                            node,
                            req: resp.id,
                            stage: TraceStage::Reply,
                        });
                    }
                    if let Some(p) = self.pending.get(&resp.id) {
                        let zone = self.clients[p.ci].setup.zone;
                        let delay =
                            self.cfg
                                .topology
                                .sample_one_way(&mut self.rng, node.zone, zone);
                        self.push(departure + delay, EventKind::ClientDone { resp });
                    }
                }
                Effect::Forward { to, req } => {
                    match self.faults.message_fate(node, to, departure, &mut self.rng) {
                        MsgFate::Dropped => self.count_fault_drop(node),
                        MsgFate::Deliver { extra_delay } => {
                            let delay =
                                self.cfg
                                    .topology
                                    .sample_one_way(&mut self.rng, node.zone, to.zone);
                            self.push(
                                departure + delay + extra_delay,
                                EventKind::Node {
                                    to,
                                    input: Input::Request(req),
                                },
                            );
                        }
                    }
                }
            }
        }
        self.scratch = effects;
    }

    /// Charges one fault-injected message loss to `from`'s drop accounting.
    fn count_fault_drop(&mut self, from: NodeId) {
        if let Some(ms) = &mut self.metrics {
            ms[self.cluster.index_of(from)].add_drop(DropCause::Fault, 1);
        }
    }

    fn emit_msg(&mut self, from: NodeId, to: NodeId, msg: R::Msg, departure: Nanos) {
        if to == from {
            // Self-delivery bypasses the network.
            self.push(
                departure,
                EventKind::Node {
                    to,
                    input: Input::Msg { from, msg },
                },
            );
            return;
        }
        match self.faults.message_fate(from, to, departure, &mut self.rng) {
            MsgFate::Dropped => self.count_fault_drop(from),
            MsgFate::Deliver { extra_delay } => {
                let delay = self
                    .cfg
                    .topology
                    .sample_one_way(&mut self.rng, from.zone, to.zone);
                self.push(
                    departure + delay + extra_delay + self.cfg.cost.wire_overhead,
                    EventKind::Node {
                        to,
                        input: Input::Msg { from, msg },
                    },
                );
            }
        }
    }

    fn client_issue(&mut self, ci: usize) {
        let now = self.now;
        let (zone, attach, mode) = {
            let c = &self.clients[ci];
            (c.setup.zone, c.setup.attach, c.setup.mode)
        };
        let seq = self.clients[ci].next_seq;
        self.clients[ci].next_seq += 1;
        let client_id = ClientId(ci as u32);
        let cmd = self.workload.next(client_id, zone, seq, now, &mut self.rng);
        let id = RequestId::new(client_id, seq);
        self.pending.insert(
            id,
            Pending {
                ci,
                invoke: now,
                cmd: cmd.clone(),
            },
        );
        if let Some(ring) = &mut self.trace_ring {
            ring.push(TraceEvent {
                at: now,
                node: attach,
                req: id,
                stage: TraceStage::Submit,
            });
        }
        if now >= self.cfg.warmup {
            self.issued += 1;
        }
        let delay = self
            .cfg
            .topology
            .sample_one_way(&mut self.rng, zone, attach.zone);
        self.push(
            now + delay,
            EventKind::Node {
                to: attach,
                input: Input::Request(ClientRequest { id, cmd }),
            },
        );
        if let Some(retry) = self.cfg.client_retry {
            self.push(now + retry, EventKind::RetryCheck { id });
        }
        if let LoadMode::Open { rate } = mode {
            let gap = Nanos((self.rng.exponential(rate.max(1e-9)) * 1e9) as u64);
            self.push(now + gap, EventKind::ClientIssue { ci });
        }
    }

    fn client_done(&mut self, resp: ClientResponse) {
        let Some(p) = self.pending.remove(&resp.id) else {
            return; // duplicate reply or abandoned request
        };
        let now = self.now;
        let end = self.cfg.warmup + self.cfg.measure;
        let in_window = p.invoke >= self.cfg.warmup && now <= end;
        if resp.ok {
            if in_window {
                let lat = now - p.invoke;
                self.hist.record(lat);
                let zone = self.clients[p.ci].setup.zone;
                self.zone_hist.entry(zone).or_default().record(lat);
                self.completed += 1;
                if let Some(bucket) = self.cfg.timeline_bucket {
                    *self.timeline.entry(now.0 / bucket.0.max(1)).or_insert(0) += 1;
                }
            }
        } else if in_window {
            self.errors += 1;
        }
        if self.cfg.record_ops {
            self.ops.push(op_record(&p, &resp, now, resp.ok));
        }
        if self.draining {
            return; // the window is over: complete, but issue nothing new
        }
        if let LoadMode::Closed { think } = self.clients[p.ci].setup.mode {
            self.push(now + think, EventKind::ClientIssue { ci: p.ci });
        }
    }

    fn retry_check(&mut self, id: RequestId) {
        let Some(p) = self.pending.remove(&id) else {
            return; // already completed
        };
        let now = self.now;
        if p.invoke >= self.cfg.warmup && now <= self.cfg.warmup + self.cfg.measure {
            self.abandoned += 1;
        }
        if self.cfg.record_ops {
            // Abandoned writes may still take effect later; the checker
            // treats them as concurrent-with-everything-after.
            let resp = ClientResponse::err(id);
            self.ops.push(op_record(&p, &resp, now, false));
        }
        // Closed-loop clients move on with a fresh request.
        if let LoadMode::Closed { .. } = self.clients[p.ci].setup.mode {
            self.push(now, EventKind::ClientIssue { ci: p.ci });
        }
    }

    fn build_report(&mut self, end: Nanos) -> SimReport {
        // Operations still in flight at cut-off may have taken effect
        // without a visible response; the linearizability checker needs
        // them as "maybe applied" (ok = false) records or their values
        // would look phantom in later reads.
        if self.cfg.record_ops {
            let pending: Vec<_> = self.pending.drain().collect();
            for (id, p) in pending {
                let resp = ClientResponse::err(id);
                self.ops.push(op_record(&p, &resp, end, false));
            }
        }
        let window = self.cfg.measure;
        let node_stats: Vec<NodeStats> = self
            .all_nodes
            .iter()
            .zip(&self.nodes)
            .map(|(&id, n)| NodeStats {
                id,
                handled: n.handled,
                sent: n.sent,
                busy: n.busy_total,
                utilization: if end == Nanos::ZERO {
                    0.0
                } else {
                    (n.busy_total.0 as f64 / end.0 as f64).min(1.0)
                },
            })
            .collect();
        let bucket = self.cfg.timeline_bucket.unwrap_or(Nanos::ZERO);
        let metrics = self.metrics.as_ref().map(|ms| ClusterMetrics {
            nodes: self
                .all_nodes
                .iter()
                .zip(ms)
                .map(|(&id, m)| MetricsSnapshot {
                    node: id,
                    metrics: m.clone(),
                })
                .collect(),
        });
        SimReport {
            window,
            issued: self.issued,
            completed: self.completed,
            errors: self.errors,
            abandoned: self.abandoned,
            throughput: self.completed as f64 / window.as_secs_f64(),
            latency: (&self.hist).into(),
            histogram: self.hist.clone(),
            zone_latency: self.zone_hist.iter().map(|(z, h)| (*z, h.into())).collect(),
            zone_histogram: self.zone_hist.clone(),
            node_stats,
            ops: std::mem::take(&mut self.ops),
            timeline: self
                .timeline
                .iter()
                .map(|(b, c)| (Nanos(b * bucket.0), *c))
                .collect(),
            events_processed: self.events_processed,
            metrics,
            trace: self.trace_ring.clone(),
        }
    }
}

fn op_record(p: &Pending, resp: &ClientResponse, now: Nanos, ok: bool) -> OpRecord {
    OpRecord {
        client: resp.id.client,
        key: p.cmd.key,
        write: match &p.cmd.op {
            Op::Put(v) => Some(v.clone()),
            _ => None,
        },
        read: match &p.cmd.op {
            Op::Get => Some(resp.value.clone()),
            _ => None,
        },
        invoke: p.invoke,
        ret: now,
        ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxi_core::store::MultiVersionStore;

    /// A no-replication replica: executes every request on its local store.
    /// Exercises the client loop, cost accounting, and latency measurement
    /// without any protocol logic.
    struct LocalKv {
        store: MultiVersionStore,
    }

    impl Replica for LocalKv {
        type Msg = ();
        fn on_message(&mut self, _f: NodeId, _m: (), _ctx: &mut dyn Context<()>) {}
        fn on_request(&mut self, req: ClientRequest, ctx: &mut dyn Context<()>) {
            let v = self.store.execute(&req.cmd);
            ctx.reply(ClientResponse::ok(req.id, v));
        }
        fn protocol_name(&self) -> &'static str {
            "local-kv"
        }
        fn store(&self) -> Option<&MultiVersionStore> {
            Some(&self.store)
        }
    }

    fn local_factory(_id: NodeId) -> LocalKv {
        LocalKv {
            store: MultiVersionStore::new(),
        }
    }

    #[test]
    fn closed_loop_latency_is_about_one_lan_rtt() {
        let cfg = SimConfig::default();
        let cluster = ClusterConfig::lan(3);
        let clients = ClientSetup::closed_in_zone(&cluster, 0, 1);
        let mut sim = Simulator::new(
            cfg,
            cluster,
            local_factory,
            crate::client::uniform_workload(100),
            clients,
        );
        let report = sim.run();
        assert!(report.completed > 1000, "completed {}", report.completed);
        // One client, no replication: latency ≈ client->node RTT ≈ 0.43 ms.
        let mean = report.latency.mean.as_millis_f64();
        assert!((0.3..0.6).contains(&mean), "mean latency {mean} ms");
        assert_eq!(report.errors, 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let cfg = SimConfig {
                seed,
                ..SimConfig::default()
            };
            let cluster = ClusterConfig::lan(3);
            let clients = ClientSetup::closed_per_zone(&cluster, 4);
            let mut sim = Simulator::new(
                cfg,
                cluster,
                local_factory,
                crate::client::uniform_workload(50),
                clients,
            );
            let r = sim.run();
            (r.completed, r.latency.mean, r.events_processed)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn open_loop_throughput_tracks_rate() {
        let cfg = SimConfig {
            measure: Nanos::secs(4),
            ..SimConfig::default()
        };
        let cluster = ClusterConfig::lan(1);
        let clients = ClientSetup::open_single(2000.0);
        let mut sim = Simulator::new(
            cfg,
            cluster,
            local_factory,
            crate::client::uniform_workload(100),
            clients,
        );
        let report = sim.run();
        assert!(
            (report.throughput - 2000.0).abs() / 2000.0 < 0.1,
            "throughput {}",
            report.throughput
        );
    }

    #[test]
    fn crashed_node_stalls_its_clients() {
        let cfg = SimConfig {
            record_ops: true,
            ..SimConfig::default()
        };
        let cluster = ClusterConfig::lan(2);
        // Client 0 -> node 0 (will crash), client 1 -> node 1.
        let clients = vec![
            ClientSetup {
                zone: 0,
                attach: NodeId::new(0, 0),
                mode: LoadMode::Closed { think: Nanos::ZERO },
            },
            ClientSetup {
                zone: 0,
                attach: NodeId::new(0, 1),
                mode: LoadMode::Closed { think: Nanos::ZERO },
            },
        ];
        let mut sim = Simulator::new(
            cfg,
            cluster,
            local_factory,
            crate::client::uniform_workload(10),
            clients,
        );
        // Crash node 0 for the whole run.
        sim.faults_mut()
            .crash(NodeId::new(0, 0), Nanos::ZERO, Nanos::secs(60));
        let report = sim.run();
        // Only client 1 makes progress; client 0 completes nothing.
        assert!(report.completed > 0);
        let c0_ops = report
            .ops
            .iter()
            .filter(|o| o.client == ClientId(0) && o.ok)
            .count();
        assert_eq!(c0_ops, 0, "client of crashed node must not complete ops");
    }

    #[test]
    fn retry_abandons_and_reissues() {
        let cfg = SimConfig {
            client_retry: Some(Nanos::millis(50)),
            record_ops: true,
            ..SimConfig::default()
        };
        let cluster = ClusterConfig::lan(2);
        let clients = vec![ClientSetup {
            zone: 0,
            attach: NodeId::new(0, 0),
            mode: LoadMode::Closed { think: Nanos::ZERO },
        }];
        let mut sim = Simulator::new(
            cfg,
            cluster,
            local_factory,
            crate::client::uniform_workload(10),
            clients,
        );
        sim.faults_mut()
            .crash(NodeId::new(0, 0), Nanos::ZERO, Nanos::secs(60));
        let report = sim.run();
        assert!(report.abandoned > 10, "abandoned {}", report.abandoned);
        assert_eq!(report.completed, 0);
    }

    #[test]
    fn node_stats_reflect_request_handling() {
        let cfg = SimConfig::default();
        let cluster = ClusterConfig::lan(2);
        let clients = ClientSetup::closed_in_zone(&cluster, 0, 2);
        let mut sim = Simulator::new(
            cfg,
            cluster,
            local_factory,
            crate::client::uniform_workload(10),
            clients,
        );
        let report = sim.run();
        let handled: u64 = report.node_stats.iter().map(|n| n.handled).sum();
        assert!(handled > 0);
        assert!(report.max_utilization() > 0.0);
        assert!(report.max_utilization() <= 1.0);
    }

    /// A LocalKv that logs every write to durable storage and replays the
    /// log when (re)attached — the smallest possible durable replica, used
    /// to exercise the simulator's amnesia/fsync plumbing without dragging
    /// in a real protocol.
    struct DurableKv {
        store: MultiVersionStore,
        wal: Option<Box<dyn paxi_storage::Storage>>,
    }

    impl Replica for DurableKv {
        type Msg = ();
        fn on_message(&mut self, _f: NodeId, _m: (), _ctx: &mut dyn Context<()>) {}
        fn on_request(&mut self, req: ClientRequest, ctx: &mut dyn Context<()>) {
            if let Some(wal) = &mut self.wal {
                if matches!(req.cmd.op, Op::Put(_) | Op::Delete) {
                    let bytes = paxi_codec::to_bytes(&req.cmd).unwrap();
                    wal.append(&bytes).unwrap();
                }
            }
            let v = self.store.execute(&req.cmd);
            ctx.reply(ClientResponse::ok(req.id, v));
        }
        fn attach_storage(&mut self, mut storage: Box<dyn paxi_storage::Storage>) {
            let rec = storage.recover().unwrap();
            for bytes in &rec.records {
                let cmd: Command = paxi_codec::from_bytes(bytes).unwrap();
                self.store.execute(&cmd);
            }
            self.wal = Some(storage);
        }
        fn protocol_name(&self) -> &'static str {
            "durable-kv"
        }
        fn store(&self) -> Option<&MultiVersionStore> {
            Some(&self.store)
        }
    }

    /// Runs the two-node DurableKv cluster, optionally crashing node 0 from
    /// t=1s for 500ms with the given mode. Returns the report and node 0's
    /// post-run version count (its visible write history).
    fn durable_run(
        mode: Option<crate::faults::CrashMode>,
        hub: Option<paxi_storage::MemHub<NodeId>>,
    ) -> (SimReport, usize) {
        let cfg = SimConfig {
            measure: Nanos::secs(3),
            ..SimConfig::default()
        };
        let cluster = ClusterConfig::lan(2);
        let clients = vec![
            ClientSetup {
                zone: 0,
                attach: NodeId::new(0, 0),
                mode: LoadMode::Closed { think: Nanos::ZERO },
            },
            ClientSetup {
                zone: 0,
                attach: NodeId::new(0, 1),
                mode: LoadMode::Closed { think: Nanos::ZERO },
            },
        ];
        let mk_hub = hub.clone();
        let factory = move |id: NodeId| {
            let mut r = DurableKv {
                store: MultiVersionStore::new(),
                wal: None,
            };
            if let Some(h) = &mk_hub {
                r.attach_storage(Box::new(h.open(id)));
            }
            r
        };
        let mut sim = Simulator::new(
            cfg,
            cluster,
            factory,
            crate::client::uniform_workload(8),
            clients,
        );
        if let Some(h) = hub {
            sim.set_storage(h);
        }
        if let Some(mode) = mode {
            sim.faults_mut().crash_mode_in(
                NodeId::new(0, 0),
                crate::faults::FaultWindow::new(Nanos::secs(1), Nanos::millis(500)),
                mode,
            );
        }
        let report = sim.run();
        let vc = sim.replicas()[0].store().unwrap().version_count();
        (report, vc)
    }

    #[test]
    fn amnesia_loses_volatile_state_but_wal_replay_rebuilds_it() {
        use crate::faults::CrashMode;
        use paxi_storage::{FsyncPolicy, MemHub};
        // Identical seed and schedule across the three runs; only the crash
        // semantics and the presence of a durable store differ. Node 0's
        // client stalls once its in-flight request dies with the crash
        // (closed loop, no retry), so everything in node 0's store was
        // written pre-crash.
        let (_, freeze_vc) = durable_run(
            Some(CrashMode::Freeze),
            Some(MemHub::new(FsyncPolicy::Always)),
        );
        let (_, amnesia_vc) = durable_run(
            Some(CrashMode::Amnesia),
            Some(MemHub::new(FsyncPolicy::Always)),
        );
        let (_, naked_vc) = durable_run(Some(CrashMode::Amnesia), None);
        assert!(freeze_vc > 0, "node 0 must have written before the crash");
        assert_eq!(
            amnesia_vc, freeze_vc,
            "WAL replay must rebuild exactly the durable write history"
        );
        assert_eq!(
            naked_vc, 0,
            "without storage an amnesia crash loses everything"
        );
    }

    #[test]
    fn fsync_always_costs_latency_over_no_storage() {
        use paxi_storage::{FsyncPolicy, MemHub};
        let (volatile, _) = durable_run(None, None);
        let (durable, _) = durable_run(None, Some(MemHub::new(FsyncPolicy::Always)));
        // Every Put now stalls its node for t_fsync (100 us by default), so
        // mean latency must rise measurably.
        assert!(
            durable.latency.mean > volatile.latency.mean,
            "durable {} <= volatile {}",
            durable.latency.mean,
            volatile.latency.mean
        );
        assert!(durable.completed > 0 && volatile.completed > 0);
    }

    #[test]
    fn wan_client_sees_wan_latency_to_remote_attach() {
        let cfg = SimConfig {
            topology: Topology::aws5(),
            ..SimConfig::default()
        };
        let cluster = ClusterConfig::wan(5, 1, 0, 0);
        // Client in JP (zone 4) attaches to a VA node (zone 0).
        let clients = vec![ClientSetup {
            zone: 4,
            attach: NodeId::new(0, 0),
            mode: LoadMode::Closed { think: Nanos::ZERO },
        }];
        let mut sim = Simulator::new(
            cfg,
            cluster,
            local_factory,
            crate::client::uniform_workload(10),
            clients,
        );
        let report = sim.run();
        let mean = report.latency.mean.as_millis_f64();
        assert!(
            (150.0..180.0).contains(&mean),
            "JP->VA RTT ~162ms, got {mean}"
        );
    }
}
