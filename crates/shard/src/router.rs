//! The client-side shard router.
//!
//! A smart client for sharded deployments: every command is partitioned to
//! its consensus group, sent to the node the router believes leads that
//! group, and retried with exponential backoff when the guess is wrong. The
//! leader cache is populated two ways — successful responses confirm the
//! current target, and wrong-leader rejections carry the true leader in
//! [`ClientResponse::redirect`] (see [`crate::replica::ShardedReplica`]'s
//! redirect mode). A node that can't help (no response, no hint) makes the
//! router fall back to probing the remaining nodes round-robin, so it
//! converges even from a cold or stale cache.
//!
//! Routing itself is versioned: the router holds a [`RoutingTable`] over
//! the static partitioner, and [`ClientResponse::handoff`] rejections
//! (a shard migration moved the key's range) teach it epoch-tagged range
//! overrides, after which the command is re-aimed at the new owning group.
//!
//! Every degraded path is a *counted, retryable* outcome on
//! [`RouterStats`], never a panic: an empty node set fails the command
//! (and `set_nodes` refuses to install one), stale hand-offs are ignored
//! but tallied, and exhausted probing returns `None` with the failure
//! accounted.

use crate::partition::Partitioner;
use crate::routing::RoutingTable;
use paxi_core::command::{ClientResponse, Command};
use paxi_core::group::GroupId;
use paxi_core::id::NodeId;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// How a router reaches one node of the cluster and awaits the response.
/// Implemented by the in-process transport's client pool below and by
/// closures (tests); one blocking call per request, `None` on timeout.
pub trait RouteTransport {
    /// Executes `cmd` against `node`, blocking for the response.
    fn execute(&mut self, node: NodeId, cmd: Command) -> Option<ClientResponse>;
}

impl<F: FnMut(NodeId, Command) -> Option<ClientResponse>> RouteTransport for F {
    fn execute(&mut self, node: NodeId, cmd: Command) -> Option<ClientResponse> {
        self(node, cmd)
    }
}

/// A pool of per-node [`SyncClient`]s over the in-process channel
/// transport — the standard live-transport backend for the router.
///
/// [`SyncClient`]: paxi_transport::channel::SyncClient
pub struct ClientPool<M> {
    clients: HashMap<NodeId, paxi_transport::channel::SyncClient<M>>,
}

impl<M: Clone + std::fmt::Debug + Send + 'static> ClientPool<M> {
    /// One client per node, registered up front.
    pub fn new(clients: Vec<(NodeId, paxi_transport::channel::SyncClient<M>)>) -> Self {
        ClientPool {
            clients: clients.into_iter().collect(),
        }
    }
}

impl<M: Clone + std::fmt::Debug + Send + 'static> RouteTransport for ClientPool<M> {
    fn execute(&mut self, node: NodeId, cmd: Command) -> Option<ClientResponse> {
        self.clients.get_mut(&node)?.execute(cmd)
    }
}

/// Retry/backoff tuning.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Total attempts per command (first try included).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            max_attempts: 8,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
        }
    }
}

/// Per-router counters, for observability and tests. This is the router's
/// drop ledger: every degraded outcome lands in exactly one counter, so a
/// chaos run can attribute all client-visible losses.
#[derive(Debug, Default, Clone, Copy)]
pub struct RouterStats {
    /// Wrong-leader rejections that carried a usable hint.
    pub redirects: u64,
    /// Retries performed (attempts beyond the first, across commands).
    pub retries: u64,
    /// Commands that exhausted every attempt.
    pub failures: u64,
    /// Hand-off rejections whose range override was adopted (new epoch).
    pub handoffs: u64,
    /// Hand-off rejections already known or stale (same/lower epoch) —
    /// ignored, but the command is still re-aimed through the table.
    pub stale_handoffs: u64,
    /// Commands failed because the router had no nodes to try.
    pub no_targets: u64,
    /// `set_nodes` calls refused because the proposed set was empty.
    pub rejected_node_sets: u64,
}

/// Routes commands to group leaders, learning placement as it goes.
pub struct ShardRouter<T> {
    transport: T,
    /// Versioned routing view: the static partitioner plus range overrides
    /// learned from hand-off rejections.
    routing: RoutingTable,
    nodes: Vec<NodeId>,
    cfg: RouterConfig,
    /// Cached leader per group id.
    leaders: HashMap<u32, NodeId>,
    /// Counters.
    pub stats: RouterStats,
}

impl<T: RouteTransport> ShardRouter<T> {
    /// A router over `nodes` (any order; used both as the cold-cache prior
    /// — group `g` is first tried on `nodes[g % n]`, matching
    /// [`crate::placement::spread_leader`] — and as the probe rotation).
    ///
    /// An empty `nodes` set is accepted (no panic): every command fails
    /// retryably with [`RouterStats::no_targets`] counted until
    /// [`ShardRouter::set_nodes`] installs a non-empty set.
    pub fn new(
        partitioner: Arc<dyn Partitioner>,
        nodes: Vec<NodeId>,
        transport: T,
        cfg: RouterConfig,
    ) -> Self {
        ShardRouter {
            transport,
            routing: RoutingTable::new(partitioner),
            nodes,
            cfg,
            leaders: HashMap::new(),
            stats: RouterStats::default(),
        }
    }

    /// The cached leader of `group`, if known.
    pub fn cached_leader(&self, group: u32) -> Option<NodeId> {
        self.leaders.get(&group).copied()
    }

    /// The router's current routing view (static split + learned
    /// hand-offs).
    pub fn routing(&self) -> &RoutingTable {
        &self.routing
    }

    /// Replaces the router's node set after a membership change. Cached
    /// leaders outside the new set are evicted immediately — a departed node
    /// will never answer again, so waiting for `max_attempts` timeouts per
    /// group just to relearn that is pure stall. Entries pointing at
    /// surviving nodes are kept: leadership usually stays put across a
    /// reconfiguration that doesn't remove the leader.
    ///
    /// An empty set is refused (counted on
    /// [`RouterStats::rejected_node_sets`]): wiping the rotation would turn
    /// every future command into a guaranteed failure, which is never what
    /// a membership delta means.
    pub fn set_nodes(&mut self, nodes: Vec<NodeId>) {
        if nodes.is_empty() {
            self.stats.rejected_node_sets += 1;
            return;
        }
        self.leaders.retain(|_, leader| nodes.contains(leader));
        self.nodes = nodes;
    }

    /// The node set the router currently probes over.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Executes `cmd` against its owning group, following redirects and
    /// hand-offs.
    ///
    /// At-least-once semantics: a retry after a lost response may re-execute
    /// the command (wrong-leader redirects and hand-off rejections never
    /// execute, so the common retry causes are side-effect free).
    pub fn execute(&mut self, cmd: Command) -> Option<ClientResponse> {
        if self.nodes.is_empty() {
            // No rotation to probe: a counted, retryable failure — never a
            // modulo-by-zero panic.
            self.stats.no_targets += 1;
            self.stats.failures += 1;
            return None;
        }
        let mut group = self.routing.group_of(cmd.key);
        let mut target = self.target_for(group);
        for attempt in 0..self.cfg.max_attempts {
            if attempt > 0 {
                self.stats.retries += 1;
                std::thread::sleep(self.backoff_for(attempt));
            }
            match self.transport.execute(target, cmd.clone()) {
                Some(resp) if resp.ok => {
                    self.leaders.insert(group.0, target);
                    return Some(resp);
                }
                Some(resp) => {
                    if let Some(h) = resp.handoff {
                        // The key's range moved groups. Adopt the override
                        // (epoch-gated: a stale or duplicate hand-off never
                        // rolls the table back) and re-aim at the owner the
                        // table now names.
                        if self.routing.learn_handoff(&h) {
                            self.stats.handoffs += 1;
                        } else {
                            self.stats.stale_handoffs += 1;
                        }
                        group = self.routing.group_of(cmd.key);
                        let next = self.target_for(group);
                        if next == target {
                            // The table already aimed here (a stale
                            // hand-off through a poisoned leader cache):
                            // evict and probe onward instead of re-asking
                            // the same node forever.
                            self.leaders.remove(&group.0);
                            target = self.next_after(target);
                        } else {
                            target = next;
                        }
                    } else if let Some(leader) = resp.redirect.filter(|&l| l != target) {
                        // Wrong leader, useful hint: go straight there. A
                        // hint naming a node outside the known set means a
                        // newer membership epoch — adopt the node into the
                        // probe rotation so follow-up failures can reach it.
                        self.stats.redirects += 1;
                        if !self.nodes.contains(&leader) {
                            self.nodes.push(leader);
                        }
                        self.leaders.insert(group.0, leader);
                        target = leader;
                    } else {
                        // Rejected without a (new) hint: forget the cache
                        // entry and probe the next node.
                        self.leaders.remove(&group.0);
                        target = self.next_after(target);
                    }
                }
                None => {
                    self.leaders.remove(&group.0);
                    target = self.next_after(target);
                }
            }
        }
        self.stats.failures += 1;
        None
    }

    /// Cold-cache prior or cached leader for `group`. Callers guarantee the
    /// node set is non-empty.
    fn target_for(&self, group: GroupId) -> NodeId {
        let prior = self.nodes[group.0 as usize % self.nodes.len()];
        self.leaders.get(&group.0).copied().unwrap_or(prior)
    }

    fn next_after(&self, node: NodeId) -> NodeId {
        let at = self.nodes.iter().position(|&n| n == node).unwrap_or(0);
        self.nodes[(at + 1) % self.nodes.len()]
    }

    fn backoff_for(&self, attempt: u32) -> Duration {
        // Double once per prior retry, clamping at the ceiling *inside* the
        // loop: the early return bounds the work by log2(max/base) no matter
        // how large `attempt` grows, and there is no shift to overflow at
        // attempt >= 32 (or underflow at attempt == 0).
        let mut d = self.cfg.backoff.min(self.cfg.max_backoff);
        for _ in 1..attempt {
            if d >= self.cfg.max_backoff {
                return self.cfg.max_backoff;
            }
            d = d.saturating_mul(2).min(self.cfg.max_backoff);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::RangePartitioner;
    use paxi_core::id::{ClientId, RequestId};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn cfg() -> RouterConfig {
        RouterConfig {
            max_attempts: 6,
            backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(100),
        }
    }

    fn nodes(n: u8) -> Vec<NodeId> {
        (0..n).map(|i| NodeId::new(0, i)).collect()
    }

    fn rid() -> RequestId {
        RequestId::new(ClientId(1), 0)
    }

    /// A fake cluster where `leader` serves everything and every other node
    /// redirects to it; records which nodes were contacted.
    fn redirecting_cluster(
        leader: NodeId,
        log: Rc<RefCell<Vec<NodeId>>>,
    ) -> impl FnMut(NodeId, Command) -> Option<ClientResponse> {
        move |node, _cmd| {
            log.borrow_mut().push(node);
            if node == leader {
                Some(ClientResponse::ok(rid(), None))
            } else {
                Some(ClientResponse::redirected(rid(), leader))
            }
        }
    }

    #[test]
    fn follows_redirects_then_caches_the_leader() {
        let leader = NodeId::new(0, 2);
        let log = Rc::new(RefCell::new(Vec::new()));
        let part = Arc::new(RangePartitioner::even(100, 1));
        let mut r = ShardRouter::new(
            part,
            nodes(3),
            redirecting_cluster(leader, log.clone()),
            cfg(),
        );
        // Cold cache: tries the placement prior (node 0), gets redirected,
        // lands on the leader.
        assert!(r.execute(Command::get(5)).unwrap().ok);
        assert_eq!(*log.borrow(), vec![NodeId::new(0, 0), leader]);
        assert_eq!(r.stats.redirects, 1);
        assert_eq!(r.cached_leader(0), Some(leader));
        // Warm cache: straight to the leader, no redirect.
        assert!(r.execute(Command::get(6)).unwrap().ok);
        assert_eq!(log.borrow().len(), 3);
        assert_eq!(r.stats.redirects, 1);
    }

    #[test]
    fn per_group_leaders_are_cached_independently() {
        // Two groups, different leaders: node g serves group g's keys.
        let part = Arc::new(RangePartitioner::even(100, 2));
        let p2 = part.clone();
        let transport = move |node: NodeId, cmd: Command| {
            let owner = NodeId::new(0, p2.group_of(cmd.key).0 as u8);
            Some(if node == owner {
                ClientResponse::ok(rid(), None)
            } else {
                ClientResponse::redirected(rid(), owner)
            })
        };
        let mut r = ShardRouter::new(part, nodes(2), transport, cfg());
        assert!(r.execute(Command::get(10)).unwrap().ok); // group 0
        assert!(r.execute(Command::get(60)).unwrap().ok); // group 1
        assert_eq!(r.cached_leader(0), Some(NodeId::new(0, 0)));
        assert_eq!(r.cached_leader(1), Some(NodeId::new(0, 1)));
        // The cold-cache prior matched the spread placement, so no
        // redirects were even needed.
        assert_eq!(r.stats.redirects, 0);
    }

    #[test]
    fn probes_past_dead_nodes_with_backoff() {
        // Node 0 times out, node 1 rejects without a hint, node 2 serves.
        let transport = |node: NodeId, _cmd: Command| match node.node {
            0 => None,
            1 => Some(ClientResponse::err(rid())),
            _ => Some(ClientResponse::ok(rid(), None)),
        };
        let part = Arc::new(RangePartitioner::even(100, 1));
        let mut r = ShardRouter::new(part, nodes(3), transport, cfg());
        assert!(r.execute(Command::get(1)).unwrap().ok);
        assert_eq!(r.stats.retries, 2);
        assert_eq!(r.cached_leader(0), Some(NodeId::new(0, 2)));
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let part = Arc::new(RangePartitioner::even(100, 1));
        let mut r = ShardRouter::new(part, nodes(3), |_: NodeId, _: Command| None, cfg());
        assert!(r.execute(Command::get(1)).is_none());
        assert_eq!(r.stats.failures, 1);
        assert_eq!(r.stats.retries, 5, "max_attempts - 1 retries");
    }

    #[test]
    fn backoff_is_safe_at_extreme_attempt_counts() {
        let part = Arc::new(RangePartitioner::even(100, 1));
        let r = ShardRouter::new(part, nodes(1), |_: NodeId, _: Command| None, cfg());
        // attempt 0 must not underflow the exponent (the old code computed
        // `attempt - 1` on a u32).
        assert_eq!(r.backoff_for(0), Duration::from_micros(10));
        assert_eq!(r.backoff_for(1), Duration::from_micros(10));
        assert_eq!(r.backoff_for(2), Duration::from_micros(20));
        assert_eq!(r.backoff_for(4), Duration::from_micros(80));
        // Past the ceiling the backoff clamps instead of overflowing the
        // doubling factor (the old code shifted by up to `attempt - 1`).
        for attempt in [5u32, 32, 33, 64, u32::MAX] {
            assert_eq!(
                r.backoff_for(attempt),
                Duration::from_micros(100),
                "attempt {attempt}"
            );
        }
    }

    #[test]
    fn set_nodes_evicts_departed_leaders_only() {
        let part = Arc::new(RangePartitioner::even(100, 2));
        let p2 = part.clone();
        let transport = move |node: NodeId, cmd: Command| {
            let owner = NodeId::new(0, p2.group_of(cmd.key).0 as u8);
            Some(if node == owner {
                ClientResponse::ok(rid(), None)
            } else {
                ClientResponse::redirected(rid(), owner)
            })
        };
        let mut r = ShardRouter::new(part, nodes(2), transport, cfg());
        assert!(r.execute(Command::get(10)).unwrap().ok); // group 0 -> node 0
        assert!(r.execute(Command::get(60)).unwrap().ok); // group 1 -> node 1
                                                          // New epoch removes node 1 and adds node 2: only group 1's cache
                                                          // entry (pointing at the departed node) is evicted.
        r.set_nodes(vec![NodeId::new(0, 0), NodeId::new(0, 2)]);
        assert_eq!(r.cached_leader(0), Some(NodeId::new(0, 0)));
        assert_eq!(r.cached_leader(1), None);
        assert_eq!(r.nodes(), &[NodeId::new(0, 0), NodeId::new(0, 2)]);
    }

    #[test]
    fn redirect_to_unknown_node_adopts_newer_epoch() {
        // The router only knows nodes 0 and 1, but leadership moved to a
        // freshly joined node 3 (a membership epoch the router hasn't heard
        // of). The redirect hint must be followed AND the node adopted into
        // the probe rotation.
        let joined = NodeId::new(0, 3);
        let log = Rc::new(RefCell::new(Vec::new()));
        let part = Arc::new(RangePartitioner::even(100, 1));
        let mut r = ShardRouter::new(
            part,
            nodes(2),
            redirecting_cluster(joined, log.clone()),
            cfg(),
        );
        assert!(r.execute(Command::get(5)).unwrap().ok);
        assert_eq!(*log.borrow(), vec![NodeId::new(0, 0), joined]);
        assert_eq!(r.cached_leader(0), Some(joined));
        assert!(
            r.nodes().contains(&joined),
            "joined node enters the rotation"
        );
    }

    #[test]
    fn empty_node_set_fails_retryably_instead_of_panicking() {
        let part = Arc::new(RangePartitioner::even(100, 1));
        let mut r = ShardRouter::new(part, Vec::new(), |_: NodeId, _: Command| None, cfg());
        assert!(r.execute(Command::get(1)).is_none());
        assert_eq!(r.stats.no_targets, 1);
        assert_eq!(r.stats.failures, 1);
        assert_eq!(r.stats.retries, 0, "nothing to probe, nothing retried");
        // Installing an empty set later is refused, not obeyed.
        r.set_nodes(vec![NodeId::new(0, 0)]);
        r.set_nodes(Vec::new());
        assert_eq!(r.stats.rejected_node_sets, 1);
        assert_eq!(r.nodes(), &[NodeId::new(0, 0)], "previous set survives");
    }

    #[test]
    fn handoffs_reroute_to_the_new_owning_group() {
        use paxi_core::command::Handoff;
        // Two groups on two nodes; keys [40, 60) were migrated from group 0
        // to group 1. Node 0 (old owner) answers those keys with a hand-off;
        // node 1 serves them.
        let part = Arc::new(RangePartitioner::even(100, 2));
        let transport = move |node: NodeId, cmd: Command| {
            let migrated = (40..60).contains(&cmd.key);
            let owner = if migrated {
                NodeId::new(0, 1)
            } else {
                NodeId::new(0, u8::from(cmd.key >= 50))
            };
            Some(if node == owner {
                ClientResponse::ok(rid(), None)
            } else if migrated && node == NodeId::new(0, 0) {
                ClientResponse::handed_off(
                    rid(),
                    Handoff {
                        lo: 40,
                        hi: 60,
                        group: paxi_core::group::GroupId(1),
                        epoch: 1,
                    },
                )
            } else {
                ClientResponse::redirected(rid(), owner)
            })
        };
        let mut r = ShardRouter::new(part, nodes(2), transport, cfg());
        // First migrated key: old owner rejects with the hand-off, the
        // override is adopted, and the retry lands on the new owner.
        assert!(r.execute(Command::get(45)).unwrap().ok);
        assert_eq!(r.stats.handoffs, 1);
        assert_eq!(r.routing().epoch(), 1);
        // Second migrated key: routed straight to group 1, no more
        // hand-offs needed.
        let before = r.stats.retries;
        assert!(r.execute(Command::get(55)).unwrap().ok);
        assert_eq!(r.stats.handoffs, 1, "override remembered");
        assert_eq!(r.stats.retries, before, "no retry on the second key");
        // Unmigrated keys still follow the static split.
        assert!(r.execute(Command::get(10)).unwrap().ok);
    }

    #[test]
    fn stale_handoffs_are_counted_but_do_not_roll_back() {
        use paxi_core::command::Handoff;
        let part = Arc::new(RangePartitioner::even(100, 2));
        let stale = Handoff {
            lo: 40,
            hi: 60,
            group: paxi_core::group::GroupId(1),
            epoch: 1,
        };
        // Node 0 always answers with the same (already-known) hand-off;
        // node 1 serves.
        let transport = move |node: NodeId, _cmd: Command| {
            Some(if node == NodeId::new(0, 1) {
                ClientResponse::ok(rid(), None)
            } else {
                ClientResponse::handed_off(rid(), stale)
            })
        };
        let mut r = ShardRouter::new(part, nodes(2), transport, cfg());
        assert!(r.execute(Command::get(45)).unwrap().ok);
        assert_eq!(r.stats.handoffs, 1, "first sighting adopted");
        // Poison the leader cache back to node 0 so the stale hand-off is
        // seen again on the next command.
        r.leaders.insert(1, NodeId::new(0, 0));
        assert!(r.execute(Command::get(46)).unwrap().ok);
        assert_eq!(r.stats.stale_handoffs, 1, "repeat sighting counted");
        assert_eq!(r.routing().epoch(), 1, "epoch never regresses");
    }

    #[test]
    fn self_redirect_does_not_loop() {
        // A confused node redirecting to itself must degrade to probing,
        // not spin on one target forever.
        let served = Rc::new(RefCell::new(0u32));
        let s2 = served.clone();
        let transport = move |node: NodeId, _cmd: Command| {
            if node.node == 0 {
                Some(ClientResponse::redirected(rid(), NodeId::new(0, 0)))
            } else {
                *s2.borrow_mut() += 1;
                Some(ClientResponse::ok(rid(), None))
            }
        };
        let part = Arc::new(RangePartitioner::even(100, 1));
        let mut r = ShardRouter::new(part, nodes(2), transport, cfg());
        assert!(r.execute(Command::get(1)).unwrap().ok);
        assert_eq!(*served.borrow(), 1);
    }
}
