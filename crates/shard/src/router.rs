//! The client-side shard router.
//!
//! A smart client for sharded deployments: every command is partitioned to
//! its consensus group, sent to the node the router believes leads that
//! group, and retried with exponential backoff when the guess is wrong. The
//! leader cache is populated two ways — successful responses confirm the
//! current target, and wrong-leader rejections carry the true leader in
//! [`ClientResponse::redirect`] (see [`crate::replica::ShardedReplica`]'s
//! redirect mode). A node that can't help (no response, no hint) makes the
//! router fall back to probing the remaining nodes round-robin, so it
//! converges even from a cold or stale cache.

use crate::partition::Partitioner;
use paxi_core::command::{ClientResponse, Command};
use paxi_core::id::NodeId;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// How a router reaches one node of the cluster and awaits the response.
/// Implemented by the in-process transport's client pool below and by
/// closures (tests); one blocking call per request, `None` on timeout.
pub trait RouteTransport {
    /// Executes `cmd` against `node`, blocking for the response.
    fn execute(&mut self, node: NodeId, cmd: Command) -> Option<ClientResponse>;
}

impl<F: FnMut(NodeId, Command) -> Option<ClientResponse>> RouteTransport for F {
    fn execute(&mut self, node: NodeId, cmd: Command) -> Option<ClientResponse> {
        self(node, cmd)
    }
}

/// A pool of per-node [`SyncClient`]s over the in-process channel
/// transport — the standard live-transport backend for the router.
///
/// [`SyncClient`]: paxi_transport::channel::SyncClient
pub struct ClientPool<M> {
    clients: HashMap<NodeId, paxi_transport::channel::SyncClient<M>>,
}

impl<M: Clone + std::fmt::Debug + Send + 'static> ClientPool<M> {
    /// One client per node, registered up front.
    pub fn new(clients: Vec<(NodeId, paxi_transport::channel::SyncClient<M>)>) -> Self {
        ClientPool {
            clients: clients.into_iter().collect(),
        }
    }
}

impl<M: Clone + std::fmt::Debug + Send + 'static> RouteTransport for ClientPool<M> {
    fn execute(&mut self, node: NodeId, cmd: Command) -> Option<ClientResponse> {
        self.clients.get_mut(&node)?.execute(cmd)
    }
}

/// Retry/backoff tuning.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Total attempts per command (first try included).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            max_attempts: 8,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
        }
    }
}

/// Per-router counters, for observability and tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct RouterStats {
    /// Wrong-leader rejections that carried a usable hint.
    pub redirects: u64,
    /// Retries performed (attempts beyond the first, across commands).
    pub retries: u64,
    /// Commands that exhausted every attempt.
    pub failures: u64,
}

/// Routes commands to group leaders, learning placement as it goes.
pub struct ShardRouter<T> {
    transport: T,
    partitioner: Arc<dyn Partitioner>,
    nodes: Vec<NodeId>,
    cfg: RouterConfig,
    /// Cached leader per group id.
    leaders: HashMap<u32, NodeId>,
    /// Counters.
    pub stats: RouterStats,
}

impl<T: RouteTransport> ShardRouter<T> {
    /// A router over `nodes` (any order; used both as the cold-cache prior
    /// — group `g` is first tried on `nodes[g % n]`, matching
    /// [`crate::placement::spread_leader`] — and as the probe rotation).
    pub fn new(
        partitioner: Arc<dyn Partitioner>,
        nodes: Vec<NodeId>,
        transport: T,
        cfg: RouterConfig,
    ) -> Self {
        assert!(!nodes.is_empty(), "router needs at least one node");
        ShardRouter {
            transport,
            partitioner,
            nodes,
            cfg,
            leaders: HashMap::new(),
            stats: RouterStats::default(),
        }
    }

    /// The cached leader of `group`, if known.
    pub fn cached_leader(&self, group: u32) -> Option<NodeId> {
        self.leaders.get(&group).copied()
    }

    /// Replaces the router's node set after a membership change. Cached
    /// leaders outside the new set are evicted immediately — a departed node
    /// will never answer again, so waiting for `max_attempts` timeouts per
    /// group just to relearn that is pure stall. Entries pointing at
    /// surviving nodes are kept: leadership usually stays put across a
    /// reconfiguration that doesn't remove the leader.
    pub fn set_nodes(&mut self, nodes: Vec<NodeId>) {
        assert!(!nodes.is_empty(), "router needs at least one node");
        self.leaders.retain(|_, leader| nodes.contains(leader));
        self.nodes = nodes;
    }

    /// The node set the router currently probes over.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Executes `cmd` against its owning group, following redirects.
    ///
    /// At-least-once semantics: a retry after a lost response may re-execute
    /// the command (wrong-leader redirects never execute, so the common
    /// retry cause is side-effect free).
    pub fn execute(&mut self, cmd: Command) -> Option<ClientResponse> {
        let group = self.partitioner.group_of(cmd.key);
        let prior = self.nodes[group.0 as usize % self.nodes.len()];
        let mut target = self.leaders.get(&group.0).copied().unwrap_or(prior);
        for attempt in 0..self.cfg.max_attempts {
            if attempt > 0 {
                self.stats.retries += 1;
                std::thread::sleep(self.backoff_for(attempt));
            }
            match self.transport.execute(target, cmd.clone()) {
                Some(resp) if resp.ok => {
                    self.leaders.insert(group.0, target);
                    return Some(resp);
                }
                Some(resp) => {
                    if let Some(leader) = resp.redirect.filter(|&l| l != target) {
                        // Wrong leader, useful hint: go straight there. A
                        // hint naming a node outside the known set means a
                        // newer membership epoch — adopt the node into the
                        // probe rotation so follow-up failures can reach it.
                        self.stats.redirects += 1;
                        if !self.nodes.contains(&leader) {
                            self.nodes.push(leader);
                        }
                        self.leaders.insert(group.0, leader);
                        target = leader;
                    } else {
                        // Rejected without a (new) hint: forget the cache
                        // entry and probe the next node.
                        self.leaders.remove(&group.0);
                        target = self.next_after(target);
                    }
                }
                None => {
                    self.leaders.remove(&group.0);
                    target = self.next_after(target);
                }
            }
        }
        self.stats.failures += 1;
        None
    }

    fn next_after(&self, node: NodeId) -> NodeId {
        let at = self.nodes.iter().position(|&n| n == node).unwrap_or(0);
        self.nodes[(at + 1) % self.nodes.len()]
    }

    fn backoff_for(&self, attempt: u32) -> Duration {
        // Double once per prior retry, clamping at the ceiling *inside* the
        // loop: the early return bounds the work by log2(max/base) no matter
        // how large `attempt` grows, and there is no shift to overflow at
        // attempt >= 32 (or underflow at attempt == 0).
        let mut d = self.cfg.backoff.min(self.cfg.max_backoff);
        for _ in 1..attempt {
            if d >= self.cfg.max_backoff {
                return self.cfg.max_backoff;
            }
            d = d.saturating_mul(2).min(self.cfg.max_backoff);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::RangePartitioner;
    use paxi_core::id::{ClientId, RequestId};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn cfg() -> RouterConfig {
        RouterConfig {
            max_attempts: 6,
            backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(100),
        }
    }

    fn nodes(n: u8) -> Vec<NodeId> {
        (0..n).map(|i| NodeId::new(0, i)).collect()
    }

    fn rid() -> RequestId {
        RequestId::new(ClientId(1), 0)
    }

    /// A fake cluster where `leader` serves everything and every other node
    /// redirects to it; records which nodes were contacted.
    fn redirecting_cluster(
        leader: NodeId,
        log: Rc<RefCell<Vec<NodeId>>>,
    ) -> impl FnMut(NodeId, Command) -> Option<ClientResponse> {
        move |node, _cmd| {
            log.borrow_mut().push(node);
            if node == leader {
                Some(ClientResponse::ok(rid(), None))
            } else {
                Some(ClientResponse::redirected(rid(), leader))
            }
        }
    }

    #[test]
    fn follows_redirects_then_caches_the_leader() {
        let leader = NodeId::new(0, 2);
        let log = Rc::new(RefCell::new(Vec::new()));
        let part = Arc::new(RangePartitioner::even(100, 1));
        let mut r = ShardRouter::new(
            part,
            nodes(3),
            redirecting_cluster(leader, log.clone()),
            cfg(),
        );
        // Cold cache: tries the placement prior (node 0), gets redirected,
        // lands on the leader.
        assert!(r.execute(Command::get(5)).unwrap().ok);
        assert_eq!(*log.borrow(), vec![NodeId::new(0, 0), leader]);
        assert_eq!(r.stats.redirects, 1);
        assert_eq!(r.cached_leader(0), Some(leader));
        // Warm cache: straight to the leader, no redirect.
        assert!(r.execute(Command::get(6)).unwrap().ok);
        assert_eq!(log.borrow().len(), 3);
        assert_eq!(r.stats.redirects, 1);
    }

    #[test]
    fn per_group_leaders_are_cached_independently() {
        // Two groups, different leaders: node g serves group g's keys.
        let part = Arc::new(RangePartitioner::even(100, 2));
        let p2 = part.clone();
        let transport = move |node: NodeId, cmd: Command| {
            let owner = NodeId::new(0, p2.group_of(cmd.key).0 as u8);
            Some(if node == owner {
                ClientResponse::ok(rid(), None)
            } else {
                ClientResponse::redirected(rid(), owner)
            })
        };
        let mut r = ShardRouter::new(part, nodes(2), transport, cfg());
        assert!(r.execute(Command::get(10)).unwrap().ok); // group 0
        assert!(r.execute(Command::get(60)).unwrap().ok); // group 1
        assert_eq!(r.cached_leader(0), Some(NodeId::new(0, 0)));
        assert_eq!(r.cached_leader(1), Some(NodeId::new(0, 1)));
        // The cold-cache prior matched the spread placement, so no
        // redirects were even needed.
        assert_eq!(r.stats.redirects, 0);
    }

    #[test]
    fn probes_past_dead_nodes_with_backoff() {
        // Node 0 times out, node 1 rejects without a hint, node 2 serves.
        let transport = |node: NodeId, _cmd: Command| match node.node {
            0 => None,
            1 => Some(ClientResponse::err(rid())),
            _ => Some(ClientResponse::ok(rid(), None)),
        };
        let part = Arc::new(RangePartitioner::even(100, 1));
        let mut r = ShardRouter::new(part, nodes(3), transport, cfg());
        assert!(r.execute(Command::get(1)).unwrap().ok);
        assert_eq!(r.stats.retries, 2);
        assert_eq!(r.cached_leader(0), Some(NodeId::new(0, 2)));
    }

    #[test]
    fn gives_up_after_max_attempts() {
        let part = Arc::new(RangePartitioner::even(100, 1));
        let mut r = ShardRouter::new(part, nodes(3), |_: NodeId, _: Command| None, cfg());
        assert!(r.execute(Command::get(1)).is_none());
        assert_eq!(r.stats.failures, 1);
        assert_eq!(r.stats.retries, 5, "max_attempts - 1 retries");
    }

    #[test]
    fn backoff_is_safe_at_extreme_attempt_counts() {
        let part = Arc::new(RangePartitioner::even(100, 1));
        let r = ShardRouter::new(part, nodes(1), |_: NodeId, _: Command| None, cfg());
        // attempt 0 must not underflow the exponent (the old code computed
        // `attempt - 1` on a u32).
        assert_eq!(r.backoff_for(0), Duration::from_micros(10));
        assert_eq!(r.backoff_for(1), Duration::from_micros(10));
        assert_eq!(r.backoff_for(2), Duration::from_micros(20));
        assert_eq!(r.backoff_for(4), Duration::from_micros(80));
        // Past the ceiling the backoff clamps instead of overflowing the
        // doubling factor (the old code shifted by up to `attempt - 1`).
        for attempt in [5u32, 32, 33, 64, u32::MAX] {
            assert_eq!(
                r.backoff_for(attempt),
                Duration::from_micros(100),
                "attempt {attempt}"
            );
        }
    }

    #[test]
    fn set_nodes_evicts_departed_leaders_only() {
        let part = Arc::new(RangePartitioner::even(100, 2));
        let p2 = part.clone();
        let transport = move |node: NodeId, cmd: Command| {
            let owner = NodeId::new(0, p2.group_of(cmd.key).0 as u8);
            Some(if node == owner {
                ClientResponse::ok(rid(), None)
            } else {
                ClientResponse::redirected(rid(), owner)
            })
        };
        let mut r = ShardRouter::new(part, nodes(2), transport, cfg());
        assert!(r.execute(Command::get(10)).unwrap().ok); // group 0 -> node 0
        assert!(r.execute(Command::get(60)).unwrap().ok); // group 1 -> node 1
                                                          // New epoch removes node 1 and adds node 2: only group 1's cache
                                                          // entry (pointing at the departed node) is evicted.
        r.set_nodes(vec![NodeId::new(0, 0), NodeId::new(0, 2)]);
        assert_eq!(r.cached_leader(0), Some(NodeId::new(0, 0)));
        assert_eq!(r.cached_leader(1), None);
        assert_eq!(r.nodes(), &[NodeId::new(0, 0), NodeId::new(0, 2)]);
    }

    #[test]
    fn redirect_to_unknown_node_adopts_newer_epoch() {
        // The router only knows nodes 0 and 1, but leadership moved to a
        // freshly joined node 3 (a membership epoch the router hasn't heard
        // of). The redirect hint must be followed AND the node adopted into
        // the probe rotation.
        let joined = NodeId::new(0, 3);
        let log = Rc::new(RefCell::new(Vec::new()));
        let part = Arc::new(RangePartitioner::even(100, 1));
        let mut r = ShardRouter::new(
            part,
            nodes(2),
            redirecting_cluster(joined, log.clone()),
            cfg(),
        );
        assert!(r.execute(Command::get(5)).unwrap().ok);
        assert_eq!(*log.borrow(), vec![NodeId::new(0, 0), joined]);
        assert_eq!(r.cached_leader(0), Some(joined));
        assert!(
            r.nodes().contains(&joined),
            "joined node enters the rotation"
        );
    }

    #[test]
    fn self_redirect_does_not_loop() {
        // A confused node redirecting to itself must degrade to probing,
        // not spin on one target forever.
        let served = Rc::new(RefCell::new(0u32));
        let s2 = served.clone();
        let transport = move |node: NodeId, _cmd: Command| {
            if node.node == 0 {
                Some(ClientResponse::redirected(rid(), NodeId::new(0, 0)))
            } else {
                *s2.borrow_mut() += 1;
                Some(ClientResponse::ok(rid(), None))
            }
        };
        let part = Arc::new(RangePartitioner::even(100, 1));
        let mut r = ShardRouter::new(part, nodes(2), transport, cfg());
        assert!(r.execute(Command::get(1)).unwrap().ok);
        assert_eq!(*served.borrow(), 1);
    }
}
