//! Versioned routing: a static partitioner plus epoch-tagged range
//! overrides.
//!
//! The static [`Partitioner`] fixes the *initial* keyspace split. Elastic
//! shard migration moves a key range between groups at runtime, and every
//! party that routes by key — the server-side [`crate::ShardedReplica`]
//! multiplexer and the client-side [`crate::ShardRouter`] — must follow the
//! move. [`RoutingTable`] is that follower: it wraps the base partitioner
//! with a list of [`RangeOverride`]s, each recording that `[lo, hi)` now
//! belongs to a different group as of some routing *epoch*.
//!
//! Overrides are learned, not replicated: replicas read them off their local
//! migration trackers (which *are* replicated, through each group's log) and
//! clients read them off [`paxi_core::command::Handoff`] rejections. Higher
//! epochs win, so a stale override can never shadow a newer move of the same
//! range, and learning is idempotent — applying the same override twice is a
//! no-op.

use crate::partition::Partitioner;
use paxi_core::command::{Handoff, Key};
use paxi_core::group::GroupId;
use std::sync::Arc;

/// One learned range move: keys in `[lo, hi)` belong to `to` as of routing
/// epoch `epoch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeOverride {
    /// Inclusive lower bound of the moved range.
    pub lo: Key,
    /// Exclusive upper bound of the moved range.
    pub hi: Key,
    /// The range's owning group after the move.
    pub to: GroupId,
    /// Routing epoch that installed the move (higher wins).
    pub epoch: u64,
}

impl RangeOverride {
    /// Whether this override claims `key`.
    pub fn covers(&self, key: Key) -> bool {
        key >= self.lo && key < self.hi
    }
}

/// A versioned routing table: the static base partitioner plus every range
/// override learned so far.
#[derive(Clone)]
pub struct RoutingTable {
    base: Arc<dyn Partitioner>,
    overrides: Vec<RangeOverride>,
    epoch: u64,
}

impl RoutingTable {
    /// A table with no overrides: routes exactly like `base`.
    pub fn new(base: Arc<dyn Partitioner>) -> Self {
        RoutingTable {
            base,
            overrides: Vec::new(),
            epoch: 0,
        }
    }

    /// Highest epoch of any learned override (0 = pristine).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The learned overrides, in learning order.
    pub fn overrides(&self) -> &[RangeOverride] {
        &self.overrides
    }

    /// Learns an override. Returns `true` if it changed the table: a
    /// duplicate (same range, same target, same or lower epoch) is ignored,
    /// and a higher-epoch override of the same range replaces the older one.
    pub fn learn(&mut self, ov: RangeOverride) -> bool {
        if let Some(existing) = self
            .overrides
            .iter_mut()
            .find(|e| e.lo == ov.lo && e.hi == ov.hi)
        {
            if ov.epoch <= existing.epoch {
                return false;
            }
            *existing = ov;
        } else {
            self.overrides.push(ov);
        }
        self.epoch = self.epoch.max(ov.epoch);
        true
    }

    /// Learns the override carried on a [`Handoff`] rejection.
    pub fn learn_handoff(&mut self, h: &Handoff) -> bool {
        self.learn(RangeOverride {
            lo: h.lo,
            hi: h.hi,
            to: h.group,
            epoch: h.epoch,
        })
    }
}

impl Partitioner for RoutingTable {
    fn groups(&self) -> u32 {
        self.base.groups()
    }

    fn group_of(&self, key: Key) -> GroupId {
        // Overrides are consulted highest-epoch-first so a re-migrated range
        // follows its newest move; the base partitioner answers for
        // untouched keys.
        self.overrides
            .iter()
            .filter(|ov| ov.covers(key))
            .max_by_key(|ov| ov.epoch)
            .map(|ov| ov.to)
            .unwrap_or_else(|| self.base.group_of(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::RangePartitioner;

    fn table() -> RoutingTable {
        RoutingTable::new(Arc::new(RangePartitioner::even(8, 2)))
    }

    #[test]
    fn pristine_table_routes_like_the_base() {
        let t = table();
        assert_eq!(t.groups(), 2);
        assert_eq!(t.epoch(), 0);
        for key in 0..8u64 {
            assert_eq!(t.group_of(key), GroupId(u32::from(key >= 4)));
        }
    }

    #[test]
    fn overrides_shadow_the_base_within_their_range() {
        let mut t = table();
        assert!(t.learn(RangeOverride {
            lo: 2,
            hi: 4,
            to: GroupId(1),
            epoch: 1,
        }));
        assert_eq!(t.epoch(), 1);
        assert_eq!(t.group_of(1), GroupId(0), "below the range: base");
        assert_eq!(t.group_of(2), GroupId(1), "inside: override");
        assert_eq!(t.group_of(3), GroupId(1));
        assert_eq!(t.group_of(4), GroupId(1), "above the range: base again");
    }

    #[test]
    fn duplicate_and_stale_overrides_are_ignored() {
        let mut t = table();
        let ov = RangeOverride {
            lo: 2,
            hi: 4,
            to: GroupId(1),
            epoch: 2,
        };
        assert!(t.learn(ov));
        assert!(!t.learn(ov), "exact duplicate is a no-op");
        assert!(
            !t.learn(RangeOverride {
                lo: 2,
                hi: 4,
                to: GroupId(0),
                epoch: 1,
            }),
            "lower epoch never rolls the route back"
        );
        assert_eq!(t.group_of(3), GroupId(1));
        assert_eq!(t.epoch(), 2);
    }

    #[test]
    fn higher_epoch_rewrites_the_same_range() {
        let mut t = table();
        t.learn(RangeOverride {
            lo: 2,
            hi: 4,
            to: GroupId(1),
            epoch: 1,
        });
        assert!(t.learn(RangeOverride {
            lo: 2,
            hi: 4,
            to: GroupId(0),
            epoch: 3,
        }));
        assert_eq!(t.group_of(3), GroupId(0), "range moved back at epoch 3");
        assert_eq!(t.overrides().len(), 1, "same range replaces in place");
        assert_eq!(t.epoch(), 3);
    }

    #[test]
    fn handoffs_teach_the_same_override() {
        let mut t = table();
        let h = Handoff {
            lo: 0,
            hi: 2,
            group: GroupId(1),
            epoch: 5,
        };
        assert!(t.learn_handoff(&h));
        assert!(!t.learn_handoff(&h));
        assert_eq!(t.group_of(0), GroupId(1));
        assert_eq!(t.epoch(), 5);
    }
}
