//! Static keyspace partitioners.
//!
//! A partitioner is a pure function from key to consensus group, fixed for
//! the lifetime of a deployment: every replica and every client evaluates
//! the same function, so no routing metadata ever has to be replicated.
//! Two standard schemes are provided — hash partitioning (uniform spread,
//! no range locality) and range partitioning (contiguous slices of the
//! dense keyspace, the natural fit for the benchmark's `0..K` keys).

use paxi_core::command::Key;
use paxi_core::group::GroupId;

/// Statically maps keys to consensus groups.
///
/// Implementations must be deterministic and total: the same key always
/// lands in the same group, and every key lands in some group `< groups()`.
pub trait Partitioner: Send + Sync {
    /// Number of groups this partitioner spreads the keyspace over.
    fn groups(&self) -> u32;

    /// The group that owns `key`.
    fn group_of(&self, key: Key) -> GroupId;

    /// Whether `group` owns `key` — the invariant the cross-shard leakage
    /// checker enforces on every replica's per-group store.
    fn owns(&self, group: GroupId, key: Key) -> bool {
        self.group_of(key) == group
    }
}

/// Hash partitioning: keys are mixed with a Fibonacci multiplier and taken
/// modulo the group count. Spreads any key distribution (including the
/// benchmark's dense `0..K`) near-uniformly, at the price of destroying
/// range locality.
#[derive(Debug, Clone, Copy)]
pub struct HashPartitioner {
    groups: u32,
}

impl HashPartitioner {
    /// Partitioner over `groups` groups (at least 1).
    pub fn new(groups: u32) -> Self {
        HashPartitioner {
            groups: groups.max(1),
        }
    }
}

impl Partitioner for HashPartitioner {
    fn groups(&self) -> u32 {
        self.groups
    }

    fn group_of(&self, key: Key) -> GroupId {
        // Fibonacci hashing: multiply by 2^64/φ and fold the high bits in,
        // so dense keys don't all land in group (key % groups) order.
        let mixed = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        GroupId(((mixed >> 32) % self.groups as u64) as u32)
    }
}

/// Range partitioning: group `g` owns the contiguous slice
/// `[bounds[g-1], bounds[g])` of the keyspace (group 0 starts at 0, the
/// last group extends to `Key::MAX`). Preserves range locality and makes
/// per-group ownership trivially auditable.
#[derive(Debug, Clone)]
pub struct RangePartitioner {
    /// `bounds[g]` is the *exclusive* upper bound of group `g`, for all but
    /// the last group (which is unbounded above).
    bounds: Vec<Key>,
}

impl RangePartitioner {
    /// Splits `[0, key_space)` into `groups` near-equal contiguous ranges;
    /// keys at or above `key_space` fall into the last group.
    pub fn even(key_space: Key, groups: u32) -> Self {
        let groups = groups.max(1) as u64;
        let span = (key_space.max(groups) + groups - 1) / groups;
        RangePartitioner {
            bounds: (1..groups).map(|g| g * span).collect(),
        }
    }

    /// Explicit split points: `bounds[g]` is the exclusive upper bound of
    /// group `g`; the number of groups is `bounds.len() + 1`. Bounds must be
    /// strictly increasing.
    pub fn with_bounds(bounds: Vec<Key>) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly increasing"
        );
        RangePartitioner { bounds }
    }

    /// The half-open key range `[lo, hi)` group `g` owns (`hi` is
    /// `Key::MAX` for the last group). Workload generators use this to draw
    /// group-local keys that provably match the partitioner.
    pub fn range(&self, g: GroupId) -> (Key, Key) {
        let g = g.0 as usize;
        let lo = if g == 0 { 0 } else { self.bounds[g - 1] };
        let hi = self.bounds.get(g).copied().unwrap_or(Key::MAX);
        (lo, hi)
    }
}

impl Partitioner for RangePartitioner {
    fn groups(&self) -> u32 {
        self.bounds.len() as u32 + 1
    }

    fn group_of(&self, key: Key) -> GroupId {
        // First bound strictly greater than `key` names the owning group.
        GroupId(self.bounds.partition_point(|&b| b <= key) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioner_is_total_and_deterministic() {
        let p = HashPartitioner::new(8);
        for key in 0..10_000u64 {
            let g = p.group_of(key);
            assert!(g.0 < 8);
            assert_eq!(g, p.group_of(key));
            assert!(p.owns(g, key));
        }
    }

    #[test]
    fn hash_partitioner_spreads_dense_keys() {
        let p = HashPartitioner::new(4);
        let mut counts = [0usize; 4];
        for key in 0..4_000u64 {
            counts[p.group_of(key).0 as usize] += 1;
        }
        for (g, &c) in counts.iter().enumerate() {
            assert!((700..1300).contains(&c), "group {g} holds {c} of 4000 keys");
        }
    }

    #[test]
    fn range_partitioner_covers_contiguously() {
        let p = RangePartitioner::even(1000, 4);
        assert_eq!(p.groups(), 4);
        assert_eq!(p.group_of(0).0, 0);
        assert_eq!(p.group_of(249).0, 0);
        assert_eq!(p.group_of(250).0, 1);
        assert_eq!(p.group_of(999).0, 3);
        // Keys beyond the nominal space land in the last group.
        assert_eq!(p.group_of(u64::MAX).0, 3);
        // Ranges tile the space without gaps.
        for g in 0..4 {
            let (lo, hi) = p.range(GroupId(g));
            assert!(lo < hi);
            assert!(p.owns(GroupId(g), lo));
            if hi != u64::MAX {
                assert!(!p.owns(GroupId(g), hi), "range end is exclusive");
            }
        }
    }

    #[test]
    fn range_and_workload_agree_on_every_key() {
        let p = RangePartitioner::even(997, 8); // non-divisible space
        for g in 0..8 {
            let (lo, hi) = p.range(GroupId(g));
            for key in [lo, lo + (hi - lo) / 2, hi - 1] {
                assert_eq!(p.group_of(key), GroupId(g), "key {key} of group {g}");
            }
        }
    }

    #[test]
    fn single_group_owns_everything() {
        let h = HashPartitioner::new(1);
        let r = RangePartitioner::even(100, 1);
        for key in [0u64, 1, 99, 100, u64::MAX] {
            assert_eq!(h.group_of(key).0, 0);
            assert_eq!(r.group_of(key).0, 0);
        }
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unordered_bounds_are_rejected() {
        RangePartitioner::with_bounds(vec![10, 10]);
    }
}
