//! # paxi-shard
//!
//! A multi-group sharded consensus runtime: runs `N` independent protocol
//! groups (any [`paxi_core::traits::Replica`] — MultiPaxos, Raft, EPaxos)
//! side by side over one shared set of nodes and one shared transport, the
//! standard way past the single-leader throughput wall (*Scaling Strongly
//! Consistent Replication*, Charapko et al.).
//!
//! The pieces:
//!
//! * [`partition`] — the [`partition::Partitioner`] trait with hash and
//!   range implementations; statically maps every key to its [`GroupId`].
//! * [`replica`] — [`replica::ShardedReplica`], a `Replica` wrapping one
//!   inner replica per group and multiplexing messages (via
//!   [`paxi_core::group::GroupMsg`]), timers, and client requests between
//!   them. Because the whole bundle is *one* replica per node, the
//!   simulator's single per-node FIFO queue naturally models cross-group
//!   CPU/NIC contention, and the live transports carry all groups over the
//!   existing sockets unchanged.
//! * [`placement`] — leader placement that spreads group leaders
//!   round-robin across the cluster's nodes.
//! * [`disks`] — [`disks::ShardDisks`], per-`(node, group)` WAL namespaces
//!   over [`paxi_storage::MemHub`] with node-granular amnesia crashes.
//! * [`router`] — the client-side [`router::ShardRouter`]: partitions each
//!   command, caches per-group leader hints, and retries wrong-leader
//!   redirects with exponential backoff.
//! * [`routing`] — the versioned [`routing::RoutingTable`]: the static
//!   partitioner plus epoch-tagged [`routing::RangeOverride`]s learned from
//!   committed shard migrations, shared by the server-side multiplexer and
//!   the client-side router.

#![warn(missing_docs)]

pub mod disks;
pub mod partition;
pub mod placement;
pub mod replica;
pub mod router;
pub mod routing;

pub use disks::ShardDisks;
pub use partition::{HashPartitioner, Partitioner, RangePartitioner};
pub use placement::spread_leader;
pub use replica::{sharded_cluster, ShardSpec, ShardedReplica};
pub use router::{ClientPool, RouteTransport, RouterConfig, RouterStats, ShardRouter};
pub use routing::{RangeOverride, RoutingTable};

/// Re-exported from `paxi-core`: the group id and group-tagged envelope.
pub use paxi_core::group::{GroupId, GroupMsg};
