//! Leader placement for sharded deployments.
//!
//! The whole point of sharding a strongly-consistent store is that the
//! per-round leader work of different groups lands on *different* nodes.
//! With every group configured to start its leader on node `(0,0)` (the
//! single-group default), adding groups would only stack more work on the
//! same pipeline; spreading initial leaders round-robin across the cluster
//! makes aggregate saturation throughput scale until follower work fills
//! every node's queue.

use paxi_core::config::ClusterConfig;
use paxi_core::group::GroupId;
use paxi_core::id::NodeId;

/// Round-robin leader placement: group `g`'s leader starts on the `g mod
/// n`-th node of the cluster (in `ClusterConfig::all_nodes` order). With
/// `groups <= n` every leader has its own node; beyond that they wrap, and
/// per-node leader load stays within one group of even.
pub fn spread_leader(cluster: &ClusterConfig, group: GroupId) -> NodeId {
    let nodes = cluster.all_nodes();
    nodes[group.0 as usize % nodes.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaders_spread_then_wrap() {
        let cluster = ClusterConfig::lan(5);
        let nodes = cluster.all_nodes();
        let leaders: Vec<NodeId> = (0..8)
            .map(|g| spread_leader(&cluster, GroupId(g)))
            .collect();
        // First five groups take distinct nodes.
        for g in 0..5 {
            assert_eq!(leaders[g], nodes[g]);
        }
        // Then placement wraps: group 5 shares node 0 with group 0.
        assert_eq!(leaders[5], leaders[0]);
        assert_eq!(leaders[7], leaders[2]);
    }

    #[test]
    fn single_group_leads_on_the_default_node() {
        let cluster = ClusterConfig::lan(9);
        assert_eq!(
            spread_leader(&cluster, GroupId(0)),
            cluster.initial_leader()
        );
    }
}
