//! The group-multiplexing replica wrapper.
//!
//! [`ShardedReplica`] bundles one inner replica per consensus group into a
//! single [`Replica`] whose message type is the group-tagged envelope
//! [`GroupMsg`]. Everything the runtimes know how to do with one replica —
//! simulate it behind a per-node FIFO queue, run it on a thread, crash and
//! rebuild it — they now do with `N` groups at once, for free:
//!
//! * **Transports** are shared: all groups of a node pair ride one socket
//!   (or one simulated link), distinguished only by the envelope's group id.
//! * **Contention** is modeled: the simulator charges every node's work to
//!   one CPU+NIC queue, so a node that leads one group and follows seven
//!   others pays for all of them in the same pipeline — exactly the effect
//!   the sharding scaling sweep measures.
//! * **Timers** are multiplexed by packing the group id into the upper 32
//!   bits of the timer `kind`; group 0's timers keep their original kinds,
//!   which is why a `groups=1` sharded run is event-for-event identical to
//!   the unsharded protocol.
//!
//! Client requests are routed by the [`Partitioner`]: the owning group's
//! replica handles the request, and when redirects are enabled a non-leader
//! answers with [`ClientResponse::redirected`] so the client-side
//! [`crate::router::ShardRouter`] learns the group's leader instead of
//! paying a forwarding hop on every request.

use crate::partition::Partitioner;
use crate::routing::{RangeOverride, RoutingTable};
use paxi_core::command::{ClientRequest, ClientResponse};
use paxi_core::group::{GroupId, GroupMsg};
use paxi_core::id::{ClientId, NodeId, RequestId};
use paxi_core::migration::{
    as_migration_record, encode_range_state, migration_command, CommitHalf, MigrationRecord,
    MIGRATION_KEY,
};
use paxi_core::obs::{DropCause, Metric};
use paxi_core::store::MultiVersionStore;
use paxi_core::time::Nanos;
use paxi_core::traits::{Context, Replica};
use std::sync::Arc;

/// Timer kinds of group `g` are tagged `(g << 32) | kind`; protocol timer
/// kinds must fit in 32 bits (all in-tree protocols use single digits).
const GROUP_TIMER_SHIFT: u32 = 32;

/// Pseudo-group tag of the migration-driver control timer. Real groups are
/// dense from 0, so the all-ones tag can never collide with one.
const CONTROL_GROUP: u64 = u32::MAX as u64;

/// The control timer's full (tagged) kind.
const CONTROL_TIMER_KIND: u64 = CONTROL_GROUP << GROUP_TIMER_SHIFT;

/// How often the migration driver re-checks for phase work while a
/// migration is in flight. Re-proposals are idempotent, so the period only
/// trades convergence latency against duplicate log entries.
const CONTROL_PERIOD: Nanos = Nanos::millis(25);

/// Static description of a sharded deployment: how the keyspace is split
/// and whether wrong-group-leader requests are redirected or forwarded.
#[derive(Clone)]
pub struct ShardSpec {
    /// Maps every key to its consensus group.
    pub partitioner: Arc<dyn Partitioner>,
    /// When true, a node that is not the leader of a request's group
    /// answers with a redirect (for smart clients like the `ShardRouter`);
    /// when false it lets the inner protocol forward the request internally
    /// (for dumb clients, and for the simulator's closed-loop clients).
    pub redirect: bool,
}

impl ShardSpec {
    /// Hash-partitioned deployment over `groups` groups, forwarding mode.
    pub fn hash(groups: u32) -> Self {
        ShardSpec {
            partitioner: Arc::new(crate::partition::HashPartitioner::new(groups)),
            redirect: false,
        }
    }

    /// Range-partitioned deployment: `[0, key_space)` split evenly over
    /// `groups` groups, forwarding mode.
    pub fn range(key_space: u64, groups: u32) -> Self {
        ShardSpec {
            partitioner: Arc::new(crate::partition::RangePartitioner::even(key_space, groups)),
            redirect: false,
        }
    }

    /// Enables wrong-leader redirects (router mode).
    pub fn with_redirect(mut self) -> Self {
        self.redirect = true;
        self
    }

    /// Number of groups in the deployment.
    pub fn groups(&self) -> u32 {
        self.partitioner.groups()
    }
}

/// One node's slice of a sharded deployment: one inner replica per group,
/// multiplexed behind a single [`Replica`] implementation.
pub struct ShardedReplica<R> {
    id: NodeId,
    spec: ShardSpec,
    groups: Vec<R>,
    /// This node's routing view: the spec's static partitioner plus every
    /// range override learned from the local migration trackers.
    routing: RoutingTable,
    /// Per-group high-water mark of tracker epochs already folded into
    /// `routing` — makes the per-event refresh a few integer compares.
    routed_epochs: Vec<u64>,
    /// Whether the migration-driver control timer is currently armed.
    control_armed: bool,
    /// Sequence counter for synthetic driver proposals.
    ctl_seq: u64,
}

impl<R: Replica> ShardedReplica<R> {
    /// Wraps `groups` (one replica per group, in group order) for node
    /// `id`. Factories normally go through [`sharded_cluster`].
    pub fn new(id: NodeId, spec: ShardSpec, groups: Vec<R>) -> Self {
        assert_eq!(
            groups.len(),
            spec.groups() as usize,
            "one inner replica per partitioner group"
        );
        let routing = RoutingTable::new(spec.partitioner.clone());
        let routed_epochs = vec![0; groups.len()];
        ShardedReplica {
            id,
            spec,
            groups,
            routing,
            routed_epochs,
            control_armed: false,
            ctl_seq: 0,
        }
    }

    /// This node's current routing view (base partitioner + learned
    /// overrides). Audits compare it against every group's store contents.
    pub fn routing(&self) -> &RoutingTable {
        &self.routing
    }

    /// The inner replica of `group`.
    pub fn group(&self, group: GroupId) -> &R {
        &self.groups[group.0 as usize]
    }

    /// All inner replicas, in group order.
    pub fn group_replicas(&self) -> &[R] {
        &self.groups
    }

    /// The deployment description this node runs under.
    pub fn spec(&self) -> &ShardSpec {
        &self.spec
    }

    /// Runs `f` on every group with a group-scoped context — the shared
    /// body of the start/restart/recover fan-outs.
    fn each_group(
        &mut self,
        ctx: &mut dyn Context<GroupMsg<R::Msg>>,
        f: impl Fn(&mut R, &mut dyn Context<R::Msg>),
    ) {
        for (g, replica) in self.groups.iter_mut().enumerate() {
            let mut gctx = GroupCtx {
                group: GroupId(g as u32),
                inner: ctx,
            };
            f(replica, &mut gctx);
        }
    }

    /// Post-event bookkeeping: fold newly committed migrations into the
    /// routing table and (re-)arm the driver timer while any migration is
    /// in flight. With no migrations this is a few integer compares and no
    /// effects, keeping no-migration runs event-identical to the static
    /// path.
    fn after_event(&mut self, ctx: &mut dyn Context<GroupMsg<R::Msg>>) {
        self.refresh_routing();
        self.maybe_arm(ctx);
    }

    /// Learns range overrides from every group tracker whose epoch advanced
    /// past what the routing table has already absorbed.
    fn refresh_routing(&mut self) {
        for g in 0..self.groups.len() {
            let (epoch, specs) = match self.groups[g].migration() {
                Some(tr) if tr.epoch() > self.routed_epochs[g] => (tr.epoch(), tr.completed()),
                _ => continue,
            };
            for spec in specs {
                self.routing.learn(RangeOverride {
                    lo: spec.range.lo,
                    hi: spec.range.hi,
                    to: spec.to,
                    epoch: spec.epoch,
                });
            }
            self.routed_epochs[g] = epoch;
        }
    }

    /// Arms the driver control timer if any local tracker reports an
    /// in-flight migration and the timer is not already pending.
    fn maybe_arm(&mut self, ctx: &mut dyn Context<GroupMsg<R::Msg>>) {
        if self.control_armed {
            return;
        }
        let active = self
            .groups
            .iter()
            .any(|r| r.migration().map_or(false, |t| t.active()));
        if active {
            ctx.set_timer(CONTROL_PERIOD, CONTROL_TIMER_KIND);
            self.control_armed = true;
        }
    }

    /// One driver tick: for every migration this node is responsible for
    /// (it leads the relevant group), propose the next phase through the
    /// ordinary request path. Every proposal is an idempotent replicated
    /// record, so re-proposing after a crash, a lost message, or a
    /// leadership change is always safe:
    ///
    /// * source leader, range frozen, dest not yet installed → stream the
    ///   frozen range as a replicated `Install` into the dest group's log;
    /// * source leader, dest installed → cut over: `Commit` both halves;
    /// * dest leader, installed but not committed → re-propose the dest
    ///   half (covers a source leader that died between the two commits).
    fn drive(&mut self, ctx: &mut dyn Context<GroupMsg<R::Msg>>) {
        let mut proposals: Vec<(GroupId, MigrationRecord)> = Vec::new();
        for g in 0..self.groups.len() {
            if self.groups[g].leader_hint() != Some(self.id) {
                continue;
            }
            let Some(tr) = self.groups[g].migration() else {
                continue;
            };
            for spec in tr.outbound_pending() {
                let dest = spec.to.0 as usize;
                if dest >= self.groups.len() {
                    continue;
                }
                let installed = self.groups[dest]
                    .migration()
                    .map_or(false, |t| t.installed(spec.id));
                if installed {
                    proposals.push((
                        spec.from,
                        MigrationRecord::Commit {
                            spec,
                            half: CommitHalf::Source,
                        },
                    ));
                    proposals.push((
                        spec.to,
                        MigrationRecord::Commit {
                            spec,
                            half: CommitHalf::Dest,
                        },
                    ));
                } else if let Some(store) = self.groups[g].store() {
                    let state =
                        encode_range_state(&store.extract_range(spec.range.lo, spec.range.hi));
                    proposals.push((spec.to, MigrationRecord::Install { spec, state }));
                }
            }
            for spec in tr.inbound_pending() {
                proposals.push((
                    spec.to,
                    MigrationRecord::Commit {
                        spec,
                        half: CommitHalf::Dest,
                    },
                ));
            }
        }
        for (group, rec) in proposals {
            self.propose(group, rec, ctx);
        }
    }

    /// Injects a driver-originated migration record into `group`'s log via
    /// the group's ordinary request path (the inner protocol forwards to
    /// its leader if that is another node). The synthetic request id uses
    /// the reserved driver client, whose replies no runtime routes back.
    fn propose(
        &mut self,
        group: GroupId,
        rec: MigrationRecord,
        ctx: &mut dyn Context<GroupMsg<R::Msg>>,
    ) {
        let idx = group.0 as usize;
        if idx >= self.groups.len() {
            return;
        }
        self.ctl_seq += 1;
        let req = ClientRequest {
            id: RequestId::new(ClientId(u32::MAX), self.ctl_seq),
            cmd: migration_command(&rec),
        };
        let mut gctx = GroupCtx { group, inner: ctx };
        self.groups[idx].on_request(req, &mut gctx);
    }
}

/// Context a group's inner replica sees: tags outgoing messages and timer
/// kinds with the group id, passes everything else through to the node's
/// real context (so all groups share the node's clock, randomness, and
/// client plumbing).
struct GroupCtx<'a, M> {
    group: GroupId,
    inner: &'a mut dyn Context<GroupMsg<M>>,
}

impl<M> Context<M> for GroupCtx<'_, M> {
    fn id(&self) -> NodeId {
        self.inner.id()
    }

    fn now(&self) -> Nanos {
        self.inner.now()
    }

    fn send(&mut self, to: NodeId, msg: M) {
        self.inner.send(to, GroupMsg::new(self.group, msg));
    }

    fn broadcast(&mut self, msg: M) {
        self.inner.broadcast(GroupMsg::new(self.group, msg));
    }

    fn multicast(&mut self, to: &[NodeId], msg: M) {
        self.inner.multicast(to, GroupMsg::new(self.group, msg));
    }

    fn set_timer(&mut self, after: Nanos, kind: u64) -> u64 {
        debug_assert!(
            kind >> GROUP_TIMER_SHIFT == 0,
            "protocol timer kind {kind} does not fit in 32 bits"
        );
        let tagged = ((self.group.0 as u64) << GROUP_TIMER_SHIFT) | (kind & 0xFFFF_FFFF);
        self.inner.set_timer(after, tagged)
    }

    fn reply(&mut self, resp: ClientResponse) {
        self.inner.reply(resp);
    }

    fn forward(&mut self, to: NodeId, req: ClientRequest) {
        // Forwarded untagged: the target re-partitions the key and lands in
        // the same group (the partitioner is deterministic and shared).
        self.inner.forward(to, req);
    }

    fn rand_u64(&mut self) -> u64 {
        self.inner.rand_u64()
    }

    fn count(&mut self, metric: Metric, n: u64) {
        self.inner.count(metric, n);
    }

    fn count_drop(&mut self, cause: DropCause, n: u64) {
        self.inner.count_drop(cause, n);
    }

    fn trace(&mut self, stage: paxi_core::obs::TraceStage, req: paxi_core::id::RequestId) {
        self.inner.trace(stage, req);
    }
}

impl<R: Replica> Replica for ShardedReplica<R> {
    type Msg = GroupMsg<R::Msg>;

    fn on_start(&mut self, ctx: &mut dyn Context<Self::Msg>) {
        self.each_group(ctx, |r, gctx| r.on_start(gctx));
        self.after_event(ctx);
    }

    fn on_restart(&mut self, ctx: &mut dyn Context<Self::Msg>) {
        // Crash recovery rebuilt this wrapper from scratch: armed timers
        // died with the old incarnation, and the trackers recovered from
        // the WAL may report an in-flight migration to resume driving.
        self.control_armed = false;
        self.each_group(ctx, |r, gctx| r.on_restart(gctx));
        self.after_event(ctx);
    }

    fn on_recover(&mut self, ctx: &mut dyn Context<Self::Msg>) {
        self.each_group(ctx, |r, gctx| r.on_recover(gctx));
        self.after_event(ctx);
    }

    fn sync_storage(&mut self) {
        for replica in &mut self.groups {
            replica.sync_storage();
        }
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut dyn Context<Self::Msg>) {
        let GroupMsg { group, msg } = msg;
        // A group id outside the deployment (corrupt frame, config skew) is
        // dropped, never a panic: transports feed this path raw bytes. The
        // drop is accounted so chaos digests can explain every loss.
        let Some(replica) = self.groups.get_mut(group.0 as usize) else {
            ctx.count_drop(DropCause::NoRoute, 1);
            return;
        };
        let mut gctx = GroupCtx { group, inner: ctx };
        replica.on_message(from, msg, &mut gctx);
        self.after_event(ctx);
    }

    fn on_request(&mut self, req: ClientRequest, ctx: &mut dyn Context<Self::Msg>) {
        // Migration records name their target group explicitly (the key is
        // mid-hand-off, so no partitioner answer is authoritative); data
        // keys route through the versioned table so committed hand-offs are
        // followed. A malformed migration command is refused, accounted,
        // and never dispatched.
        let group = if req.cmd.key == MIGRATION_KEY {
            match as_migration_record(&req.cmd) {
                Some(rec) => rec.target_group(),
                None => {
                    ctx.count_drop(DropCause::NoRoute, 1);
                    ctx.reply(ClientResponse::err(req.id));
                    return;
                }
            }
        } else {
            self.routing.group_of(req.cmd.key)
        };
        let idx = group.0 as usize;
        if idx >= self.groups.len() {
            ctx.count_drop(DropCause::NoRoute, 1);
            ctx.reply(ClientResponse::err(req.id));
            return;
        }
        if self.spec.redirect && req.cmd.key != MIGRATION_KEY {
            // Router mode: answer wrong-leader requests with the group's
            // leader hint instead of forwarding, so the client learns the
            // placement. Without a hint (mid-election) the inner protocol
            // still gets the request and applies its own buffering.
            // Migration records are exempt: the driver targets them at the
            // group, not the leader, and the inner protocol's forwarding
            // delivers them (a redirect reply would go to the synthetic
            // driver client, which nothing routes back to).
            if let Some(leader) = self.groups[idx].leader_hint() {
                if leader != self.id {
                    ctx.count(Metric::Redirects, 1);
                    ctx.reply(ClientResponse::redirected(req.id, leader));
                    return;
                }
            }
        }
        let mut gctx = GroupCtx { group, inner: ctx };
        self.groups[idx].on_request(req, &mut gctx);
        self.after_event(ctx);
    }

    fn on_timer(&mut self, kind: u64, token: u64, ctx: &mut dyn Context<Self::Msg>) {
        if kind >> GROUP_TIMER_SHIFT == CONTROL_GROUP {
            // The driver's control tick: disarm, advance whatever phase
            // work this node is responsible for, re-arm if still active.
            self.control_armed = false;
            self.drive(ctx);
            self.after_event(ctx);
            return;
        }
        let group = GroupId((kind >> GROUP_TIMER_SHIFT) as u32);
        let Some(replica) = self.groups.get_mut(group.0 as usize) else {
            return;
        };
        let mut gctx = GroupCtx { group, inner: ctx };
        replica.on_timer(kind & 0xFFFF_FFFF, token, &mut gctx);
        self.after_event(ctx);
    }

    fn protocol_name(&self) -> &'static str {
        self.groups
            .first()
            .map(|r| r.protocol_name())
            .unwrap_or("sharded")
    }

    fn msg_cmds(msg: &Self::Msg) -> u64 {
        // The envelope is weightless: cost accounting sees the inner
        // message's batch width, keeping groups=1 runs bit-identical to the
        // unsharded protocol.
        R::msg_cmds(&msg.msg)
    }

    fn msg_kind(msg: &Self::Msg) -> &'static str {
        // The envelope is transparent to the per-type breakdown too.
        R::msg_kind(&msg.msg)
    }

    fn store(&self) -> Option<&MultiVersionStore> {
        // A single-group deployment is the unsharded protocol in an
        // envelope; expose its store so generic consensus checks keep
        // working. Multi-group nodes have one store *per group* — use
        // [`ShardedReplica::group`] instead.
        if self.groups.len() == 1 {
            self.groups[0].store()
        } else {
            None
        }
    }
}

/// Factory for a homogeneous sharded cluster: `group_factory(node, group)`
/// builds the inner replica of `group` on `node` (choosing per-group config
/// such as the initial leader — see [`crate::placement::spread_leader`] —
/// and attaching per-group storage namespaces).
pub fn sharded_cluster<R, F>(
    spec: ShardSpec,
    group_factory: F,
) -> impl Fn(NodeId) -> ShardedReplica<R>
where
    R: Replica,
    F: Fn(NodeId, GroupId) -> R,
{
    move |id| {
        let groups = (0..spec.groups())
            .map(|g| group_factory(id, GroupId(g)))
            .collect();
        ShardedReplica::new(id, spec.clone(), groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxi_core::command::Command;
    use paxi_core::id::{ClientId, RequestId};

    /// A minimal inner protocol for exercising the multiplexer: replies to
    /// every request, echoes every message back to its sender, and arms one
    /// timer kind per start.
    #[derive(Debug)]
    struct Echo {
        id: NodeId,
        leader: Option<NodeId>,
        msgs: Vec<(NodeId, u64)>,
        timers: Vec<u64>,
        requests: Vec<ClientRequest>,
    }

    impl Echo {
        fn new(id: NodeId, leader: Option<NodeId>) -> Self {
            Echo {
                id,
                leader,
                msgs: Vec::new(),
                timers: Vec::new(),
                requests: Vec::new(),
            }
        }
    }

    impl Replica for Echo {
        type Msg = u64;

        fn on_start(&mut self, ctx: &mut dyn Context<u64>) {
            ctx.set_timer(Nanos::millis(1), 3);
        }

        fn on_message(&mut self, from: NodeId, msg: u64, ctx: &mut dyn Context<u64>) {
            self.msgs.push((from, msg));
            ctx.send(from, msg + 1);
        }

        fn on_request(&mut self, req: ClientRequest, ctx: &mut dyn Context<u64>) {
            self.requests.push(req.clone());
            ctx.reply(ClientResponse::ok(req.id, None));
        }

        fn on_timer(&mut self, kind: u64, _token: u64, _ctx: &mut dyn Context<u64>) {
            self.timers.push(kind);
        }

        fn leader_hint(&self) -> Option<NodeId> {
            self.leader
        }

        fn store(&self) -> Option<&MultiVersionStore> {
            None
        }
    }

    /// Captures the outer context's effects.
    #[derive(Default)]
    struct Probe {
        sent: Vec<(NodeId, GroupMsg<u64>)>,
        timers: Vec<(Nanos, u64)>,
        replies: Vec<ClientResponse>,
        drops: Vec<DropCause>,
        tokens: u64,
    }

    impl Context<GroupMsg<u64>> for Probe {
        fn id(&self) -> NodeId {
            NodeId::new(0, 0)
        }
        fn now(&self) -> Nanos {
            Nanos::ZERO
        }
        fn send(&mut self, to: NodeId, msg: GroupMsg<u64>) {
            self.sent.push((to, msg));
        }
        fn broadcast(&mut self, msg: GroupMsg<u64>) {
            self.sent.push((NodeId::new(9, 9), msg));
        }
        fn multicast(&mut self, to: &[NodeId], msg: GroupMsg<u64>) {
            for &t in to {
                self.sent.push((t, msg.clone()));
            }
        }
        fn set_timer(&mut self, after: Nanos, kind: u64) -> u64 {
            self.timers.push((after, kind));
            self.tokens += 1;
            self.tokens
        }
        fn reply(&mut self, resp: ClientResponse) {
            self.replies.push(resp);
        }
        fn forward(&mut self, _to: NodeId, _req: ClientRequest) {}
        fn rand_u64(&mut self) -> u64 {
            42
        }
        fn count_drop(&mut self, cause: DropCause, _n: u64) {
            self.drops.push(cause);
        }
    }

    fn sharded(groups: u32, redirect: bool) -> ShardedReplica<Echo> {
        let me = NodeId::new(0, 0);
        let other = NodeId::new(0, 1);
        let mut spec = ShardSpec::range(1000, groups);
        if redirect {
            spec = spec.with_redirect();
        }
        // Even groups are led locally, odd groups elsewhere.
        let factory =
            |id: NodeId, g: GroupId| Echo::new(id, Some(if g.0 % 2 == 0 { me } else { other }));
        sharded_cluster(spec, factory)(me)
    }

    fn req(key: u64) -> ClientRequest {
        ClientRequest {
            id: RequestId::new(ClientId(1), key),
            cmd: Command::get(key),
        }
    }

    #[test]
    fn messages_dispatch_by_group_and_replies_are_tagged() {
        let mut s = sharded(4, false);
        let mut ctx = Probe::default();
        let from = NodeId::new(0, 2);
        s.on_message(from, GroupMsg::new(GroupId(2), 10), &mut ctx);
        assert_eq!(s.group(GroupId(2)).msgs, vec![(from, 10)]);
        assert!(s.group(GroupId(0)).msgs.is_empty());
        // The echo reply carries the same group tag.
        assert_eq!(ctx.sent, vec![(from, GroupMsg::new(GroupId(2), 11))]);
    }

    #[test]
    fn out_of_range_groups_are_dropped_not_panicked() {
        let mut s = sharded(2, false);
        let mut ctx = Probe::default();
        s.on_message(NodeId::new(0, 1), GroupMsg::new(GroupId(7), 1), &mut ctx);
        s.on_timer((9u64 << 32) | 3, 1, &mut ctx);
        assert!(ctx.sent.is_empty());
    }

    #[test]
    fn timer_kinds_round_trip_per_group() {
        let mut s = sharded(4, false);
        let mut ctx = Probe::default();
        s.on_start(&mut ctx);
        // Each group armed kind 3 tagged with its id...
        let kinds: Vec<u64> = ctx.timers.iter().map(|&(_, k)| k).collect();
        assert_eq!(kinds, vec![3, (1 << 32) | 3, (2 << 32) | 3, (3 << 32) | 3]);
        // ...and firing the tagged kind reaches the right group, untagged.
        s.on_timer((2 << 32) | 3, 1, &mut ctx);
        assert_eq!(s.group(GroupId(2)).timers, vec![3]);
        assert!(s.group(GroupId(1)).timers.is_empty());
    }

    #[test]
    fn group_zero_timer_kinds_are_numerically_unchanged() {
        // The groups=1 determinism guarantee rests on this: group 0's tag
        // is a numeric no-op.
        let mut s = sharded(1, false);
        let mut ctx = Probe::default();
        s.on_start(&mut ctx);
        assert_eq!(ctx.timers, vec![(Nanos::millis(1), 3)]);
    }

    #[test]
    fn requests_partition_by_key() {
        let mut s = sharded(4, false);
        let mut ctx = Probe::default();
        s.on_request(req(0), &mut ctx); // group 0 owns [0, 250)
        s.on_request(req(700), &mut ctx); // group 2 owns [500, 750)
        assert_eq!(s.group(GroupId(0)).requests.len(), 1);
        assert_eq!(s.group(GroupId(2)).requests.len(), 1);
        assert_eq!(ctx.replies.len(), 2);
        assert!(ctx.replies.iter().all(|r| r.ok));
    }

    #[test]
    fn redirect_mode_points_at_the_group_leader() {
        let mut s = sharded(4, true);
        let mut ctx = Probe::default();
        // Group 1 (keys [250,500)) is led by node (0,1), not us: redirect.
        s.on_request(req(300), &mut ctx);
        assert!(
            s.group(GroupId(1)).requests.is_empty(),
            "request must not reach the group"
        );
        let resp = &ctx.replies[0];
        assert!(!resp.ok);
        assert_eq!(resp.redirect, Some(NodeId::new(0, 1)));
        // Group 2 (keys [500,750)) is led locally: served.
        s.on_request(req(600), &mut ctx);
        assert_eq!(s.group(GroupId(2)).requests.len(), 1);
        assert!(ctx.replies[1].ok);
    }

    #[test]
    fn msg_cmds_delegates_to_the_inner_protocol() {
        assert_eq!(
            ShardedReplica::<Echo>::msg_cmds(&GroupMsg::new(GroupId(3), 17)),
            1
        );
    }

    #[test]
    fn migration_records_route_by_their_target_group() {
        use paxi_core::migration::{migration_command, KeyRange, MigrationRecord, MigrationSpec};
        let mut s = sharded(4, false);
        let mut ctx = Probe::default();
        let spec = MigrationSpec {
            id: 1,
            from: GroupId(1),
            to: GroupId(3),
            range: KeyRange::new(250, 260),
            epoch: 1,
        };
        // Start targets the *source* group even though the reserved key
        // itself hashes nowhere meaningful.
        let start = ClientRequest {
            id: RequestId::new(ClientId(2), 1),
            cmd: migration_command(&MigrationRecord::Start(spec)),
        };
        s.on_request(start, &mut ctx);
        assert_eq!(s.group(GroupId(1)).requests.len(), 1);
        assert!(s.group(GroupId(3)).requests.is_empty());
        // A malformed record on the reserved key is refused and accounted,
        // never dispatched to any group.
        let bad = ClientRequest {
            id: RequestId::new(ClientId(2), 2),
            cmd: Command::put(MIGRATION_KEY, vec![0xFF, 1, 2]),
        };
        s.on_request(bad, &mut ctx);
        let last = ctx.replies.last().unwrap();
        assert!(!last.ok);
        assert_eq!(ctx.drops, vec![DropCause::NoRoute]);
        let dispatched: usize = (0..4).map(|g| s.group(GroupId(g)).requests.len()).sum();
        assert_eq!(dispatched, 1);
    }

    #[test]
    fn learned_overrides_redirect_data_dispatch() {
        let mut s = sharded(4, false);
        // Simulate a committed hand-off of group 1's slice to group 3.
        s.routing.learn(RangeOverride {
            lo: 250,
            hi: 500,
            to: GroupId(3),
            epoch: 1,
        });
        let mut ctx = Probe::default();
        s.on_request(req(300), &mut ctx);
        assert!(s.group(GroupId(1)).requests.is_empty(), "old owner skipped");
        assert_eq!(s.group(GroupId(3)).requests.len(), 1, "override followed");
        // Keys outside the override still follow the static partitioner.
        s.on_request(req(600), &mut ctx);
        assert_eq!(s.group(GroupId(2)).requests.len(), 1);
    }

    #[test]
    fn no_migration_means_no_control_timer() {
        // The driver must be invisible unless a tracker reports in-flight
        // work: a full start plus traffic arms only the per-group protocol
        // timers (the groups=1 determinism guarantee depends on this).
        let mut s = sharded(2, false);
        let mut ctx = Probe::default();
        s.on_start(&mut ctx);
        s.on_request(req(5), &mut ctx);
        s.on_timer(3, 1, &mut ctx);
        assert!(ctx
            .timers
            .iter()
            .all(|&(_, k)| k >> 32 != u64::from(u32::MAX)));
    }
}
