//! Per-group WAL namespaces over the simulated disk array.
//!
//! Each consensus group of a node owns an independent durable store — its
//! own WAL, snapshots, and compaction cadence — keyed by `(node, group)` in
//! one shared [`MemHub`]. The simulator still thinks in nodes: an amnesia
//! crash of a node wipes the unsynced suffix of *all* of its group
//! namespaces at once (the process died, every group's page cache died with
//! it), and fsync charging aggregates across the namespaces because they
//! share the node's one storage pipeline. [`ShardDisks`] implements the
//! simulator's [`SimDisks`] view to provide exactly that bridging.
//!
//! Wall-clock runtimes get the same layout on a real filesystem via
//! [`paxi_storage::FileStorage::open_namespaced`] (`root/node-z.n/group-G`).

use paxi_core::group::GroupId;
use paxi_core::id::NodeId;
use paxi_sim::SimDisks;
use paxi_storage::{FsyncPolicy, MemHub, MemStorage, StorageFault};

/// Key of one group's WAL namespace on one node.
pub type ShardDiskKey = (NodeId, u32);

/// A cluster's simulated disk array with one WAL namespace per
/// `(node, group)`.
#[derive(Clone)]
pub struct ShardDisks {
    hub: MemHub<ShardDiskKey>,
    groups: u32,
}

impl ShardDisks {
    /// A disk array for `groups` groups, all namespaces under `policy`.
    pub fn new(policy: FsyncPolicy, groups: u32) -> Self {
        ShardDisks {
            hub: MemHub::new(policy),
            groups: groups.max(1),
        }
    }

    /// Number of groups (namespaces per node).
    pub fn groups(&self) -> u32 {
        self.groups
    }

    /// Opens the WAL namespace of `group` on `node`. Factories call this
    /// once per inner replica and attach the handle via
    /// [`paxi_core::traits::Replica::attach_storage`].
    pub fn open(&self, node: NodeId, group: GroupId) -> MemStorage<ShardDiskKey> {
        self.hub.open((node, group.0))
    }

    /// Arms a storage fault on one group's namespace (fires at the next
    /// crash of the node).
    pub fn inject(&self, node: NodeId, group: GroupId, fault: StorageFault) {
        self.hub.inject((node, group.0), fault);
    }

    /// Synced bytes of one group's namespace — what survives an amnesia
    /// crash of the node.
    pub fn synced_len(&self, node: NodeId, group: GroupId) -> usize {
        self.hub.synced_len(&(node, group.0))
    }

    /// Unsynced (crash-vulnerable) bytes of one group's namespace.
    pub fn unsynced_len(&self, node: NodeId, group: GroupId) -> usize {
        self.hub.unsynced_len(&(node, group.0))
    }
}

impl SimDisks for ShardDisks {
    /// The process hosts every group: one amnesia crash loses every
    /// namespace's unsynced suffix and fires every armed fault.
    fn crash_node(&self, node: NodeId) {
        for g in 0..self.groups {
            self.hub.crash(&(node, g));
        }
    }

    /// All namespaces share the node's one pipeline: the simulator charges
    /// `t_fsync` for each sync any of them performed.
    fn drain_syncs(&self, node: NodeId) -> u64 {
        (0..self.groups)
            .map(|g| self.hub.drain_syncs(&(node, g)))
            .sum()
    }

    /// WAL appends aggregate the same way for the observability counters.
    fn drain_appends(&self, node: NodeId) -> u64 {
        (0..self.groups)
            .map(|g| self.hub.drain_appends(&(node, g)))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxi_storage::Storage;

    #[test]
    fn namespaces_are_independent_but_crash_together() {
        let disks = ShardDisks::new(FsyncPolicy::Never, 3);
        let node = NodeId::new(0, 0);
        let mut s0 = disks.open(node, GroupId(0));
        let mut s2 = disks.open(node, GroupId(2));
        s0.append(b"alpha").unwrap();
        s2.append(b"beta").unwrap();
        s0.sync().unwrap();
        // Group 0 synced, group 2 did not.
        assert!(disks.synced_len(node, GroupId(0)) > 0);
        assert_eq!(disks.synced_len(node, GroupId(2)), 0);
        assert!(disks.unsynced_len(node, GroupId(2)) > 0);
        // One node crash wipes every namespace's unsynced suffix.
        disks.crash_node(node);
        assert!(
            disks.synced_len(node, GroupId(0)) > 0,
            "synced data survives"
        );
        assert_eq!(
            disks.unsynced_len(node, GroupId(2)),
            0,
            "unsynced data dies"
        );
    }

    #[test]
    fn sync_charges_aggregate_across_groups() {
        let disks = ShardDisks::new(FsyncPolicy::Always, 4);
        let node = NodeId::new(0, 1);
        for g in 0..4 {
            let mut s = disks.open(node, GroupId(g));
            s.append(b"x").unwrap(); // FsyncPolicy::Always syncs per append
        }
        assert_eq!(disks.drain_syncs(node), 4);
        assert_eq!(disks.drain_syncs(node), 0, "drain resets the counters");
        // Other nodes are unaffected.
        assert_eq!(disks.drain_syncs(NodeId::new(0, 2)), 0);
    }
}
