//! Transport-level fault injection.
//!
//! The live counterpart of the simulator's fault handling: a
//! [`FaultInjector`] carries the same [`paxi_core::faults::FaultPlan`] the
//! simulator consumes, evaluated against wall-clock time since cluster
//! launch. Every transport (channel, TCP, UDP) offers a `launch_chaotic`
//! constructor that threads an injector through its outbound path and node
//! event loops, realizing Paxi's Crash / Drop / Slow / Flaky primitives
//! *inside the networking module* — no OS-level tooling required:
//!
//! * **Link faults** (Drop / Flaky / Slow) are applied by [`ChaosOut`],
//!   which intercepts every node→node envelope at the sender: dropped
//!   envelopes vanish, slowed ones are re-sent by the shared
//!   [`TimerService`] after the injected delay.
//! * **Crashes** are applied at the receiving node's event loop
//!   ([`crate::runtime::run_node`]): while a node's crash window is active,
//!   every event addressed to it — messages, client requests, timers — is
//!   silently discarded, exactly like the simulator freezing a node. When
//!   the window ends the runtime delivers
//!   [`paxi_core::traits::Replica::on_restart`] so the node rejoins.
//!
//! Determinism: fate decisions flow from one seeded [`Rng64`], so a fixed
//! sequence of `(src, dst, t)` queries yields the same fates as the
//! simulator consulting the same plan with the same seed (see
//! [`FaultInjector::decide_link_at`], which the parity tests exercise).

use crate::envelope::Envelope;
use crate::obs::DropCounters;
use crate::runtime::{NodeEvent, Outbound};
use crate::timer::TimerService;
use crossbeam::channel::Sender;
use parking_lot::Mutex;
use paxi_core::command::ClientResponse;
use paxi_core::dist::Rng64;
use paxi_core::faults::{CrashMode, FaultPlan, MsgFate};
use paxi_core::id::{ClientId, NodeId};
use paxi_core::time::Nanos;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What the injector decided about one outbound envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkDecision {
    /// Pass through unchanged.
    Deliver,
    /// Deliver after the injected extra delay (a `Slow` rule).
    DeliverAfter(Duration),
    /// Discard the envelope.
    Drop,
}

impl LinkDecision {
    fn from_fate(fate: MsgFate) -> Self {
        match fate {
            MsgFate::Dropped => LinkDecision::Drop,
            MsgFate::Deliver { extra_delay } if extra_delay == Nanos::ZERO => LinkDecision::Deliver,
            MsgFate::Deliver { extra_delay } => {
                LinkDecision::DeliverAfter(Duration::from_nanos(extra_delay.0))
            }
        }
    }
}

/// Wall-clock realization of a [`FaultPlan`]: shared by all nodes of one
/// cluster, evaluated against the time elapsed since [`FaultInjector::start`]
/// (called once by the cluster constructor at launch).
pub struct FaultInjector {
    plan: FaultPlan,
    rng: Mutex<Rng64>,
    epoch: Mutex<Option<Instant>>,
    drops: DropCounters,
}

impl FaultInjector {
    /// Wraps a plan with a seeded randomness stream for Flaky/Slow rules.
    pub fn new(plan: FaultPlan, seed: u64) -> Arc<Self> {
        Arc::new(FaultInjector {
            plan,
            rng: Mutex::new(Rng64::seed(seed)),
            epoch: Mutex::new(None),
            drops: DropCounters::new(),
        })
    }

    /// Losses charged to this injector so far: `fault` for link drops
    /// decided by [`ChaosOut`], `crashed` for events discarded at frozen
    /// nodes' event loops. Shared with every cluster that holds this
    /// injector, so chaos digests can reconcile issued vs. completed
    /// requests against a full loss ledger.
    pub fn drops(&self) -> &DropCounters {
        &self.drops
    }

    /// Pins the injector's time origin. Cluster constructors call this with
    /// their launch instant; calling it again is a no-op (first pin wins) so
    /// one injector cannot accidentally time-shift mid-run.
    pub fn start(&self, epoch: Instant) {
        let mut e = self.epoch.lock();
        if e.is_none() {
            *e = Some(epoch);
        }
    }

    /// Time elapsed since launch, as plan-relative [`Nanos`]. Zero before
    /// [`FaultInjector::start`] is called.
    pub fn now(&self) -> Nanos {
        match *self.epoch.lock() {
            Some(epoch) => Nanos(epoch.elapsed().as_nanos() as u64),
            None => Nanos::ZERO,
        }
    }

    /// The plan driving this injector.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Whether `node` is inside a crash window right now.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.plan.is_crashed(node, self.now())
    }

    /// The [`CrashMode`] of the window covering `node` right now, if any.
    /// Node event loops record this while frozen so the thaw path knows
    /// whether to restart in place or rebuild from durable storage.
    pub fn crash_mode(&self, node: NodeId) -> Option<CrashMode> {
        self.plan.crash_mode_at(node, self.now())
    }

    /// Decides the fate of one `src → dst` envelope at explicit plan time
    /// `t`. Deterministic given the construction seed and the query
    /// sequence — this is the entry point the sim/transport parity tests
    /// drive.
    pub fn decide_link_at(&self, src: NodeId, dst: NodeId, t: Nanos) -> LinkDecision {
        LinkDecision::from_fate(self.plan.message_fate(src, dst, t, &mut self.rng.lock()))
    }

    /// Decides the fate of one `src → dst` envelope right now.
    pub fn decide_link(&self, src: NodeId, dst: NodeId) -> LinkDecision {
        self.decide_link_at(src, dst, self.now())
    }

    /// Schedules a wake-up event at every crash-recovery instant so frozen
    /// nodes thaw even if no peer ever contacts them (e.g. a crashed
    /// leader). Cluster constructors call this once at launch.
    pub fn schedule_recoveries<M: Send + 'static>(
        self: &Arc<Self>,
        timers: &TimerService,
        inboxes: &HashMap<NodeId, Sender<NodeEvent<M>>>,
    ) {
        for (node, at, _mode) in self.plan.recoveries() {
            // The wake event is mode-agnostic: the node's event loop already
            // recorded the window's mode and picks the right thaw path.
            let Some(tx) = inboxes.get(&node).cloned() else {
                continue;
            };
            timers.schedule(Duration::from_nanos(at.0), move || {
                let _ = tx.send(NodeEvent::Restart);
            });
        }
    }
}

/// An [`Outbound`] decorator applying link faults to node→node envelopes at
/// the sender. Client-bound responses pass through untouched (clients are
/// not part of the fault plan's address space); crash semantics are enforced
/// at the receiving node's event loop instead.
pub struct ChaosOut<M, O: Outbound<M> + Clone> {
    inner: O,
    src: NodeId,
    injector: Arc<FaultInjector>,
    timers: Arc<TimerService>,
    _marker: std::marker::PhantomData<fn() -> M>,
}

impl<M, O: Outbound<M> + Clone> ChaosOut<M, O> {
    /// Wraps `inner` for envelopes originating at `src`.
    pub fn new(
        inner: O,
        src: NodeId,
        injector: Arc<FaultInjector>,
        timers: Arc<TimerService>,
    ) -> Self {
        ChaosOut {
            inner,
            src,
            injector,
            timers,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<M, O: Outbound<M> + Clone> Clone for ChaosOut<M, O> {
    fn clone(&self) -> Self {
        ChaosOut {
            inner: self.inner.clone(),
            src: self.src,
            injector: Arc::clone(&self.injector),
            timers: Arc::clone(&self.timers),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<M: Clone + std::fmt::Debug + Send + 'static, O: Outbound<M> + Clone> Outbound<M>
    for ChaosOut<M, O>
{
    fn to_node(&self, to: NodeId, env: Envelope<M>) {
        match self.injector.decide_link(self.src, to) {
            LinkDecision::Deliver => self.inner.to_node(to, env),
            LinkDecision::Drop => {
                self.injector
                    .drops()
                    .record(paxi_core::obs::DropCause::Fault);
            }
            LinkDecision::DeliverAfter(delay) => {
                let inner = self.inner.clone();
                self.timers.schedule(delay, move || inner.to_node(to, env));
            }
        }
    }

    fn to_client(&self, client: ClientId, resp: ClientResponse) {
        self.inner.to_client(client, resp);
    }

    // Link-management hooks pass straight through: fault rules govern
    // message fates, not the existence of connections (a dropped link still
    // has a live socket under it, exactly like iptables-style chaos).
    fn connect_peer(&self, peer: NodeId) {
        self.inner.connect_peer(peer);
    }
    fn disconnect_peer(&self, peer: NodeId) {
        self.inner.disconnect_peer(peer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxi_core::time::Nanos;

    fn n(i: u8) -> NodeId {
        NodeId::new(0, i)
    }

    #[test]
    fn decisions_match_plan_fates_for_same_seed() {
        let mut plan = FaultPlan::new();
        plan.drop_link(n(0), n(1), Nanos::ZERO, Nanos::secs(5));
        plan.flaky_link(n(1), n(2), 0.5, Nanos::ZERO, Nanos::secs(5));
        plan.slow_link(n(2), n(0), Nanos::millis(3), Nanos::ZERO, Nanos::secs(5));

        let inj = FaultInjector::new(plan.clone(), 77);
        let mut rng = Rng64::seed(77);
        for i in 0..500u64 {
            let (src, dst) = match i % 3 {
                0 => (n(0), n(1)),
                1 => (n(1), n(2)),
                _ => (n(2), n(0)),
            };
            let t = Nanos::millis(i % 5_000);
            let expect = LinkDecision::from_fate(plan.message_fate(src, dst, t, &mut rng));
            assert_eq!(inj.decide_link_at(src, dst, t), expect, "query {i}");
        }
    }

    #[test]
    fn epoch_pins_once() {
        let inj = FaultInjector::new(FaultPlan::new(), 1);
        assert_eq!(inj.now(), Nanos::ZERO);
        let early = Instant::now() - Duration::from_secs(10);
        inj.start(early);
        let t1 = inj.now();
        assert!(t1 >= Nanos::secs(10));
        inj.start(Instant::now());
        assert!(inj.now() >= t1, "second start must not rewind the clock");
    }

    #[derive(Clone)]
    struct NullOut;
    impl Outbound<()> for NullOut {
        fn to_node(&self, _to: NodeId, _env: Envelope<()>) {}
        fn to_client(&self, _client: ClientId, _resp: ClientResponse) {}
    }

    #[test]
    fn link_drops_are_charged_to_the_fault_cause() {
        let mut plan = FaultPlan::new();
        plan.drop_link(n(0), n(1), Nanos::ZERO, Nanos::secs(3600));
        let inj = FaultInjector::new(plan, 9);
        inj.start(Instant::now());
        let timers = Arc::new(TimerService::new());
        let out: ChaosOut<(), NullOut> = ChaosOut::new(NullOut, n(0), Arc::clone(&inj), timers);
        for _ in 0..4 {
            out.to_node(n(1), Envelope::Shutdown);
        }
        assert_eq!(inj.drops().get(paxi_core::obs::DropCause::Fault), 4);
        assert_eq!(inj.drops().total(), 4);
        // Healthy links charge nothing.
        out.to_node(n(2), Envelope::Shutdown);
        assert_eq!(inj.drops().total(), 4);
    }

    #[test]
    fn crash_follows_wall_clock_window() {
        let mut plan = FaultPlan::new();
        plan.crash(n(0), Nanos::ZERO, Nanos::secs(3600));
        let inj = FaultInjector::new(plan, 1);
        inj.start(Instant::now());
        assert!(inj.is_crashed(n(0)));
        assert!(!inj.is_crashed(n(1)));
    }
}
