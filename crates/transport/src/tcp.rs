//! TCP socket transport.
//!
//! Every node binds a listener; peers and clients connect with a one-frame
//! handshake declaring who they are. Frames are length-prefixed
//! `paxi-codec` bytes (see [`paxi_codec::frame`]).
//!
//! **Reply routing.** A client holds one connection, to its attach node.
//! Protocols may forward a request to another replica (e.g. a follower
//! redirecting to the leader), and the eventual `reply` happens *there* — so
//! each node keeps a route table: a request arriving on a client connection
//! records a local route; a request arriving from a peer records `via that
//! peer`. Responses hop back along the recorded routes until they reach the
//! node holding the client's connection. This mirrors how Paxi's RESTful
//! clients interact with any system node.

use crate::envelope::Envelope;
use crate::runtime::{run_node, NodeEvent, Outbound};
use crate::timer::TimerService;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use paxi_core::command::{ClientResponse, Command};
use paxi_core::config::ClusterConfig;
use paxi_core::id::{ClientId, NodeId, RequestId};
use paxi_core::traits::{Replica, ReplicaFactory};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Connection handshake: the first frame on every connection.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum Hello {
    Peer(NodeId),
    Client(ClientId),
}

#[derive(Clone)]
enum Route {
    /// The client is connected to this node on the given writer.
    Local(Sender<Vec<u8>>),
    /// The request came through this peer; send responses back that way.
    Via(NodeId),
}

struct NodeNet<M> {
    me: NodeId,
    addrs: Arc<HashMap<NodeId, SocketAddr>>,
    peer_conns: Mutex<HashMap<NodeId, Sender<Vec<u8>>>>,
    routes: Mutex<HashMap<ClientId, Route>>,
    _marker: std::marker::PhantomData<fn() -> M>,
}

fn spawn_writer(stream: TcpStream) -> Sender<Vec<u8>> {
    let (tx, rx) = unbounded::<Vec<u8>>();
    std::thread::spawn(move || {
        let mut stream = stream;
        while let Ok(bytes) = rx.recv() {
            if stream.write_all(&bytes).is_err() {
                break;
            }
        }
    });
    tx
}

impl<M: Serialize + DeserializeOwned + Clone + std::fmt::Debug + Send + 'static> NodeNet<M> {
    fn encode(env: &Envelope<M>) -> Vec<u8> {
        let body = paxi_codec::to_bytes(env).expect("encode envelope");
        paxi_codec::encode_frame(&body)
    }

    fn peer_sender(&self, to: NodeId) -> Option<Sender<Vec<u8>>> {
        if let Some(tx) = self.peer_conns.lock().get(&to) {
            return Some(tx.clone());
        }
        let addr = *self.addrs.get(&to)?;
        let stream = TcpStream::connect(addr).ok()?;
        stream.set_nodelay(true).ok();
        let tx = spawn_writer(stream.try_clone().ok()?);
        // Handshake.
        let hello = paxi_codec::encode_frame(&paxi_codec::to_bytes(&Hello::Peer(self.me)).unwrap());
        let _ = tx.send(hello);
        // We never read from outbound peer connections; the remote side
        // reads. (Peers push to us over their own outbound connections.)
        drop(stream);
        self.peer_conns.lock().insert(to, tx.clone());
        Some(tx)
    }

    fn deliver_response(&self, client: ClientId, resp: &ClientResponse) {
        let route = self.routes.lock().get(&client).cloned();
        match route {
            Some(Route::Local(tx)) => {
                let _ = tx.send(Self::encode(&Envelope::Response(resp.clone())));
            }
            Some(Route::Via(peer)) => {
                if let Some(tx) = self.peer_sender(peer) {
                    let _ = tx.send(Self::encode(&Envelope::Response(resp.clone())));
                }
            }
            None => {}
        }
    }
}

struct TcpOut<M> {
    net: Arc<NodeNet<M>>,
}

impl<M> Clone for TcpOut<M> {
    fn clone(&self) -> Self {
        TcpOut { net: Arc::clone(&self.net) }
    }
}

impl<M: Serialize + DeserializeOwned + Clone + std::fmt::Debug + Send + 'static> Outbound<M>
    for TcpOut<M>
{
    fn to_node(&self, to: NodeId, env: Envelope<M>) {
        // Requests we forward should route replies back through us only if
        // the client is ours; if we got it from elsewhere the route already
        // points there and the next node will record `via us`, chaining back.
        if let Some(tx) = self.net.peer_sender(to) {
            let _ = tx.send(NodeNet::encode(&env));
        }
    }
    fn to_client(&self, client: ClientId, resp: ClientResponse) {
        self.net.deliver_response(client, &resp);
    }
}

/// A running TCP cluster on localhost (each node a real listener + thread).
pub struct TcpCluster<R: Replica> {
    addrs: Arc<HashMap<NodeId, SocketAddr>>,
    inboxes: HashMap<NodeId, Sender<NodeEvent<R::Msg>>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    next_client: AtomicU32,
    _timers: Arc<TimerService>,
}

impl<R> TcpCluster<R>
where
    R: Replica + Send + 'static,
    R::Msg: Serialize + DeserializeOwned,
{
    /// Binds one listener per node on 127.0.0.1 and starts all replicas.
    pub fn launch<F>(cluster: ClusterConfig, factory: F) -> std::io::Result<Self>
    where
        F: ReplicaFactory<R = R>,
    {
        let all = cluster.all_nodes();
        let mut listeners = Vec::new();
        let mut addrs = HashMap::new();
        for &id in &all {
            let l = TcpListener::bind("127.0.0.1:0")?;
            addrs.insert(id, l.local_addr()?);
            listeners.push((id, l));
        }
        let addrs = Arc::new(addrs);
        let timers = Arc::new(TimerService::new());
        let epoch = Instant::now();
        let mut inboxes = HashMap::new();
        let mut handles = Vec::new();

        for (i, (id, listener)) in listeners.into_iter().enumerate() {
            let (tx, rx) = unbounded::<NodeEvent<R::Msg>>();
            inboxes.insert(id, tx.clone());
            let net = Arc::new(NodeNet::<R::Msg> {
                me: id,
                addrs: Arc::clone(&addrs),
                peer_conns: Mutex::new(HashMap::new()),
                routes: Mutex::new(HashMap::new()),
                _marker: std::marker::PhantomData,
            });
            // Acceptor: one reader thread per inbound connection.
            {
                let net = Arc::clone(&net);
                let inbox = tx.clone();
                std::thread::spawn(move || {
                    for stream in listener.incoming() {
                        let Ok(stream) = stream else { break };
                        stream.set_nodelay(true).ok();
                        let net = Arc::clone(&net);
                        let inbox = inbox.clone();
                        std::thread::spawn(move || reader_loop::<R::Msg>(stream, net, inbox));
                    }
                });
            }
            let replica = factory.make(id);
            let peers = all.clone();
            let out = TcpOut { net };
            let timers2 = Arc::clone(&timers);
            handles.push(std::thread::spawn(move || {
                run_node(id, replica, peers, rx, tx, out, timers2, epoch, 0xBEEF + i as u64)
            }));
        }
        Ok(TcpCluster { addrs, inboxes, handles, next_client: AtomicU32::new(0), _timers: timers })
    }

    /// The address of a node's listener.
    pub fn addr(&self, node: NodeId) -> SocketAddr {
        self.addrs[&node]
    }

    /// Connects a blocking TCP client to `attach`.
    pub fn client(&self, attach: NodeId) -> std::io::Result<TcpClient> {
        let id = ClientId(1_000_000 + self.next_client.fetch_add(1, Ordering::Relaxed));
        TcpClient::connect(self.addr(attach), id)
    }

    /// Stops all node threads.
    pub fn shutdown(mut self) {
        for tx in self.inboxes.values() {
            let _ = tx.send(NodeEvent::Wire(Envelope::Shutdown));
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn reader_loop<M>(
    mut stream: TcpStream,
    net: Arc<NodeNet<M>>,
    inbox: Sender<NodeEvent<M>>,
) where
    M: Serialize + DeserializeOwned + Clone + std::fmt::Debug + Send + 'static,
{
    let mut decoder = paxi_codec::FrameDecoder::new();
    let mut buf = [0u8; 16 * 1024];
    let mut identity: Option<Hello> = None;
    let mut writer: Option<Sender<Vec<u8>>> = None;
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) | Err(_) => return,
            Ok(n) => n,
        };
        decoder.feed(&buf[..n]);
        loop {
            let frame = match decoder.next_frame() {
                Ok(Some(f)) => f,
                Ok(None) => break,
                Err(_) => return,
            };
            if identity.is_none() {
                let Ok(hello) = paxi_codec::from_bytes::<Hello>(&frame) else { return };
                if matches!(hello, Hello::Client(_)) {
                    let Ok(clone) = stream.try_clone() else { return };
                    writer = Some(spawn_writer(clone));
                }
                identity = Some(hello);
                continue;
            }
            let Ok(env) = paxi_codec::from_bytes::<Envelope<M>>(&frame) else { return };
            match (&identity, env) {
                (Some(Hello::Client(cid)), Envelope::Request(req)) => {
                    if let Some(w) = &writer {
                        net.routes.lock().insert(*cid, Route::Local(w.clone()));
                    }
                    let _ = inbox.send(NodeEvent::Wire(Envelope::Request(req)));
                }
                (Some(Hello::Peer(pid)), Envelope::Request(req)) => {
                    // Forwarded request: remember the way back, unless we
                    // already hold the client locally.
                    let mut routes = net.routes.lock();
                    match routes.get(&req.id.client) {
                        Some(Route::Local(_)) => {}
                        _ => {
                            routes.insert(req.id.client, Route::Via(*pid));
                        }
                    }
                    drop(routes);
                    let _ = inbox.send(NodeEvent::Wire(Envelope::Request(req)));
                }
                (_, Envelope::Response(resp)) => {
                    // A relayed response passing through us toward the client.
                    net.deliver_response(resp.id.client, &resp);
                }
                (_, Envelope::Msg { from, msg }) => {
                    let _ = inbox.send(NodeEvent::Wire(Envelope::Msg { from, msg }));
                }
                (_, Envelope::Shutdown) => return,
                (None, _) => return,
            }
        }
    }
}

/// A blocking TCP client speaking the framed envelope protocol.
pub struct TcpClient {
    id: ClientId,
    seq: u64,
    stream: TcpStream,
    decoder: paxi_codec::FrameDecoder,
    timeout: Duration,
}

impl TcpClient {
    /// Connects and handshakes.
    pub fn connect(addr: SocketAddr, id: ClientId) -> std::io::Result<Self> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        let hello = paxi_codec::encode_frame(&paxi_codec::to_bytes(&Hello::Client(id)).unwrap());
        stream.write_all(&hello)?;
        Ok(TcpClient {
            id,
            seq: 0,
            stream,
            decoder: paxi_codec::FrameDecoder::new(),
            timeout: Duration::from_secs(5),
        })
    }

    /// The client id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Executes one command, blocking for the matching response.
    pub fn execute(&mut self, cmd: Command) -> Option<ClientResponse> {
        let req_id = RequestId::new(self.id, self.seq);
        self.seq += 1;
        // Clients never parameterize over a protocol's message type; unit
        // stands in because Request/Response variants carry no M.
        let env: Envelope<()> = Envelope::Request(paxi_core::ClientRequest {
            id: req_id,
            cmd,
        });
        let frame = paxi_codec::encode_frame(&paxi_codec::to_bytes(&env).ok()?);
        self.stream.write_all(&frame).ok()?;
        let deadline = Instant::now() + self.timeout;
        let mut buf = [0u8; 8192];
        loop {
            if let Ok(Some(frame)) = self.decoder.next_frame() {
                if let Ok(Envelope::<()>::Response(resp)) = paxi_codec::from_bytes(&frame) {
                    if resp.id == req_id {
                        return Some(resp);
                    }
                    continue;
                }
                continue;
            }
            if Instant::now() >= deadline {
                return None;
            }
            match self.stream.read(&mut buf) {
                Ok(0) => return None,
                Ok(n) => self.decoder.feed(&buf[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return None;
                }
                Err(_) => return None,
            }
        }
    }

    /// Convenience: `PUT key value`.
    pub fn put(&mut self, key: u64, value: Vec<u8>) -> Option<ClientResponse> {
        self.execute(Command::put(key, value))
    }

    /// Convenience: `GET key`.
    pub fn get(&mut self, key: u64) -> Option<ClientResponse> {
        self.execute(Command::get(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxi_protocols::paxos::{paxos_cluster, PaxosConfig};

    #[test]
    fn paxos_over_tcp_localhost() {
        let cluster = ClusterConfig::lan(3);
        let run = TcpCluster::launch(
            cluster.clone(),
            paxos_cluster(cluster.clone(), PaxosConfig::default()),
        )
        .expect("launch");
        // Attach to the leader directly.
        let mut client = run.client(NodeId::new(0, 0)).expect("connect");
        let w = client.put(1, b"tcp".to_vec()).expect("put");
        assert!(w.ok);
        let r = client.get(1).expect("get");
        assert_eq!(r.value, Some(b"tcp".to_vec()));
        run.shutdown();
    }

    #[test]
    fn follower_forwarding_relays_replies() {
        let cluster = ClusterConfig::lan(3);
        let run = TcpCluster::launch(
            cluster.clone(),
            paxos_cluster(cluster.clone(), PaxosConfig::default()),
        )
        .expect("launch");
        // Attach to a follower: the request is forwarded to the leader and
        // the response relayed back through the follower's connection.
        let mut client = run.client(NodeId::new(0, 2)).expect("connect");
        for i in 0..10u64 {
            let w = client.put(i, vec![i as u8]).expect("put via follower");
            assert!(w.ok);
        }
        let r = client.get(5).expect("get");
        assert_eq!(r.value, Some(vec![5]));
        run.shutdown();
    }
}
