//! TCP socket transport.
//!
//! Every node binds a listener; peers and clients connect with a one-frame
//! handshake declaring who they are. Frames are length-prefixed
//! `paxi-codec` bytes (see [`paxi_codec::frame`]).
//!
//! **Reply routing.** A client holds one connection, to its attach node.
//! Protocols may forward a request to another replica (e.g. a follower
//! redirecting to the leader), and the eventual `reply` happens *there* — so
//! each node keeps a route table: a request arriving on a client connection
//! records a local route; a request arriving from a peer records `via that
//! peer`. Responses hop back along the recorded routes until they reach the
//! node holding the client's connection. This mirrors how Paxi's RESTful
//! clients interact with any system node.
//!
//! **Hardened peer links.** Outbound peer connections are maintained by a
//! dedicated writer thread behind a *bounded* queue: when a peer stalls or
//! dies, excess frames are shed instead of accumulating without bound
//! (quorum protocols tolerate loss natively). A writer whose socket breaks
//! exits immediately; the next send notices the dead channel, forgets the
//! connection, and redials under exponential backoff with jitter, so a
//! restarted peer is rejoined automatically and a dead one is not hammered.
//! Encoding failures are dropped (best-effort transport), never panicked on.
//!
//! **Write coalescing.** The writer thread drains every frame already queued
//! into one reusable burst buffer and issues a single `write_all` per burst.
//! A saturated link therefore pays one syscall for many frames, while an
//! idle link still sends each frame immediately. Frames are serialized
//! straight into their length-prefixed form ([`paxi_codec::encode_frame_into`]),
//! so the hot path performs one allocation per message rather than
//! body-then-frame copies.

use crate::envelope::Envelope;
use crate::faults::{ChaosOut, FaultInjector};
use crate::obs::{log_drop_once, ConnCounters, DropCounters};
use crate::runtime::{run_node, NodeEvent, Outbound, Remake};
use crate::timer::TimerService;
use crossbeam::channel::{bounded, Sender, TrySendError};
use parking_lot::Mutex;
use paxi_core::command::{ClientResponse, Command};
use paxi_core::config::ClusterConfig;
use paxi_core::dist::Rng64;
use paxi_core::id::{ClientId, NodeId, RequestId};
use paxi_core::obs::DropCause;
use paxi_core::traits::{Replica, ReplicaFactory};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Frames queued per peer connection before load shedding kicks in.
const WRITE_QUEUE_DEPTH: usize = 4096;
/// Target size of one coalesced write burst. The writer keeps draining its
/// queue into a reusable buffer until the queue is empty or the burst
/// reaches this size, then issues a single `write_all` — one syscall per
/// burst instead of one per frame.
const WRITE_BURST_BYTES: usize = 64 * 1024;
/// First reconnect delay; doubles per consecutive failure.
const RECONNECT_BASE: Duration = Duration::from_millis(10);
/// Reconnect delay ceiling.
const RECONNECT_MAX: Duration = Duration::from_secs(2);

/// Connection handshake: the first frame on every connection. Shared with
/// the reactor runtime ([`crate::reactor`]) so both runtimes speak the same
/// wire protocol and either one's clients can attach to either's nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum Hello {
    Peer(NodeId),
    Client(ClientId),
}

#[derive(Clone)]
enum Route {
    /// The client is connected to this node on the given writer.
    Local(Sender<Vec<u8>>),
    /// The request came through this peer; send responses back that way.
    Via(NodeId),
}

/// Reconnect throttling state for one peer.
struct Backoff {
    next_attempt: Instant,
    delay: Duration,
}

/// One tracked inbound connection: the reader thread's handle and a clone
/// of its stream, kept so shutdown can break a blocked read.
struct ConnEntry {
    handle: Option<std::thread::JoinHandle<()>>,
    stream: Option<TcpStream>,
}

/// Per-node table of live reader threads.
///
/// The acceptor used to spawn readers fire-and-forget, so a
/// connect/disconnect storm accumulated unjoined threads and a cluster
/// shutdown left readers blocked on sockets the test still held open. Every
/// accepted connection now registers here: finished readers are joined and
/// removed opportunistically on each accept ([`ConnTable::reap_finished`]),
/// and shutdown breaks every live reader's socket before joining it
/// ([`ConnTable::shutdown_all`]). Clones share the table.
#[derive(Clone, Default)]
struct ConnTable {
    inner: Arc<Mutex<HashMap<u64, ConnEntry>>>,
}

impl ConnTable {
    /// Tracks a freshly accepted connection. The stream clone exists only
    /// so shutdown can `shutdown(2)` it; if cloning fails the reader is
    /// still joined, it just can't be interrupted early.
    fn register(&self, token: u64, stream: &TcpStream) {
        self.inner.lock().insert(
            token,
            ConnEntry {
                handle: None,
                stream: stream.try_clone().ok(),
            },
        );
    }

    /// Attaches the reader's join handle to its entry.
    fn set_handle(&self, token: u64, handle: std::thread::JoinHandle<()>) {
        if let Some(e) = self.inner.lock().get_mut(&token) {
            e.handle = Some(handle);
        }
    }

    /// Called by the reader itself on exit: the socket is done, so drop our
    /// clone of it (releasing the fd) and leave only the handle to join.
    fn mark_exited(&self, token: u64) {
        if let Some(e) = self.inner.lock().get_mut(&token) {
            e.stream = None;
        }
    }

    /// Forgets an entry whose reader never started (thread spawn failed).
    fn discard(&self, token: u64) {
        self.inner.lock().remove(&token);
    }

    /// Joins and removes every reader that has already exited. Called on
    /// each accept, so sustained churn keeps the table (and the process's
    /// thread count) proportional to *live* connections, not total ever.
    fn reap_finished(&self) {
        let done: Vec<ConnEntry> = {
            let mut map = self.inner.lock();
            let tokens: Vec<u64> = map
                .iter()
                .filter(|(_, e)| match &e.handle {
                    Some(h) => h.is_finished(),
                    None => false,
                })
                .map(|(t, _)| *t)
                .collect();
            tokens.into_iter().filter_map(|t| map.remove(&t)).collect()
        };
        for e in done {
            if let Some(h) = e.handle {
                let _ = h.join();
            }
        }
    }

    /// Breaks every tracked socket, then joins every reader. The handles
    /// are taken out under the lock but joined outside it — a reader's exit
    /// path calls [`ConnTable::mark_exited`], which needs the lock.
    fn shutdown_all(&self) {
        let handles: Vec<std::thread::JoinHandle<()>> = {
            let mut map = self.inner.lock();
            map.drain()
                .filter_map(|(_, e)| {
                    if let Some(s) = &e.stream {
                        let _ = s.shutdown(std::net::Shutdown::Both);
                    }
                    e.handle
                })
                .collect()
        };
        for h in handles {
            let _ = h.join();
        }
    }
}

/// Logged once per process when a framed envelope fails to encode.
static TCP_ENCODE_WARN: std::sync::Once = std::sync::Once::new();

struct NodeNet<M> {
    me: NodeId,
    addrs: Arc<HashMap<NodeId, SocketAddr>>,
    peer_conns: Mutex<HashMap<NodeId, Sender<Vec<u8>>>>,
    backoff: Mutex<HashMap<NodeId, Backoff>>,
    jitter: Mutex<Rng64>,
    routes: Mutex<HashMap<ClientId, Route>>,
    drops: DropCounters,
    _marker: std::marker::PhantomData<fn() -> M>,
}

/// Starts a writer thread owning `stream` behind a bounded queue. The thread
/// exits when the socket breaks or every sender clone is dropped — it never
/// leaks past its connection's lifetime.
fn spawn_writer(stream: TcpStream) -> Sender<Vec<u8>> {
    let (tx, rx) = bounded::<Vec<u8>>(WRITE_QUEUE_DEPTH);
    // If the spawn itself fails, the closure (and `rx`) is dropped and every
    // send on `tx` reports a dead channel — same signal as a broken socket.
    let _ = std::thread::Builder::new()
        .name("paxi-tcp-writer".into())
        .spawn(move || {
            let mut stream = stream;
            let mut burst: Vec<u8> = Vec::with_capacity(WRITE_BURST_BYTES);
            // Block for the first frame of a burst, then coalesce whatever else
            // is already queued into the same write. Under load the queue is
            // rarely empty, so a saturated link converges on large bursts; an
            // idle link degenerates to one frame per write with no added delay.
            while let Ok(bytes) = rx.recv() {
                burst.clear();
                burst.extend_from_slice(&bytes);
                while burst.len() < WRITE_BURST_BYTES {
                    match rx.try_recv() {
                        Ok(more) => burst.extend_from_slice(&more),
                        Err(_) => break,
                    }
                }
                if stream.write_all(&burst).is_err() || stream.flush().is_err() {
                    return;
                }
            }
        });
    tx
}

impl<M: Serialize + DeserializeOwned + Clone + std::fmt::Debug + Send + 'static> NodeNet<M> {
    fn encode(env: &Envelope<M>) -> Option<Vec<u8>> {
        // Serialize directly into the framed buffer: one allocation per
        // message instead of body-then-frame copies.
        let mut out = Vec::with_capacity(64);
        paxi_codec::encode_frame_into(&mut out, env).ok()?;
        Some(out)
    }

    /// Best-effort framed send to a peer: reuses the live connection, sheds
    /// the frame if the peer's queue is full, and redials (under backoff)
    /// if the connection has died.
    fn send_to_peer(&self, to: NodeId, bytes: Vec<u8>) {
        let cached = self.peer_conns.lock().get(&to).cloned();
        let bytes = match cached {
            Some(tx) => match tx.try_send(bytes) {
                Ok(()) => return,
                // Queue full: the peer is alive but slow — shed the frame,
                // charging the loss so it never reads as mystery attrition.
                Err(TrySendError::Full(_)) => {
                    self.drops.record(DropCause::QueueFull);
                    return;
                }
                // Writer exited (socket broke): forget the connection,
                // unless another thread already replaced it.
                Err(TrySendError::Disconnected(bytes)) => {
                    let mut conns = self.peer_conns.lock();
                    if conns.get(&to).is_some_and(|cur| cur.same_channel(&tx)) {
                        conns.remove(&to);
                    }
                    bytes
                }
            },
            None => bytes,
        };
        // Frames lost while the peer link is down (dial failed, or the
        // backoff window is still closed) are reconnect-window losses.
        match self.connect_peer(to) {
            Some(tx) => {
                if tx.try_send(bytes).is_err() {
                    self.drops.record(DropCause::Reconnect);
                }
            }
            None => self.drops.record(DropCause::Reconnect),
        }
    }

    /// Dials `to` unless its backoff window is still closed. On success the
    /// connection is cached and the backoff cleared; on failure the next
    /// attempt is pushed out exponentially (with jitter, so a whole cluster
    /// redialing one recovered node doesn't stampede in lockstep).
    fn connect_peer(&self, to: NodeId) -> Option<Sender<Vec<u8>>> {
        if let Some(b) = self.backoff.lock().get(&to) {
            if Instant::now() < b.next_attempt {
                return None;
            }
        }
        let addr = *self.addrs.get(&to)?;
        match self.try_dial(addr) {
            Some(tx) => {
                self.backoff.lock().remove(&to);
                self.peer_conns.lock().insert(to, tx.clone());
                Some(tx)
            }
            None => {
                let mut backoff = self.backoff.lock();
                let entry = backoff.entry(to).or_insert(Backoff {
                    next_attempt: Instant::now(),
                    delay: RECONNECT_BASE,
                });
                let jitter = 0.5 + self.jitter.lock().next_f64(); // factor in [0.5, 1.5)
                entry.next_attempt = Instant::now() + entry.delay.mul_f64(jitter);
                entry.delay = (entry.delay * 2).min(RECONNECT_MAX);
                None
            }
        }
    }

    /// Forgets any cached connection (and backoff state) for a departed
    /// peer: its writer thread exits once the sender side is dropped, and no
    /// future redial will be attempted until someone addresses it again.
    fn drop_peer(&self, to: NodeId) {
        self.peer_conns.lock().remove(&to);
        self.backoff.lock().remove(&to);
    }

    fn try_dial(&self, addr: SocketAddr) -> Option<Sender<Vec<u8>>> {
        let stream = TcpStream::connect(addr).ok()?;
        stream.set_nodelay(true).ok();
        let mut hello = Vec::new();
        paxi_codec::encode_frame_into(&mut hello, &Hello::Peer(self.me)).ok()?;
        // We never read from outbound peer connections; the remote side
        // reads. (Peers push to us over their own outbound connections.)
        let tx = spawn_writer(stream);
        let _ = tx.try_send(hello);
        Some(tx)
    }

    fn deliver_response(&self, client: ClientId, resp: &ClientResponse) {
        let Some(route) = self.routes.lock().get(&client).cloned() else {
            // The client's connection (and its routes) are already gone.
            self.drops.record(DropCause::NoRoute);
            return;
        };
        // Encode once, whichever way the response is routed.
        let Some(bytes) = Self::encode(&Envelope::Response(resp.clone())) else {
            self.drops.record(DropCause::Encode);
            log_drop_once(
                &TCP_ENCODE_WARN,
                DropCause::Encode,
                "TCP response failed to encode",
            );
            return;
        };
        match route {
            Route::Local(tx) => match tx.try_send(bytes) {
                Ok(()) => {}
                Err(TrySendError::Full(_)) => self.drops.record(DropCause::QueueFull),
                // The client's writer exited: nobody left to deliver to.
                Err(TrySendError::Disconnected(_)) => self.drops.record(DropCause::NoRoute),
            },
            Route::Via(peer) => self.send_to_peer(peer, bytes),
        }
    }
}

struct TcpOut<M> {
    net: Arc<NodeNet<M>>,
}

impl<M> Clone for TcpOut<M> {
    fn clone(&self) -> Self {
        TcpOut {
            net: Arc::clone(&self.net),
        }
    }
}

impl<M: Serialize + DeserializeOwned + Clone + std::fmt::Debug + Send + 'static> Outbound<M>
    for TcpOut<M>
{
    fn to_node(&self, to: NodeId, env: Envelope<M>) {
        // Requests we forward should route replies back through us only if
        // the client is ours; if we got it from elsewhere the route already
        // points there and the next node will record `via us`, chaining back.
        match NodeNet::encode(&env) {
            Some(bytes) => self.net.send_to_peer(to, bytes),
            None => {
                self.net.drops.record(DropCause::Encode);
                log_drop_once(
                    &TCP_ENCODE_WARN,
                    DropCause::Encode,
                    "TCP node->node envelope failed to encode",
                );
            }
        }
    }
    fn to_client(&self, client: ClientId, resp: ClientResponse) {
        self.net.deliver_response(client, &resp);
    }
    fn connect_peer(&self, peer: NodeId) {
        // Warm-up dial: failure just arms the backoff; the next protocol
        // message retries through the normal send path.
        let _ = self.net.connect_peer(peer);
    }
    fn disconnect_peer(&self, peer: NodeId) {
        self.net.drop_peer(peer);
    }
}

/// A running TCP cluster on localhost (each node a real listener + thread).
pub struct TcpCluster<R: Replica> {
    addrs: Arc<HashMap<NodeId, SocketAddr>>,
    inboxes: HashMap<NodeId, Sender<NodeEvent<R::Msg>>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    acceptor_handles: Vec<std::thread::JoinHandle<()>>,
    acceptor_stops: Vec<Arc<AtomicBool>>,
    conn_tables: Vec<ConnTable>,
    next_client: AtomicU32,
    drops: DropCounters,
    conns: ConnCounters,
    _timers: Arc<TimerService>,
}

impl<R> TcpCluster<R>
where
    R: Replica + Send + 'static,
    R::Msg: Serialize + DeserializeOwned,
{
    /// Binds one listener per node on 127.0.0.1 and starts all replicas.
    pub fn launch<F>(cluster: ClusterConfig, factory: F) -> std::io::Result<Self>
    where
        F: ReplicaFactory<R = R> + Send + Sync + 'static,
    {
        Self::launch_inner(cluster, factory, None)
    }

    /// Like [`TcpCluster::launch`], but with fault injection applied inside
    /// the transport: node→node frames pass through the injector's plan
    /// (Drop / Flaky / Slow) and crashed nodes freeze until their windows
    /// end, measured from this call.
    pub fn launch_chaotic<F>(
        cluster: ClusterConfig,
        factory: F,
        injector: Arc<FaultInjector>,
    ) -> std::io::Result<Self>
    where
        F: ReplicaFactory<R = R> + Send + Sync + 'static,
    {
        Self::launch_inner(cluster, factory, Some(injector))
    }

    fn launch_inner<F>(
        cluster: ClusterConfig,
        factory: F,
        faults: Option<Arc<FaultInjector>>,
    ) -> std::io::Result<Self>
    where
        F: ReplicaFactory<R = R> + Send + Sync + 'static,
    {
        let factory = Arc::new(factory);
        let drops = DropCounters::new();
        let conns = ConnCounters::new();
        let all = cluster.all_nodes();
        let mut listeners = Vec::new();
        let mut addrs = HashMap::new();
        for &id in &all {
            let l = TcpListener::bind("127.0.0.1:0")?;
            addrs.insert(id, l.local_addr()?);
            listeners.push((id, l));
        }
        let addrs = Arc::new(addrs);
        let timers = Arc::new(TimerService::new());
        let epoch = Instant::now();
        let mut inboxes = HashMap::new();
        let mut handles = Vec::new();
        let mut acceptor_handles = Vec::new();
        let mut acceptor_stops = Vec::new();
        let mut conn_tables = Vec::new();

        for (i, (id, listener)) in listeners.into_iter().enumerate() {
            let (tx, rx) = crossbeam::channel::unbounded::<NodeEvent<R::Msg>>();
            inboxes.insert(id, tx.clone());
            let net = Arc::new(NodeNet::<R::Msg> {
                me: id,
                addrs: Arc::clone(&addrs),
                peer_conns: Mutex::new(HashMap::new()),
                backoff: Mutex::new(HashMap::new()),
                jitter: Mutex::new(Rng64::seed(0x7C9 ^ id.pack() as u64)),
                routes: Mutex::new(HashMap::new()),
                drops: drops.clone(),
                _marker: std::marker::PhantomData,
            });
            // Acceptor: one reader thread per inbound connection, tracked
            // in a per-node table so churn can't leak threads or fds and
            // shutdown can break every live reader.
            let table = ConnTable::default();
            let stop = Arc::new(AtomicBool::new(false));
            {
                let net = Arc::clone(&net);
                let inbox = tx.clone();
                let table = table.clone();
                let conns_acc = conns.clone();
                let stop = Arc::clone(&stop);
                let handle = std::thread::Builder::new()
                    .name(format!("paxi-tcp-accept-{}", id.pack()))
                    .spawn(move || {
                        let mut next_token = 0u64;
                        for stream in listener.incoming() {
                            if stop.load(Ordering::Acquire) {
                                break;
                            }
                            let Ok(stream) = stream else { break };
                            stream.set_nodelay(true).ok();
                            // Join readers that already exited before
                            // admitting more, so sustained churn stays
                            // bounded by the live connection count.
                            table.reap_finished();
                            let token = next_token;
                            next_token += 1;
                            conns_acc.on_open();
                            table.register(token, &stream);
                            let net = Arc::clone(&net);
                            let inbox = inbox.clone();
                            let table2 = table.clone();
                            let conns2 = conns_acc.clone();
                            let spawned = std::thread::Builder::new()
                                .name("paxi-tcp-reader".into())
                                .spawn(move || {
                                    reader_loop::<R::Msg>(stream, net, inbox);
                                    table2.mark_exited(token);
                                    conns2.on_close();
                                });
                            match spawned {
                                Ok(h) => table.set_handle(token, h),
                                // Spawn failed: the closure (and its stream)
                                // were dropped, so the connection is gone.
                                Err(_) => {
                                    table.discard(token);
                                    conns_acc.on_close();
                                }
                            }
                        }
                    })?;
                acceptor_handles.push(handle);
            }
            conn_tables.push(table);
            acceptor_stops.push(stop);
            let replica = factory.make(id);
            let remake: Remake<R> = {
                let f = Arc::clone(&factory);
                Arc::new(move |id| f.make(id))
            };
            let peers = all.clone();
            let out = TcpOut { net };
            let timers2 = Arc::clone(&timers);
            let faults2 = faults.clone();
            let seed = 0xBEEF + i as u64;
            let handle = match &faults {
                Some(inj) => {
                    let out = ChaosOut::new(out, id, Arc::clone(inj), Arc::clone(&timers));
                    std::thread::spawn(move || {
                        run_node(
                            id,
                            replica,
                            peers,
                            rx,
                            tx,
                            out,
                            timers2,
                            epoch,
                            seed,
                            faults2,
                            Some(remake),
                        )
                    })
                }
                None => std::thread::spawn(move || {
                    run_node(
                        id, replica, peers, rx, tx, out, timers2, epoch, seed, None, None,
                    )
                }),
            };
            handles.push(handle);
        }
        if let Some(inj) = &faults {
            inj.start(epoch);
            inj.schedule_recoveries(&timers, &inboxes);
        }
        Ok(TcpCluster {
            addrs,
            inboxes,
            handles,
            acceptor_handles,
            acceptor_stops,
            conn_tables,
            next_client: AtomicU32::new(0),
            drops,
            conns,
            _timers: timers,
        })
    }

    /// Per-cause ledger of every frame this cluster's nodes shed (encode
    /// failures, full writer queues, reconnect-window losses, vanished
    /// reply routes). Fault-injected link and crash drops are charged to
    /// the [`FaultInjector`]'s own counters instead.
    pub fn drops(&self) -> &DropCounters {
        &self.drops
    }

    /// Connection lifecycle ledger for inbound connections across all
    /// nodes: accepts, reader exits, live count, and high-water mark. After
    /// [`TcpCluster::shutdown`], `opens() == closes()` — a leaked reader
    /// shows up as an imbalance.
    pub fn conn_stats(&self) -> &ConnCounters {
        &self.conns
    }

    /// The address of a node's listener.
    pub fn addr(&self, node: NodeId) -> SocketAddr {
        self.addrs[&node]
    }

    /// Connects a blocking TCP client to `attach`.
    pub fn client(&self, attach: NodeId) -> std::io::Result<TcpClient> {
        let id = ClientId(1_000_000 + self.next_client.fetch_add(1, Ordering::Relaxed));
        TcpClient::connect(self.addr(attach), id)
    }

    /// Stops all node threads, then the acceptors, then every tracked
    /// reader — nothing spawned for a connection outlives the cluster.
    pub fn shutdown(mut self) {
        for tx in self.inboxes.values() {
            let _ = tx.send(NodeEvent::Wire(Envelope::Shutdown));
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        // Unblock each acceptor: raise its stop flag, then poke its
        // listener with a throwaway connect so the blocking accept returns.
        // The acceptor checks the flag before registering, so the poke
        // never pollutes the connection ledger.
        for stop in &self.acceptor_stops {
            stop.store(true, Ordering::Release);
        }
        for addr in self.addrs.values() {
            let _ = TcpStream::connect(*addr);
        }
        for h in self.acceptor_handles.drain(..) {
            let _ = h.join();
        }
        // Break and join every reader still attached to a socket.
        for table in &self.conn_tables {
            table.shutdown_all();
        }
    }
}

fn reader_loop<M>(stream: TcpStream, net: Arc<NodeNet<M>>, inbox: Sender<NodeEvent<M>>)
where
    M: Serialize + DeserializeOwned + Clone + std::fmt::Debug + Send + 'static,
{
    let mut writer: Option<Sender<Vec<u8>>> = None;
    read_frames(stream, &net, &inbox, &mut writer);
    // Connection gone: drop every route into its writer so the writer
    // thread's queue disconnects and the thread exits instead of leaking.
    if let Some(w) = writer {
        net.routes
            .lock()
            .retain(|_, r| !matches!(r, Route::Local(tx) if tx.same_channel(&w)));
    }
}

fn read_frames<M>(
    mut stream: TcpStream,
    net: &Arc<NodeNet<M>>,
    inbox: &Sender<NodeEvent<M>>,
    writer: &mut Option<Sender<Vec<u8>>>,
) where
    M: Serialize + DeserializeOwned + Clone + std::fmt::Debug + Send + 'static,
{
    let mut decoder = paxi_codec::FrameDecoder::new();
    let mut buf = [0u8; 16 * 1024];
    let mut identity: Option<Hello> = None;
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) | Err(_) => return,
            Ok(n) => n,
        };
        decoder.feed(&buf[..n]);
        loop {
            let frame = match decoder.next_frame() {
                Ok(Some(f)) => f,
                Ok(None) => break,
                Err(_) => return,
            };
            if identity.is_none() {
                let Ok(hello) = paxi_codec::from_bytes::<Hello>(&frame) else {
                    return;
                };
                if matches!(hello, Hello::Client(_)) {
                    let Ok(clone) = stream.try_clone() else {
                        return;
                    };
                    *writer = Some(spawn_writer(clone));
                }
                identity = Some(hello);
                continue;
            }
            let Ok(env) = paxi_codec::from_bytes::<Envelope<M>>(&frame) else {
                return;
            };
            match (&identity, env) {
                (Some(Hello::Client(cid)), Envelope::Request(req)) => {
                    if let Some(w) = &*writer {
                        net.routes.lock().insert(*cid, Route::Local(w.clone()));
                    }
                    let _ = inbox.send(NodeEvent::Wire(Envelope::Request(req)));
                }
                (Some(Hello::Peer(pid)), Envelope::Request(req)) => {
                    // Forwarded request: remember the way back, unless we
                    // already hold the client locally.
                    let mut routes = net.routes.lock();
                    match routes.get(&req.id.client) {
                        Some(Route::Local(_)) => {}
                        _ => {
                            routes.insert(req.id.client, Route::Via(*pid));
                        }
                    }
                    drop(routes);
                    let _ = inbox.send(NodeEvent::Wire(Envelope::Request(req)));
                }
                (_, Envelope::Response(resp)) => {
                    // A relayed response passing through us toward the client.
                    net.deliver_response(resp.id.client, &resp);
                }
                (_, Envelope::Msg { from, msg }) => {
                    let _ = inbox.send(NodeEvent::Wire(Envelope::Msg { from, msg }));
                }
                (_, Envelope::Shutdown) => return,
                (None, _) => return,
            }
        }
    }
}

/// A blocking TCP client speaking the framed envelope protocol.
pub struct TcpClient {
    id: ClientId,
    seq: u64,
    stream: TcpStream,
    decoder: paxi_codec::FrameDecoder,
    timeout: Duration,
}

impl TcpClient {
    /// Connects and handshakes.
    pub fn connect(addr: SocketAddr, id: ClientId) -> std::io::Result<Self> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(5)))?;
        let hello = paxi_codec::to_bytes(&Hello::Client(id))
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        stream.write_all(&paxi_codec::encode_frame(&hello))?;
        Ok(TcpClient {
            id,
            seq: 0,
            stream,
            decoder: paxi_codec::FrameDecoder::new(),
            timeout: Duration::from_secs(5),
        })
    }

    /// The client id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Overrides the per-request timeout.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
        let _ = self.stream.set_read_timeout(Some(timeout));
    }

    /// Executes one command, blocking for the matching response.
    pub fn execute(&mut self, cmd: Command) -> Option<ClientResponse> {
        let req_id = RequestId::new(self.id, self.seq);
        self.seq += 1;
        // Clients never parameterize over a protocol's message type; unit
        // stands in because Request/Response variants carry no M.
        let env: Envelope<()> = Envelope::Request(paxi_core::ClientRequest { id: req_id, cmd });
        let mut frame = Vec::new();
        paxi_codec::encode_frame_into(&mut frame, &env).ok()?;
        self.stream.write_all(&frame).ok()?;
        let deadline = Instant::now() + self.timeout;
        let mut buf = [0u8; 8192];
        loop {
            if let Ok(Some(frame)) = self.decoder.next_frame() {
                if let Ok(Envelope::<()>::Response(resp)) = paxi_codec::from_bytes(&frame) {
                    if resp.id == req_id {
                        return Some(resp);
                    }
                    continue;
                }
                continue;
            }
            if Instant::now() >= deadline {
                return None;
            }
            match self.stream.read(&mut buf) {
                Ok(0) => return None,
                Ok(n) => self.decoder.feed(&buf[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return None;
                }
                Err(_) => return None,
            }
        }
    }

    /// Convenience: `PUT key value`.
    pub fn put(&mut self, key: u64, value: Vec<u8>) -> Option<ClientResponse> {
        self.execute(Command::put(key, value))
    }

    /// Convenience: `GET key`.
    pub fn get(&mut self, key: u64) -> Option<ClientResponse> {
        self.execute(Command::get(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxi_protocols::paxos::{paxos_cluster, PaxosConfig};

    #[test]
    fn paxos_over_tcp_localhost() {
        let cluster = ClusterConfig::lan(3);
        let run = TcpCluster::launch(
            cluster.clone(),
            paxos_cluster(cluster.clone(), PaxosConfig::default()),
        )
        .expect("launch");
        // Attach to the leader directly.
        let mut client = run.client(NodeId::new(0, 0)).expect("connect");
        let w = client.put(1, b"tcp".to_vec()).expect("put");
        assert!(w.ok);
        let r = client.get(1).expect("get");
        assert_eq!(r.value, Some(b"tcp".to_vec()));
        run.shutdown();
    }

    #[test]
    fn follower_forwarding_relays_replies() {
        let cluster = ClusterConfig::lan(3);
        let run = TcpCluster::launch(
            cluster.clone(),
            paxos_cluster(cluster.clone(), PaxosConfig::default()),
        )
        .expect("launch");
        // Attach to a follower: the request is forwarded to the leader and
        // the response relayed back through the follower's connection.
        let mut client = run.client(NodeId::new(0, 2)).expect("connect");
        for i in 0..10u64 {
            let w = client.put(i, vec![i as u8]).expect("put via follower");
            assert!(w.ok);
        }
        let r = client.get(5).expect("get");
        assert_eq!(r.value, Some(vec![5]));
        run.shutdown();
    }

    #[test]
    fn writer_coalesces_bursts_without_losing_or_reordering_frames() {
        // Queue many frames before the writer thread can drain them: they
        // are flushed in a handful of coalesced write_alls, and the reader
        // must still decode every frame exactly once, in order.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut decoder = paxi_codec::FrameDecoder::new();
            let mut buf = [0u8; 4096];
            let mut frames = Vec::new();
            while frames.len() < 200 {
                let n = match s.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => n,
                };
                decoder.feed(&buf[..n]);
                while let Ok(Some(f)) = decoder.next_frame() {
                    frames.push(f);
                }
            }
            frames
        });
        let stream = TcpStream::connect(addr).unwrap();
        let tx = spawn_writer(stream);
        for i in 0..200u32 {
            let mut frame = Vec::new();
            paxi_codec::encode_frame_into(&mut frame, &i).unwrap();
            tx.send(frame).unwrap();
        }
        drop(tx); // writer drains the queue, then exits and closes the socket
        let frames = reader.join().unwrap();
        assert_eq!(frames.len(), 200);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(paxi_codec::from_bytes::<u32>(f).unwrap(), i as u32);
        }
    }

    #[test]
    fn connect_disconnect_storm_leaks_no_connections() {
        let cluster = ClusterConfig::lan(3);
        let run = TcpCluster::launch(
            cluster.clone(),
            paxos_cluster(cluster.clone(), PaxosConfig::default()),
        )
        .expect("launch");
        // Storm: short-lived clients connecting, (sometimes) issuing one
        // command, and vanishing. Before readers were tracked, each of
        // these left an unjoined thread behind.
        for round in 0..40u64 {
            let node = NodeId::new(0, (round % 3) as u8);
            let mut c = run.client(node).expect("connect");
            if round % 4 == 0 {
                let w = c.put(round, vec![round as u8]).expect("put");
                assert!(w.ok);
            }
            drop(c);
        }
        // The cluster still serves a fresh client after the storm.
        let mut c = run.client(NodeId::new(0, 0)).expect("connect");
        assert!(c.put(1_000, b"alive".to_vec()).expect("put").ok);
        let stats = run.conn_stats().clone();
        assert!(
            stats.opens() >= 41,
            "every storm connection was accepted (opens = {})",
            stats.opens()
        );
        run.shutdown();
        assert_eq!(
            stats.opens(),
            stats.closes(),
            "a reader (and its fd) leaked through the churn"
        );
        assert_eq!(stats.live(), 0);
    }

    #[test]
    fn dead_peer_send_does_not_wedge_or_panic() {
        // A NodeNet pointed at an address nobody listens on: every send must
        // fail quietly (backoff engaged), never panic or block.
        let mut addrs = HashMap::new();
        let target = NodeId::new(0, 1);
        addrs.insert(target, "127.0.0.1:1".parse().unwrap());
        let net = NodeNet::<()> {
            me: NodeId::new(0, 0),
            addrs: Arc::new(addrs),
            peer_conns: Mutex::new(HashMap::new()),
            backoff: Mutex::new(HashMap::new()),
            jitter: Mutex::new(Rng64::seed(1)),
            routes: Mutex::new(HashMap::new()),
            drops: DropCounters::new(),
            _marker: std::marker::PhantomData,
        };
        for _ in 0..50 {
            net.send_to_peer(target, vec![0u8; 8]);
        }
        // Backoff must be armed and growing after repeated failures.
        let backoff = net.backoff.lock();
        let state = backoff.get(&target).expect("backoff entry");
        assert!(state.delay > RECONNECT_BASE);
        // Every shed frame is on the ledger as a reconnect-window loss.
        assert_eq!(net.drops.get(DropCause::Reconnect), 50);
        assert_eq!(net.drops.total(), 50, "no other cause was charged");
    }
}
