//! # paxi-transport
//!
//! Wall-clock runtimes for Paxi protocols — the empirical counterpart to the
//! virtual-time simulator in `paxi-sim`. The same
//! [`paxi_core::traits::Replica`] implementations run here on real threads
//! and real sockets:
//!
//! * [`channel`] — all nodes in one process over crossbeam channels (Paxi's
//!   "cluster simulation" mode, which simplifies debugging).
//! * [`tcp`] — one TCP listener per node, length-prefixed `paxi-codec`
//!   frames, blocking clients, reply relaying across forwards.
//! * [`udp`] — one datagram socket per node; best-effort delivery with
//!   client retries (for protocols that gain nothing from ordered delivery).
//! * [`reactor`] (unix) — the nonblocking readiness-loop TCP runtime: all of
//!   a node's sockets multiplexed onto one thread over hand-rolled
//!   `poll(2)` ([`poll`]), pipelined clients, 10k+ concurrent connections
//!   per node.
//! * [`timer`] — the shared timer wheel behind `Context::set_timer`.
//! * [`faults`] — live fault injection: every transport has a
//!   `launch_chaotic` constructor that applies a
//!   [`paxi_core::faults::FaultPlan`] (Crash / Drop / Slow / Flaky) against
//!   wall-clock time, mirroring the simulator's semantics.
//! * [`obs`] — transport-side drop accounting: every loss path (encode
//!   failure, oversize datagram, full writer queue, reconnect window,
//!   injected fault) charges a named [`paxi_core::obs::DropCause`] in a
//!   shared [`DropCounters`], so no message disappears without a ledger
//!   entry.

#![warn(missing_docs)]

pub mod channel;
pub mod envelope;
pub mod faults;
pub mod obs;
#[cfg(unix)]
pub mod poll;
#[cfg(unix)]
pub mod reactor;
pub mod runtime;
pub mod tcp;
pub mod timer;
pub mod udp;

pub use channel::{InProcCluster, SyncClient};
pub use envelope::Envelope;
pub use faults::{ChaosOut, FaultInjector, LinkDecision};
pub use obs::{ConnCounters, DropCounters};
#[cfg(unix)]
pub use reactor::{run_swarm, PipelinedClient, ReactorCluster, SwarmReport};
pub use runtime::Remake;
pub use tcp::{TcpClient, TcpCluster};
pub use timer::TimerService;
pub use udp::{OversizeDatagram, UdpClient, UdpCluster, MAX_DGRAM};
