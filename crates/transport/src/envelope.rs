//! Wire envelope shared by all wall-clock transports.

use paxi_core::command::{ClientRequest, ClientResponse};
use paxi_core::id::NodeId;
use serde::{Deserialize, Serialize};

/// Everything that can arrive at a node or client over a transport.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Envelope<M> {
    /// Protocol message between replicas.
    Msg {
        /// Sender.
        from: NodeId,
        /// Protocol payload.
        msg: M,
    },
    /// A client request (from a client or forwarded by a replica).
    Request(ClientRequest),
    /// A response heading back to a client.
    Response(ClientResponse),
    /// Orderly shutdown of a node's event loop.
    Shutdown,
}
