//! Drop accounting for wall-clock transports.
//!
//! The simulator threads a `MetricsRegistry` through every replica callback,
//! but the transports lose messages on paths that never reach a replica at
//! all: encode failures, oversize datagrams, full writer queues, reconnect
//! windows, and fault-injected link drops. [`DropCounters`] is the shared,
//! lock-free tally those paths charge so that a cluster can account for
//! every loss — the same `drops_by_cause` contract the simulator upholds,
//! with `unexplained` pinned at zero.

use paxi_core::obs::{DropCause, Gauge, Metric, MetricsRegistry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once};

const CAUSES: usize = DropCause::ALL.len();

/// Shared per-cause drop counters for one transport endpoint (or one fault
/// injector). Cloning is cheap and clones observe the same tallies, so the
/// outbound half owned by each node thread and the cluster handle that
/// snapshots at shutdown can share one instance.
#[derive(Debug, Clone)]
pub struct DropCounters {
    slots: Arc<[AtomicU64; CAUSES]>,
}

impl Default for DropCounters {
    fn default() -> Self {
        DropCounters::new()
    }
}

impl DropCounters {
    /// Fresh counters, all zero.
    pub fn new() -> Self {
        DropCounters { slots: Arc::new(std::array::from_fn(|_| AtomicU64::new(0))) }
    }

    /// Charges one drop to `cause`.
    pub fn record(&self, cause: DropCause) {
        self.record_n(cause, 1);
    }

    /// Charges `n` drops to `cause`.
    pub fn record_n(&self, cause: DropCause, n: u64) {
        self.slots[cause as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Current tally for one cause.
    pub fn get(&self, cause: DropCause) -> u64 {
        self.slots[cause as usize].load(Ordering::Relaxed)
    }

    /// Sum over all causes.
    pub fn total(&self) -> u64 {
        self.slots.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }

    /// Folds the current tallies into a [`MetricsRegistry`] snapshot.
    pub fn fold_into(&self, reg: &mut MetricsRegistry) {
        for (i, cause) in DropCause::ALL.iter().enumerate() {
            let n = self.slots[i].load(Ordering::Relaxed);
            if n > 0 {
                reg.add_drop(*cause, n);
            }
        }
    }

    /// A standalone registry snapshot of these counters.
    pub fn snapshot(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        self.fold_into(&mut reg);
        reg
    }
}

/// Connection lifecycle accounting for one transport endpoint: opens
/// (accepted or dialed), closes, the live count, and its high-water mark.
///
/// The conservation contract mirrors the drop ledger: after an orderly
/// shutdown every opened connection has been closed (`opens == closes`), so
/// a connect/disconnect storm that leaks readers or fds shows up as an
/// imbalance instead of hiding in thread-scheduler noise. Clones share the
/// same tallies.
#[derive(Debug, Clone, Default)]
pub struct ConnCounters {
    inner: Arc<ConnInner>,
}

#[derive(Debug, Default)]
struct ConnInner {
    opens: AtomicU64,
    closes: AtomicU64,
    live: AtomicU64,
    hwm: AtomicU64,
}

impl ConnCounters {
    /// Fresh counters, all zero.
    pub fn new() -> Self {
        ConnCounters::default()
    }

    /// Records one connection coming up (accept or successful dial).
    pub fn on_open(&self) {
        self.inner.opens.fetch_add(1, Ordering::Relaxed);
        let live = self.inner.live.fetch_add(1, Ordering::Relaxed) + 1;
        self.inner.hwm.fetch_max(live, Ordering::Relaxed);
    }

    /// Records one connection going away.
    pub fn on_close(&self) {
        self.inner.closes.fetch_add(1, Ordering::Relaxed);
        self.inner.live.fetch_sub(1, Ordering::Relaxed);
    }

    /// Connections opened so far.
    pub fn opens(&self) -> u64 {
        self.inner.opens.load(Ordering::Relaxed)
    }

    /// Connections closed so far.
    pub fn closes(&self) -> u64 {
        self.inner.closes.load(Ordering::Relaxed)
    }

    /// Connections open right now.
    pub fn live(&self) -> u64 {
        self.inner.live.load(Ordering::Relaxed)
    }

    /// Most connections ever simultaneously open.
    pub fn hwm(&self) -> u64 {
        self.inner.hwm.load(Ordering::Relaxed)
    }

    /// Folds the tallies into a [`MetricsRegistry`] snapshot
    /// ([`Metric::ConnAccepts`], [`Metric::ConnCloses`],
    /// [`Gauge::ConnsHwm`]).
    pub fn fold_into(&self, reg: &mut MetricsRegistry) {
        reg.add(Metric::ConnAccepts, self.opens());
        reg.add(Metric::ConnCloses, self.closes());
        reg.gauge_max(Gauge::ConnsHwm, self.hwm());
    }
}

/// Logs a drop to stderr exactly once per call site (further occurrences
/// are counted silently). Call sites hold a `static Once` so repeated
/// failures — e.g. an unencodable message type retried in a loop — cannot
/// flood the log.
pub fn log_drop_once(once: &Once, cause: DropCause, context: &str) {
    once.call_once(|| {
        eprintln!(
            "paxi-transport: dropping message (cause: {}): {context}; \
             further occurrences are counted, not logged",
            cause.name()
        );
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_tallies() {
        let a = DropCounters::new();
        let b = a.clone();
        a.record(DropCause::Encode);
        b.record_n(DropCause::Encode, 2);
        b.record(DropCause::QueueFull);
        assert_eq!(a.get(DropCause::Encode), 3);
        assert_eq!(a.get(DropCause::QueueFull), 1);
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn conn_counters_track_live_and_high_water() {
        let c = ConnCounters::new();
        c.on_open();
        c.on_open();
        c.on_open();
        assert_eq!((c.opens(), c.live(), c.hwm()), (3, 3, 3));
        c.on_close();
        c.on_close();
        assert_eq!((c.closes(), c.live(), c.hwm()), (2, 1, 3));
        c.on_open(); // live back to 2, below the old high-water mark
        assert_eq!(c.hwm(), 3);
        let mut reg = MetricsRegistry::new();
        c.fold_into(&mut reg);
        assert_eq!(reg.get(Metric::ConnAccepts), 4);
        assert_eq!(reg.get(Metric::ConnCloses), 2);
        assert_eq!(reg.gauge(Gauge::ConnsHwm), 3);
        assert!(reg.to_json().contains("\"conns_hwm\":3"));
    }

    #[test]
    fn fold_into_skips_zero_causes() {
        let c = DropCounters::new();
        c.record_n(DropCause::Oversize, 5);
        let reg = c.snapshot();
        assert_eq!(reg.drops(DropCause::Oversize), 5);
        assert_eq!(reg.total_drops(), 5);
        assert!(reg.to_json().contains("\"oversize\":5"));
        assert_eq!(reg.drops(DropCause::Encode), 0);
    }
}
