//! Drop accounting for wall-clock transports.
//!
//! The simulator threads a `MetricsRegistry` through every replica callback,
//! but the transports lose messages on paths that never reach a replica at
//! all: encode failures, oversize datagrams, full writer queues, reconnect
//! windows, and fault-injected link drops. [`DropCounters`] is the shared,
//! lock-free tally those paths charge so that a cluster can account for
//! every loss — the same `drops_by_cause` contract the simulator upholds,
//! with `unexplained` pinned at zero.

use paxi_core::obs::{DropCause, MetricsRegistry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Once};

const CAUSES: usize = DropCause::ALL.len();

/// Shared per-cause drop counters for one transport endpoint (or one fault
/// injector). Cloning is cheap and clones observe the same tallies, so the
/// outbound half owned by each node thread and the cluster handle that
/// snapshots at shutdown can share one instance.
#[derive(Debug, Clone)]
pub struct DropCounters {
    slots: Arc<[AtomicU64; CAUSES]>,
}

impl Default for DropCounters {
    fn default() -> Self {
        DropCounters::new()
    }
}

impl DropCounters {
    /// Fresh counters, all zero.
    pub fn new() -> Self {
        DropCounters { slots: Arc::new(std::array::from_fn(|_| AtomicU64::new(0))) }
    }

    /// Charges one drop to `cause`.
    pub fn record(&self, cause: DropCause) {
        self.record_n(cause, 1);
    }

    /// Charges `n` drops to `cause`.
    pub fn record_n(&self, cause: DropCause, n: u64) {
        self.slots[cause as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Current tally for one cause.
    pub fn get(&self, cause: DropCause) -> u64 {
        self.slots[cause as usize].load(Ordering::Relaxed)
    }

    /// Sum over all causes.
    pub fn total(&self) -> u64 {
        self.slots.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }

    /// Folds the current tallies into a [`MetricsRegistry`] snapshot.
    pub fn fold_into(&self, reg: &mut MetricsRegistry) {
        for (i, cause) in DropCause::ALL.iter().enumerate() {
            let n = self.slots[i].load(Ordering::Relaxed);
            if n > 0 {
                reg.add_drop(*cause, n);
            }
        }
    }

    /// A standalone registry snapshot of these counters.
    pub fn snapshot(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        self.fold_into(&mut reg);
        reg
    }
}

/// Logs a drop to stderr exactly once per call site (further occurrences
/// are counted silently). Call sites hold a `static Once` so repeated
/// failures — e.g. an unencodable message type retried in a loop — cannot
/// flood the log.
pub fn log_drop_once(once: &Once, cause: DropCause, context: &str) {
    once.call_once(|| {
        eprintln!(
            "paxi-transport: dropping message (cause: {}): {context}; \
             further occurrences are counted, not logged",
            cause.name()
        );
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_tallies() {
        let a = DropCounters::new();
        let b = a.clone();
        a.record(DropCause::Encode);
        b.record_n(DropCause::Encode, 2);
        b.record(DropCause::QueueFull);
        assert_eq!(a.get(DropCause::Encode), 3);
        assert_eq!(a.get(DropCause::QueueFull), 1);
        assert_eq!(a.total(), 4);
    }

    #[test]
    fn fold_into_skips_zero_causes() {
        let c = DropCounters::new();
        c.record_n(DropCause::Oversize, 5);
        let reg = c.snapshot();
        assert_eq!(reg.drops(DropCause::Oversize), 5);
        assert_eq!(reg.total_drops(), 5);
        assert!(reg.to_json().contains("\"oversize\":5"));
        assert_eq!(reg.drops(DropCause::Encode), 0);
    }
}
