//! Shared timer service for the wall-clock runtimes.
//!
//! Replicas arm timers through their [`paxi_core::traits::Context`]; the
//! runtimes delegate to one `TimerService` thread that sleeps until the next
//! deadline and injects timer events back into the owning node's inbox.

use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::{Duration, Instant};

type Callback = Box<dyn FnOnce() + Send>;

struct Entry {
    deadline: Instant,
    seq: u64,
    cb: Option<Callback>,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.deadline.cmp(&other.deadline).then(self.seq.cmp(&other.seq))
    }
}

struct Shared {
    heap: Mutex<(BinaryHeap<Reverse<Entry>>, u64, bool)>,
    cv: Condvar,
}

/// A single-threaded timer wheel: schedule a callback after a delay.
pub struct TimerService {
    shared: Arc<Shared>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TimerService {
    /// Starts the timer thread.
    pub fn new() -> Self {
        let shared = Arc::new(Shared {
            heap: Mutex::new((BinaryHeap::new(), 0, false)),
            cv: Condvar::new(),
        });
        let s2 = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("paxi-timers".into())
            .spawn(move || loop {
                let mut guard = s2.heap.lock();
                if guard.2 {
                    break;
                }
                let now = Instant::now();
                // Fire everything due.
                let mut due: Vec<Callback> = Vec::new();
                while let Some(Reverse(top)) = guard.0.peek() {
                    if top.deadline <= now {
                        let mut e = guard.0.pop().unwrap().0;
                        if let Some(cb) = e.cb.take() {
                            due.push(cb);
                        }
                    } else {
                        break;
                    }
                }
                if !due.is_empty() {
                    drop(guard);
                    for cb in due {
                        cb();
                    }
                    continue;
                }
                match guard.0.peek() {
                    Some(Reverse(top)) => {
                        let wait = top.deadline.saturating_duration_since(now);
                        s2.cv.wait_for(&mut guard, wait);
                    }
                    None => {
                        s2.cv.wait_for(&mut guard, Duration::from_millis(100));
                    }
                }
            })
            .expect("spawn timer thread");
        TimerService { shared, handle: Some(handle) }
    }

    /// Runs `cb` after `delay`.
    pub fn schedule(&self, delay: Duration, cb: impl FnOnce() + Send + 'static) {
        let mut guard = self.shared.heap.lock();
        let seq = guard.1;
        guard.1 += 1;
        guard.0.push(Reverse(Entry {
            deadline: Instant::now() + delay,
            seq,
            cb: Some(Box::new(cb)),
        }));
        drop(guard);
        self.shared.cv.notify_one();
    }
}

impl Default for TimerService {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for TimerService {
    fn drop(&mut self) {
        self.shared.heap.lock().2 = true;
        self.shared.cv.notify_one();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn timers_fire_in_order() {
        let svc = TimerService::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for (i, ms) in [(1, 30u64), (2, 10), (3, 20)] {
            let log = Arc::clone(&log);
            svc.schedule(Duration::from_millis(ms), move || log.lock().push(i));
        }
        std::thread::sleep(Duration::from_millis(120));
        assert_eq!(*log.lock(), vec![2, 3, 1]);
    }

    #[test]
    fn many_timers_all_fire() {
        let svc = TimerService::new();
        let count = Arc::new(AtomicUsize::new(0));
        for i in 0..200 {
            let count = Arc::clone(&count);
            svc.schedule(Duration::from_millis(i % 20), move || {
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(count.load(Ordering::SeqCst), 200);
    }

    #[test]
    fn drop_stops_the_thread() {
        let svc = TimerService::new();
        svc.schedule(Duration::from_secs(60), || {});
        drop(svc); // must not hang
    }
}
