//! In-process cluster over crossbeam channels.
//!
//! This is Paxi's "cluster simulation" transport: all nodes run concurrently
//! in one process, connected by Go-channel-like queues, which simplifies
//! debugging and gives wall-clock (non-virtual-time) measurements without
//! deploying sockets. The same replica code that runs under the simulator
//! runs here unchanged.

use crate::envelope::Envelope;
use crate::faults::{ChaosOut, FaultInjector};
use crate::obs::DropCounters;
use crate::runtime::{run_node, NodeEvent, Outbound, Remake};
use crate::timer::TimerService;
use paxi_core::obs::DropCause;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use paxi_core::command::{ClientResponse, Command};
use paxi_core::config::ClusterConfig;
use paxi_core::id::{ClientId, NodeId, RequestId};
use paxi_core::traits::{Replica, ReplicaFactory};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Registry<M> {
    nodes: HashMap<NodeId, Sender<NodeEvent<M>>>,
    clients: Mutex<HashMap<ClientId, Sender<ClientResponse>>>,
    drops: DropCounters,
}

/// Channel-backed outbound half.
struct ChannelOut<M> {
    reg: Arc<Registry<M>>,
}

impl<M> Clone for ChannelOut<M> {
    fn clone(&self) -> Self {
        ChannelOut { reg: Arc::clone(&self.reg) }
    }
}

impl<M: Clone + std::fmt::Debug + Send + 'static> Outbound<M> for ChannelOut<M> {
    fn to_node(&self, to: NodeId, env: Envelope<M>) {
        match self.reg.nodes.get(&to) {
            Some(tx) => {
                if tx.send(NodeEvent::Wire(env)).is_err() {
                    // The node's event loop already exited.
                    self.reg.drops.record(DropCause::Crashed);
                }
            }
            None => self.reg.drops.record(DropCause::NoRoute),
        }
    }
    fn to_client(&self, client: ClientId, resp: ClientResponse) {
        match self.reg.clients.lock().get(&client) {
            Some(tx) => {
                if tx.send(resp).is_err() {
                    // The client dropped its receiving half.
                    self.reg.drops.record(DropCause::NoRoute);
                }
            }
            None => self.reg.drops.record(DropCause::NoRoute),
        }
    }
}

/// A running in-process cluster.
pub struct InProcCluster<R: Replica> {
    reg: Arc<Registry<R::Msg>>,
    cluster: ClusterConfig,
    handles: Vec<std::thread::JoinHandle<()>>,
    next_client: AtomicU32,
    _timers: Arc<TimerService>,
}

impl<R: Replica + Send + 'static> InProcCluster<R> {
    /// Spawns one thread per replica and wires them together.
    pub fn launch<F>(cluster: ClusterConfig, factory: F) -> Self
    where
        F: ReplicaFactory<R = R> + Send + Sync + 'static,
    {
        Self::launch_inner(cluster, factory, None)
    }

    /// Like [`InProcCluster::launch`], but with fault injection: the
    /// injector's plan gates every node→node message (Drop / Flaky / Slow)
    /// and freezes crashed nodes until their windows end, measured from the
    /// moment this call pins the injector's clock.
    pub fn launch_chaotic<F>(
        cluster: ClusterConfig,
        factory: F,
        injector: Arc<FaultInjector>,
    ) -> Self
    where
        F: ReplicaFactory<R = R> + Send + Sync + 'static,
    {
        Self::launch_inner(cluster, factory, Some(injector))
    }

    fn launch_inner<F>(
        cluster: ClusterConfig,
        factory: F,
        faults: Option<Arc<FaultInjector>>,
    ) -> Self
    where
        F: ReplicaFactory<R = R> + Send + Sync + 'static,
    {
        let factory = Arc::new(factory);
        let all = cluster.all_nodes();
        let timers = Arc::new(TimerService::new());
        let epoch = Instant::now();
        let mut inboxes = HashMap::new();
        let mut receivers: Vec<(NodeId, Receiver<NodeEvent<R::Msg>>, Sender<NodeEvent<R::Msg>>)> =
            Vec::new();
        for &id in &all {
            let (tx, rx) = unbounded();
            inboxes.insert(id, tx.clone());
            receivers.push((id, rx, tx));
        }
        if let Some(inj) = &faults {
            inj.start(epoch);
            inj.schedule_recoveries(&timers, &inboxes);
        }
        let reg = Arc::new(Registry {
            nodes: inboxes,
            clients: Mutex::new(HashMap::new()),
            drops: DropCounters::new(),
        });
        let mut handles = Vec::new();
        for (i, (id, rx, tx)) in receivers.into_iter().enumerate() {
            let replica = factory.make(id);
            let remake: Remake<R> = {
                let f = Arc::clone(&factory);
                Arc::new(move |id| f.make(id))
            };
            let peers = all.clone();
            let out = ChannelOut { reg: Arc::clone(&reg) };
            let timers = Arc::clone(&timers);
            let faults = faults.clone();
            let seed = 0xC0FFEE + i as u64;
            let builder = std::thread::Builder::new().name(format!("paxi-node-{id}"));
            let handle = match &faults {
                Some(inj) => {
                    let out =
                        ChaosOut::new(out, id, Arc::clone(inj), Arc::clone(&timers));
                    builder
                        .spawn(move || {
                            run_node(
                                id,
                                replica,
                                peers,
                                rx,
                                tx,
                                out,
                                timers,
                                epoch,
                                seed,
                                faults,
                                Some(remake),
                            )
                        })
                        .expect("spawn node thread")
                }
                None => builder
                    .spawn(move || {
                        run_node(id, replica, peers, rx, tx, out, timers, epoch, seed, None, None)
                    })
                    .expect("spawn node thread"),
            };
            handles.push(handle);
        }
        InProcCluster { reg, cluster, handles, next_client: AtomicU32::new(0), _timers: timers }
    }

    /// The cluster configuration.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// Per-cause ledger of envelopes this cluster's channels dropped
    /// (unknown destinations, exited node loops, departed clients).
    /// Fault-injected link and crash drops are charged to the
    /// [`FaultInjector`]'s own counters instead.
    pub fn drops(&self) -> &DropCounters {
        &self.reg.drops
    }

    /// Creates a synchronous client attached to `attach`.
    pub fn client(&self, attach: NodeId) -> SyncClient<R::Msg> {
        let id = ClientId(self.next_client.fetch_add(1, Ordering::Relaxed));
        let (tx, rx) = bounded(128);
        self.reg.clients.lock().insert(id, tx);
        SyncClient {
            id,
            seq: 0,
            node: self.reg.nodes[&attach].clone(),
            rx,
            timeout: Duration::from_secs(5),
        }
    }

    /// Shuts down all node threads and waits for them.
    pub fn shutdown(mut self) {
        for tx in self.reg.nodes.values() {
            let _ = tx.send(NodeEvent::Wire(Envelope::Shutdown));
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Blocking client for in-process clusters.
pub struct SyncClient<M> {
    id: ClientId,
    seq: u64,
    node: Sender<NodeEvent<M>>,
    rx: Receiver<ClientResponse>,
    timeout: Duration,
}

impl<M: Clone + std::fmt::Debug + Send + 'static> SyncClient<M> {
    /// The client's id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Overrides the per-request timeout.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// Executes one command, blocking for the response.
    pub fn execute(&mut self, cmd: Command) -> Option<ClientResponse> {
        let req_id = RequestId::new(self.id, self.seq);
        self.seq += 1;
        self.node
            .send(NodeEvent::Wire(Envelope::Request(paxi_core::ClientRequest {
                id: req_id,
                cmd,
            })))
            .ok()?;
        // Skip stale responses (from timed-out predecessors).
        let deadline = Instant::now() + self.timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(remaining) {
                Ok(resp) if resp.id == req_id => return Some(resp),
                Ok(_) => continue,
                Err(_) => return None,
            }
        }
    }

    /// Convenience: `PUT key value`.
    pub fn put(&mut self, key: u64, value: Vec<u8>) -> Option<ClientResponse> {
        self.execute(Command::put(key, value))
    }

    /// Convenience: `GET key`.
    pub fn get(&mut self, key: u64) -> Option<ClientResponse> {
        self.execute(Command::get(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxi_protocols::paxos::{paxos_cluster, PaxosConfig};

    #[test]
    fn paxos_over_channels_serves_clients() {
        let cluster = ClusterConfig::lan(3);
        let run = InProcCluster::launch(
            cluster.clone(),
            paxos_cluster(cluster.clone(), PaxosConfig::default()),
        );
        let mut client = run.client(NodeId::new(0, 1)); // follower: forwards
        let w = client.put(7, vec![1, 2, 3]).expect("put response");
        assert!(w.ok);
        let r = client.get(7).expect("get response");
        assert_eq!(r.value, Some(vec![1, 2, 3]));
        run.shutdown();
    }

    #[test]
    fn multiple_clients_interleave() {
        let cluster = ClusterConfig::lan(3);
        let run = InProcCluster::launch(
            cluster.clone(),
            paxos_cluster(cluster.clone(), PaxosConfig::default()),
        );
        let mut clients: Vec<_> = (0..4).map(|i| run.client(NodeId::new(0, i % 3))).collect();
        for round in 0..25u8 {
            for (i, c) in clients.iter_mut().enumerate() {
                let resp = c.put(i as u64, vec![round]).expect("response");
                assert!(resp.ok);
            }
        }
        // Final reads observe the last round.
        for (i, c) in clients.iter_mut().enumerate() {
            let r = c.get(i as u64).expect("read");
            assert_eq!(r.value, Some(vec![24]));
        }
        run.shutdown();
    }

    #[test]
    fn epaxos_over_channels() {
        let cluster = ClusterConfig::lan(5);
        let run = InProcCluster::launch(cluster.clone(), move |id: NodeId| {
            paxi_protocols::epaxos::EPaxos::new(id, cluster.clone())
        });
        let mut c0 = run.client(NodeId::new(0, 0));
        let mut c1 = run.client(NodeId::new(0, 3));
        assert!(c0.put(1, vec![10]).expect("resp").ok);
        assert!(c1.put(1, vec![11]).expect("resp").ok);
        let r = c0.get(1).expect("read");
        assert!(r.value == Some(vec![10]) || r.value == Some(vec![11]));
        run.shutdown();
    }
}
