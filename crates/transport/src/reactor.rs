//! Nonblocking readiness-loop ("reactor") TCP transport.
//!
//! The thread-per-connection runtime in [`crate::tcp`] spends one OS thread
//! per inbound connection plus one writer thread per outbound link. That is
//! simple and fast at small scale, but a node serving thousands of clients
//! pays for thousands of stacks, and a connect/disconnect storm turns into a
//! thread-spawn storm. This module keeps the wire protocol, routing rules,
//! and drop ledger of the threaded runtime while multiplexing **all** of a
//! node's sockets onto a single reactor thread driven by `poll(2)`
//! (see [`crate::poll`] — hand-rolled FFI, no mio/tokio).
//!
//! **Per-connection state machines.** Each connection owns a
//! [`paxi_codec::FrameDecoder`] fed from nonblocking reads, so frames
//! arriving in arbitrary fragments re-assemble exactly as they do on the
//! blocking path. The first decoded frame is the [`Hello`] handshake; every
//! later frame is an [`Envelope`] dispatched by the same
//! (identity, envelope) rules as the threaded reader.
//!
//! **Interest-driven writes.** Outbound bytes are staged into a bounded
//! per-connection buffer ([`ConnTx`]) by whichever thread produced them
//! (the node event loop, usually). The reactor polls a connection for
//! `POLLOUT` only while bytes are staged or partially written, drains them
//! with as few `write` calls as the socket accepts — the coalescing
//! behaviour of the threaded writer, without the thread — and then drops
//! write interest so an idle connection costs nothing per tick. A full
//! buffer sheds the frame and charges [`DropCause::Backpressure`]; quorum
//! protocols tolerate the loss and the ledger keeps it from reading as
//! mystery attrition.
//!
//! **Fate parity with the simulator.** Fault injection wraps the node's
//! outbound half ([`ChaosOut`]) exactly as on the threaded path, *before*
//! bytes reach any socket, so a fixed seed yields the same per-message
//! fates on the reactor as in-process or threaded TCP.
//!
//! [`PipelinedClient`] is the client-side counterpart: one connection, many
//! requests in flight, replies correlated by [`RequestId`]. [`run_swarm`]
//! drives thousands of such pipelined connections from a single bench
//! thread — the open-loop load generator behind `repro reactor`.

use crate::envelope::Envelope;
use crate::faults::{ChaosOut, FaultInjector};
use crate::obs::{log_drop_once, ConnCounters, DropCounters};
use crate::poll::{poll_fds, PollFd, POLLIN, POLLOUT};
use crate::runtime::{run_node, NodeEvent, Outbound, Remake};
use crate::tcp::Hello;
use crate::timer::TimerService;
use crossbeam::channel::Sender;
use parking_lot::Mutex;
use paxi_core::command::{ClientResponse, Command};
use paxi_core::config::ClusterConfig;
use paxi_core::dist::Rng64;
use paxi_core::id::{ClientId, NodeId, RequestId};
use paxi_core::obs::DropCause;
use paxi_core::traits::{Replica, ReplicaFactory};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Bytes staged per connection before backpressure sheds frames. Sized so a
/// slow-but-alive peer can absorb a large burst (the threaded writer's
/// 4096-frame queue at typical frame sizes is in the same ballpark).
const OUT_BUF_CAP: usize = 4 * 1024 * 1024;
/// Read chunk per `read` call on a readable socket.
const READ_CHUNK: usize = 64 * 1024;
/// Poll timeout: the loop's housekeeping tick when no fd is ready.
const POLL_TICK: Duration = Duration::from_millis(100);
/// First reconnect delay; doubles per consecutive failure.
const RECONNECT_BASE: Duration = Duration::from_millis(10);
/// Reconnect delay ceiling.
const RECONNECT_MAX: Duration = Duration::from_secs(2);

/// Logged once per process when a framed envelope fails to encode.
static REACTOR_ENCODE_WARN: std::sync::Once = std::sync::Once::new();

/// Why a [`ConnTx::push`] refused the bytes.
enum TxError {
    /// The connection is gone; bytes can never be delivered.
    Closed,
    /// The bounded buffer is full; the frame is shed (backpressure).
    Full,
}

/// The writer half of one reactor connection, shared between the producing
/// threads (node event loop, response router) and the reactor thread.
///
/// Producers append framed bytes under a short critical section; the
/// reactor swaps the staged buffer out wholesale when the socket polls
/// writable, so the lock is never held across a syscall. `queued` tracks
/// staged-but-undrained bytes so producers can check capacity and the
/// reactor can compute write interest without taking the lock.
struct ConnTx {
    staged: Mutex<Vec<u8>>,
    queued: AtomicUsize,
    cap: usize,
    open: AtomicBool,
}

impl ConnTx {
    fn new(cap: usize) -> Self {
        ConnTx {
            staged: Mutex::new(Vec::new()),
            queued: AtomicUsize::new(0),
            cap,
            open: AtomicBool::new(true),
        }
    }

    /// Stages `bytes` for the reactor to drain. Frames are staged whole or
    /// not at all, so a capacity rejection never leaves a torn frame on the
    /// wire.
    fn push(&self, bytes: &[u8]) -> Result<(), TxError> {
        if !self.open.load(Ordering::Acquire) {
            return Err(TxError::Closed);
        }
        let prev = self.queued.fetch_add(bytes.len(), Ordering::AcqRel);
        if prev + bytes.len() > self.cap {
            self.queued.fetch_sub(bytes.len(), Ordering::AcqRel);
            return Err(TxError::Full);
        }
        self.staged.lock().extend_from_slice(bytes);
        Ok(())
    }

    /// Bytes staged and not yet claimed by the reactor.
    fn queued(&self) -> usize {
        self.queued.load(Ordering::Acquire)
    }

    /// Marks the connection dead: future pushes fail with `Closed` and the
    /// reactor tears the socket down on its next pass.
    fn close(&self) {
        self.open.store(false, Ordering::Release);
    }

    fn is_open(&self) -> bool {
        self.open.load(Ordering::Acquire)
    }
}

/// Reply route for one client, reactor flavour (cf. `tcp::Route`).
#[derive(Clone)]
enum RRoute {
    /// The client is connected to this node on the given connection.
    Local(Arc<ConnTx>),
    /// The request came through this peer; send responses back that way.
    Via(NodeId),
}

/// Reconnect throttling state for one peer.
struct Backoff {
    next_attempt: Instant,
    delay: Duration,
}

/// Per-node shared state: everything the node event loop, the response
/// router, and the reactor thread all touch.
struct RNet<M> {
    me: NodeId,
    addrs: Arc<HashMap<NodeId, SocketAddr>>,
    peer_conns: Mutex<HashMap<NodeId, Arc<ConnTx>>>,
    backoff: Mutex<HashMap<NodeId, Backoff>>,
    jitter: Mutex<Rng64>,
    routes: Mutex<HashMap<ClientId, RRoute>>,
    /// Outbound dials made off the reactor thread, parked here until the
    /// reactor adopts them into its poll set.
    pending_regs: Mutex<Vec<(TcpStream, Arc<ConnTx>)>>,
    waker: crate::poll::WakePipe,
    shutdown: AtomicBool,
    drops: DropCounters,
    conns: ConnCounters,
    inbox: Sender<NodeEvent<M>>,
    _marker: std::marker::PhantomData<fn() -> M>,
}

impl<M: Serialize + DeserializeOwned + Clone + std::fmt::Debug + Send + 'static> RNet<M> {
    fn encode(env: &Envelope<M>) -> Option<Vec<u8>> {
        let mut out = Vec::with_capacity(64);
        paxi_codec::encode_frame_into(&mut out, env).ok()?;
        Some(out)
    }

    /// Best-effort framed send to a peer: stages onto the live connection,
    /// sheds under backpressure, redials (under backoff) if the link died.
    fn send_to_peer(&self, to: NodeId, bytes: &[u8]) {
        let cached = self.peer_conns.lock().get(&to).cloned();
        if let Some(tx) = cached {
            match tx.push(bytes) {
                Ok(()) => {
                    self.waker.wake();
                    return;
                }
                // Buffer full: the peer is alive but slow — shed the frame,
                // charging the loss so it never reads as mystery attrition.
                Err(TxError::Full) => {
                    self.drops.record(DropCause::Backpressure);
                    return;
                }
                // Connection died: forget it, unless another thread already
                // replaced it with a fresh one.
                Err(TxError::Closed) => {
                    let mut conns = self.peer_conns.lock();
                    if conns.get(&to).is_some_and(|cur| Arc::ptr_eq(cur, &tx)) {
                        conns.remove(&to);
                    }
                }
            }
        }
        // Frames lost while the peer link is down (dial failed, or the
        // backoff window is still closed) are reconnect-window losses.
        match self.connect_peer(to) {
            Some(tx) => {
                if tx.push(bytes).is_ok() {
                    self.waker.wake();
                } else {
                    self.drops.record(DropCause::Reconnect);
                }
            }
            None => self.drops.record(DropCause::Reconnect),
        }
    }

    /// Dials `to` unless its backoff window is still closed — identical
    /// policy to the threaded transport (exponential, jittered).
    fn connect_peer(&self, to: NodeId) -> Option<Arc<ConnTx>> {
        if let Some(b) = self.backoff.lock().get(&to) {
            if Instant::now() < b.next_attempt {
                return None;
            }
        }
        let addr = *self.addrs.get(&to)?;
        match self.try_dial(addr) {
            Some(tx) => {
                self.backoff.lock().remove(&to);
                self.peer_conns.lock().insert(to, Arc::clone(&tx));
                Some(tx)
            }
            None => {
                let mut backoff = self.backoff.lock();
                let entry = backoff.entry(to).or_insert(Backoff {
                    next_attempt: Instant::now(),
                    delay: RECONNECT_BASE,
                });
                let jitter = 0.5 + self.jitter.lock().next_f64(); // factor in [0.5, 1.5)
                entry.next_attempt = Instant::now() + entry.delay.mul_f64(jitter);
                entry.delay = (entry.delay * 2).min(RECONNECT_MAX);
                None
            }
        }
    }

    /// Forgets any cached connection (and backoff state) for a departed
    /// peer; the reactor tears the socket down on its next pass.
    fn drop_peer(&self, to: NodeId) {
        if let Some(tx) = self.peer_conns.lock().remove(&to) {
            tx.close();
            self.waker.wake();
        }
        self.backoff.lock().remove(&to);
    }

    /// Dials `addr` (blocking connect, then nonblocking forever after),
    /// stages the peer handshake, and parks the socket for the reactor.
    fn try_dial(&self, addr: SocketAddr) -> Option<Arc<ConnTx>> {
        let stream = TcpStream::connect(addr).ok()?;
        stream.set_nodelay(true).ok();
        stream.set_nonblocking(true).ok()?;
        let mut hello = Vec::new();
        paxi_codec::encode_frame_into(&mut hello, &Hello::Peer(self.me)).ok()?;
        let tx = Arc::new(ConnTx::new(OUT_BUF_CAP));
        tx.push(&hello).ok()?;
        self.conns.on_open();
        self.pending_regs.lock().push((stream, Arc::clone(&tx)));
        self.waker.wake();
        Some(tx)
    }

    fn deliver_response(&self, client: ClientId, resp: &ClientResponse) {
        let Some(route) = self.routes.lock().get(&client).cloned() else {
            // The client's connection (and its routes) are already gone.
            self.drops.record(DropCause::NoRoute);
            return;
        };
        let Some(bytes) = Self::encode(&Envelope::Response(resp.clone())) else {
            self.drops.record(DropCause::Encode);
            log_drop_once(
                &REACTOR_ENCODE_WARN,
                DropCause::Encode,
                "reactor response failed to encode",
            );
            return;
        };
        match route {
            RRoute::Local(tx) => match tx.push(&bytes) {
                Ok(()) => self.waker.wake(),
                Err(TxError::Full) => self.drops.record(DropCause::Backpressure),
                // The connection died: nobody left to deliver to.
                Err(TxError::Closed) => self.drops.record(DropCause::NoRoute),
            },
            RRoute::Via(peer) => self.send_to_peer(peer, &bytes),
        }
    }
}

/// The node's outbound half over the reactor, pluggable under [`ChaosOut`].
struct ReactorOut<M> {
    net: Arc<RNet<M>>,
}

impl<M> Clone for ReactorOut<M> {
    fn clone(&self) -> Self {
        ReactorOut {
            net: Arc::clone(&self.net),
        }
    }
}

impl<M: Serialize + DeserializeOwned + Clone + std::fmt::Debug + Send + 'static> Outbound<M>
    for ReactorOut<M>
{
    fn to_node(&self, to: NodeId, env: Envelope<M>) {
        match RNet::encode(&env) {
            Some(bytes) => self.net.send_to_peer(to, &bytes),
            None => {
                self.net.drops.record(DropCause::Encode);
                log_drop_once(
                    &REACTOR_ENCODE_WARN,
                    DropCause::Encode,
                    "reactor node->node envelope failed to encode",
                );
            }
        }
    }
    fn to_client(&self, client: ClientId, resp: ClientResponse) {
        self.net.deliver_response(client, &resp);
    }
    fn connect_peer(&self, peer: NodeId) {
        // Warm-up dial: failure just arms the backoff; the next protocol
        // message retries through the normal send path.
        let _ = self.net.connect_peer(peer);
    }
    fn disconnect_peer(&self, peer: NodeId) {
        self.net.drop_peer(peer);
    }
}

/// One connection's state inside the reactor thread.
struct ConnState {
    stream: TcpStream,
    decoder: paxi_codec::FrameDecoder,
    identity: Option<Hello>,
    tx: Arc<ConnTx>,
    /// Bytes claimed from `tx.staged` and not yet fully written.
    pending: Vec<u8>,
    pos: usize,
}

impl ConnState {
    fn new(stream: TcpStream, tx: Arc<ConnTx>) -> Self {
        ConnState {
            stream,
            decoder: paxi_codec::FrameDecoder::new(),
            identity: None,
            tx,
            pending: Vec::new(),
            pos: 0,
        }
    }

    /// Whether the reactor should poll this connection for `POLLOUT`.
    fn wants_write(&self) -> bool {
        self.pos < self.pending.len() || self.tx.queued() > 0
    }
}

/// Reads until the socket would block, feeding the frame decoder and
/// dispatching every completed frame. `Err(())` means tear the connection
/// down (EOF, I/O error, or protocol violation).
fn handle_readable<M>(c: &mut ConnState, net: &RNet<M>, buf: &mut [u8]) -> Result<(), ()>
where
    M: Serialize + DeserializeOwned + Clone + std::fmt::Debug + Send + 'static,
{
    loop {
        let n = match c.stream.read(buf) {
            Ok(0) => return Err(()),
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        };
        c.decoder.feed(&buf[..n]);
        loop {
            match c.decoder.next_frame() {
                Ok(Some(frame)) => dispatch_frame(c, net, &frame)?,
                Ok(None) => break,
                Err(_) => return Err(()),
            }
        }
        // A short read means the socket buffer is drained; go back to poll
        // rather than eating one extra WouldBlock syscall.
        if n < buf.len() {
            return Ok(());
        }
    }
}

/// Dispatches one decoded frame by the same (identity, envelope) rules as
/// the threaded reader in [`crate::tcp`].
fn dispatch_frame<M>(c: &mut ConnState, net: &RNet<M>, frame: &[u8]) -> Result<(), ()>
where
    M: Serialize + DeserializeOwned + Clone + std::fmt::Debug + Send + 'static,
{
    if c.identity.is_none() {
        let hello = paxi_codec::from_bytes::<Hello>(frame).map_err(|_| ())?;
        c.identity = Some(hello);
        return Ok(());
    }
    let env = paxi_codec::from_bytes::<Envelope<M>>(frame).map_err(|_| ())?;
    match (&c.identity, env) {
        (Some(Hello::Client(cid)), Envelope::Request(req)) => {
            net.routes
                .lock()
                .insert(*cid, RRoute::Local(Arc::clone(&c.tx)));
            let _ = net.inbox.send(NodeEvent::Wire(Envelope::Request(req)));
        }
        (Some(Hello::Peer(pid)), Envelope::Request(req)) => {
            // Forwarded request: remember the way back, unless we already
            // hold the client locally.
            let mut routes = net.routes.lock();
            match routes.get(&req.id.client) {
                Some(RRoute::Local(_)) => {}
                _ => {
                    routes.insert(req.id.client, RRoute::Via(*pid));
                }
            }
            drop(routes);
            let _ = net.inbox.send(NodeEvent::Wire(Envelope::Request(req)));
        }
        // A request before any handshake is a protocol violation.
        (None, Envelope::Request(_)) => return Err(()),
        (_, Envelope::Response(resp)) => {
            // A relayed response passing through us toward the client.
            net.deliver_response(resp.id.client, &resp);
        }
        (_, Envelope::Msg { from, msg }) => {
            let _ = net.inbox.send(NodeEvent::Wire(Envelope::Msg { from, msg }));
        }
        (_, Envelope::Shutdown) => return Err(()),
    }
    Ok(())
}

/// Writes staged bytes until the socket would block or nothing is staged.
/// The staged buffer is swapped out wholesale, so producers are never
/// blocked behind a syscall.
fn drain_write(c: &mut ConnState) -> Result<(), ()> {
    loop {
        if c.pos >= c.pending.len() {
            c.pending.clear();
            c.pos = 0;
            {
                let mut staged = c.tx.staged.lock();
                if staged.is_empty() {
                    return Ok(());
                }
                std::mem::swap(&mut *staged, &mut c.pending);
            }
            c.tx.queued.fetch_sub(c.pending.len(), Ordering::AcqRel);
        }
        match c.stream.write(&c.pending[c.pos..]) {
            Ok(0) => return Err(()),
            Ok(n) => c.pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return Err(()),
        }
    }
}

/// Tears one connection down: closes the writer handle so producers see
/// `Closed`, unhooks every route and peer slot pointing at it, closes the
/// socket, and balances the connection ledger.
fn close_conn<M>(net: &RNet<M>, c: ConnState) {
    c.tx.close();
    net.routes
        .lock()
        .retain(|_, r| !matches!(r, RRoute::Local(tx) if Arc::ptr_eq(tx, &c.tx)));
    net.peer_conns
        .lock()
        .retain(|_, tx| !Arc::ptr_eq(tx, &c.tx));
    let _ = c.stream.shutdown(std::net::Shutdown::Both);
    net.conns.on_close();
}

/// The reactor: one thread, every socket of one node.
///
/// Level-triggered `poll(2)` over the wake pipe, the listener, and all live
/// connections. The poll set is rebuilt per iteration — O(n) per tick, but
/// n entries are 8 bytes each and the rebuild is what lets write interest
/// track `wants_write` exactly with no registration bookkeeping.
fn reactor_loop<M>(listener: TcpListener, net: Arc<RNet<M>>)
where
    M: Serialize + DeserializeOwned + Clone + std::fmt::Debug + Send + 'static,
{
    let _ = listener.set_nonblocking(true);
    let mut conns: HashMap<u64, ConnState> = HashMap::new();
    let mut next_token: u64 = 0;
    let mut fds: Vec<PollFd> = Vec::new();
    let mut tokens: Vec<u64> = Vec::new();
    let mut buf = vec![0u8; READ_CHUNK];
    loop {
        if net.shutdown.load(Ordering::Acquire) {
            break;
        }
        // Adopt outbound dials parked by other threads.
        for (stream, tx) in net.pending_regs.lock().drain(..) {
            let token = next_token;
            next_token += 1;
            let mut c = ConnState::new(stream, tx);
            // Nothing arrives on a dial-out link (the remote replies over
            // its own outbound connection); pre-filling the identity keeps
            // any stray inbound frame from being misread as a handshake.
            c.identity = Some(Hello::Peer(net.me));
            conns.insert(token, c);
        }
        // Reap connections closed from outside (disconnect_peer).
        let closed: Vec<u64> = conns
            .iter()
            .filter(|(_, c)| !c.tx.is_open())
            .map(|(t, _)| *t)
            .collect();
        for t in closed {
            if let Some(c) = conns.remove(&t) {
                close_conn(&net, c);
            }
        }
        // Rebuild the poll set: wake pipe, listener, then every connection
        // with write interest tracking staged bytes exactly.
        fds.clear();
        tokens.clear();
        fds.push(PollFd::new(net.waker.read_fd(), POLLIN));
        fds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
        for (&token, c) in &conns {
            let mut ev = POLLIN;
            if c.wants_write() {
                ev |= POLLOUT;
            }
            fds.push(PollFd::new(c.stream.as_raw_fd(), ev));
            tokens.push(token);
        }
        if poll_fds(&mut fds, Some(POLL_TICK)).is_err() {
            continue;
        }
        if fds[0].returned(POLLIN) {
            net.waker.drain();
        }
        if fds[1].returned(POLLIN) {
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nodelay(true).ok();
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        net.conns.on_open();
                        let token = next_token;
                        next_token += 1;
                        let tx = Arc::new(ConnTx::new(OUT_BUF_CAP));
                        conns.insert(token, ConnState::new(stream, tx));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => break,
                }
            }
        }
        let mut dead: Vec<u64> = Vec::new();
        for (i, fd) in fds.iter().enumerate().skip(2) {
            let token = tokens[i - 2];
            let Some(c) = conns.get_mut(&token) else {
                continue;
            };
            if fd.broken() && !fd.returned(POLLIN) {
                // Pure error/hangup with nothing readable: tear down now.
                // (A hangup with data still buffered polls POLLIN too; the
                // read path consumes the tail, then sees EOF.)
                dead.push(token);
                continue;
            }
            if fd.returned(POLLIN) && handle_readable(c, &net, &mut buf).is_err() {
                dead.push(token);
                continue;
            }
            if (fd.returned(POLLOUT) || fd.broken()) && drain_write(c).is_err() {
                dead.push(token);
            }
        }
        for token in dead {
            if let Some(c) = conns.remove(&token) {
                close_conn(&net, c);
            }
        }
    }
    // Teardown: every connection still open is closed here, so the ledger
    // balances (opens == closes) after an orderly shutdown.
    for (_, c) in conns.drain() {
        close_conn(&net, c);
    }
    for (stream, tx) in net.pending_regs.lock().drain(..) {
        tx.close();
        let _ = stream.shutdown(std::net::Shutdown::Both);
        net.conns.on_close();
    }
}

/// A running reactor cluster on localhost: per node, one listener, one
/// reactor thread (all sockets), and one event-loop thread (the replica).
pub struct ReactorCluster<R: Replica> {
    addrs: Arc<HashMap<NodeId, SocketAddr>>,
    inboxes: HashMap<NodeId, Sender<NodeEvent<R::Msg>>>,
    node_handles: Vec<std::thread::JoinHandle<()>>,
    reactor_handles: Vec<std::thread::JoinHandle<()>>,
    nets: Vec<Arc<RNet<R::Msg>>>,
    next_client: AtomicU32,
    drops: DropCounters,
    conns: ConnCounters,
    _timers: Arc<TimerService>,
}

impl<R> ReactorCluster<R>
where
    R: Replica + Send + 'static,
    R::Msg: Serialize + DeserializeOwned,
{
    /// Binds one listener per node on 127.0.0.1 and starts all replicas on
    /// the reactor runtime.
    pub fn launch<F>(cluster: ClusterConfig, factory: F) -> std::io::Result<Self>
    where
        F: ReplicaFactory<R = R> + Send + Sync + 'static,
    {
        Self::launch_inner(cluster, factory, None)
    }

    /// Like [`ReactorCluster::launch`], but with fault injection applied at
    /// the node's outbound half — the same [`ChaosOut`] wrapping as the
    /// threaded TCP cluster, so per-message fates are identical for a
    /// fixed seed.
    pub fn launch_chaotic<F>(
        cluster: ClusterConfig,
        factory: F,
        injector: Arc<FaultInjector>,
    ) -> std::io::Result<Self>
    where
        F: ReplicaFactory<R = R> + Send + Sync + 'static,
    {
        Self::launch_inner(cluster, factory, Some(injector))
    }

    fn launch_inner<F>(
        cluster: ClusterConfig,
        factory: F,
        faults: Option<Arc<FaultInjector>>,
    ) -> std::io::Result<Self>
    where
        F: ReplicaFactory<R = R> + Send + Sync + 'static,
    {
        let factory = Arc::new(factory);
        let drops = DropCounters::new();
        let conns = ConnCounters::new();
        let all = cluster.all_nodes();
        let mut listeners = Vec::new();
        let mut addrs = HashMap::new();
        for &id in &all {
            let l = TcpListener::bind("127.0.0.1:0")?;
            addrs.insert(id, l.local_addr()?);
            listeners.push((id, l));
        }
        let addrs = Arc::new(addrs);
        let timers = Arc::new(TimerService::new());
        let epoch = Instant::now();
        let mut inboxes = HashMap::new();
        let mut node_handles = Vec::new();
        let mut reactor_handles = Vec::new();
        let mut nets = Vec::new();

        for (i, (id, listener)) in listeners.into_iter().enumerate() {
            let (tx, rx) = crossbeam::channel::unbounded::<NodeEvent<R::Msg>>();
            inboxes.insert(id, tx.clone());
            let net = Arc::new(RNet::<R::Msg> {
                me: id,
                addrs: Arc::clone(&addrs),
                peer_conns: Mutex::new(HashMap::new()),
                backoff: Mutex::new(HashMap::new()),
                jitter: Mutex::new(Rng64::seed(0xAC7 ^ id.pack() as u64)),
                routes: Mutex::new(HashMap::new()),
                pending_regs: Mutex::new(Vec::new()),
                waker: crate::poll::WakePipe::new()?,
                shutdown: AtomicBool::new(false),
                drops: drops.clone(),
                conns: conns.clone(),
                inbox: tx.clone(),
                _marker: std::marker::PhantomData,
            });
            nets.push(Arc::clone(&net));
            {
                let net = Arc::clone(&net);
                let handle = std::thread::Builder::new()
                    .name(format!("paxi-reactor-{}", id.pack()))
                    .spawn(move || reactor_loop(listener, net))?;
                reactor_handles.push(handle);
            }
            let replica = factory.make(id);
            let remake: Remake<R> = {
                let f = Arc::clone(&factory);
                Arc::new(move |id| f.make(id))
            };
            let peers = all.clone();
            let out = ReactorOut { net };
            let timers2 = Arc::clone(&timers);
            let faults2 = faults.clone();
            let seed = 0xFACE + i as u64;
            let handle = match &faults {
                Some(inj) => {
                    let out = ChaosOut::new(out, id, Arc::clone(inj), Arc::clone(&timers));
                    std::thread::spawn(move || {
                        run_node(
                            id,
                            replica,
                            peers,
                            rx,
                            tx,
                            out,
                            timers2,
                            epoch,
                            seed,
                            faults2,
                            Some(remake),
                        )
                    })
                }
                None => std::thread::spawn(move || {
                    run_node(
                        id, replica, peers, rx, tx, out, timers2, epoch, seed, None, None,
                    )
                }),
            };
            node_handles.push(handle);
        }
        if let Some(inj) = &faults {
            inj.start(epoch);
            inj.schedule_recoveries(&timers, &inboxes);
        }
        Ok(ReactorCluster {
            addrs,
            inboxes,
            node_handles,
            reactor_handles,
            nets,
            next_client: AtomicU32::new(0),
            drops,
            conns,
            _timers: timers,
        })
    }

    /// Per-cause ledger of every frame this cluster's nodes shed. Reactor
    /// write-buffer overflow shows up as [`DropCause::Backpressure`];
    /// `Unexplained` stays zero.
    pub fn drops(&self) -> &DropCounters {
        &self.drops
    }

    /// Connection lifecycle ledger (opens, closes, live, high-water mark)
    /// summed over every node's reactor. After [`ReactorCluster::shutdown`],
    /// `opens() == closes()`.
    pub fn conn_stats(&self) -> &ConnCounters {
        &self.conns
    }

    /// The address of a node's listener.
    pub fn addr(&self, node: NodeId) -> SocketAddr {
        self.addrs[&node]
    }

    /// Connects a pipelined client to `attach`.
    pub fn client(&self, attach: NodeId) -> std::io::Result<PipelinedClient> {
        let id = ClientId(3_000_000 + self.next_client.fetch_add(1, Ordering::Relaxed));
        PipelinedClient::connect(self.addr(attach), id)
    }

    /// Stops all node threads, then the reactors (which close every socket
    /// and balance the connection ledger).
    pub fn shutdown(mut self) {
        for tx in self.inboxes.values() {
            let _ = tx.send(NodeEvent::Wire(Envelope::Shutdown));
        }
        for h in self.node_handles.drain(..) {
            let _ = h.join();
        }
        for net in &self.nets {
            net.shutdown.store(true, Ordering::Release);
            net.waker.wake();
        }
        for h in self.reactor_handles.drain(..) {
            let _ = h.join();
        }
        // A node thread may have parked a dial between the reactor's final
        // drain and its exit; balance those here.
        for net in &self.nets {
            for (stream, tx) in net.pending_regs.lock().drain(..) {
                tx.close();
                let _ = stream.shutdown(std::net::Shutdown::Both);
                net.conns.on_close();
            }
        }
    }
}

/// A client that keeps many requests in flight on one connection.
///
/// [`PipelinedClient::submit`] writes a request and returns immediately;
/// [`PipelinedClient::await_response`] blocks for one specific reply,
/// stashing any other replies that arrive first (replies may complete out
/// of submission order when requests are forwarded between nodes). The
/// blocking [`PipelinedClient::execute`] matches [`crate::tcp::TcpClient`]'s
/// API, so routers and pools built on closures run unchanged.
pub struct PipelinedClient {
    id: ClientId,
    seq: u64,
    stream: TcpStream,
    decoder: paxi_codec::FrameDecoder,
    ready: HashMap<RequestId, ClientResponse>,
    timeout: Duration,
}

impl PipelinedClient {
    /// Connects and handshakes.
    pub fn connect(addr: SocketAddr, id: ClientId) -> std::io::Result<Self> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        // Short read slices so await_response can interleave deadline
        // checks with reads.
        stream.set_read_timeout(Some(Duration::from_millis(50)))?;
        let mut hello = Vec::new();
        paxi_codec::encode_frame_into(&mut hello, &Hello::Client(id))
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        stream.write_all(&hello)?;
        Ok(PipelinedClient {
            id,
            seq: 0,
            stream,
            decoder: paxi_codec::FrameDecoder::new(),
            ready: HashMap::new(),
            timeout: Duration::from_secs(5),
        })
    }

    /// The client id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Overrides the per-await timeout.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// Sends one command without waiting; the returned id claims the reply
    /// later via [`PipelinedClient::await_response`].
    pub fn submit(&mut self, cmd: Command) -> std::io::Result<RequestId> {
        let req_id = RequestId::new(self.id, self.seq);
        self.seq += 1;
        let env: Envelope<()> = Envelope::Request(paxi_core::ClientRequest { id: req_id, cmd });
        let mut frame = Vec::new();
        paxi_codec::encode_frame_into(&mut frame, &env)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        self.stream.write_all(&frame)?;
        Ok(req_id)
    }

    /// Blocks until the reply for `req_id` arrives (or the timeout lapses).
    /// Replies for other in-flight requests encountered on the way are
    /// stashed and claimed by their own awaits — each reply is delivered
    /// exactly once.
    pub fn await_response(&mut self, req_id: RequestId) -> Option<ClientResponse> {
        if let Some(resp) = self.ready.remove(&req_id) {
            return Some(resp);
        }
        let deadline = Instant::now() + self.timeout;
        let mut buf = [0u8; 16 * 1024];
        loop {
            while let Ok(Some(frame)) = self.decoder.next_frame() {
                if let Ok(Envelope::<()>::Response(resp)) = paxi_codec::from_bytes(&frame) {
                    if resp.id == req_id {
                        return Some(resp);
                    }
                    self.ready.insert(resp.id, resp);
                }
            }
            if let Some(resp) = self.ready.remove(&req_id) {
                return Some(resp);
            }
            if Instant::now() >= deadline {
                return None;
            }
            match self.stream.read(&mut buf) {
                Ok(0) => return None,
                Ok(n) => self.decoder.feed(&buf[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(_) => return None,
            }
        }
    }

    /// Executes one command, blocking for the matching response — the
    /// sequential API, for drop-in use where a [`crate::tcp::TcpClient`]
    /// or [`crate::SyncClient`] would go.
    pub fn execute(&mut self, cmd: Command) -> Option<ClientResponse> {
        let req_id = self.submit(cmd).ok()?;
        self.await_response(req_id)
    }

    /// Convenience: `PUT key value`.
    pub fn put(&mut self, key: u64, value: Vec<u8>) -> Option<ClientResponse> {
        self.execute(Command::put(key, value))
    }

    /// Convenience: `GET key`.
    pub fn get(&mut self, key: u64) -> Option<ClientResponse> {
        self.execute(Command::get(key))
    }
}

/// What [`run_swarm`] measured.
#[derive(Debug, Clone, Copy)]
pub struct SwarmReport {
    /// Connections requested.
    pub target_conns: usize,
    /// Connections actually established (TCP connect + handshake staged).
    pub connected: usize,
    /// Responses received across all connections.
    pub completed: u64,
    /// Wall time of the measurement loop.
    pub elapsed: Duration,
}

impl SwarmReport {
    /// Completed operations per second.
    pub fn throughput(&self) -> f64 {
        self.completed as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// One swarm connection: nonblocking socket, its own frame decoder, and a
/// staged-output cursor — the client-side mirror of the reactor's
/// per-connection state machine.
struct SwarmConn {
    stream: TcpStream,
    decoder: paxi_codec::FrameDecoder,
    out: Vec<u8>,
    pos: usize,
    seq: u64,
    id: ClientId,
}

impl SwarmConn {
    fn stage_request(&mut self) -> bool {
        let req_id = RequestId::new(self.id, self.seq);
        let key = self.seq % 128;
        self.seq += 1;
        let env: Envelope<()> = Envelope::Request(paxi_core::ClientRequest {
            id: req_id,
            cmd: Command::put(key, vec![self.seq as u8]),
        });
        paxi_codec::encode_frame_into(&mut self.out, &env).is_ok()
    }
}

/// Drives `conns` pipelined connections against one node from a single
/// thread, each keeping `window` requests in flight, for `duration`.
///
/// This is the connection-scalability load generator: with the threaded
/// runtime the server needs one thread per swarm connection, while the
/// reactor serves the whole swarm from one thread — `repro reactor`
/// reports both. Client ids start at `first_client` (keep clear of other
/// id ranges; the swarm used by the bench starts at 4,000,000).
pub fn run_swarm(
    addr: SocketAddr,
    conns: usize,
    window: usize,
    first_client: u32,
    duration: Duration,
) -> std::io::Result<SwarmReport> {
    let mut swarm: Vec<SwarmConn> = Vec::with_capacity(conns);
    for i in 0..conns {
        // Retry briefly: a localhost accept queue can overflow transiently
        // when thousands of connects arrive faster than the accept loop.
        let mut stream = None;
        for attempt in 0..40u64 {
            match TcpStream::connect(addr) {
                Ok(s) => {
                    stream = Some(s);
                    break;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5 * (attempt / 8 + 1))),
            }
        }
        let Some(stream) = stream else { continue };
        stream.set_nodelay(true).ok();
        stream.set_nonblocking(true)?;
        let id = ClientId(first_client + i as u32);
        let mut c = SwarmConn {
            stream,
            decoder: paxi_codec::FrameDecoder::new(),
            out: Vec::new(),
            pos: 0,
            seq: 0,
            id,
        };
        paxi_codec::encode_frame_into(&mut c.out, &Hello::Client(id))
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        for _ in 0..window {
            c.stage_request();
        }
        swarm.push(c);
    }
    let connected = swarm.len();

    let start = Instant::now();
    let deadline = start + duration;
    let mut completed: u64 = 0;
    let mut fds: Vec<PollFd> = Vec::new();
    let mut buf = vec![0u8; READ_CHUNK];
    while !swarm.is_empty() && Instant::now() < deadline {
        fds.clear();
        for c in &swarm {
            let mut ev = POLLIN;
            if c.pos < c.out.len() {
                ev |= POLLOUT;
            }
            fds.push(PollFd::new(c.stream.as_raw_fd(), ev));
        }
        if poll_fds(&mut fds, Some(Duration::from_millis(50))).is_err() {
            continue;
        }
        let now_past = Instant::now() >= deadline;
        let mut dead: Vec<usize> = Vec::new();
        for (i, fd) in fds.iter().enumerate() {
            let c = &mut swarm[i];
            if fd.broken() && !fd.returned(POLLIN) {
                dead.push(i);
                continue;
            }
            if fd.returned(POLLOUT) {
                match c.stream.write(&c.out[c.pos..]) {
                    Ok(0) => {
                        dead.push(i);
                        continue;
                    }
                    Ok(n) => {
                        c.pos += n;
                        if c.pos >= c.out.len() {
                            c.out.clear();
                            c.pos = 0;
                        }
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        dead.push(i);
                        continue;
                    }
                }
            }
            if fd.returned(POLLIN) {
                let drop_conn = loop {
                    match c.stream.read(&mut buf) {
                        Ok(0) => break true,
                        Ok(n) => {
                            c.decoder.feed(&buf[..n]);
                            let mut bad = false;
                            loop {
                                match c.decoder.next_frame() {
                                    Ok(Some(frame)) => {
                                        if let Ok(Envelope::<()>::Response(_)) =
                                            paxi_codec::from_bytes(&frame)
                                        {
                                            completed += 1;
                                            // Closed loop per slot: replace
                                            // each completed request until
                                            // the deadline.
                                            if !now_past {
                                                c.stage_request();
                                            }
                                        }
                                    }
                                    Ok(None) => break,
                                    Err(_) => {
                                        bad = true;
                                        break;
                                    }
                                }
                            }
                            if bad {
                                break true;
                            }
                            if n < buf.len() {
                                break false;
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break false,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                        Err(_) => break true,
                    }
                };
                if drop_conn {
                    dead.push(i);
                }
            }
        }
        // Remove dead connections back-to-front so indices stay valid.
        for &i in dead.iter().rev() {
            swarm.swap_remove(i);
        }
    }
    Ok(SwarmReport {
        target_conns: conns,
        connected,
        completed,
        elapsed: start.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxi_protocols::paxos::{paxos_cluster, PaxosConfig};

    fn bare_net(me: NodeId, addrs: HashMap<NodeId, SocketAddr>) -> RNet<()> {
        let (tx, _rx) = crossbeam::channel::unbounded::<NodeEvent<()>>();
        // Keep the inbox receiver alive forever so sends succeed.
        std::mem::forget(_rx);
        RNet {
            me,
            addrs: Arc::new(addrs),
            peer_conns: Mutex::new(HashMap::new()),
            backoff: Mutex::new(HashMap::new()),
            jitter: Mutex::new(Rng64::seed(1)),
            routes: Mutex::new(HashMap::new()),
            pending_regs: Mutex::new(Vec::new()),
            waker: crate::poll::WakePipe::new().unwrap(),
            shutdown: AtomicBool::new(false),
            drops: DropCounters::new(),
            conns: ConnCounters::new(),
            inbox: tx,
            _marker: std::marker::PhantomData,
        }
    }

    #[test]
    fn conn_tx_backpressure_rejects_whole_frames() {
        let tx = ConnTx::new(10);
        assert!(tx.push(&[0u8; 6]).is_ok());
        assert!(matches!(tx.push(&[0u8; 6]), Err(TxError::Full)));
        // The rejected frame rolled its reservation back: a smaller frame
        // that fits still goes through.
        assert!(tx.push(&[0u8; 4]).is_ok());
        assert_eq!(tx.queued(), 10);
        tx.close();
        assert!(matches!(tx.push(&[0u8; 1]), Err(TxError::Closed)));
    }

    #[test]
    fn full_write_buffer_is_charged_as_backpressure_not_silence() {
        let net = bare_net(NodeId::new(0, 0), HashMap::new());
        let tx = Arc::new(ConnTx::new(8)); // tiny: any response overflows
        let client = ClientId(77);
        net.routes.lock().insert(client, RRoute::Local(Arc::clone(&tx)));
        let resp = ClientResponse::ok(RequestId::new(client, 0), Some(vec![1, 2, 3]));
        net.deliver_response(client, &resp);
        assert_eq!(net.drops.get(DropCause::Backpressure), 1);
        // A closed connection is a vanished route, not backpressure.
        tx.close();
        net.deliver_response(client, &resp);
        assert_eq!(net.drops.get(DropCause::NoRoute), 1);
        assert_eq!(net.drops.get(DropCause::Unexplained), 0);
        assert_eq!(net.drops.total(), 2);
    }

    #[test]
    fn dead_peer_send_backs_off_and_charges_reconnect() {
        let mut addrs = HashMap::new();
        let target = NodeId::new(0, 1);
        addrs.insert(target, "127.0.0.1:1".parse().unwrap());
        let net = bare_net(NodeId::new(0, 0), addrs);
        for _ in 0..50 {
            net.send_to_peer(target, &[0u8; 8]);
        }
        let backoff = net.backoff.lock();
        let state = backoff.get(&target).expect("backoff entry");
        assert!(state.delay > RECONNECT_BASE);
        assert_eq!(net.drops.get(DropCause::Reconnect), 50);
        assert_eq!(net.drops.total(), 50, "no other cause was charged");
    }

    #[test]
    fn paxos_over_reactor_localhost() {
        let cluster = ClusterConfig::lan(3);
        let run = ReactorCluster::launch(
            cluster.clone(),
            paxos_cluster(cluster.clone(), PaxosConfig::default()),
        )
        .expect("launch");
        let mut client = run.client(NodeId::new(0, 0)).expect("connect");
        let w = client.put(1, b"reactor".to_vec()).expect("put");
        assert!(w.ok);
        let r = client.get(1).expect("get");
        assert_eq!(r.value, Some(b"reactor".to_vec()));
        // Forwarding through a follower relays replies back, as on TCP.
        let mut follower = run.client(NodeId::new(0, 2)).expect("connect follower");
        let w = follower.put(2, b"fwd".to_vec()).expect("put via follower");
        assert!(w.ok);
        let unexplained = run.drops().get(DropCause::Unexplained);
        let conns = run.conn_stats().clone();
        run.shutdown();
        assert_eq!(unexplained, 0);
        assert_eq!(
            conns.opens(),
            conns.closes(),
            "orderly shutdown closes every connection it opened"
        );
        assert!(conns.hwm() >= 2, "two clients were live at once");
    }

    #[test]
    fn pipelined_client_many_in_flight_exactly_once() {
        let cluster = ClusterConfig::lan(3);
        let run = ReactorCluster::launch(
            cluster.clone(),
            paxos_cluster(cluster.clone(), PaxosConfig::batched(8)),
        )
        .expect("launch");
        let mut client = run.client(NodeId::new(0, 0)).expect("connect");
        let n = 64u64;
        let mut ids = Vec::new();
        for i in 0..n {
            ids.push(client.submit(Command::put(i, vec![i as u8])).expect("submit"));
        }
        // Await in reverse submission order: every reply must be claimable
        // exactly once regardless of arrival order.
        let mut seen = std::collections::HashSet::new();
        for req_id in ids.iter().rev() {
            let resp = client.await_response(*req_id).expect("response");
            assert!(resp.ok);
            assert_eq!(resp.id, *req_id);
            assert!(seen.insert(resp.id), "reply delivered twice");
        }
        for i in 0..n {
            let r = client.get(i).expect("get");
            assert_eq!(r.value, Some(vec![i as u8]), "key {i}");
        }
        run.shutdown();
    }

    #[test]
    fn swarm_of_pipelined_connections_completes_work() {
        let cluster = ClusterConfig::lan(3);
        let run = ReactorCluster::launch(
            cluster.clone(),
            paxos_cluster(cluster.clone(), PaxosConfig::batched(8)),
        )
        .expect("launch");
        let report = run_swarm(
            run.addr(NodeId::new(0, 0)),
            32,
            4,
            4_000_000,
            Duration::from_millis(400),
        )
        .expect("swarm");
        assert_eq!(report.connected, 32, "all connections established");
        assert!(report.completed > 0, "swarm made progress");
        let unexplained = run.drops().get(DropCause::Unexplained);
        let conns = run.conn_stats().clone();
        run.shutdown();
        assert_eq!(unexplained, 0);
        assert_eq!(conns.opens(), conns.closes());
        assert!(conns.hwm() >= 32, "the whole swarm was live at once");
    }
}
