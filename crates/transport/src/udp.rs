//! UDP socket transport.
//!
//! Paxi supports UDP alongside TCP so protocols whose small, conflict-free
//! messages gain nothing from ordered delivery can skip TCP's congestion
//! control. Each node (and each client) owns one datagram socket; an
//! envelope is one `paxi-codec` datagram, no framing needed. Delivery is
//! best-effort: protocols built on quorums tolerate loss natively, and
//! clients retry on timeout.
//!
//! Reply routing works like the TCP transport: a node records the source
//! address of requests arriving straight from clients, and `via peer` for
//! forwarded ones, relaying responses back hop by hop.

use crate::envelope::Envelope;
use crate::faults::{ChaosOut, FaultInjector};
use crate::obs::{log_drop_once, DropCounters};
use crate::runtime::{run_node, NodeEvent, Outbound, Remake};
use crate::timer::TimerService;
use paxi_core::obs::DropCause;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use paxi_core::command::{ClientResponse, Command};
use paxi_core::config::ClusterConfig;
use paxi_core::id::{ClientId, NodeId, RequestId};
use paxi_core::traits::{Replica, ReplicaFactory};
use serde::de::DeserializeOwned;
use serde::Serialize;
use std::collections::HashMap;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Largest encoded envelope one datagram may carry. Bigger payloads cannot
/// be sent over this transport at all — they are counted and reported via
/// [`UdpCluster::dropped_oversize`], never silently truncated.
pub const MAX_DGRAM: usize = 60 * 1024;

/// Error for an envelope whose encoding exceeds [`MAX_DGRAM`]: the datagram
/// was *not* sent. Quorum protocols survive individual losses, but a
/// persistently oversized message class means the workload needs the TCP
/// transport instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OversizeDatagram {
    /// Encoded envelope size in bytes.
    pub len: usize,
    /// The transport's budget ([`MAX_DGRAM`]).
    pub max: usize,
}

impl std::fmt::Display for OversizeDatagram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "envelope of {} bytes exceeds the {} byte datagram budget", self.len, self.max)
    }
}

impl std::error::Error for OversizeDatagram {}

#[derive(Clone, Copy)]
enum Route {
    Local(SocketAddr),
    Via(NodeId),
}

/// Logged once per process when a node→node envelope fails to encode.
static SEND_ENCODE_WARN: std::sync::Once = std::sync::Once::new();
/// Logged once per process when a client response fails to encode.
static RESP_ENCODE_WARN: std::sync::Once = std::sync::Once::new();

thread_local! {
    /// Reusable encode buffer for the datagram send path. Each sending
    /// thread (a node's event loop, mostly) encodes every outbound datagram
    /// into one long-lived allocation instead of paying a fresh `Vec` per
    /// message — the UDP analogue of the TCP writer's burst buffer.
    static ENCODE_SCRATCH: std::cell::RefCell<Vec<u8>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

struct UdpNet {
    socket: UdpSocket,
    addrs: Arc<HashMap<NodeId, SocketAddr>>,
    routes: Mutex<HashMap<ClientId, Route>>,
    dropped_oversize: Arc<AtomicU64>,
    drops: DropCounters,
}

impl UdpNet {
    fn send_to_node<M: Serialize>(
        &self,
        to: NodeId,
        env: &Envelope<M>,
    ) -> Result<(), OversizeDatagram> {
        let Some(addr) = self.addrs.get(&to) else {
            self.drops.record(DropCause::NoRoute);
            return Ok(());
        };
        ENCODE_SCRATCH.with(|scratch| {
            let mut bytes = scratch.borrow_mut();
            bytes.clear();
            if paxi_codec::to_bytes_into(&mut bytes, env).is_err() {
                // Encode failures must not vanish: charge the ledger and say
                // so once — a persistently unencodable message class would
                // otherwise look like ordinary datagram loss.
                self.drops.record(DropCause::Encode);
                log_drop_once(
                    &SEND_ENCODE_WARN,
                    DropCause::Encode,
                    "UDP node->node envelope failed to encode",
                );
                return Ok(());
            }
            if bytes.len() > MAX_DGRAM {
                self.dropped_oversize.fetch_add(1, Ordering::Relaxed);
                self.drops.record(DropCause::Oversize);
                return Err(OversizeDatagram { len: bytes.len(), max: MAX_DGRAM });
            }
            let _ = self.socket.send_to(&bytes, addr);
            Ok(())
        })
    }

    fn deliver_response<M: Serialize>(&self, resp: &ClientResponse) {
        let route = self.routes.lock().get(&resp.id.client).copied();
        match route {
            Some(Route::Local(addr)) => ENCODE_SCRATCH.with(|scratch| {
                let mut bytes = scratch.borrow_mut();
                bytes.clear();
                if paxi_codec::to_bytes_into(&mut bytes, &Envelope::<()>::Response(resp.clone()))
                    .is_err()
                {
                    // Same hole as the request path: a response that cannot
                    // encode is a real loss, not a non-event.
                    self.drops.record(DropCause::Encode);
                    log_drop_once(
                        &RESP_ENCODE_WARN,
                        DropCause::Encode,
                        "UDP client response failed to encode",
                    );
                    return;
                }
                if bytes.len() > MAX_DGRAM {
                    self.dropped_oversize.fetch_add(1, Ordering::Relaxed);
                    self.drops.record(DropCause::Oversize);
                    return;
                }
                let _ = self.socket.send_to(&bytes, addr);
            }),
            Some(Route::Via(peer)) => {
                // The counter already recorded an oversize drop; the client
                // will time out and retry like any other datagram loss.
                let _ = self.send_to_node::<M>(peer, &Envelope::Response(resp.clone()));
            }
            None => {
                // No reply route on record for this client: the response has
                // nowhere to go.
                self.drops.record(DropCause::NoRoute);
            }
        }
    }
}

struct UdpOut<M> {
    net: Arc<UdpNet>,
    _marker: std::marker::PhantomData<fn() -> M>,
}

impl<M> Clone for UdpOut<M> {
    fn clone(&self) -> Self {
        UdpOut { net: Arc::clone(&self.net), _marker: std::marker::PhantomData }
    }
}

impl<M: Serialize + DeserializeOwned + Clone + std::fmt::Debug + Send + 'static> Outbound<M>
    for UdpOut<M>
{
    fn to_node(&self, to: NodeId, env: Envelope<M>) {
        // Outbound is fire-and-forget; the oversize counter keeps the error
        // observable ([`UdpCluster::dropped_oversize`]).
        let _ = self.net.send_to_node(to, &env);
    }
    fn to_client(&self, _client: ClientId, resp: ClientResponse) {
        self.net.deliver_response::<M>(&resp);
    }
}

/// A running UDP cluster on localhost.
pub struct UdpCluster<R: Replica> {
    addrs: Arc<HashMap<NodeId, SocketAddr>>,
    inboxes: HashMap<NodeId, Sender<NodeEvent<R::Msg>>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    next_client: AtomicU32,
    dropped_oversize: Arc<AtomicU64>,
    drops: DropCounters,
    _timers: Arc<TimerService>,
}

impl<R> UdpCluster<R>
where
    R: Replica + Send + 'static,
    R::Msg: Serialize + DeserializeOwned,
{
    /// Binds one UDP socket per node and starts all replicas.
    pub fn launch<F>(cluster: ClusterConfig, factory: F) -> std::io::Result<Self>
    where
        F: ReplicaFactory<R = R> + Send + Sync + 'static,
    {
        Self::launch_inner(cluster, factory, None)
    }

    /// Like [`UdpCluster::launch`], but with fault injection applied inside
    /// the transport: node→node datagrams pass through the injector's plan
    /// (Drop / Flaky / Slow) and crashed nodes freeze until their windows
    /// end, measured from this call.
    pub fn launch_chaotic<F>(
        cluster: ClusterConfig,
        factory: F,
        injector: Arc<FaultInjector>,
    ) -> std::io::Result<Self>
    where
        F: ReplicaFactory<R = R> + Send + Sync + 'static,
    {
        Self::launch_inner(cluster, factory, Some(injector))
    }

    fn launch_inner<F>(
        cluster: ClusterConfig,
        factory: F,
        faults: Option<Arc<FaultInjector>>,
    ) -> std::io::Result<Self>
    where
        F: ReplicaFactory<R = R> + Send + Sync + 'static,
    {
        let factory = Arc::new(factory);
        let dropped_oversize = Arc::new(AtomicU64::new(0));
        let drops = DropCounters::new();
        let all = cluster.all_nodes();
        let mut sockets = Vec::new();
        let mut addrs = HashMap::new();
        for &id in &all {
            let s = UdpSocket::bind("127.0.0.1:0")?;
            addrs.insert(id, s.local_addr()?);
            sockets.push((id, s));
        }
        let addrs = Arc::new(addrs);
        // Reverse map for identifying peer datagrams.
        let peer_by_addr: Arc<HashMap<SocketAddr, NodeId>> =
            Arc::new(addrs.iter().map(|(&n, &a)| (a, n)).collect());
        let timers = Arc::new(TimerService::new());
        let epoch = Instant::now();
        let mut inboxes = HashMap::new();
        let mut handles = Vec::new();

        for (i, (id, socket)) in sockets.into_iter().enumerate() {
            let (tx, rx) = unbounded::<NodeEvent<R::Msg>>();
            inboxes.insert(id, tx.clone());
            let net = Arc::new(UdpNet {
                socket: socket.try_clone()?,
                addrs: Arc::clone(&addrs),
                routes: Mutex::new(HashMap::new()),
                dropped_oversize: Arc::clone(&dropped_oversize),
                drops: drops.clone(),
            });
            // Receiver thread.
            {
                let net = Arc::clone(&net);
                let inbox = tx.clone();
                let peer_by_addr = Arc::clone(&peer_by_addr);
                std::thread::spawn(move || {
                    let mut buf = vec![0u8; MAX_DGRAM];
                    loop {
                        let Ok((n, src)) = socket.recv_from(&mut buf) else { return };
                        let Ok(env) = paxi_codec::from_bytes::<Envelope<R::Msg>>(&buf[..n]) else {
                            continue;
                        };
                        match env {
                            Envelope::Request(req) => {
                                let route = match peer_by_addr.get(&src) {
                                    Some(&peer) => Route::Via(peer),
                                    None => Route::Local(src),
                                };
                                let mut routes = net.routes.lock();
                                match (routes.get(&req.id.client), &route) {
                                    (Some(Route::Local(_)), Route::Via(_)) => {}
                                    _ => {
                                        routes.insert(req.id.client, route);
                                    }
                                }
                                drop(routes);
                                let _ = inbox.send(NodeEvent::Wire(Envelope::Request(req)));
                            }
                            Envelope::Response(resp) => net.deliver_response::<R::Msg>(&resp),
                            Envelope::Msg { from, msg } => {
                                let _ = inbox.send(NodeEvent::Wire(Envelope::Msg { from, msg }));
                            }
                            Envelope::Shutdown => return,
                        }
                    }
                });
            }
            let replica = factory.make(id);
            let remake: Remake<R> = {
                let f = Arc::clone(&factory);
                Arc::new(move |id| f.make(id))
            };
            let peers = all.clone();
            let out = UdpOut::<R::Msg> { net, _marker: std::marker::PhantomData };
            let timers2 = Arc::clone(&timers);
            let faults2 = faults.clone();
            let seed = 0xD06 + i as u64;
            let handle = match &faults {
                Some(inj) => {
                    let out = ChaosOut::new(out, id, Arc::clone(inj), Arc::clone(&timers));
                    std::thread::spawn(move || {
                        run_node(
                            id,
                            replica,
                            peers,
                            rx,
                            tx,
                            out,
                            timers2,
                            epoch,
                            seed,
                            faults2,
                            Some(remake),
                        )
                    })
                }
                None => std::thread::spawn(move || {
                    run_node(id, replica, peers, rx, tx, out, timers2, epoch, seed, None, None)
                }),
            };
            handles.push(handle);
        }
        if let Some(inj) = &faults {
            inj.start(epoch);
            inj.schedule_recoveries(&timers, &inboxes);
        }
        Ok(UdpCluster {
            addrs,
            inboxes,
            handles,
            next_client: AtomicU32::new(0),
            dropped_oversize,
            drops,
            _timers: timers,
        })
    }

    /// Number of envelopes this cluster refused to send because their
    /// encoding exceeded [`MAX_DGRAM`]. Nonzero means the workload's message
    /// class does not fit UDP — switch to the TCP transport.
    pub fn dropped_oversize(&self) -> u64 {
        self.dropped_oversize.load(Ordering::Relaxed)
    }

    /// Per-cause ledger of every envelope this cluster's sockets dropped
    /// (encode failures, oversize datagrams, missing reply routes).
    /// Fault-injected link and crash drops are charged to the
    /// [`FaultInjector`]'s own counters instead.
    pub fn drops(&self) -> &DropCounters {
        &self.drops
    }

    /// The address of a node's socket.
    pub fn addr(&self, node: NodeId) -> SocketAddr {
        self.addrs[&node]
    }

    /// Creates a UDP client attached to `attach`.
    pub fn client(&self, attach: NodeId) -> std::io::Result<UdpClient> {
        let id = ClientId(2_000_000 + self.next_client.fetch_add(1, Ordering::Relaxed));
        UdpClient::connect(self.addr(attach), id)
    }

    /// Stops all node threads (receiver threads die with the process).
    pub fn shutdown(mut self) {
        for tx in self.inboxes.values() {
            let _ = tx.send(NodeEvent::Wire(Envelope::Shutdown));
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A blocking UDP client with timeout + retry (datagrams may drop).
pub struct UdpClient {
    id: ClientId,
    seq: u64,
    socket: UdpSocket,
    server: SocketAddr,
    timeout: Duration,
    retries: u32,
}

impl UdpClient {
    /// Binds a client socket targeting `server`.
    pub fn connect(server: SocketAddr, id: ClientId) -> std::io::Result<Self> {
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.set_read_timeout(Some(Duration::from_millis(500)))?;
        Ok(UdpClient { id, seq: 0, socket, server, timeout: Duration::from_millis(500), retries: 6 })
    }

    /// The client id.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Executes one command; retransmits on timeout (idempotent at the
    /// protocol layer only for reads — production systems add request
    /// deduplication, which the in-scope experiments don't need).
    pub fn execute(&mut self, cmd: Command) -> Option<ClientResponse> {
        let req_id = RequestId::new(self.id, self.seq);
        self.seq += 1;
        let env: Envelope<()> =
            Envelope::Request(paxi_core::ClientRequest { id: req_id, cmd });
        let bytes = paxi_codec::to_bytes(&env).ok()?;
        let mut buf = vec![0u8; MAX_DGRAM];
        for _ in 0..self.retries {
            let _ = self.socket.send_to(&bytes, self.server);
            let deadline = Instant::now() + self.timeout;
            while Instant::now() < deadline {
                match self.socket.recv_from(&mut buf) {
                    Ok((n, _)) => {
                        if let Ok(Envelope::<()>::Response(resp)) =
                            paxi_codec::from_bytes(&buf[..n])
                        {
                            if resp.id == req_id {
                                return Some(resp);
                            }
                        }
                    }
                    Err(_) => break,
                }
            }
        }
        None
    }

    /// Convenience: `PUT key value`.
    pub fn put(&mut self, key: u64, value: Vec<u8>) -> Option<ClientResponse> {
        self.execute(Command::put(key, value))
    }

    /// Convenience: `GET key`.
    pub fn get(&mut self, key: u64) -> Option<ClientResponse> {
        self.execute(Command::get(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxi_protocols::paxos::{paxos_cluster, PaxosConfig};

    #[test]
    fn paxos_over_udp_localhost() {
        let cluster = ClusterConfig::lan(3);
        let run = UdpCluster::launch(
            cluster.clone(),
            paxos_cluster(cluster.clone(), PaxosConfig::default()),
        )
        .expect("launch");
        let mut client = run.client(NodeId::new(0, 0)).expect("client");
        let w = client.put(9, b"udp".to_vec()).expect("put");
        assert!(w.ok);
        let r = client.get(9).expect("get");
        assert_eq!(r.value, Some(b"udp".to_vec()));
        run.shutdown();
    }

    #[test]
    fn oversize_datagrams_error_and_count_instead_of_silently_dropping() {
        let a = UdpSocket::bind("127.0.0.1:0").expect("bind");
        let b = UdpSocket::bind("127.0.0.1:0").expect("bind");
        let peer = NodeId::new(0, 1);
        let counter = Arc::new(AtomicU64::new(0));
        let net = UdpNet {
            socket: a,
            addrs: Arc::new([(peer, b.local_addr().unwrap())].into_iter().collect()),
            routes: Mutex::new(HashMap::new()),
            dropped_oversize: Arc::clone(&counter),
            drops: DropCounters::new(),
        };
        let small: Envelope<()> = Envelope::Request(paxi_core::ClientRequest {
            id: RequestId::new(ClientId(0), 0),
            cmd: Command::put(1, vec![0; 64]),
        });
        assert_eq!(net.send_to_node(peer, &small), Ok(()));
        let big: Envelope<()> = Envelope::Request(paxi_core::ClientRequest {
            id: RequestId::new(ClientId(0), 1),
            cmd: Command::put(1, vec![0; MAX_DGRAM + 1]),
        });
        let err = net.send_to_node(peer, &big).expect_err("oversize must error");
        assert!(err.len > MAX_DGRAM);
        assert_eq!(err.max, MAX_DGRAM);
        assert_eq!(counter.load(Ordering::Relaxed), 1, "the drop is counted");
        assert_eq!(net.drops.get(DropCause::Oversize), 1, "and charged to the cause ledger");
        assert_eq!(net.drops.get(DropCause::Encode), 0);
    }

    #[test]
    fn udp_forwarding_via_follower() {
        let cluster = ClusterConfig::lan(3);
        let run = UdpCluster::launch(
            cluster.clone(),
            paxos_cluster(cluster.clone(), PaxosConfig::default()),
        )
        .expect("launch");
        let mut client = run.client(NodeId::new(0, 1)).expect("client");
        for i in 0..5u64 {
            assert!(client.put(i, vec![i as u8]).expect("put").ok);
        }
        assert_eq!(client.get(3).expect("get").value, Some(vec![3]));
        run.shutdown();
    }
}
