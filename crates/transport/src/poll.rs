//! Minimal `poll(2)` wrapper for the reactor transport.
//!
//! The offline dependency set carries neither `mio` nor the `libc` crate, so
//! the readiness loop binds the one syscall it needs directly: `poll` is in
//! POSIX libc, which the Rust standard library already links on every unix
//! target. The wrapper stays deliberately tiny — a `#[repr(C)]` pollfd, the
//! event bit constants, and an EINTR-retrying safe call — and is the only
//! unsafe code in the crate.
//!
//! [`WakePipe`] rides on `std`'s `UnixStream::pair`: one end lives in the
//! reactor's poll set, the other is written by any thread that wants the
//! loop to wake early (new registrations, freshly staged outbound bytes,
//! shutdown). A pending flag keeps redundant wakes to one byte.

use std::io::{Read, Write};
use std::os::unix::io::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Readable readiness (or a readable hangup payload).
pub const POLLIN: i16 = 0x001;
/// Writable readiness.
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// The fd is invalid (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of the poll set, layout-compatible with C's `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch.
    pub fd: RawFd,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Returned events, filled by the kernel.
    pub revents: i16,
}

impl PollFd {
    /// A poll entry watching `fd` for `events`.
    pub fn new(fd: RawFd, events: i16) -> Self {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether any of `mask`'s bits came back in `revents`.
    pub fn returned(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }

    /// Whether the kernel flagged the fd as broken (error, hangup, or
    /// invalid) — the connection should be torn down.
    pub fn broken(&self) -> bool {
        self.returned(POLLERR | POLLHUP | POLLNVAL)
    }
}

extern "C" {
    // POSIX: int poll(struct pollfd *fds, nfds_t nfds, int timeout);
    // nfds_t is unsigned long on the targets we build for.
    fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: std::ffi::c_int) -> std::ffi::c_int;
}

/// Blocks until at least one entry is ready or `timeout` elapses. Returns
/// the number of entries with nonzero `revents` (0 on timeout). `EINTR` is
/// retried internally; any other error is returned.
pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> std::io::Result<usize> {
    let timeout_ms: std::ffi::c_int = match timeout {
        // Round up so a 100µs timeout doesn't spin as 0ms.
        Some(t) => t.as_millis().min(i32::MAX as u128).max(1) as std::ffi::c_int,
        None => -1,
    };
    loop {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd-layout entries and the length is its true
        // length; the kernel only writes `revents` within the slice.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = std::io::Error::last_os_error();
        if err.kind() == std::io::ErrorKind::Interrupted {
            continue;
        }
        return Err(err);
    }
}

/// A self-pipe that lets any thread wake a blocked [`poll_fds`] call.
///
/// Cloning shares the same pipe; the `pending` flag coalesces bursts of
/// wakes into a single byte so a hot sender cannot fill the pipe.
#[derive(Clone)]
pub struct WakePipe {
    reader: Arc<UnixStream>,
    writer: Arc<UnixStream>,
    pending: Arc<AtomicBool>,
}

impl WakePipe {
    /// Builds the pipe; both ends are nonblocking.
    pub fn new() -> std::io::Result<Self> {
        let (reader, writer) = UnixStream::pair()?;
        reader.set_nonblocking(true)?;
        writer.set_nonblocking(true)?;
        Ok(WakePipe {
            reader: Arc::new(reader),
            writer: Arc::new(writer),
            pending: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The fd the reactor adds to its poll set (watch with [`POLLIN`]).
    pub fn read_fd(&self) -> RawFd {
        self.reader.as_raw_fd()
    }

    /// Wakes the poller (no-op if a wake is already pending).
    pub fn wake(&self) {
        if self.pending.swap(true, Ordering::AcqRel) {
            return;
        }
        let _ = (&*self.writer).write(&[1u8]);
    }

    /// Drains the pipe and clears the pending flag. The reactor calls this
    /// when the read end polls readable, *before* consuming the work the
    /// wake advertised, so a wake racing the drain is never lost.
    pub fn drain(&self) {
        self.pending.store(false, Ordering::Release);
        let mut buf = [0u8; 64];
        while matches!((&*self.reader).read(&mut buf), Ok(n) if n > 0) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn poll_times_out_with_nothing_ready() {
        let pipe = WakePipe::new().unwrap();
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0);
        assert!(!fds[0].returned(POLLIN));
    }

    #[test]
    fn wake_makes_poll_return_and_drain_resets() {
        let pipe = WakePipe::new().unwrap();
        pipe.wake();
        pipe.wake(); // coalesced: still one byte in the pipe
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].returned(POLLIN));
        pipe.drain();
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        let n = poll_fds(&mut fds, Some(Duration::from_millis(10))).unwrap();
        assert_eq!(n, 0, "drained pipe polls idle");
        // And wakes again after the drain.
        pipe.wake();
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap(), 1);
    }

    #[test]
    fn pollout_reports_writable_socket_and_pollin_tracks_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        client.set_nonblocking(true).unwrap();
        let (server, _) = listener.accept().unwrap();

        // A fresh socket with an empty send buffer is writable, not readable.
        let mut fds = [PollFd::new(client.as_raw_fd(), POLLIN | POLLOUT)];
        poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert!(fds[0].returned(POLLOUT));
        assert!(!fds[0].returned(POLLIN));

        // After the server sends, the client polls readable.
        use std::io::Write as _;
        (&server).write_all(b"x").unwrap();
        let mut fds = [PollFd::new(client.as_raw_fd(), POLLIN)];
        poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert!(fds[0].returned(POLLIN));

        // A hangup on the peer is surfaced via revents.
        drop(server);
        let mut fds = [PollFd::new(client.as_raw_fd(), POLLIN)];
        poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert!(fds[0].returned(POLLIN) || fds[0].broken());
    }
}
