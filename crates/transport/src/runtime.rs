//! The shared node event loop for wall-clock runtimes.
//!
//! Every transport (in-process channels, TCP, UDP) funnels inbound traffic
//! into a per-node inbox; [`run_node`] drains the inbox on the node's own
//! thread, invoking the replica's handlers with a [`paxi_core::traits::Context`]
//! backed by the transport's [`Outbound`] half and the shared
//! [`crate::timer::TimerService`]. Handlers are strictly serial per node, the
//! same execution model as the simulator, so replica code runs unchanged.

use crate::envelope::Envelope;
use crate::faults::FaultInjector;
use crate::timer::TimerService;
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use paxi_core::command::{ClientRequest, ClientResponse};
use paxi_core::dist::Rng64;
use paxi_core::faults::CrashMode;
use paxi_core::id::{ClientId, NodeId};
use paxi_core::time::Nanos;
use paxi_core::traits::{Context, Replica};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared replica rebuilder used for [`CrashMode::Amnesia`] recovery: builds
/// a fresh replica for a node id, attaching durable storage so construction
/// replays the WAL. Cluster constructors derive one from the launch factory.
pub type Remake<R> = Arc<dyn Fn(NodeId) -> R + Send + Sync>;

/// How long the event loop waits before giving the replica a storage tick.
/// Bounds how far a batch fsync policy's interval can overshoot on a quiet
/// node; an idle tick on a replica with nothing buffered is a no-op.
const SYNC_TICK: Duration = Duration::from_millis(1);

/// Timer event injected back into a node inbox.
#[derive(Debug, Clone)]
pub enum NodeEvent<M> {
    /// Wire traffic.
    Wire(Envelope<M>),
    /// A timer armed by the replica fired.
    Timer {
        /// Timer kind as passed to `set_timer`.
        kind: u64,
        /// Token returned by `set_timer`.
        token: u64,
    },
    /// Wake-up injected at a crash-recovery instant (fault injection): it
    /// carries no payload — its arrival gives a thawed node a chance to run
    /// its restart hook even if no peer ever contacts it.
    Restart,
}

/// The transport-specific outbound half: how a node reaches peers and
/// clients.
pub trait Outbound<M>: Send + 'static {
    /// Delivers an envelope to a peer node (best effort).
    fn to_node(&self, to: NodeId, env: Envelope<M>);
    /// Delivers a response to a client (best effort).
    fn to_client(&self, client: ClientId, resp: ClientResponse);
    /// Proactively establishes (or re-establishes) a link to `peer`. The
    /// event loop calls this when a reconfiguration activates a new member
    /// and when an amnesiac node rejoins, so the first protocol message
    /// doesn't eat the dial latency. Default no-op — in-process transports
    /// and lazily-dialing ones need no warm-up.
    fn connect_peer(&self, peer: NodeId) {
        let _ = peer;
    }
    /// Tears down any cached link to a departed peer so its writer-side
    /// resources are reclaimed. Default no-op.
    fn disconnect_peer(&self, peer: NodeId) {
        let _ = peer;
    }
}

/// Reconciles the runtime's live peer set with the replica's current view
/// of the membership: newly active members get links warmed
/// ([`Outbound::connect_peer`]), departed ones get theirs torn down
/// ([`Outbound::disconnect_peer`]), and the broadcast set follows. A
/// replica whose [`Replica::current_members`] returns `None` (static
/// membership) keeps its startup peer set untouched.
fn sync_peers<R: Replica, O: Outbound<R::Msg>>(replica: &R, peers: &mut Vec<NodeId>, out: &O) {
    let Some(mut members) = replica.current_members() else {
        return;
    };
    members.sort_unstable();
    members.dedup();
    if members == *peers {
        return;
    }
    for p in members.iter().filter(|p| !peers.contains(p)) {
        out.connect_peer(*p);
    }
    for p in peers.iter().filter(|p| !members.contains(p)) {
        out.disconnect_peer(*p);
    }
    *peers = members;
}

struct ThreadCtx<'a, M, O: Outbound<M>> {
    id: NodeId,
    peers: &'a [NodeId],
    out: &'a O,
    inbox_tx: &'a Sender<NodeEvent<M>>,
    timers: &'a TimerService,
    epoch: Instant,
    token_counter: &'a AtomicU64,
    rng: &'a mut Rng64,
}

impl<M: Clone + std::fmt::Debug + Send + 'static, O: Outbound<M>> Context<M>
    for ThreadCtx<'_, M, O>
{
    fn id(&self) -> NodeId {
        self.id
    }
    fn now(&self) -> Nanos {
        Nanos(self.epoch.elapsed().as_nanos() as u64)
    }
    fn send(&mut self, to: NodeId, msg: M) {
        if to == self.id {
            let _ = self
                .inbox_tx
                .send(NodeEvent::Wire(Envelope::Msg { from: self.id, msg }));
        } else {
            self.out.to_node(to, Envelope::Msg { from: self.id, msg });
        }
    }
    fn broadcast(&mut self, msg: M) {
        for &p in self.peers {
            if p != self.id {
                self.out.to_node(
                    p,
                    Envelope::Msg {
                        from: self.id,
                        msg: msg.clone(),
                    },
                );
            }
        }
    }
    fn multicast(&mut self, to: &[NodeId], msg: M) {
        for &p in to {
            if p == self.id {
                let _ = self.inbox_tx.send(NodeEvent::Wire(Envelope::Msg {
                    from: self.id,
                    msg: msg.clone(),
                }));
            } else {
                self.out.to_node(
                    p,
                    Envelope::Msg {
                        from: self.id,
                        msg: msg.clone(),
                    },
                );
            }
        }
    }
    fn set_timer(&mut self, after: Nanos, kind: u64) -> u64 {
        let token = self.token_counter.fetch_add(1, Ordering::Relaxed) + 1;
        let tx = self.inbox_tx.clone();
        self.timers
            .schedule(Duration::from_nanos(after.0), move || {
                let _ = tx.send(NodeEvent::Timer { kind, token });
            });
        token
    }
    fn reply(&mut self, resp: ClientResponse) {
        self.out.to_client(resp.id.client, resp);
    }
    fn forward(&mut self, to: NodeId, req: ClientRequest) {
        if to == self.id {
            let _ = self.inbox_tx.send(NodeEvent::Wire(Envelope::Request(req)));
        } else {
            self.out.to_node(to, Envelope::Request(req));
        }
    }
    fn rand_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

/// Drives one replica until a [`Envelope::Shutdown`] arrives. Call on a
/// dedicated thread.
///
/// When a [`FaultInjector`] is supplied, the loop enforces crash semantics
/// exactly like the simulator: while the node's crash window is active every
/// event addressed to it (messages, requests, timers) is silently discarded;
/// on the first event after thawing, the window's [`CrashMode`] decides what
/// happens before normal dispatch resumes. [`CrashMode::Freeze`] runs
/// [`Replica::on_restart`] on the retained replica. [`CrashMode::Amnesia`]
/// discards the replica, rebuilds it via `remake` (whose storage attachment
/// replays the WAL) and runs [`Replica::on_recover`]; without a `remake`
/// closure amnesia degenerates to freeze semantics — the runtime cannot
/// pretend volatile state was lost while still holding it.
/// [`Envelope::Shutdown`] is always honored, crashed or not.
#[allow(clippy::too_many_arguments)]
pub fn run_node<R: Replica, O: Outbound<R::Msg>>(
    id: NodeId,
    mut replica: R,
    mut peers: Vec<NodeId>,
    inbox: Receiver<NodeEvent<R::Msg>>,
    inbox_tx: Sender<NodeEvent<R::Msg>>,
    out: O,
    timers: Arc<TimerService>,
    epoch: Instant,
    seed: u64,
    faults: Option<Arc<FaultInjector>>,
    remake: Option<Remake<R>>,
) {
    let token_counter = AtomicU64::new(0);
    let mut rng = Rng64::seed(seed);
    {
        let mut ctx = ThreadCtx {
            id,
            peers: &peers,
            out: &out,
            inbox_tx: &inbox_tx,
            timers: &timers,
            epoch,
            token_counter: &token_counter,
            rng: &mut rng,
        };
        replica.on_start(&mut ctx);
    }
    sync_peers(&replica, &mut peers, &out);
    let mut frozen: Option<CrashMode> = None;
    loop {
        // A bounded wait instead of a blocking recv: on timeout the replica
        // gets a storage tick, so a batch fsync policy's interval bound is
        // honored even while the node is quiet (no append to piggyback the
        // deadline check on).
        let ev = match inbox.recv_timeout(SYNC_TICK) {
            Ok(ev) => Some(ev),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        if let Some(inj) = &faults {
            if inj.is_crashed(id) {
                if matches!(ev, Some(NodeEvent::Wire(Envelope::Shutdown))) {
                    break;
                }
                // Wire traffic discarded by a frozen node is a real loss the
                // cluster must account for; timers and restart wake-ups are
                // not messages, so they don't enter the drop ledger.
                if matches!(
                    ev,
                    Some(NodeEvent::Wire(Envelope::Msg { .. }))
                        | Some(NodeEvent::Wire(Envelope::Request(_)))
                ) {
                    inj.drops().record(paxi_core::obs::DropCause::Crashed);
                }
                // Record the window's mode while it is still queryable: by
                // thaw time the window no longer covers the clock.
                if frozen.is_none() {
                    frozen = Some(inj.crash_mode(id).unwrap_or_default());
                }
                continue;
            }
        }
        let Some(ev) = ev else {
            // Don't touch a thawed-but-not-yet-recovered replica: recovery
            // runs on the next real event, exactly as before.
            if frozen.is_none() {
                replica.sync_storage();
            }
            continue;
        };
        let mut ctx = ThreadCtx {
            id,
            peers: &peers,
            out: &out,
            inbox_tx: &inbox_tx,
            timers: &timers,
            epoch,
            token_counter: &token_counter,
            rng: &mut rng,
        };
        match frozen.take() {
            Some(CrashMode::Freeze) => replica.on_restart(&mut ctx),
            Some(CrashMode::Amnesia) => {
                if let Some(mk) = &remake {
                    replica = mk(id);
                }
                replica.on_recover(&mut ctx);
                // An amnesiac node's transport may have dropped its links
                // while it was dark (peers tore down dead connections); warm
                // them again so recovery traffic doesn't eat dial latency.
                for &p in ctx.peers.iter().filter(|&&p| p != id) {
                    out.connect_peer(p);
                }
            }
            None => {}
        }
        match ev {
            NodeEvent::Wire(Envelope::Msg { from, msg }) => replica.on_message(from, msg, &mut ctx),
            NodeEvent::Wire(Envelope::Request(req)) => replica.on_request(req, &mut ctx),
            NodeEvent::Wire(Envelope::Response(_)) => {}
            NodeEvent::Wire(Envelope::Shutdown) => break,
            NodeEvent::Timer { kind, token } => replica.on_timer(kind, token, &mut ctx),
            NodeEvent::Restart => {}
        }
        // A handled event may have activated a configuration; reconcile the
        // live link set with the replica's membership view before the next
        // recv so activation-time joins get warm links immediately.
        sync_peers(&replica, &mut peers, &out);
    }
}
