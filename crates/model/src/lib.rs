//! # paxi-model
//!
//! The analytic half of the paper: queueing-theory performance models for
//! strongly-consistent replication protocols, the distilled load/latency
//! formulas, and the protocol-selection advisor.
//!
//! The paper publishes these models as Python scripts; this crate is their
//! Rust equivalent, kept API-compatible with the rest of the workspace so
//! the benchmark harness can overlay model predictions on simulator
//! measurements (the paper's cross-validation methodology).
//!
//! * [`queueing`] — M/M/1, M/D/1, M/G/1, G/G/1 queue-wait estimates (Table 1).
//! * [`orderstat`] — k-order statistics for quorum waits (§3.3).
//! * [`params`] — Table 2 model parameters and deployment presets.
//! * [`protocols`] — per-protocol latency/throughput models (Figures 8, 10, 12).
//! * [`formulas`] — Formulas 1–7: load, capacity, and latency closed forms (§6).
//! * [`advisor`] — the Figure 14 protocol-selection flowchart.
//! * [`messages`] — exact per-commit message complexity at the coordinator,
//!   cross-checked against observed metrics (§2).

#![warn(missing_docs)]

pub mod advisor;
pub mod formulas;
pub mod messages;
pub mod orderstat;
pub mod params;
pub mod protocols;
pub mod queueing;

pub use advisor::{recommend, Answers, Recommendation};
pub use messages::{epaxos_leader_fast, paxos_leader, raft_leader, MsgComplexity};
pub use params::{CostParams, Deployment};
pub use protocols::{EPaxosModel, PaxosModel, PerfModel, WPaxosModel, WanKeeperModel};
pub use queueing::{max_throughput, utilization, wait_time, QueueKind};
