//! Model parameters (paper Table 2).
//!
//! A [`Deployment`] bundles everything the analytic models need: cluster
//! shape, per-zone-pair RTTs, and per-message processing costs. Units are
//! seconds internally; RTTs are specified in milliseconds for readability.

use serde::{Deserialize, Serialize};

/// Per-message processing costs (matching `paxi_sim::CostModel` defaults so
/// the model and simulator cross-validate).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostParams {
    /// CPU time to process one incoming message, seconds (`ti`).
    pub ti: f64,
    /// CPU time to serialize one outgoing message, seconds (`to`).
    pub to: f64,
    /// Message size in bytes (`sm`).
    pub msg_bytes: f64,
    /// NIC bandwidth, bits per second (`b`).
    pub bandwidth_bps: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams { ti: 10e-6, to: 5e-6, msg_bytes: 128.0, bandwidth_bps: 1e9 }
    }
}

impl CostParams {
    /// NIC transmission time for one message, seconds.
    pub fn nic(&self) -> f64 {
        self.msg_bytes * 8.0 / self.bandwidth_bps
    }

    /// The paper's Paxos round service time at the leader:
    /// `ts = 2·to + N·ti + 2N·sm/b`.
    pub fn paxos_service_time(&self, n: usize) -> f64 {
        2.0 * self.to + n as f64 * self.ti + 2.0 * n as f64 * self.msg_bytes * 8.0 / self.bandwidth_bps
    }
}

/// The modeled deployment: zones, nodes, inter-zone RTTs, costs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Deployment {
    /// Number of zones.
    pub zones: usize,
    /// Nodes per zone.
    pub per_zone: usize,
    /// Symmetric mean RTT matrix in ms; diagonal = intra-zone LAN RTT.
    pub rtt_ms: Vec<Vec<f64>>,
    /// Standard deviation of the intra-zone RTT, ms (for order statistics).
    pub lan_std_ms: f64,
    /// Message processing costs.
    pub cost: CostParams,
}

/// Paper-calibrated LAN RTT mean (ms).
pub const LAN_RTT_MS: f64 = 0.4271;
/// Paper-calibrated LAN RTT standard deviation (ms).
pub const LAN_STD_MS: f64 = 0.0476;

impl Deployment {
    /// Single-zone LAN of `n` nodes with the paper's AWS-calibrated RTT.
    pub fn lan(n: usize) -> Self {
        Deployment {
            zones: 1,
            per_zone: n,
            rtt_ms: vec![vec![LAN_RTT_MS]],
            lan_std_ms: LAN_STD_MS,
            cost: CostParams::default(),
        }
    }

    /// The paper's five-region WAN (VA, OH, CA, IR, JP) with `per_zone`
    /// nodes per region.
    pub fn aws5(per_zone: usize) -> Self {
        let lan = LAN_RTT_MS;
        Deployment {
            zones: 5,
            per_zone,
            rtt_ms: vec![
                vec![lan, 11.0, 61.0, 75.0, 162.0],
                vec![11.0, lan, 50.0, 86.0, 156.0],
                vec![61.0, 50.0, lan, 138.0, 102.0],
                vec![75.0, 86.0, 138.0, lan, 220.0],
                vec![162.0, 156.0, 102.0, 220.0, lan],
            ],
            lan_std_ms: LAN_STD_MS,
            cost: CostParams::default(),
        }
    }

    /// Three-region subset (VA, OH, CA).
    pub fn aws3(per_zone: usize) -> Self {
        let five = Self::aws5(per_zone);
        Deployment {
            zones: 3,
            per_zone,
            rtt_ms: (0..3).map(|a| (0..3).map(|b| five.rtt_ms[a][b]).collect()).collect(),
            lan_std_ms: LAN_STD_MS,
            cost: CostParams::default(),
        }
    }

    /// Total nodes.
    pub fn n(&self) -> usize {
        self.zones * self.per_zone
    }

    /// Mean RTT between two zones, ms.
    pub fn rtt(&self, a: usize, b: usize) -> f64 {
        self.rtt_ms[a][b]
    }

    /// Mean RTTs (ms) from a node in `zone` to every *other* node in the
    /// deployment (its followers), in node order.
    pub fn follower_rtts(&self, zone: usize) -> Vec<f64> {
        let mut v = Vec::with_capacity(self.n() - 1);
        for z in 0..self.zones {
            let count = if z == zone { self.per_zone - 1 } else { self.per_zone };
            for _ in 0..count {
                v.push(self.rtt(zone, z));
            }
        }
        v
    }

    /// Majority quorum size.
    pub fn majority(&self) -> usize {
        self.n() / 2 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paxos_service_time_matches_paper_expression() {
        let c = CostParams::default();
        // N = 9: 2*5us + 9*10us + 2*9*1024/1e9 s = 10 + 90 + 18.4 us.
        let ts = c.paxos_service_time(9);
        assert!((ts - 118.4e-6).abs() < 0.5e-6, "ts {ts}");
        // Max throughput ~ 8.4k rounds/s: the single-leader wall the paper
        // measures at around 8k ops/s.
        let mu = 1.0 / ts;
        assert!((7_000.0..10_000.0).contains(&mu), "mu {mu}");
    }

    #[test]
    fn lan_deployment_shape() {
        let d = Deployment::lan(9);
        assert_eq!(d.n(), 9);
        assert_eq!(d.majority(), 5);
        assert_eq!(d.follower_rtts(0).len(), 8);
        assert!(d.follower_rtts(0).iter().all(|&r| r == LAN_RTT_MS));
    }

    #[test]
    fn aws5_matrix_is_symmetric() {
        let d = Deployment::aws5(1);
        for a in 0..5 {
            for b in 0..5 {
                assert_eq!(d.rtt(a, b), d.rtt(b, a));
            }
        }
        assert_eq!(d.rtt(0, 4), 162.0);
    }

    #[test]
    fn follower_rtts_cover_all_other_nodes() {
        let d = Deployment::aws3(3);
        let rtts = d.follower_rtts(1);
        assert_eq!(rtts.len(), 8);
        // Two of them are OH-internal (LAN), three each VA and CA.
        let lan_count = rtts.iter().filter(|&&r| r == LAN_RTT_MS).count();
        assert_eq!(lan_count, 2);
    }
}
