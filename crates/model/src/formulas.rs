//! The paper's distilled throughput and latency formulas (§6, Formulas 1–7).
//!
//! These closed forms unify the protocols over four knobs: the number of
//! operation leaders `L`, the quorum size `Q`, the conflict probability `c`,
//! and the locality `l`, plus the deployment distances `DL` (client→leader)
//! and `DQ` (leader→quorum). They support back-of-the-envelope performance
//! forecasting without running either the simulator or the full analytic
//! model.

/// Formula 2/3 — the **load** of a replication protocol: the average number
/// of operations the *busiest* node performs per request, where one
/// operation is the work of one round-trip exchange.
///
/// ```text
/// L(S) = (1 + c)(Q + L − 2) / L
/// ```
pub fn load(leaders: usize, quorum: usize, conflict: f64) -> f64 {
    assert!(leaders >= 1 && quorum >= 1);
    (1.0 + conflict) * (quorum as f64 + leaders as f64 - 2.0) / leaders as f64
}

/// Formula 1 — **capacity** is the reciprocal of load: the highest request
/// rate the system sustains, in units of one node's operation throughput.
pub fn capacity(leaders: usize, quorum: usize, conflict: f64) -> f64 {
    1.0 / load(leaders, quorum, conflict)
}

/// Formula 4 — load of single-leader (multi-decree) Paxos on `n` nodes:
/// `⌊n/2⌋` (conflicts are serialized by the single leader, `c = 0`).
pub fn load_paxos(n: usize) -> f64 {
    // L = 1, Q = majority: (Q + 1 - 2) = Q - 1 = floor(n/2).
    load(1, n / 2 + 1, 0.0)
}

/// Formula 5 — load of EPaxos on `n` nodes with conflict rate `c`:
/// `(1 + c)(⌊n/2⌋ + n − 1)/n`.
pub fn load_epaxos(n: usize, conflict: f64) -> f64 {
    load(n, n / 2 + 1, conflict)
}

/// Formula 6 — load of WPaxos with `leaders` leaders over `n` nodes and
/// per-leader phase-2 quorums of size `n / leaders`:
/// `(n/L + L − 2)/L`.
pub fn load_wpaxos(n: usize, leaders: usize) -> f64 {
    load(leaders, n / leaders, 0.0)
}

/// Formula 7 — expected WAN latency:
///
/// ```text
/// Latency = (1 + c) · ((1 − l)(DL + DQ) + l·DQ)
/// ```
///
/// Local requests (probability `l`) pay only the quorum access `DQ`;
/// non-local requests also pay the round trip `DL` to the leader; conflicts
/// multiply everything by `(1 + c)` for the extra resolution round.
pub fn latency(conflict: f64, locality: f64, dl: f64, dq: f64) -> f64 {
    (1.0 + conflict) * ((1.0 - locality) * (dl + dq) + locality * dq)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The paper evaluates the three simplified forms at N = 9.

    #[test]
    fn paxos_load_is_4_at_n9() {
        assert_eq!(load_paxos(9), 4.0);
    }

    #[test]
    fn epaxos_load_is_4_thirds_times_conflict_factor_at_n9() {
        // (1+c)(4 + 8)/9 = 4/3 (1+c)
        assert!((load_epaxos(9, 0.0) - 4.0 / 3.0).abs() < 1e-12);
        assert!((load_epaxos(9, 1.0) - 8.0 / 3.0).abs() < 1e-12);
        assert!((load_epaxos(9, 0.25) - 4.0 / 3.0 * 1.25).abs() < 1e-12);
    }

    #[test]
    fn wpaxos_load_is_4_thirds_on_3x3_grid() {
        // (9/3 + 3 - 2)/3 = 4/3.
        assert!((load_wpaxos(9, 3) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn wpaxos_has_highest_capacity_of_the_three() {
        let n = 9;
        let c_paxos = capacity(1, n / 2 + 1, 0.0);
        let c_epaxos = 1.0 / load_epaxos(n, 0.3);
        let c_wpaxos = 1.0 / load_wpaxos(n, 3);
        assert!(c_wpaxos > c_epaxos, "wpaxos {c_wpaxos} epaxos {c_epaxos}");
        assert!(c_wpaxos > c_paxos);
        assert!(c_epaxos > c_paxos, "even with c=0.3 EPaxos beats single-leader");
    }

    #[test]
    fn more_leaders_reduce_load_at_fixed_quorum() {
        for l in 2..=8 {
            assert!(load(l, 5, 0.0) < load(l - 1, 5, 0.0));
        }
    }

    #[test]
    fn conflicts_scale_load_linearly() {
        let base = load(5, 5, 0.0);
        assert!((load(5, 5, 0.5) - base * 1.5).abs() < 1e-12);
        assert!((load(5, 5, 1.0) - base * 2.0).abs() < 1e-12);
    }

    #[test]
    fn smaller_quorums_reduce_load() {
        assert!(load(1, 3, 0.0) < load(1, 5, 0.0));
    }

    #[test]
    fn latency_formula_limits() {
        // Perfect locality: only quorum access.
        assert_eq!(latency(0.0, 1.0, 80.0, 10.0), 10.0);
        // No locality: leader trip + quorum.
        assert_eq!(latency(0.0, 0.0, 80.0, 10.0), 90.0);
        // Full conflict doubles it.
        assert_eq!(latency(1.0, 0.0, 80.0, 10.0), 180.0);
        // EPaxos-style: l = 1 but c workload-specific.
        assert_eq!(latency(0.3, 1.0, 0.0, 100.0), 130.0);
    }
}
