//! k-order statistics for quorum latency.
//!
//! A leader that needs `Q−1` follower acks waits for the `(Q−1)`-th fastest
//! round trip among its `N−1` followers. In a LAN all RTTs are draws from the
//! same Normal distribution, so the paper uses a Monte Carlo approximation of
//! the k-th order statistic; in a WAN the per-follower RTTs differ, so the
//! wait is simply the `(Q−1)`-th smallest mean RTT.

use paxi_core::dist::Rng64;

/// Expected value of the `k`-th smallest (1-indexed) of `n` i.i.d.
/// `Normal(mean, std)` samples, estimated with `iters` Monte Carlo rounds.
pub fn kth_of_n_normal(k: usize, n: usize, mean: f64, std: f64, iters: usize, seed: u64) -> f64 {
    assert!(k >= 1 && k <= n, "need 1 <= k <= n (k={k}, n={n})");
    let mut rng = Rng64::seed(seed);
    let mut acc = 0.0;
    let mut buf = vec![0.0f64; n];
    for _ in 0..iters {
        for b in buf.iter_mut() {
            *b = rng.normal(mean, std);
        }
        buf.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        acc += buf[k - 1];
    }
    acc / iters as f64
}

/// The `(q−1)`-th smallest RTT (1-indexed) from a leader to its followers,
/// for WAN quorum waits. `rtts` holds the mean leader→follower RTTs.
pub fn kth_smallest_rtt(rtts: &[f64], k: usize) -> f64 {
    assert!(k >= 1 && k <= rtts.len());
    let mut sorted = rtts.to_vec();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    sorted[k - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_normals_is_the_mean() {
        // The middle order statistic of an odd sample is unbiased for the
        // median = mean of a Normal.
        let v = kth_of_n_normal(5, 9, 0.4271, 0.0476, 20_000, 1);
        assert!((v - 0.4271).abs() < 0.002, "median {v}");
    }

    #[test]
    fn extremes_bracket_the_mean() {
        let lo = kth_of_n_normal(1, 8, 1.0, 0.1, 10_000, 2);
        let hi = kth_of_n_normal(8, 8, 1.0, 0.1, 10_000, 2);
        assert!(lo < 1.0 && hi > 1.0);
        // Known: E[min of 8] ≈ mean - 1.42 sigma.
        assert!((lo - (1.0 - 1.423 * 0.1)).abs() < 0.01, "min {lo}");
    }

    #[test]
    fn order_stats_are_monotone_in_k() {
        let mut prev = f64::NEG_INFINITY;
        for k in 1..=5 {
            let v = kth_of_n_normal(k, 5, 10.0, 2.0, 5_000, 3);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn wan_pick_is_sorted_index() {
        let rtts = [75.0, 11.0, 61.0, 162.0];
        assert_eq!(kth_smallest_rtt(&rtts, 1), 11.0);
        assert_eq!(kth_smallest_rtt(&rtts, 2), 61.0);
        assert_eq!(kth_smallest_rtt(&rtts, 4), 162.0);
    }
}
