//! Queueing models (paper Table 1).
//!
//! Every node is modeled as a single queue combining CPU and NIC. Given an
//! arrival rate λ and a service time distribution, these models estimate the
//! mean time a round spends *waiting* in the queue (`Wq`) before service —
//! the component that explodes as the node approaches saturation. The paper
//! compares four approximations and selects M/D/1 (Poisson arrivals,
//! deterministic service) as the best match for its Paxos implementation
//! (Figure 4); the others are kept for that comparison.
//!
//! | model | arrivals | service    | Wq |
//! |-------|----------|-----------|----|
//! | M/M/1 | Poisson  | exponential | ρ²/(λ(1−ρ)) |
//! | M/D/1 | Poisson  | constant    | ρ/(2µ(1−ρ)) |
//! | M/G/1 | Poisson  | general     | (λ²σ²+ρ²)/(2λ(1−ρ)) |
//! | G/G/1 | general  | general     | ≈ ρ²(1+Cs)(Ca+ρ²Cs)/(2λ(1−ρ)(1+ρ²Cs)) |
//!
//! `Cs`/`Ca` are squared coefficients of variation of service and
//! inter-arrival times.

use serde::{Deserialize, Serialize};

/// Which queueing approximation to use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QueueKind {
    /// Poisson arrivals, exponential service.
    MM1,
    /// Poisson arrivals, deterministic service (the paper's choice).
    MD1,
    /// Poisson arrivals, general service with the given variance.
    MG1 {
        /// Variance of the service time (seconds²).
        service_var: f64,
    },
    /// General arrivals and service (squared coefficients of variation).
    GG1 {
        /// Squared CV of inter-arrival times.
        ca2: f64,
        /// Squared CV of service times.
        cs2: f64,
    },
}

/// Mean queue waiting time `Wq` in seconds for arrival rate `lambda` (per
/// second) and mean service time `service` (seconds).
///
/// Returns `None` when the queue is unstable (utilization ρ ≥ 1).
pub fn wait_time(kind: QueueKind, lambda: f64, service: f64) -> Option<f64> {
    if lambda <= 0.0 {
        return Some(0.0);
    }
    let mu = 1.0 / service;
    let rho = lambda / mu;
    if rho >= 1.0 {
        return None;
    }
    let wq = match kind {
        QueueKind::MM1 => rho * rho / (lambda * (1.0 - rho)),
        QueueKind::MD1 => rho / (2.0 * mu * (1.0 - rho)),
        QueueKind::MG1 { service_var } => {
            (lambda * lambda * service_var + rho * rho) / (2.0 * lambda * (1.0 - rho))
        }
        QueueKind::GG1 { ca2, cs2 } => {
            rho * rho * (1.0 + cs2) * (ca2 + rho * rho * cs2)
                / (2.0 * lambda * (1.0 - rho) * (1.0 + rho * rho * cs2))
        }
    };
    Some(wq.max(0.0))
}

/// Queue utilization ρ = λ/µ for the given arrival rate and mean service
/// time.
pub fn utilization(lambda: f64, service: f64) -> f64 {
    lambda * service
}

/// Maximum sustainable throughput µ = 1/ts of a node whose per-round service
/// time is `service` seconds.
pub fn max_throughput(service: f64) -> f64 {
    if service <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / service
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: f64 = 100e-6; // 100 us service time -> mu = 10_000/s

    #[test]
    fn zero_load_means_zero_wait() {
        for kind in [
            QueueKind::MM1,
            QueueKind::MD1,
            QueueKind::MG1 { service_var: 0.0 },
            QueueKind::GG1 { ca2: 1.0, cs2: 1.0 },
        ] {
            assert_eq!(wait_time(kind, 0.0, S), Some(0.0));
        }
    }

    #[test]
    fn saturation_returns_none() {
        assert_eq!(wait_time(QueueKind::MD1, 10_000.0, S), None);
        assert_eq!(wait_time(QueueKind::MM1, 20_000.0, S), None);
    }

    #[test]
    fn md1_waits_half_of_mm1() {
        // Classic result: deterministic service halves the M/M/1 queue wait.
        let lam = 8_000.0;
        let mm1 = wait_time(QueueKind::MM1, lam, S).unwrap();
        let md1 = wait_time(QueueKind::MD1, lam, S).unwrap();
        assert!((md1 / mm1 - 0.5).abs() < 1e-9, "md1/mm1 = {}", md1 / mm1);
    }

    #[test]
    fn mg1_with_zero_variance_equals_md1() {
        let lam = 7_000.0;
        let md1 = wait_time(QueueKind::MD1, lam, S).unwrap();
        let mg1 = wait_time(QueueKind::MG1 { service_var: 0.0 }, lam, S).unwrap();
        assert!((md1 - mg1).abs() < 1e-12);
    }

    #[test]
    fn mg1_with_exponential_variance_equals_mm1() {
        // Exponential service: variance = mean², reducing P-K to M/M/1.
        let lam = 6_000.0;
        let mm1 = wait_time(QueueKind::MM1, lam, S).unwrap();
        let mg1 = wait_time(QueueKind::MG1 { service_var: S * S }, lam, S).unwrap();
        assert!((mm1 - mg1).abs() / mm1 < 1e-9);
    }

    #[test]
    fn gg1_with_poisson_exponential_approx_mm1() {
        // ca2 = cs2 = 1 should be in the ballpark of M/M/1.
        let lam = 6_000.0;
        let mm1 = wait_time(QueueKind::MM1, lam, S).unwrap();
        let gg1 = wait_time(QueueKind::GG1 { ca2: 1.0, cs2: 1.0 }, lam, S).unwrap();
        assert!((gg1 - mm1).abs() / mm1 < 0.35, "gg1 {gg1} vs mm1 {mm1}");
    }

    #[test]
    fn wait_grows_monotonically_with_load() {
        let mut prev = 0.0;
        for lam in [1000.0, 3000.0, 5000.0, 7000.0, 9000.0] {
            let w = wait_time(QueueKind::MD1, lam, S).unwrap();
            assert!(w >= prev);
            prev = w;
        }
        // Near saturation the wait blows up well past the service time.
        assert!(prev > S);
    }

    #[test]
    fn utilization_and_capacity() {
        assert!((utilization(5_000.0, S) - 0.5).abs() < 1e-12);
        assert!((max_throughput(S) - 10_000.0).abs() < 1e-9);
    }
}
