//! Analytic performance models of the studied protocols (paper §3).
//!
//! Each model estimates, for a target system-wide arrival rate λ (rounds per
//! second), the mean client-perceived round latency
//!
//! ```text
//! Latency = Wq + ts + DL + DQ
//! ```
//!
//! where `Wq` is the queue wait at the bottleneck node (from
//! [`crate::queueing`]), `ts` the round service time, `DL` the client↔leader
//! RTT and `DQ` the RTT of the reply that completes the quorum (from
//! [`crate::orderstat`]). Latency curves end where the bottleneck node
//! saturates, which also defines each protocol's maximum throughput.
//!
//! All models assume full replication (leaders broadcast to all N−1 peers)
//! and uniformly spread client load, as the paper does.

use crate::orderstat::{kth_of_n_normal, kth_smallest_rtt};
use crate::params::Deployment;
use crate::queueing::{wait_time, QueueKind};

/// Monte Carlo iterations for LAN order statistics.
const OS_ITERS: usize = 4_000;
const OS_SEED: u64 = 0x9a_c1;

/// A protocol performance model: latency as a function of load, and the
/// saturation throughput.
pub trait PerfModel {
    /// Display name for tables/figures.
    fn name(&self) -> String;

    /// Mean round latency in **milliseconds** at system arrival rate
    /// `lambda` (rounds/s), or `None` once the bottleneck node saturates.
    fn latency_ms(&self, d: &Deployment, lambda: f64) -> Option<f64>;

    /// Maximum sustainable system throughput (rounds/s).
    fn max_throughput(&self, d: &Deployment) -> f64;

    /// Latency-vs-throughput curve over `points` samples up to saturation —
    /// the series plotted in the paper's Figures 4, 8, and 10.
    fn curve(&self, d: &Deployment, points: usize) -> Vec<(f64, f64)> {
        let cap = self.max_throughput(d);
        let mut out = Vec::with_capacity(points);
        for i in 1..=points {
            let lambda = cap * i as f64 / (points as f64 + 0.5);
            if let Some(lat) = self.latency_ms(d, lambda) {
                out.push((lambda, lat));
            }
        }
        out
    }
}

/// Expected quorum-completing RTT (ms) for a leader in `zone` waiting for
/// `k` follower replies.
fn dq_ms(d: &Deployment, zone: usize, k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let rtts = d.follower_rtts(zone);
    if d.zones == 1 {
        // LAN: i.i.d. Normal RTTs -> Monte Carlo k-order statistic.
        kth_of_n_normal(k, rtts.len(), d.rtt(0, 0), d.lan_std_ms, OS_ITERS, OS_SEED)
    } else {
        // WAN: heterogeneous means -> k-th smallest mean RTT.
        kth_smallest_rtt(&rtts, k)
    }
}

/// Mean client→leader RTT (ms) when clients are uniformly spread over zones
/// and the leader sits in `leader_zone`.
fn mean_dl_ms(d: &Deployment, leader_zone: usize) -> f64 {
    (0..d.zones).map(|z| d.rtt(z, leader_zone)).sum::<f64>() / d.zones as f64
}

/// Single-leader MultiPaxos / FPaxos model.
#[derive(Debug, Clone)]
pub struct PaxosModel {
    /// Zone hosting the stable leader.
    pub leader_zone: usize,
    /// Phase-2 quorum size including the leader; `None` = majority.
    pub q2: Option<usize>,
    /// Queueing approximation (the paper settles on M/D/1).
    pub queue: QueueKind,
}

impl PaxosModel {
    /// MultiPaxos with a majority quorum, leader in zone 0, M/D/1 queue.
    pub fn multi_paxos() -> Self {
        PaxosModel { leader_zone: 0, q2: None, queue: QueueKind::MD1 }
    }

    /// FPaxos with phase-2 quorum size `q2`.
    pub fn fpaxos(q2: usize) -> Self {
        PaxosModel { q2: Some(q2), ..Self::multi_paxos() }
    }

    /// Same model with the leader placed in `zone` (the paper's Figure 10
    /// places it in California).
    pub fn with_leader_zone(mut self, zone: usize) -> Self {
        self.leader_zone = zone;
        self
    }

    /// Same model under a different queueing approximation (Figure 4).
    pub fn with_queue(mut self, queue: QueueKind) -> Self {
        self.queue = queue;
        self
    }

    fn q2_size(&self, d: &Deployment) -> usize {
        self.q2.unwrap_or_else(|| d.majority())
    }
}

impl PerfModel for PaxosModel {
    fn name(&self) -> String {
        match self.q2 {
            Some(q) => format!("FPaxos(|q2|={q})"),
            None => "MultiPaxos".to_string(),
        }
    }

    fn latency_ms(&self, d: &Deployment, lambda: f64) -> Option<f64> {
        let ts = d.cost.paxos_service_time(d.n());
        let wq = wait_time(self.queue, lambda, ts)?;
        let dq = dq_ms(d, self.leader_zone, self.q2_size(d) - 1);
        let dl = mean_dl_ms(d, self.leader_zone);
        Some((wq + ts) * 1e3 + dl + dq)
    }

    fn max_throughput(&self, d: &Deployment) -> f64 {
        1.0 / d.cost.paxos_service_time(d.n())
    }
}

/// EPaxos model: every node is an opportunistic leader; conflicts add a
/// second quorum round and dependency-processing CPU overhead.
#[derive(Debug, Clone)]
pub struct EPaxosModel {
    /// Fraction of commands that conflict (`c` in the paper).
    pub conflict: f64,
    /// CPU multiplier for dependency computation and conflict detection
    /// (the paper "penalizes the message processing" of EPaxos).
    pub cpu_penalty: f64,
}

impl EPaxosModel {
    /// Model at the given conflict rate.
    ///
    /// The default CPU penalty is 1.0: the paper's *model* keeps EPaxos
    /// message processing comparable to Paxos (which is why its modeled
    /// throughput beats Paxos even at 100% conflict, §5.2 and Figure 12);
    /// only the *experimental* EPaxos pays heavy dependency-processing
    /// costs, modeled in `paxi_bench::Proto::epaxos`.
    pub fn new(conflict: f64) -> Self {
        EPaxosModel { conflict, cpu_penalty: 1.0 }
    }

    /// EPaxos fast-quorum size (leader included).
    fn fast(&self, d: &Deployment) -> usize {
        paxi_core::quorum::fast_quorum_size(d.n())
    }

    /// Mean and second moment of the per-arrival service time at one node.
    fn service_moments(&self, d: &Deployment) -> (f64, f64) {
        let n = d.n() as f64;
        let c = self.conflict;
        let p = self.cpu_penalty;
        let nic = d.cost.nic();
        // Leading a round: like a Paxos leader round, plus a conflict round.
        let s_lead = p * (2.0 * d.cost.to + n * d.cost.ti) + 2.0 * n * nic;
        let s_lead = s_lead + c * (p * (d.cost.to + n * d.cost.ti) + 2.0 * n * nic);
        // Participating in someone else's round: PreAccept in, reply out,
        // Commit in; conflicts add the Accept round (one more in + out).
        let s_acc = p * (2.0 * d.cost.ti + d.cost.to) + 3.0 * nic;
        let s_acc = s_acc + c * (p * (d.cost.ti + d.cost.to) + 2.0 * nic);
        let pl = 1.0 / n;
        let mean = pl * s_lead + (1.0 - pl) * s_acc;
        let m2 = pl * s_lead * s_lead + (1.0 - pl) * s_acc * s_acc;
        (mean, m2)
    }
}

impl PerfModel for EPaxosModel {
    fn name(&self) -> String {
        format!("EPaxos(c={:.2})", self.conflict)
    }

    fn latency_ms(&self, d: &Deployment, lambda: f64) -> Option<f64> {
        let (mean, m2) = self.service_moments(d);
        let var = (m2 - mean * mean).max(0.0);
        // Every round visits every node, so each node sees the full λ.
        let wq = wait_time(QueueKind::MG1 { service_var: var }, lambda, mean)?;
        // Clients are local to their command leader: DL is one LAN RTT.
        let dl = d.rtt(0, 0);
        // Mean over leader zones of the fast / slow quorum waits.
        let fast_k = self.fast(d) - 1;
        let slow_k = d.majority() - 1;
        let mut lat = 0.0;
        for z in 0..d.zones {
            let dq_fast = dq_ms(d, z, fast_k);
            let dq_slow = dq_ms(d, z, slow_k);
            let per_zone = (1.0 - self.conflict) * dq_fast + self.conflict * (dq_fast + dq_slow);
            lat += per_zone;
        }
        lat /= d.zones as f64;
        Some((wq + mean) * 1e3 + dl + lat)
    }

    fn max_throughput(&self, d: &Deployment) -> f64 {
        let (mean, _) = self.service_moments(d);
        1.0 / mean
    }
}

/// WPaxos model: one leader per zone, flexible grid quorums, locality-aware.
#[derive(Debug, Clone)]
pub struct WPaxosModel {
    /// Zone-failure tolerance (`fz`): 0 commits within the leader's zone.
    pub fz: usize,
    /// Per-zone node-failure tolerance (`f`).
    pub f: usize,
    /// Fraction of requests hitting keys owned by the local zone (`l`).
    pub locality: f64,
}

impl WPaxosModel {
    /// WPaxos with `fz = 0`, `f = ⌊per_zone/2⌋`-style default of 1, and the
    /// given locality.
    pub fn new(locality: f64) -> Self {
        WPaxosModel { fz: 0, f: 1, locality }
    }

    /// Phase-2 quorum size `(f+1)·(fz+1)` of the flexible grid.
    pub fn q2_size(&self) -> usize {
        (self.f + 1) * (self.fz + 1)
    }

    fn service_moments(&self, d: &Deployment) -> (f64, f64) {
        let n = d.n() as f64;
        let leaders = d.zones as f64;
        let nic = d.cost.nic();
        // Own round: full-replication broadcast like Paxos.
        let s_lead = 2.0 * d.cost.to + n * d.cost.ti + 2.0 * n * nic;
        // Follower duty for other leaders' rounds: P2a in, P2b out, commit in.
        let s_acc = 2.0 * d.cost.ti + d.cost.to + 3.0 * nic;
        let pl = 1.0 / leaders;
        let mean = pl * s_lead + (1.0 - pl) * s_acc;
        let m2 = pl * s_lead * s_lead + (1.0 - pl) * s_acc * s_acc;
        (mean, m2)
    }
}

impl PerfModel for WPaxosModel {
    fn name(&self) -> String {
        format!("WPaxos(fz={}, l={:.1})", self.fz, self.locality)
    }

    fn latency_ms(&self, d: &Deployment, lambda: f64) -> Option<f64> {
        let (mean, m2) = self.service_moments(d);
        let var = (m2 - mean * mean).max(0.0);
        // Each leader node sees every round (full replication), leading its
        // zone's 1/L share.
        let wq = wait_time(QueueKind::MG1 { service_var: var }, lambda, mean)?;
        // DQ: f+1 acks from fz+1 zones. fz=0 -> in-zone (LAN) quorum; fz>0
        // -> also the (fz)-th nearest other zone.
        let mut lat = 0.0;
        for z in 0..d.zones {
            let dq = if self.fz == 0 {
                d.rtt(z, z)
            } else {
                let mut others: Vec<f64> =
                    (0..d.zones).filter(|&o| o != z).map(|o| d.rtt(z, o)).collect();
                others.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
                others[self.fz - 1]
            };
            // Remote requests pay a forward to the owner zone (mean over
            // other zones).
            let dl_remote = if d.zones > 1 {
                (0..d.zones).filter(|&o| o != z).map(|o| d.rtt(z, o)).sum::<f64>()
                    / (d.zones - 1) as f64
            } else {
                d.rtt(0, 0)
            };
            let dl_local = d.rtt(z, z);
            lat += self.locality * (dl_local + dq) + (1.0 - self.locality) * (dl_remote + dq);
        }
        lat /= d.zones as f64;
        Some((wq + mean) * 1e3 + lat)
    }

    fn max_throughput(&self, d: &Deployment) -> f64 {
        let (mean, _) = self.service_moments(d);
        1.0 / mean
    }
}

/// WanKeeper model: per-zone groups, contended objects executed at the
/// level-2 master.
#[derive(Debug, Clone)]
pub struct WanKeeperModel {
    /// Zone hosting the master group.
    pub master_zone: usize,
    /// Fraction of requests whose token is local to the requesting zone.
    pub locality: f64,
}

impl WanKeeperModel {
    /// Model with the given locality, master in zone 0.
    pub fn new(locality: f64) -> Self {
        WanKeeperModel { master_zone: 0, locality }
    }

    fn group_service(&self, d: &Deployment) -> f64 {
        let g = d.per_zone as f64;
        // Zone-local round: leader broadcasts to g-1 members and collects
        // acks — the hierarchical win: g << N messages.
        2.0 * d.cost.to + g * d.cost.ti + 2.0 * g * d.cost.nic()
    }
}

impl PerfModel for WanKeeperModel {
    fn name(&self) -> String {
        format!("WanKeeper(l={:.1})", self.locality)
    }

    fn latency_ms(&self, d: &Deployment, lambda: f64) -> Option<f64> {
        let s = self.group_service(d);
        let zones = d.zones as f64;
        // Master handles its own zone's share plus all non-local rounds.
        let master_rate = lambda / zones + lambda * (1.0 - self.locality) * (zones - 1.0) / zones;
        let wq_master = wait_time(QueueKind::MD1, master_rate, s)?;
        let zone_rate = lambda * self.locality / zones;
        let wq_zone = wait_time(QueueKind::MD1, zone_rate, s)?;
        // In-group quorum wait is one LAN RTT.
        let mut lat = 0.0;
        for z in 0..d.zones {
            let local = d.rtt(z, z) + d.rtt(z, z) + (wq_zone + s) * 1e3;
            let remote = d.rtt(z, self.master_zone) + d.rtt(self.master_zone, self.master_zone)
                + (wq_master + s) * 1e3;
            lat += self.locality * local + (1.0 - self.locality) * remote;
        }
        lat /= zones;
        Some(lat)
    }

    fn max_throughput(&self, d: &Deployment) -> f64 {
        let s = self.group_service(d);
        let zones = d.zones as f64;
        // The master saturates first unless locality is perfect.
        let master_share = 1.0 / zones + (1.0 - self.locality) * (zones - 1.0) / zones;
        (1.0 / s) / master_share
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paxos_lan_saturates_near_8k() {
        let d = Deployment::lan(9);
        let m = PaxosModel::multi_paxos();
        let cap = m.max_throughput(&d);
        assert!((7_000.0..10_000.0).contains(&cap), "cap {cap}");
        // Low-load latency ~ DL + DQ ~ 2 LAN RTTs (~0.9 ms).
        let lat = m.latency_ms(&d, 100.0).unwrap();
        assert!((0.7..1.6).contains(&lat), "latency {lat} ms");
        // Latency explodes near saturation.
        let near = m.latency_ms(&d, cap * 0.98).unwrap();
        assert!(near > 3.0 * lat, "near-saturation latency {near}");
        assert!(m.latency_ms(&d, cap * 1.01).is_none());
    }

    #[test]
    fn fpaxos_small_quorum_shaves_latency_slightly_in_lan() {
        // The paper reports a ~0.03 ms LAN improvement for FPaxos |q2|=3.
        let d = Deployment::lan(9);
        let paxos = PaxosModel::multi_paxos().latency_ms(&d, 1000.0).unwrap();
        let fpaxos = PaxosModel::fpaxos(3).latency_ms(&d, 1000.0).unwrap();
        let gain = paxos - fpaxos;
        assert!(gain > 0.0, "FPaxos should be faster");
        assert!(gain < 0.15, "LAN gain should be small: {gain} ms");
    }

    #[test]
    fn wpaxos_outscales_paxos_by_50ish_percent() {
        // The paper's model showed ~55% higher max throughput for 3-leader
        // WPaxos over Paxos in LAN.
        let d = Deployment::lan(9);
        // Use a 3x3 "grid in a LAN" for WPaxos.
        let mut grid = Deployment::lan(9);
        grid.zones = 3;
        grid.per_zone = 3;
        grid.rtt_ms = vec![vec![crate::params::LAN_RTT_MS; 3]; 3];
        let paxos = PaxosModel::multi_paxos().max_throughput(&d);
        let wpaxos = WPaxosModel::new(1.0).max_throughput(&grid);
        let gain = wpaxos / paxos - 1.0;
        // The paper's model reports ~55%; ours lands somewhat higher because
        // our follower-duty cost is lighter, but well below the naive 3x the
        // load formula alone would suggest (see EXPERIMENTS.md).
        assert!((0.3..1.6).contains(&gain), "gain {gain}");
    }

    #[test]
    fn epaxos_throughput_degrades_with_conflict() {
        let d = Deployment::aws5(1);
        let t0 = EPaxosModel::new(0.0).max_throughput(&d);
        let t100 = EPaxosModel::new(1.0).max_throughput(&d);
        let drop = 1.0 - t100 / t0;
        // Paper Figure 12: "as much as 40% degradation".
        assert!((0.25..0.55).contains(&drop), "degradation {drop}");
    }

    #[test]
    fn epaxos_has_no_single_leader_bottleneck() {
        // Even at full conflict EPaxos max throughput beats Paxos (paper §5.2)
        // because load is spread over all nodes.
        let d = Deployment::lan(9);
        let paxos = PaxosModel::multi_paxos().max_throughput(&d);
        let epaxos = EPaxosModel::new(1.0).max_throughput(&d);
        assert!(epaxos > paxos, "epaxos {epaxos} vs paxos {paxos}");
    }

    #[test]
    fn wan_latency_ordering_matches_figure_10() {
        // WPaxos(l=0.7) < FPaxos(CA) < Paxos(CA) in mean latency; over 100ms
        // between slowest and fastest.
        let d = Deployment::aws5(1);
        let lam = 500.0;
        let paxos =
            PaxosModel::multi_paxos().with_leader_zone(2).latency_ms(&d, lam).unwrap();
        let fpaxos = PaxosModel::fpaxos(2).with_leader_zone(2).latency_ms(&d, lam).unwrap();
        let wpaxos = WPaxosModel { fz: 0, f: 0, locality: 0.7 }.latency_ms(&d, lam).unwrap();
        assert!(wpaxos < fpaxos, "wpaxos {wpaxos} fpaxos {fpaxos}");
        assert!(fpaxos < paxos, "fpaxos {fpaxos} paxos {paxos}");
        assert!(paxos - wpaxos > 50.0, "spread {}", paxos - wpaxos);
    }

    #[test]
    fn wankeeper_master_zone_sees_local_latency() {
        let d = Deployment::aws3(3);
        let m = WanKeeperModel { master_zone: 1, locality: 0.0 };
        // With zero locality everything executes at the master; average
        // latency includes WAN hops for non-master zones.
        let lat = m.latency_ms(&d, 100.0).unwrap();
        assert!(lat > 10.0, "mean includes WAN forwards: {lat}");
        // With perfect locality everything is zone-local.
        let local = WanKeeperModel { master_zone: 1, locality: 1.0 }.latency_ms(&d, 100.0).unwrap();
        assert!(local < 2.0, "all-local latency {local}");
    }

    #[test]
    fn curves_are_monotone_and_end_before_saturation() {
        let d = Deployment::lan(9);
        for model in [
            Box::new(PaxosModel::multi_paxos()) as Box<dyn PerfModel>,
            Box::new(EPaxosModel::new(0.2)),
            Box::new(WPaxosModel::new(1.0)),
        ] {
            let curve = model.curve(&d, 20);
            assert!(curve.len() >= 15, "{} curve too short", model.name());
            for w in curve.windows(2) {
                assert!(w[1].0 > w[0].0);
                assert!(w[1].1 >= w[0].1 - 1e-9, "{} latency not monotone", model.name());
            }
        }
    }
}
