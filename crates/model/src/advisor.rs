//! Protocol selection advisor (the paper's Figure 14 flowchart).
//!
//! Given a handful of yes/no questions about the deployment and workload,
//! [`recommend`] walks the paper's decision flowchart and returns the
//! category of protocols to consider, with the rationale quoted from the
//! flowchart boxes.

use serde::{Deserialize, Serialize};

/// Answers to the flowchart's questions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Answers {
    /// Do you actually need distributed consensus (state-machine
    /// replication), or just linearizable reads/writes?
    pub needs_consensus: bool,
    /// Is the deployment wide-area (multiple datacenters)?
    pub wan: bool,
    /// Are there more reads than writes? (Only consulted for LAN.)
    pub read_heavy: bool,
    /// Does the workload exhibit access locality? (WAN branch.)
    pub locality: bool,
    /// Is that locality dynamic (the hot region moves)? (WAN branch.)
    pub dynamic_locality: bool,
    /// Must the system tolerate a full datacenter failure? (WAN branch.)
    pub datacenter_failure_concern: bool,
}

/// The advisor's verdict.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Recommendation {
    /// Short category label.
    pub category: &'static str,
    /// Concrete protocols to consider, most recommended first.
    pub protocols: Vec<&'static str>,
    /// The flowchart's rationale.
    pub rationale: &'static str,
}

/// Walks the Figure 14 flowchart.
pub fn recommend(a: Answers) -> Recommendation {
    if !a.needs_consensus {
        return Recommendation {
            category: "no-consensus",
            protocols: vec!["Atomic Storage", "Chain Replication", "Eventually-consistent replication"],
            rationale: "Consensus protocols implement SMR for critical coordination tasks; \
                        consensus is not required to provide read/write linearizability to clients.",
        };
    }
    if !a.wan {
        if a.read_heavy {
            return Recommendation {
                category: "lan-leaderless",
                protocols: vec!["Generalized Paxos", "EPaxos"],
                rationale: "More frequent read operations mean fewer interfering commands, \
                            which benefits a leaderless approach.",
            };
        }
        return Recommendation {
            category: "lan-single-leader",
            protocols: vec!["Multi-Paxos", "Raft", "Zab"],
            rationale: "A small LAN deployment preserves decent performance even with \
                        single-leader protocols, and benefits from simple implementation.",
        };
    }
    if !a.locality {
        // WAN without locality: reads still help leaderless; otherwise a
        // single leader is as good as it gets.
        if a.read_heavy {
            return Recommendation {
                category: "wan-leaderless",
                protocols: vec!["Generalized Paxos", "EPaxos"],
                rationale: "More frequent read operations mean fewer interfering commands, \
                            which benefits a leaderless approach.",
            };
        }
        return Recommendation {
            category: "lan-single-leader",
            protocols: vec!["Multi-Paxos", "Raft", "Zab"],
            rationale: "Without locality to exploit, multi-leader WAN protocols lose their \
                        advantage; a well-placed single leader is simple and predictable.",
        };
    }
    if !a.dynamic_locality {
        return Recommendation {
            category: "static-sharding",
            protocols: vec!["Paxos Groups (Spanner-style)"],
            rationale: "Static locality means a sharding technique works in the best-case \
                        scenario.",
        };
    }
    if !a.datacenter_failure_concern {
        return Recommendation {
            category: "hierarchical",
            protocols: vec!["Vertical Paxos", "WanKeeper"],
            rationale: "The group of replicas can be deployed in one region and managed by a \
                        master or hierarchical architecture.",
        };
    }
    Recommendation {
        category: "adaptive-multi-leader",
        protocols: vec!["WPaxos", "Vertical Paxos with cross-region Paxos groups"],
        rationale: "A multi-leader protocol that dynamically adapts to locality and tolerates \
                    datacenter failures is the best fit.",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Answers {
        Answers {
            needs_consensus: true,
            wan: false,
            read_heavy: false,
            locality: false,
            dynamic_locality: false,
            datacenter_failure_concern: false,
        }
    }

    #[test]
    fn no_consensus_needed() {
        let r = recommend(Answers { needs_consensus: false, ..base() });
        assert_eq!(r.category, "no-consensus");
        assert!(r.protocols.contains(&"Chain Replication"));
    }

    #[test]
    fn lan_write_heavy_gets_single_leader() {
        let r = recommend(base());
        assert_eq!(r.category, "lan-single-leader");
        assert!(r.protocols.contains(&"Multi-Paxos"));
        assert!(r.protocols.contains(&"Raft"));
    }

    #[test]
    fn lan_read_heavy_gets_leaderless() {
        let r = recommend(Answers { read_heavy: true, ..base() });
        assert_eq!(r.category, "lan-leaderless");
        assert!(r.protocols.contains(&"EPaxos"));
    }

    #[test]
    fn wan_static_locality_gets_sharding() {
        let r = recommend(Answers { wan: true, locality: true, ..base() });
        assert_eq!(r.category, "static-sharding");
    }

    #[test]
    fn wan_dynamic_locality_no_dc_failure_gets_hierarchical() {
        let r = recommend(Answers {
            wan: true,
            locality: true,
            dynamic_locality: true,
            ..base()
        });
        assert_eq!(r.category, "hierarchical");
        assert!(r.protocols.contains(&"WanKeeper"));
        assert!(r.protocols.contains(&"Vertical Paxos"));
    }

    #[test]
    fn wan_dynamic_locality_with_dc_failure_gets_wpaxos() {
        let r = recommend(Answers {
            wan: true,
            locality: true,
            dynamic_locality: true,
            datacenter_failure_concern: true,
            ..base()
        });
        assert_eq!(r.category, "adaptive-multi-leader");
        assert_eq!(r.protocols[0], "WPaxos");
    }
}
