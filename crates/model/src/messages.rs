//! Analytic message complexity per committed command (§2 of the paper).
//!
//! The paper characterizes each protocol by how many messages its
//! coordinating replica exchanges per consensus instance. These closed
//! forms are the ground truth the observability layer is audited against:
//! the headline metrics test drives each protocol through the simulator
//! with metrics enabled and asserts the *observed* per-commit counters at
//! the leader equal these predictions exactly — any silent loss or
//! double-count breaks the equality.
//!
//! Conventions: counts cover protocol messages only (client requests and
//! replies are tracked by separate counters), describe the steady state
//! (leader established; Raft heartbeats and elections excluded; EPaxos on
//! its fast path with no conflicts), and are exact, not asymptotic.

/// Per-commit message counts at the coordinating replica (leader or,
/// for EPaxos, the command leader).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgComplexity {
    /// Protocol messages the coordinator sends per committed command.
    pub sent: u64,
    /// Protocol messages the coordinator receives per committed command.
    pub received: u64,
}

impl MsgComplexity {
    /// Total coordinator message load per commit (the paper's per-instance
    /// message count at the bottleneck replica).
    pub fn total(self) -> u64 {
        self.sent + self.received
    }
}

/// Multi-Paxos with a stable leader in an `n`-replica cluster: one
/// phase-2 round per commit. The leader sends `n-1` accepts (`p2a`) and
/// receives `n-1` acks (`p2b`); commit notification piggybacks on the
/// next accept, costing no extra message in steady state.
pub fn paxos_leader(n: u64) -> MsgComplexity {
    let peers = n.saturating_sub(1);
    MsgComplexity { sent: peers, received: peers }
}

/// Raft with a stable leader in an `n`-replica cluster: identical
/// steady-state shape to Multi-Paxos — `n-1` `append_entries` out,
/// `n-1` `append_ack` in, with the advancing commit index piggybacked.
/// Heartbeats (empty `append_entries`) are a separate, rate-based cost
/// and are tracked under their own message type.
pub fn raft_leader(n: u64) -> MsgComplexity {
    let peers = n.saturating_sub(1);
    MsgComplexity { sent: peers, received: peers }
}

/// EPaxos fast path (no conflicts) in an `n`-replica cluster: the command
/// leader broadcasts `pre_accept` to its `n-1` peers, commits after a
/// fast quorum of `pre_accept_ok`s, then broadcasts `commit`. Every peer
/// answers the pre-accept, so the leader still *receives* `n-1` acks even
/// though it only *waits* for the fast quorum.
pub fn epaxos_leader_fast(n: u64) -> MsgComplexity {
    let peers = n.saturating_sub(1);
    MsgComplexity { sent: 2 * peers, received: peers }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_replica_counts() {
        assert_eq!(paxos_leader(3), MsgComplexity { sent: 2, received: 2 });
        assert_eq!(raft_leader(3), MsgComplexity { sent: 2, received: 2 });
        assert_eq!(epaxos_leader_fast(3), MsgComplexity { sent: 4, received: 2 });
        assert_eq!(epaxos_leader_fast(3).total(), 6);
    }

    #[test]
    fn five_replica_counts() {
        assert_eq!(paxos_leader(5).total(), 8);
        assert_eq!(epaxos_leader_fast(5), MsgComplexity { sent: 8, received: 4 });
    }

    #[test]
    fn degenerate_single_node_cluster_is_message_free() {
        assert_eq!(paxos_leader(1).total(), 0);
        assert_eq!(raft_leader(1).total(), 0);
        assert_eq!(epaxos_leader_fast(1).total(), 0);
    }
}
