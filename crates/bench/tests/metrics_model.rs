//! The observability layer's headline audit: drive each protocol through a
//! clean (fault-free) simulated run with metrics on and `drain` mode, and
//! assert the leader's *observed* per-commit message counts equal the
//! analytic model's message complexity (`paxi_model::messages`) exactly.
//!
//! Exactness is the point. Any silent loss (a message dropped outside the
//! `drops_by_cause` ledger), double-count, or misattributed type breaks an
//! equality here — which is precisely the class of accounting bug this PR's
//! metrics layer exists to catch.
//!
//! The runs are shaped so the steady state is the only state:
//! * one closed-loop client attached to the (initial) leader — exactly one
//!   request in flight, so rounds never pipeline or reorder;
//! * every command writes a fresh key — EPaxos stays on its conflict-free
//!   fast path with empty dependencies;
//! * heartbeats and election timeouts are hours long — the only timer-driven
//!   traffic is excluded by construction, leaving the one-off election
//!   exchange as a constant the assertions account for explicitly.

use paxi_core::command::Command;
use paxi_core::config::ClusterConfig;
use paxi_core::dist::Rng64;
use paxi_core::id::{ClientId, NodeId};
use paxi_core::obs::{ClusterMetrics, Metric, MetricsRegistry, TraceStage};
use paxi_core::time::Nanos;
use paxi_model::{epaxos_leader_fast, paxos_leader, raft_leader};
use paxi_protocols::epaxos::epaxos_cluster;
use paxi_protocols::paxos::{paxos_cluster, PaxosConfig};
use paxi_protocols::raft::{raft_cluster, RaftConfig};
use paxi_sim::{ClientSetup, LoadMode, SimConfig, Simulator};

const N: u8 = 3;
const LEADER: NodeId = NodeId::new(0, 0);

/// Metrics-on, drain-mode config: every issued request runs to completion
/// and every in-flight message is delivered before the run ends, so totals
/// divide evenly by the commit count.
fn audit_config(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        warmup: Nanos::ZERO,
        measure: Nanos::millis(200),
        metrics: true,
        trace_capacity: 512,
        drain: true,
        ..SimConfig::default()
    }
}

/// One closed-loop client pinned to the leader (the round-robin helpers
/// would spread clients across replicas and turn forwards into noise).
fn leader_client() -> Vec<ClientSetup> {
    vec![ClientSetup {
        zone: 0,
        attach: LEADER,
        mode: LoadMode::Closed { think: Nanos::micros(500) },
    }]
}

/// Every request writes its own key: no EPaxos conflicts, no read/write
/// asymmetry, nothing shared between consecutive commands.
fn fresh_key_workload(
) -> impl FnMut(ClientId, u8, u64, Nanos, &mut Rng64) -> Command + Send + 'static {
    |client: ClientId, _zone: u8, seq: u64, _now: Nanos, _rng: &mut Rng64| {
        Command::put(1 + client.0 as u64 * 1_000_000 + seq, vec![seq as u8])
    }
}

/// The leader's registry out of a run's cluster snapshot.
fn leader_metrics(cm: &ClusterMetrics) -> &MetricsRegistry {
    &cm.nodes.iter().find(|s| s.node == LEADER).expect("leader snapshot").metrics
}

/// Cluster-wide conservation: in a drained fault-free run every message
/// sent must be received by its destination, type by type — the "no
/// unexplained losses" guarantee stated as an equality.
fn assert_message_conservation(cm: &ClusterMetrics) {
    assert_eq!(cm.unexplained_drops(), 0);
    let merged = cm.merged();
    assert_eq!(merged.total_drops(), 0, "clean run must not drop anything");
    assert_eq!(
        merged.get(Metric::MsgsSent),
        merged.get(Metric::MsgsReceived),
        "every sent message must be received"
    );
    for (kind, sent) in merged.sent_types() {
        assert_eq!(sent, merged.recv_of(kind), "conservation broken for message type {kind}");
    }
}

#[test]
fn paxos_leader_matches_analytic_message_complexity() {
    let cluster = ClusterConfig::lan(N);
    let cfg = PaxosConfig {
        heartbeat: Nanos::secs(3600),
        election_timeout: Nanos::secs(3600),
        enable_failover: false,
        ..PaxosConfig::default()
    };
    let mut sim = Simulator::new(
        audit_config(11),
        cluster.clone(),
        paxos_cluster(cluster, cfg),
        fresh_key_workload(),
        leader_client(),
    );
    let report = sim.run();
    let cm = report.metrics.expect("metrics were enabled");
    assert_message_conservation(&cm);

    let leader = leader_metrics(&cm);
    let commits = leader.get(Metric::Commits);
    assert!(commits > 50, "too few commits to audit: {commits}");
    assert_eq!(leader.get(Metric::Requests), commits, "every request commits exactly once");
    assert_eq!(leader.get(Metric::Replies), commits);
    assert_eq!(leader.get(Metric::Retransmissions), 0);

    // Steady state: one phase-2 round per commit, commit piggybacked.
    let model = paxos_leader(N as u64);
    assert_eq!(leader.sent_of("p2a"), commits * model.sent);
    assert_eq!(leader.recv_of("p2b"), commits * model.received);
    // The one-off phase-1 exchange is the only other traffic: n-1 P1a out,
    // n-1 P1b back (the straggler's promise still arrives and is counted).
    let peers = N as u64 - 1;
    assert_eq!(leader.sent_of("p1a"), peers);
    assert_eq!(leader.recv_of("p1b"), peers);
    assert_eq!(leader.sent_of("commit"), 0, "suppressed heartbeat must not flush commits");
    assert_eq!(
        leader.get(Metric::MsgsSent),
        commits * model.sent + peers,
        "unaccounted sends at the leader"
    );
    assert_eq!(
        leader.get(Metric::MsgsReceived),
        commits * model.received + peers,
        "unaccounted receives at the leader"
    );
}

#[test]
fn raft_leader_matches_analytic_message_complexity() {
    let cluster = ClusterConfig::lan(N);
    let cfg = RaftConfig {
        election_timeout: Nanos::secs(3600),
        heartbeat: Nanos::secs(3600),
        ..RaftConfig::default()
    };
    let mut sim = Simulator::new(
        audit_config(12),
        cluster.clone(),
        raft_cluster(cluster, cfg),
        fresh_key_workload(),
        leader_client(),
    );
    let report = sim.run();
    let cm = report.metrics.expect("metrics were enabled");
    assert_message_conservation(&cm);

    let leader = leader_metrics(&cm);
    let requests = leader.get(Metric::Requests);
    assert!(requests > 50, "too few requests to audit: {requests}");
    // The new term's no-op (Raft §5.4.2) is one extra committed entry.
    let commits = leader.get(Metric::Commits);
    assert_eq!(commits, requests + 1, "commits = requests + the term no-op");
    assert_eq!(leader.get(Metric::Replies), requests);
    assert_eq!(leader.get(Metric::Retransmissions), 0);

    // Each committed entry (no-op included) costs one AppendEntries
    // broadcast and collects one ack per peer.
    let model = raft_leader(N as u64);
    assert_eq!(leader.sent_of("append_entries"), commits * model.sent);
    assert_eq!(leader.recv_of("append_ack"), commits * model.received);
    // Heartbeats are empty appends under their own name; with an hour-long
    // period none fire inside the run.
    assert_eq!(leader.sent_of("heartbeat"), 0);
    // The one-off election: n-1 RequestVote out, n-1 Vote back.
    let peers = N as u64 - 1;
    assert_eq!(leader.sent_of("request_vote"), peers);
    assert_eq!(leader.recv_of("vote"), peers);
    assert_eq!(
        leader.get(Metric::MsgsSent),
        commits * model.sent + peers,
        "unaccounted sends at the leader"
    );
    assert_eq!(
        leader.get(Metric::MsgsReceived),
        commits * model.received + peers,
        "unaccounted receives at the leader"
    );
}

#[test]
fn epaxos_command_leader_matches_analytic_message_complexity() {
    let cluster = ClusterConfig::lan(N);
    let mut sim = Simulator::new(
        audit_config(13),
        cluster.clone(),
        epaxos_cluster(cluster),
        fresh_key_workload(),
        leader_client(),
    );
    let report = sim.run();
    let cm = report.metrics.expect("metrics were enabled");
    assert_message_conservation(&cm);

    // All clients attach to node 0, so it is the command leader of every
    // instance; fresh keys keep each one on the fast path.
    let leader = leader_metrics(&cm);
    let commits = leader.get(Metric::Commits);
    assert!(commits > 50, "too few commits to audit: {commits}");
    assert_eq!(leader.get(Metric::Requests), commits);
    assert_eq!(leader.get(Metric::Replies), commits);

    // Fast path: PreAccept broadcast + Commit broadcast out; every peer's
    // PreAcceptOk comes back (the leader only *waits* for the fast quorum,
    // but all n-1 replies still arrive).
    let model = epaxos_leader_fast(N as u64);
    let peers = N as u64 - 1;
    assert_eq!(leader.sent_of("pre_accept"), commits * peers);
    assert_eq!(leader.sent_of("commit"), commits * peers);
    assert_eq!(leader.recv_of("pre_accept_ok"), commits * model.received);
    // No conflicts means the slow path never runs.
    assert_eq!(leader.sent_of("accept"), 0);
    assert_eq!(leader.recv_of("accept_ok"), 0);
    assert_eq!(
        leader.get(Metric::MsgsSent),
        commits * model.sent,
        "unaccounted sends at the command leader"
    );
    assert_eq!(
        leader.get(Metric::MsgsReceived),
        commits * model.received,
        "unaccounted receives at the command leader"
    );
}

#[test]
fn same_seed_runs_produce_byte_identical_metrics_snapshots() {
    let run = || {
        let cluster = ClusterConfig::lan(N);
        let mut sim = Simulator::new(
            audit_config(99),
            cluster.clone(),
            paxos_cluster(cluster, PaxosConfig::default()),
            fresh_key_workload(),
            leader_client(),
        );
        sim.run().metrics.expect("metrics were enabled").to_json()
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "same seed must reproduce the exact metrics snapshot");
}

#[test]
fn metrics_snapshots_round_trip_through_the_codec() {
    let cluster = ClusterConfig::lan(N);
    let mut sim = Simulator::new(
        audit_config(7),
        cluster.clone(),
        paxos_cluster(cluster, PaxosConfig::default()),
        fresh_key_workload(),
        leader_client(),
    );
    let cm = sim.run().metrics.expect("metrics were enabled");
    let bytes = paxi_codec::to_bytes(&cm).expect("cluster metrics must encode");
    let back: ClusterMetrics = paxi_codec::from_bytes(&bytes).expect("must decode");
    assert_eq!(back, cm, "codec round trip must be lossless");
    assert_eq!(back.to_json(), cm.to_json());
}

#[test]
fn merged_registry_sums_per_node_counters() {
    let cluster = ClusterConfig::lan(N);
    let mut sim = Simulator::new(
        audit_config(8),
        cluster.clone(),
        paxos_cluster(cluster, PaxosConfig::default()),
        fresh_key_workload(),
        leader_client(),
    );
    let cm = sim.run().metrics.expect("metrics were enabled");
    let merged = cm.merged();
    for metric in Metric::ALL {
        let sum: u64 = cm.nodes.iter().map(|s| s.metrics.get(metric)).sum();
        assert_eq!(merged.get(metric), sum, "merge lost counts for {}", metric.name());
    }
}

#[test]
fn trace_ring_records_the_full_request_lifecycle() {
    let cluster = ClusterConfig::lan(N);
    let mut sim = Simulator::new(
        audit_config(21),
        cluster.clone(),
        paxos_cluster(cluster, PaxosConfig::default()),
        fresh_key_workload(),
        leader_client(),
    );
    let report = sim.run();
    let trace = report.trace.expect("tracing was enabled");
    let events: Vec<_> = trace.iter().copied().collect();
    assert!(!events.is_empty(), "trace ring must capture events");
    // Pick a request that still has all its events in the ring and check the
    // canonical stage order: submit -> propose -> quorum-ack -> execute ->
    // reply, monotonically timestamped.
    let submitted: Vec<_> =
        events.iter().filter(|e| e.stage == TraceStage::Submit).map(|e| e.req).collect();
    let full = submitted
        .iter()
        .find(|&&req| {
            let stages: Vec<TraceStage> =
                events.iter().filter(|e| e.req == req).map(|e| e.stage).collect();
            stages
                == vec![
                    TraceStage::Submit,
                    TraceStage::Propose,
                    TraceStage::QuorumAck,
                    TraceStage::Execute,
                    TraceStage::Reply,
                ]
        })
        .expect("at least one request must have its complete lifecycle in the ring");
    let times: Vec<Nanos> = events.iter().filter(|e| e.req == *full).map(|e| e.at).collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]), "lifecycle timestamps must be monotone");
}
