//! Mid-reconfiguration nemesis: crash the cluster *inside* a membership
//! change and check that nothing breaks.
//!
//! The ordinary nemesis ([`crate::nemesis`]) stresses a static membership;
//! this module stresses the cut-over itself. A designated client submits one
//! membership change (a join or a leave) at a fixed virtual time, a
//! [`FaultWindow::during_reconfig`] crash window fells a chosen victim —
//! the leader, the joining node, or the departing node — while the
//! transition is in flight, and the completed history is checked for
//! linearizability. The verdict additionally requires that the cut-over
//! *finished*: after healing, a majority of the target membership (leader
//! included) must report exactly the target configuration, never the old
//! one, and every message loss must be attributable to a known cause
//! (`unexplained == 0`).
//!
//! Like everything else in the harness the run is a pure function of its
//! seed: the same `(proto, victim, mode, seed)` tuple replays bit-for-bit,
//! and [`ReconfigOutcome::digest`] fingerprints the verdict for the smoke
//! job's artifact.

use crate::checker::{check_linearizability, Anomaly};
use crate::runner::Proto;
use paxi_core::config::ClusterConfig;
use paxi_core::faults::{CrashMode, FaultPlan, FaultWindow};
use paxi_core::id::NodeId;
use paxi_core::membership::ConfigChange;
use paxi_core::time::Nanos;
use paxi_core::traits::{Replica, ReplicaFactory};
use paxi_protocols::paxos::paxos_cluster;
use paxi_protocols::raft::raft_cluster;
use paxi_sim::client::uniform_workload;
use paxi_sim::{
    ClientSetup, LoadMode, ReconfigWorkload, SimConfig, SimReport, Simulator, Workload,
};
use paxi_storage::{FsyncPolicy, MemHub};

/// Which node the nemesis fells inside the transition window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigVictim {
    /// The initial leader (node 0) — the node driving the transition.
    Leader,
    /// The node being added by the change.
    Joiner,
    /// The node being removed by the change.
    Leaver,
}

impl ReconfigVictim {
    /// Stable label for step lines and digests.
    pub fn label(&self) -> &'static str {
        match self {
            ReconfigVictim::Leader => "leader",
            ReconfigVictim::Joiner => "joiner",
            ReconfigVictim::Leaver => "leaver",
        }
    }
}

/// Tunables of one mid-reconfiguration nemesis run.
#[derive(Debug, Clone)]
pub struct ReconfigConfig {
    /// Seed for the simulation (all randomness).
    pub seed: u64,
    /// Keys in the workload's space.
    pub keys: u64,
    /// Closed-loop clients (attached round-robin to the initial members).
    pub clients: usize,
    /// What the crash does to the victim.
    pub mode: CrashMode,
    /// Fsync policy, consulted under [`CrashMode::Amnesia`].
    pub fsync: FsyncPolicy,
}

impl Default for ReconfigConfig {
    fn default() -> Self {
        ReconfigConfig {
            seed: 1,
            keys: 8,
            clients: 4,
            mode: CrashMode::Freeze,
            fsync: FsyncPolicy::Always,
        }
    }
}

/// The verdict of one mid-reconfiguration nemesis run.
#[derive(Debug)]
pub struct ReconfigOutcome {
    /// Protocol display name.
    pub proto: String,
    /// The felled node's role.
    pub victim: ReconfigVictim,
    /// Crash semantics applied to the victim.
    pub mode: CrashMode,
    /// Seed the run executed under.
    pub seed: u64,
    /// Operations completed inside the measurement window.
    pub completed: u64,
    /// Completions in the fault-free tail (after the heal point).
    pub tail_completed: u64,
    /// Anomalous reads found by the linearizability checker (empty = pass).
    pub anomalies: Vec<Anomaly>,
    /// Message losses the drop ledger could not attribute to a known cause.
    pub unexplained_drops: u64,
    /// The membership the change was meant to install (sorted).
    pub target: Vec<NodeId>,
    /// Every node's post-run membership view, in universe order.
    pub final_members: Vec<Option<Vec<NodeId>>>,
    /// Human-readable schedule, for logs and the digest.
    pub steps: Vec<String>,
}

impl ReconfigOutcome {
    /// Whether the cut-over completed: a majority of the target membership
    /// — including the post-change members hosting the log — report exactly
    /// the target configuration. (A minority may still be catching up when
    /// the window closes; the old configuration must never win.)
    pub fn cut_over_complete(&self) -> bool {
        let universe: Vec<NodeId> = (0..self.final_members.len())
            .map(|i| NodeId::new(0, i as u8))
            .collect();
        let agreeing = universe
            .iter()
            .zip(&self.final_members)
            .filter(|(id, view)| {
                self.target.contains(id) && view.as_deref() == Some(self.target.as_slice())
            })
            .count();
        agreeing > self.target.len() / 2
    }

    /// Whether the run passed in full: anomaly-free, progressed after
    /// healing, fully-attributed losses, and a completed cut-over.
    pub fn passed(&self) -> bool {
        self.anomalies.is_empty()
            && self.tail_completed > 0
            && self.unexplained_drops == 0
            && self.cut_over_complete()
    }

    /// FNV-1a fingerprint of the schedule and verdict — the reconfig smoke
    /// job's artifact lines. Equal digests mean the same run reached the
    /// same verdict.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |bytes: &[u8]| {
            for b in bytes {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= 0x0a;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for s in &self.steps {
            fold(s.as_bytes());
        }
        fold(format!("anomalies={}", self.anomalies.len()).as_bytes());
        fold(format!("unexplained={}", self.unexplained_drops).as_bytes());
        fold(format!("cutover={}", self.cut_over_complete()).as_bytes());
        h
    }
}

/// Runs `proto` through a membership change with a crash inside the
/// transition window and checks the history plus the final configuration.
///
/// Geometry (fixed so every run is survivable by construction):
///
/// * universe of 6 nodes in one zone; nodes 0–4 are the initial members,
///   node 5 starts as a non-member;
/// * [`ReconfigVictim::Leaver`] runs a leave (remove node 4), the other
///   victims run a join (add node 5);
/// * the change is submitted at `warmup + measure·2/5`, the crash window is
///   [`FaultWindow::during_reconfig`]`(change, measure/5)`, and everything
///   heals at `horizon·3/4`, leaving the tail clean for re-election,
///   catch-up, and client retries.
///
/// Only [`Proto::Paxos`] and [`Proto::Raft`] support reconfiguration;
/// passing any other protocol panics.
pub fn run_reconfig_nemesis(
    proto: &Proto,
    mut sim: SimConfig,
    cfg: &ReconfigConfig,
    victim: ReconfigVictim,
) -> ReconfigOutcome {
    let cluster = ClusterConfig::lan(6);
    let initial: Vec<NodeId> = (0..5).map(|i| NodeId::new(0, i)).collect();
    let joiner = NodeId::new(0, 5);
    let leaver = NodeId::new(0, 4);
    let change = match victim {
        ReconfigVictim::Leaver => ConfigChange {
            add: vec![],
            remove: vec![leaver],
        },
        _ => ConfigChange {
            add: vec![joiner],
            remove: vec![],
        },
    };
    let target = change.apply(&initial);
    let victim_node = match victim {
        ReconfigVictim::Leader => NodeId::new(0, 0),
        ReconfigVictim::Joiner => joiner,
        ReconfigVictim::Leaver => leaver,
    };

    sim.seed = cfg.seed;
    sim.record_ops = true;
    sim.metrics = true;
    if sim.client_retry.is_none() {
        sim.client_retry = Some(Nanos::millis(500));
    }
    let horizon = sim.warmup + sim.measure;
    let reconfig_at = Nanos(sim.warmup.0 + sim.measure.0 * 2 / 5);
    let transition = Nanos(sim.measure.0 / 5);
    let heal_at = Nanos(horizon.0 * 3 / 4);

    let mut plan = FaultPlan::new();
    plan.crash_mode_in(
        victim_node,
        FaultWindow::during_reconfig(reconfig_at, transition),
        cfg.mode,
    );
    plan.heal(heal_at);
    let steps = vec![
        format!(
            "proto={} victim={} seed={}",
            proto.name(),
            victim.label(),
            cfg.seed
        ),
        format!(
            "reconfig add={:?} remove={:?} at={}",
            change.add, change.remove, reconfig_at.0
        ),
        format!(
            "crash mode={} node={victim_node} at={} dur={}",
            cfg.mode.label(),
            reconfig_at.0,
            transition.0
        ),
        format!("heal at={}", heal_at.0),
    ];

    // Clients attach round-robin to the *initial* members only: a client
    // wired to the not-yet-joined node would be load on a non-member.
    let clients: Vec<ClientSetup> = (0..cfg.clients)
        .map(|i| ClientSetup {
            zone: 0,
            attach: initial[i % initial.len()],
            mode: LoadMode::Closed { think: Nanos::ZERO },
        })
        .collect();
    // Client 0 (the first setup) carries the membership change.
    let workload = ReconfigWorkload::new(
        uniform_workload(cfg.keys),
        paxi_core::id::ClientId(0),
        reconfig_at,
        change,
        &initial,
    );

    let durable = match cfg.mode {
        CrashMode::Freeze => None,
        // Amnesia without durable state cannot rejoin in the right
        // configuration — the whole point of the config WAL records.
        CrashMode::Amnesia => Some(cfg.fsync),
    };
    let (report, final_members) = match proto {
        Proto::Paxos(pc) => {
            let mut pc = pc.clone();
            pc.initial_members = Some(initial.clone());
            go(
                sim,
                cluster.clone(),
                paxos_cluster(cluster, pc),
                workload,
                clients,
                plan,
                durable,
            )
        }
        Proto::Raft { cfg: rc, .. } => {
            let mut rc = rc.clone();
            rc.initial_members = Some(initial.clone());
            go(
                sim,
                cluster.clone(),
                raft_cluster(cluster, rc),
                workload,
                clients,
                plan,
                durable,
            )
        }
        other => panic!("{} does not support reconfiguration", other.name()),
    };

    let anomalies = check_linearizability(&report.ops);
    let tail_completed = report
        .ops
        .iter()
        .filter(|o| o.ok && o.ret >= heal_at)
        .count() as u64;
    let unexplained_drops = report.metrics.as_ref().map_or(0, |m| m.unexplained_drops());
    ReconfigOutcome {
        proto: proto.name(),
        victim,
        mode: cfg.mode,
        seed: cfg.seed,
        completed: report.completed,
        tail_completed,
        anomalies,
        unexplained_drops,
        target,
        final_members,
        steps,
    }
}

/// Builds the simulator (durable when asked), runs it, and reads back every
/// replica's membership view alongside the report.
fn go<R, F>(
    sim: SimConfig,
    cluster: ClusterConfig,
    factory: F,
    workload: impl Workload + 'static,
    clients: Vec<ClientSetup>,
    plan: FaultPlan,
    durable: Option<FsyncPolicy>,
) -> (SimReport, Vec<Option<Vec<NodeId>>>)
where
    R: Replica,
    F: ReplicaFactory<R = R> + 'static,
{
    match durable {
        None => {
            let mut s = Simulator::new(sim, cluster, factory, workload, clients);
            *s.faults_mut() = plan;
            let report = s.run();
            let members = s.replicas().iter().map(|r| r.current_members()).collect();
            (report, members)
        }
        Some(policy) => {
            let hub: MemHub<NodeId> = MemHub::new(policy);
            let disks = hub.clone();
            let durable_factory = move |id: NodeId| {
                let mut r = factory.make(id);
                r.attach_storage(Box::new(disks.open(id)));
                r
            };
            let mut s = Simulator::new(sim, cluster, durable_factory, workload, clients);
            s.set_storage(hub);
            *s.faults_mut() = plan;
            let report = s.run();
            let members = s.replicas().iter().map(|r| r.current_members()).collect();
            (report, members)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_sim() -> SimConfig {
        SimConfig {
            warmup: Nanos::millis(100),
            measure: Nanos::millis(3_900),
            ..SimConfig::default()
        }
    }

    #[test]
    fn paxos_join_without_faults_cuts_over() {
        let out = run_reconfig_nemesis(
            &Proto::paxos(),
            quick_sim(),
            &ReconfigConfig {
                seed: 3,
                ..Default::default()
            },
            ReconfigVictim::Joiner,
        );
        // Victim is the joiner under Freeze — still a real fault, but the
        // quorum never loses a member, so this doubles as the smoke check.
        assert!(out.anomalies.is_empty(), "anomalies: {:?}", out.anomalies);
        assert!(out.tail_completed > 0, "no post-heal progress");
        assert!(out.cut_over_complete(), "views: {:?}", out.final_members);
    }

    #[test]
    fn digest_is_deterministic_and_victim_sensitive() {
        let cfg = ReconfigConfig::default();
        let a = run_reconfig_nemesis(&Proto::paxos(), quick_sim(), &cfg, ReconfigVictim::Joiner);
        let b = run_reconfig_nemesis(&Proto::paxos(), quick_sim(), &cfg, ReconfigVictim::Joiner);
        assert_eq!(a.digest(), b.digest(), "same run, same digest");
        let c = run_reconfig_nemesis(&Proto::paxos(), quick_sim(), &cfg, ReconfigVictim::Leaver);
        assert_ne!(a.digest(), c.digest(), "different victim, different digest");
    }
}
