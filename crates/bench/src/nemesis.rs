//! Seeded nemesis: randomized fault schedules checked for linearizability.
//!
//! Jepsen-style robustness testing for the simulated protocols: a nemesis
//! derives a randomized — but fully seed-determined — [`FaultPlan`] for a
//! cluster (crashes of a minority, single-node partitions, flaky and slow
//! links), runs a protocol under it with every operation recorded, and feeds
//! the completed history through [`check_linearizability`]. Strongly
//! consistent protocols must come out anomaly-free under *every* schedule;
//! progress is guaranteed by construction because every schedule heals at
//! 75% of the run and leaves the tail fault-free for re-election and client
//! retries.
//!
//! Determinism is the point: the schedule is a pure function of
//! `(seed, cluster, horizon, episodes)`, and the simulator itself is
//! deterministic, so a failing seed can be replayed bit-for-bit (see the
//! "Chaos & nemesis runs" section of `EXPERIMENTS.md`). The
//! [`NemesisSchedule::digest`] fingerprint makes "same schedule" checkable
//! at a glance.

use crate::checker::{check_linearizability, Anomaly};
use crate::runner::{run_with_faults, run_with_faults_durable, Proto};
use paxi_core::config::ClusterConfig;
use paxi_core::dist::Rng64;
use paxi_core::faults::{CrashMode, FaultPlan, FaultWindow};
use paxi_core::id::NodeId;
use paxi_core::time::Nanos;
use paxi_sim::client::uniform_workload;
use paxi_sim::{ClientSetup, SimConfig};
use paxi_storage::FsyncPolicy;

/// Tunables of one nemesis run.
#[derive(Debug, Clone)]
pub struct NemesisConfig {
    /// Seed for the schedule *and* the simulation (all randomness).
    pub seed: u64,
    /// Number of fault episodes to place.
    pub episodes: usize,
    /// Keys in the workload's space (smaller = more contention).
    pub keys: u64,
    /// Closed-loop clients per zone.
    pub clients_per_zone: usize,
    /// What a crash episode does to its victim: [`CrashMode::Freeze`]
    /// retains memory across the outage; [`CrashMode::Amnesia`] wipes it, so
    /// replicas run with durable storage attached and recover by replaying
    /// their WAL.
    pub crash_mode: CrashMode,
    /// Fsync policy for the replicas' WALs. Only consulted under
    /// [`CrashMode::Amnesia`] (freeze runs keep replicas volatile, matching
    /// the original chaos layer).
    pub fsync: FsyncPolicy,
}

impl Default for NemesisConfig {
    fn default() -> Self {
        NemesisConfig {
            seed: 1,
            episodes: 5,
            keys: 8,
            clients_per_zone: 2,
            crash_mode: CrashMode::Freeze,
            fsync: FsyncPolicy::Always,
        }
    }
}

/// A generated fault schedule: the plan plus its human-readable steps.
#[derive(Debug, Clone)]
pub struct NemesisSchedule {
    /// The machine-consumable plan.
    pub plan: FaultPlan,
    /// One line per episode (plus the closing heal), for logs and replay.
    pub steps: Vec<String>,
    /// Crash semantics the schedule's crash episodes carry.
    pub mode: CrashMode,
}

impl NemesisSchedule {
    /// FNV-1a fingerprint of the crash mode and the step list — equal
    /// digests mean the same schedule *with the same crash semantics* was
    /// generated (the determinism tests assert this). The mode is folded in
    /// first and each crash step also carries its mode label, so a freeze
    /// schedule and its amnesia twin never collide; link fates (drop
    /// probability, slow delay) are part of the step strings and thus of the
    /// digest too.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |bytes: &[u8]| {
            for b in bytes {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= 0x0a;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        fold(self.mode.label().as_bytes());
        for s in &self.steps {
            fold(s.as_bytes());
        }
        h
    }
}

/// Derives a randomized fault schedule over `[0, horizon)` from `seed`.
///
/// Placement rules keep every schedule *survivable*:
///
/// * episodes start in `[horizon/20, horizon·7/10)` and last between
///   `horizon/20` and `horizon/4`;
/// * at most a minority of nodes is ever subject to crashing;
/// * everything heals at `horizon·3/4`, leaving the tail clean.
pub fn generate_schedule(
    seed: u64,
    cluster: &ClusterConfig,
    horizon: Nanos,
    episodes: usize,
) -> NemesisSchedule {
    generate_schedule_with_mode(seed, cluster, horizon, episodes, CrashMode::Freeze)
}

/// [`generate_schedule`] with explicit crash semantics: episode placement is
/// identical for both modes under the same seed (the mode is not consumed
/// from the randomness stream), so a freeze schedule and its amnesia twin
/// differ *only* in what a crash does to its victim — the cleanest A/B for
/// durability experiments.
pub fn generate_schedule_with_mode(
    seed: u64,
    cluster: &ClusterConfig,
    horizon: Nanos,
    episodes: usize,
    mode: CrashMode,
) -> NemesisSchedule {
    let nodes = cluster.all_nodes();
    let n = nodes.len();
    let mut rng = Rng64::seed(seed ^ 0x4E4D_4553_4953); // "NEMESIS"
    let mut plan = FaultPlan::new();
    let mut steps = Vec::new();

    let earliest = Nanos(horizon.0 / 20);
    let latest_start = Nanos(horizon.0 * 7 / 10);
    let heal_at = Nanos(horizon.0 * 3 / 4);
    let max_crashes = (n.saturating_sub(1)) / 2;
    let mut crashes_used = 0usize;

    for _ in 0..episodes {
        let at = Nanos(earliest.0 + rng.below((latest_start.0 - earliest.0).max(1)));
        let dur = Nanos(horizon.0 / 20 + rng.below((horizon.0 / 5).max(1)));
        let mut kind = rng.below(4);
        if kind == 0 && crashes_used >= max_crashes {
            kind = 3; // crash quota exhausted: degrade to a slow link
        }
        match kind {
            0 => {
                let victim = nodes[rng.below(n as u64) as usize];
                crashes_used += 1;
                plan.crash_mode_in(victim, FaultWindow::new(at, dur), mode);
                steps.push(format!(
                    "crash mode={} node={victim} at={} dur={}",
                    mode.label(),
                    at.0,
                    dur.0
                ));
            }
            1 => {
                let victim = nodes[rng.below(n as u64) as usize];
                let rest: Vec<NodeId> = nodes.iter().copied().filter(|&x| x != victim).collect();
                plan.partition(&[victim], &rest, at, dur);
                steps.push(format!("isolate node={victim} at={} dur={}", at.0, dur.0));
            }
            2 => {
                let (src, dst) = distinct_pair(&nodes, &mut rng);
                let p = 0.1 + 0.4 * rng.next_f64();
                plan.flaky_link(src, dst, p, at, dur);
                steps.push(format!(
                    "flaky src={src} dst={dst} p={:.3} at={} dur={}",
                    p, at.0, dur.0
                ));
            }
            _ => {
                let (src, dst) = distinct_pair(&nodes, &mut rng);
                let delay = Nanos::millis(1 + rng.below(4));
                plan.slow_link(src, dst, delay, at, dur);
                steps.push(format!(
                    "slow src={src} dst={dst} delay={} at={} dur={}",
                    delay.0, at.0, dur.0
                ));
            }
        }
    }
    plan.heal(heal_at);
    steps.push(format!("heal at={}", heal_at.0));
    NemesisSchedule { plan, steps, mode }
}

fn distinct_pair(nodes: &[NodeId], rng: &mut Rng64) -> (NodeId, NodeId) {
    let a = rng.below(nodes.len() as u64) as usize;
    let mut b = rng.below(nodes.len() as u64 - 1) as usize;
    if b >= a {
        b += 1;
    }
    (nodes[a], nodes[b])
}

/// The verdict of one nemesis run.
#[derive(Debug)]
pub struct NemesisOutcome {
    /// Protocol display name.
    pub proto: String,
    /// Seed the schedule and simulation ran under.
    pub seed: u64,
    /// The schedule that was applied.
    pub schedule: NemesisSchedule,
    /// Operations completed inside the measurement window.
    pub completed: u64,
    /// Completions in the fault-free tail (after the heal point) — nonzero
    /// means the system recovered.
    pub tail_completed: u64,
    /// Anomalous reads found by the linearizability checker (empty = pass).
    pub anomalies: Vec<Anomaly>,
}

impl NemesisOutcome {
    /// Whether the run is anomaly-free and made progress after healing.
    pub fn passed(&self) -> bool {
        self.anomalies.is_empty() && self.tail_completed > 0
    }
}

/// Runs `proto` under a seeded random fault schedule and checks the history.
///
/// `sim` supplies the topology and timing template (its `topology` must match
/// `cluster`, as with [`crate::runner::run`]); the nemesis overrides the
/// seed, enables op recording, and arms client retries so abandoned requests
/// are re-issued rather than wedging closed-loop clients.
pub fn run_nemesis(
    proto: &Proto,
    mut sim: SimConfig,
    cluster: ClusterConfig,
    cfg: &NemesisConfig,
) -> NemesisOutcome {
    let horizon = sim.warmup + sim.measure;
    let schedule =
        generate_schedule_with_mode(cfg.seed, &cluster, horizon, cfg.episodes, cfg.crash_mode);
    sim.seed = cfg.seed;
    sim.record_ops = true;
    if sim.client_retry.is_none() {
        sim.client_retry = Some(Nanos::millis(500));
    }
    let clients = ClientSetup::closed_per_zone(&cluster, cfg.clients_per_zone);
    let heal_at = Nanos(horizon.0 * 3 / 4);
    let report = match cfg.crash_mode {
        CrashMode::Freeze => run_with_faults(
            proto,
            sim,
            cluster,
            uniform_workload(cfg.keys),
            clients,
            schedule.plan.clone(),
        ),
        // Amnesia without durable state cannot be linearizable; the durable
        // runner attaches per-node WALs and rebuilds victims from them.
        CrashMode::Amnesia => run_with_faults_durable(
            proto,
            sim,
            cluster,
            uniform_workload(cfg.keys),
            clients,
            schedule.plan.clone(),
            cfg.fsync,
        ),
    };
    let anomalies = check_linearizability(&report.ops);
    let tail_completed = report
        .ops
        .iter()
        .filter(|o| o.ok && o.ret >= heal_at)
        .count() as u64;
    NemesisOutcome {
        proto: proto.name(),
        seed: cfg.seed,
        schedule,
        completed: report.completed,
        tail_completed,
        anomalies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_per_seed() {
        let cluster = ClusterConfig::lan(5);
        let a = generate_schedule(7, &cluster, Nanos::secs(6), 5);
        let b = generate_schedule(7, &cluster, Nanos::secs(6), 5);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.digest(), b.digest());
        let c = generate_schedule(8, &cluster, Nanos::secs(6), 5);
        assert_ne!(a.digest(), c.digest(), "different seed, different schedule");
    }

    #[test]
    fn digest_distinguishes_crash_semantics() {
        // Regression: the fingerprint once hashed only the step list, so a
        // freeze schedule and its amnesia twin (identical placement, same
        // seed) collided. Mode is now folded into the digest directly and
        // via the crash step labels.
        let cluster = ClusterConfig::lan(5);
        let horizon = Nanos::secs(6);
        // Seed 7 places at least one crash episode (asserted below).
        let freeze = generate_schedule_with_mode(7, &cluster, horizon, 5, CrashMode::Freeze);
        let amnesia = generate_schedule_with_mode(7, &cluster, horizon, 5, CrashMode::Amnesia);
        assert!(
            freeze.steps.iter().any(|s| s.starts_with("crash")),
            "seed must exercise a crash: {:?}",
            freeze.steps
        );
        assert_ne!(
            freeze.digest(),
            amnesia.digest(),
            "crash semantics must not collide"
        );
        // Same mode stays deterministic.
        let again = generate_schedule_with_mode(7, &cluster, horizon, 5, CrashMode::Amnesia);
        assert_eq!(amnesia.digest(), again.digest());
        // Placement is mode-independent: only the crash lines differ.
        assert_eq!(freeze.steps.len(), amnesia.steps.len());
        for (f, a) in freeze.steps.iter().zip(&amnesia.steps) {
            if f.starts_with("crash") {
                assert!(a.starts_with("crash mode=amnesia"));
            } else {
                assert_eq!(f, a);
            }
        }
    }

    #[test]
    fn amnesia_nemesis_on_paxos_passes() {
        let sim = SimConfig {
            warmup: Nanos::millis(100),
            measure: Nanos::millis(3_900),
            ..SimConfig::default()
        };
        let out = run_nemesis(
            &Proto::paxos(),
            sim,
            ClusterConfig::lan(5),
            &NemesisConfig {
                seed: 11,
                crash_mode: CrashMode::Amnesia,
                ..Default::default()
            },
        );
        assert!(out.anomalies.is_empty(), "anomalies: {:?}", out.anomalies);
        assert!(out.tail_completed > 0, "no post-heal progress");
    }

    #[test]
    fn schedules_never_crash_a_majority() {
        let cluster = ClusterConfig::lan(5);
        for seed in 0..50 {
            let s = generate_schedule(seed, &cluster, Nanos::secs(6), 12);
            let crashes = s.steps.iter().filter(|l| l.starts_with("crash")).count();
            assert!(crashes <= 2, "seed {seed}: {crashes} crash episodes");
        }
    }

    #[test]
    fn schedules_heal_before_the_tail() {
        let cluster = ClusterConfig::lan(5);
        let horizon = Nanos::secs(6);
        let s = generate_schedule(3, &cluster, horizon, 8);
        let heal = Nanos(horizon.0 * 3 / 4);
        // After the heal point no crash window is active and every message
        // fate is a plain delivery.
        let mut rng = Rng64::seed(9);
        let nodes = cluster.all_nodes();
        for &node in &nodes {
            assert!(!s.plan.is_crashed(node, heal));
            assert!(!s.plan.is_crashed(node, horizon));
        }
        for &a in &nodes {
            for &b in &nodes {
                if a == b {
                    continue;
                }
                match s.plan.message_fate(a, b, heal, &mut rng) {
                    paxi_core::faults::MsgFate::Deliver { extra_delay } => {
                        assert_eq!(extra_delay, Nanos::ZERO)
                    }
                    other => panic!("fault active after heal: {a}->{b} {other:?}"),
                }
            }
        }
    }

    #[test]
    fn nemesis_run_on_paxos_passes() {
        let sim = SimConfig {
            warmup: Nanos::millis(100),
            measure: Nanos::millis(3_900),
            ..SimConfig::default()
        };
        let out = run_nemesis(
            &Proto::paxos(),
            sim,
            ClusterConfig::lan(5),
            &NemesisConfig {
                seed: 11,
                ..Default::default()
            },
        );
        assert!(out.anomalies.is_empty(), "anomalies: {:?}", out.anomalies);
        assert!(out.tail_completed > 0, "no post-heal progress");
    }
}
