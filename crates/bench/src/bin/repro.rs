//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro all [--quick]          run every experiment
//! repro <id> [--quick]         run one experiment (fig3, table1, fig4, fig7,
//!                              fig8, fig9, fig10, fig11, fig12, fig13,
//!                              table3, formulas, fig14, ablation, batching,
//!                              sharding, crossval, availability, durability)
//! repro list                   list experiment ids
//! ```
//!
//! Tables print to stdout and are written as CSV under `results/`.

use paxi_bench::figures;
use std::path::Path;

const IDS: &[&str] = &[
    "fig3", "table1", "fig4", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
    "table3", "formulas", "fig14", "ablation", "batching", "sharding", "crossval",
    "availability", "durability",
];

/// Prints an experiment's tables, writes their CSVs, and — when the
/// experiment ships a perf baseline (`figures::baseline_for`) — writes its
/// `BENCH_*.json` next to the repo root for the CI smoke artifacts.
fn emit(name: &str, tables: &[paxi_bench::Table], results: &Path) {
    for t in tables {
        println!("{}", t.render());
        match t.write_csv(results) {
            Ok(path) => println!("  -> {}\n", path.display()),
            Err(e) => eprintln!("  !! could not write CSV: {e}"),
        }
    }
    if let Some((file, json)) = figures::baseline_for(name, tables) {
        match std::fs::write(file, json) {
            Ok(()) => println!("  -> {file}\n"),
            Err(e) => eprintln!("  !! could not write {file}: {e}"),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let target = args.iter().find(|a| !a.starts_with("--")).map(String::as_str).unwrap_or("all");
    let results = Path::new("results");

    match target {
        "list" => {
            for id in IDS {
                println!("{id}");
            }
        }
        "all" => {
            for (name, tables) in figures::all(quick) {
                println!("### {name}");
                emit(name, &tables, results);
            }
        }
        id => match figures::by_name(id, quick) {
            Some(tables) => emit(id, &tables, results),
            None => {
                eprintln!("unknown experiment '{id}'; try: repro list");
                std::process::exit(2);
            }
        },
    }
}
