//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro all [--quick] [--metrics]    run every experiment
//! repro <id> [--quick] [--metrics]   run one experiment (fig3, table1, fig4,
//!                                    fig7, fig8, fig9, fig10, fig11, fig12,
//!                                    fig13, table3, formulas, fig14,
//!                                    ablation, batching, sharding, crossval,
//!                                    availability, durability, reactor)
//! repro list                         list experiment ids
//! ```
//!
//! Tables print to stdout and are written as CSV under `results/`. With
//! `--metrics`, each experimental figure also runs a short metrics-enabled
//! probe and writes its per-node observability snapshot as
//! `results/metrics_<id>.json`; the process exits nonzero if any probe
//! reports unexplained drops (losses outside the drop-cause ledger).

use paxi_bench::figures;
use std::path::Path;

const IDS: &[&str] = &[
    "fig3", "table1", "fig4", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
    "table3", "formulas", "fig14", "ablation", "batching", "sharding", "crossval",
    "availability", "durability", "reactor",
];

/// Prints an experiment's tables, writes their CSVs, and — when the
/// experiment ships a perf baseline (`figures::baseline_for`) — writes its
/// `BENCH_*.json` next to the repo root for the CI smoke artifacts. With
/// `metrics` set, also writes the figure's observability snapshot and
/// returns its unexplained-drop count (zero when the figure has no probe).
fn emit(
    name: &str,
    tables: &[paxi_bench::Table],
    results: &Path,
    metrics: bool,
    quick: bool,
) -> u64 {
    for t in tables {
        println!("{}", t.render());
        match t.write_csv(results) {
            Ok(path) => println!("  -> {}\n", path.display()),
            Err(e) => eprintln!("  !! could not write CSV: {e}"),
        }
    }
    if let Some((file, json)) = figures::baseline_for(name, tables) {
        match std::fs::write(file, json) {
            Ok(()) => println!("  -> {file}\n"),
            Err(e) => eprintln!("  !! could not write {file}: {e}"),
        }
    }
    if !metrics {
        return 0;
    }
    let Some(side) = figures::metrics::snapshot(name, quick) else {
        return 0;
    };
    let _ = std::fs::create_dir_all(results);
    let path = results.join(&side.file);
    let n = side.unexplained_drops;
    match std::fs::write(&path, &side.json) {
        Ok(()) => println!("  -> {} (unexplained drops: {n})\n", path.display()),
        Err(e) => eprintln!("  !! could not write {}: {e}", path.display()),
    }
    if n > 0 {
        eprintln!("  !! {name}: {n} unexplained drops — silent-loss accounting gap");
    }
    side.unexplained_drops
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let metrics = args.iter().any(|a| a == "--metrics");
    let target = args.iter().find(|a| !a.starts_with("--")).map(String::as_str).unwrap_or("all");
    let results = Path::new("results");
    let mut unexplained = 0u64;

    match target {
        "list" => {
            for id in IDS {
                println!("{id}");
            }
        }
        "all" => {
            for (name, tables) in figures::all(quick) {
                println!("### {name}");
                unexplained += emit(name, &tables, results, metrics, quick);
            }
        }
        id => match figures::by_name(id, quick) {
            Some(tables) => unexplained += emit(id, &tables, results, metrics, quick),
            None => {
                eprintln!("unknown experiment '{id}'; try: repro list");
                std::process::exit(2);
            }
        },
    }
    if unexplained > 0 {
        eprintln!("!! {unexplained} unexplained drops across metrics probes");
        std::process::exit(1);
    }
}
