//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! repro all [--quick]          run every experiment
//! repro <id> [--quick]         run one experiment (fig3, table1, fig4, fig7,
//!                              fig8, fig9, fig10, fig11, fig12, fig13,
//!                              table3, formulas, fig14)
//! repro list                   list experiment ids
//! ```
//!
//! Tables print to stdout and are written as CSV under `results/`.

use paxi_bench::figures;
use std::path::Path;

const IDS: &[&str] = &[
    "fig3", "table1", "fig4", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
    "table3", "formulas", "fig14", "ablation", "batching", "crossval", "availability",
];

/// The batching ablation doubles as the perf-trajectory baseline: alongside
/// its CSV it writes `BENCH_batching.json` for the CI bench-smoke artifact.
fn write_batching_baseline(tables: &[paxi_bench::Table]) {
    let json = figures::batching::baseline_json(tables);
    match std::fs::write("BENCH_batching.json", json) {
        Ok(()) => println!("  -> BENCH_batching.json\n"),
        Err(e) => eprintln!("  !! could not write BENCH_batching.json: {e}"),
    }
}

fn emit(tables: &[paxi_bench::Table], results: &Path) {
    for t in tables {
        println!("{}", t.render());
        match t.write_csv(results) {
            Ok(path) => println!("  -> {}\n", path.display()),
            Err(e) => eprintln!("  !! could not write CSV: {e}"),
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let target = args.iter().find(|a| !a.starts_with("--")).map(String::as_str).unwrap_or("all");
    let results = Path::new("results");

    match target {
        "list" => {
            for id in IDS {
                println!("{id}");
            }
        }
        "all" => {
            for (name, tables) in figures::all(quick) {
                println!("### {name}");
                emit(&tables, results);
                if name == "batching" {
                    write_batching_baseline(&tables);
                }
            }
        }
        id => match figures::by_name(id, quick) {
            Some(tables) => {
                emit(&tables, results);
                if id == "batching" {
                    write_batching_baseline(&tables);
                }
            }
            None => {
                eprintln!("unknown experiment '{id}'; try: repro list");
                std::process::exit(2);
            }
        },
    }
}
