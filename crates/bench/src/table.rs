//! Result tables: aligned console rendering + CSV export.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// A titled grid of results — one per reproduced table/figure series.
#[derive(Debug, Clone)]
pub struct Table {
    /// Title shown above the table and used for the CSV file name.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of rendered cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the column count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.columns.len(),
            "row width mismatch in '{}'",
            self.title
        );
        self.rows.push(cells);
        self
    }

    /// Renders as an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(out, "{}", "-".repeat(header.join("  ").len()));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// File-system-safe slug of the title.
    pub fn slug(&self) -> String {
        self.title
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() {
                    c.to_ascii_lowercase()
                } else {
                    '_'
                }
            })
            .collect::<String>()
            .split('_')
            .filter(|s| !s.is_empty())
            .collect::<Vec<_>>()
            .join("_")
    }

    /// Renders the table as a `BENCH_*.json` perf baseline: one JSON object
    /// per row, `fields[i]` naming column `i`. Cells that parse as numbers
    /// are emitted raw, everything else as a JSON string. Hand-formatted
    /// because the workspace deliberately carries no JSON dependency; every
    /// figure that ships a baseline goes through this one writer.
    pub fn baseline_json(&self, benchmark: &str, config: &str, fields: &[&str]) -> String {
        assert_eq!(
            fields.len(),
            self.columns.len(),
            "one JSON field per column in '{}'",
            self.title
        );
        let cell = |c: &str| {
            if c.parse::<f64>().is_ok() {
                c.to_string()
            } else {
                format!("\"{}\"", c.replace('\\', "\\\\").replace('"', "\\\""))
            }
        };
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"benchmark\": \"{benchmark}\",");
        let _ = writeln!(s, "  \"config\": \"{config}\",");
        s.push_str("  \"series\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            let sep = if i + 1 == self.rows.len() { "" } else { "," };
            let obj: Vec<String> = fields
                .iter()
                .zip(row)
                .map(|(f, c)| format!("\"{f}\": {}", cell(c)))
                .collect();
            let _ = writeln!(s, "    {{{}}}{sep}", obj.join(", "));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Writes the table as CSV into `dir`, returning the path.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.slug()));
        let mut s = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let _ = writeln!(
            s,
            "{}",
            self.columns
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                s,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        std::fs::write(&path, s)?;
        Ok(path)
    }
}

/// Formats a float with 2 decimals (table cells).
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 0 decimals.
pub fn f0(v: f64) -> String {
    format!("{v:.0}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("long-name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn slug_is_fs_safe() {
        let t = Table::new("Fig 8a: Modeled LAN (max throughput)", &["x"]);
        assert_eq!(t.slug(), "fig_8a_modeled_lan_max_throughput");
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join("paxi_table_test");
        let mut t = Table::new("csv test", &["a", "b"]);
        t.row(vec!["1,5".into(), "x".into()]);
        let path = t.write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "a,b\n\"1,5\",x\n");
    }

    #[test]
    #[should_panic]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("bad", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn baseline_json_quotes_strings_and_leaves_numbers_raw() {
        let mut t = Table::new("demo", &["protocol", "groups", "tput"]);
        t.row(vec!["Paxos".into(), "4".into(), "25434".into()]);
        t.row(vec!["Raft".into(), "1".into(), "8912.50".into()]);
        let json = t.baseline_json("demo_bench", "cfg \"x\"", &["protocol", "groups", "tput"]);
        assert!(json.contains("\"benchmark\": \"demo_bench\""));
        assert!(json.contains("{\"protocol\": \"Paxos\", \"groups\": 4, \"tput\": 25434},"));
        // Last row has no trailing comma.
        assert!(json.contains("{\"protocol\": \"Raft\", \"groups\": 1, \"tput\": 8912.50}\n"));
    }

    #[test]
    #[should_panic(expected = "one JSON field per column")]
    fn baseline_json_field_count_mismatch_panics() {
        let t = Table::new("demo", &["a", "b"]);
        t.baseline_json("x", "y", &["a"]);
    }
}
