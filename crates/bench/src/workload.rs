//! The workload generator.
//!
//! Translates a [`BenchmarkConfig`] (paper Table 3) into a
//! [`paxi_sim::Workload`]: tunable read/write mix, key-popularity
//! distributions (Figure 6), conflicting-key pools, per-zone access locality
//! (Normal popularity with a zone-specific mean), and the moving hotspot.

use crate::config::{BenchmarkConfig, Distribution};
use paxi_core::command::Command;
use paxi_core::dist::{KeyDist, KeySampler, Rng64};
use paxi_core::id::ClientId;
use paxi_core::time::Nanos;
use paxi_sim::client::unique_value;
use paxi_sim::Workload;

/// Workload generator over a key space, parameterized per Table 3.
pub struct GeneralWorkload {
    cfg: BenchmarkConfig,
    zones: u64,
    sampler: Option<KeySampler>,
}

impl GeneralWorkload {
    /// Builds the generator for a deployment of `zones` zones (locality
    /// workloads center each zone's Normal on its own slice of the key
    /// space).
    pub fn new(cfg: BenchmarkConfig, zones: u8) -> Self {
        let sampler = match cfg.distribution {
            Distribution::Uniform => Some(KeySampler::new(cfg.K.max(1), KeyDist::Uniform)),
            Distribution::Zipfian => Some(KeySampler::new(
                cfg.K.max(1),
                KeyDist::Zipfian {
                    s: cfg.zipfian_s,
                    v: cfg.zipfian_v,
                },
            )),
            Distribution::Exponential => Some(KeySampler::new(
                cfg.K.max(1),
                KeyDist::Exponential {
                    rate: 8.0 / cfg.K.max(1) as f64,
                },
            )),
            Distribution::Normal => None, // per-zone mean, sampled inline
        };
        GeneralWorkload {
            cfg,
            zones: zones.max(1) as u64,
            sampler,
        }
    }

    /// The Normal-distribution center for `zone` at time `now`: zones are
    /// spread evenly over the key space, and with `move_hotspot` the center
    /// drifts one σ every `speed_ms`.
    pub fn zone_mu(&self, zone: u8, now: Nanos) -> f64 {
        let k = self.cfg.K.max(1) as f64;
        let base = if self.cfg.mu != 0.0 {
            self.cfg.mu + zone as f64 * k / self.zones as f64
        } else {
            (zone as f64 + 0.5) * k / self.zones as f64
        };
        if self.cfg.move_hotspot {
            let steps = now.0 / Nanos::millis(self.cfg.speed_ms.max(1)).0;
            (base + steps as f64 * self.cfg.sigma).rem_euclid(k)
        } else {
            base
        }
    }

    fn sample_key(&self, client: ClientId, zone: u8, now: Nanos, rng: &mut Rng64) -> u64 {
        // The conflicting portion of requests draws from the shared pool;
        // the rest are client-private (never interfering).
        if !rng.chance(self.cfg.conflicts as f64 / 100.0) {
            return self.cfg.K + self.cfg.min + client.0 as u64;
        }
        let key = match self.cfg.distribution {
            Distribution::Normal => {
                let mu = self.zone_mu(zone, now);
                let v = rng.normal(mu, self.cfg.sigma).round();
                (v.rem_euclid(self.cfg.K.max(1) as f64)) as u64
            }
            _ => self.sampler.as_ref().expect("sampler").sample(rng),
        };
        self.cfg.min + key.min(self.cfg.K.saturating_sub(1))
    }
}

impl Workload for GeneralWorkload {
    fn next(
        &mut self,
        client: ClientId,
        zone: u8,
        seq: u64,
        now: Nanos,
        rng: &mut Rng64,
    ) -> Command {
        let key = self.sample_key(client, zone, now, rng);
        if rng.chance(self.cfg.W) {
            Command::put(key, unique_value(client, seq))
        } else {
            Command::get(key)
        }
    }
}

/// A single-hot-key conflict workload (the paper's WAN conflict experiment,
/// Figure 11): with probability `conflict` the request writes the designated
/// hot key; otherwise it writes a key private to the issuing zone.
pub struct HotKeyWorkload {
    /// Probability of targeting the hot key.
    pub conflict: f64,
    /// The shared hot key.
    pub hot_key: u64,
    /// Keys per zone for the non-conflicting portion.
    pub private_keys: u64,
}

impl Workload for HotKeyWorkload {
    fn next(
        &mut self,
        client: ClientId,
        zone: u8,
        seq: u64,
        _now: Nanos,
        rng: &mut Rng64,
    ) -> Command {
        let key = if rng.chance(self.conflict) {
            self.hot_key
        } else {
            1 + 1000 * (zone as u64 + 1) + rng.below(self.private_keys.max(1))
        };
        Command::put(key, unique_value(client, seq))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_ratio_is_respected() {
        let mut w = GeneralWorkload::new(BenchmarkConfig::uniform(100, 0.3), 1);
        let mut rng = Rng64::seed(1);
        let mut writes = 0;
        let n = 10_000;
        for seq in 0..n {
            if w.next(ClientId(0), 0, seq, Nanos::ZERO, &mut rng)
                .is_write()
            {
                writes += 1;
            }
        }
        let ratio = writes as f64 / n as f64;
        assert!((ratio - 0.3).abs() < 0.03, "write ratio {ratio}");
    }

    #[test]
    fn conflicts_zero_means_private_keys_only() {
        let cfg = BenchmarkConfig {
            conflicts: 0,
            ..BenchmarkConfig::uniform(100, 1.0)
        };
        let mut w = GeneralWorkload::new(cfg, 1);
        let mut rng = Rng64::seed(2);
        for seq in 0..1000 {
            let c0 = w.next(ClientId(0), 0, seq, Nanos::ZERO, &mut rng);
            let c1 = w.next(ClientId(1), 0, seq, Nanos::ZERO, &mut rng);
            assert_ne!(c0.key, c1.key, "private keys must differ per client");
        }
    }

    #[test]
    fn locality_zones_get_distinct_centers() {
        let mut w = GeneralWorkload::new(BenchmarkConfig::locality(1000, 30.0), 3);
        let mut rng = Rng64::seed(3);
        let mean_of = |w: &mut GeneralWorkload, zone: u8, rng: &mut Rng64| {
            let mut sum = 0.0;
            for seq in 0..2000 {
                sum += w.next(ClientId(0), zone, seq, Nanos::ZERO, rng).key as f64;
            }
            sum / 2000.0
        };
        let m0 = mean_of(&mut w, 0, &mut rng);
        let m1 = mean_of(&mut w, 1, &mut rng);
        let m2 = mean_of(&mut w, 2, &mut rng);
        assert!((m0 - 166.0).abs() < 30.0, "zone0 mean {m0}");
        assert!((m1 - 500.0).abs() < 30.0, "zone1 mean {m1}");
        assert!((m2 - 833.0).abs() < 30.0, "zone2 mean {m2}");
    }

    #[test]
    fn moving_hotspot_drifts_with_time() {
        let cfg = BenchmarkConfig {
            move_hotspot: true,
            speed_ms: 100,
            ..BenchmarkConfig::locality(1000, 10.0)
        };
        let w = GeneralWorkload::new(cfg, 2);
        let early = w.zone_mu(0, Nanos::ZERO);
        let later = w.zone_mu(0, Nanos::millis(1000));
        assert!(
            (later - early - 100.0).abs() < 1e-9,
            "10 steps of sigma=10: {early} -> {later}"
        );
    }

    #[test]
    fn hot_key_workload_targets_hot_key() {
        let mut w = HotKeyWorkload {
            conflict: 0.4,
            hot_key: 0,
            private_keys: 10,
        };
        let mut rng = Rng64::seed(4);
        let mut hot = 0;
        let n = 10_000;
        for seq in 0..n {
            if w.next(ClientId(0), 1, seq, Nanos::ZERO, &mut rng).key == 0 {
                hot += 1;
            }
        }
        let frac = hot as f64 / n as f64;
        assert!((frac - 0.4).abs() < 0.03, "hot fraction {frac}");
    }

    #[test]
    fn zipfian_workload_skews() {
        let cfg = BenchmarkConfig {
            distribution: Distribution::Zipfian,
            ..BenchmarkConfig::uniform(1000, 1.0)
        };
        let mut w = GeneralWorkload::new(cfg, 1);
        let mut rng = Rng64::seed(5);
        let mut zero = 0;
        for seq in 0..5_000 {
            if w.next(ClientId(0), 0, seq, Nanos::ZERO, &mut rng).key == 0 {
                zero += 1;
            }
        }
        assert!(
            zero as f64 / 5_000.0 > 0.4,
            "rank-0 fraction {}",
            zero as f64 / 5_000.0
        );
    }
}
