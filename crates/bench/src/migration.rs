//! Mid-migration nemesis: crash the cluster *inside* a shard hand-off and
//! check that exactly one group owns the range afterwards.
//!
//! The sharded nemesis ([`crate::sharded::run_sharded_nemesis`]) stresses a
//! static partition; this module stresses the hand-off itself. A designated
//! client submits one `MigrationStart` at a fixed virtual time, a crash
//! window fells a chosen victim — the source group's leader, the destination
//! group's leader, or a follower of both — aligned with a chosen protocol
//! phase (start, stream, or commit), and the completed history is checked
//! for linearizability. The verdict additionally requires that the hand-off
//! *finished* (a majority of nodes report the target routing epoch), that no
//! surviving replica state shows dual ownership or an uninstalled copy of
//! the range, that no acknowledged write was orphaned, and that every
//! message loss is attributable (`unexplained == 0`).
//!
//! Like everything else in the harness the run is a pure function of its
//! seed: the same `(proto, victim, stage, mode, seed)` tuple replays
//! bit-for-bit, and [`MigrationOutcome::digest`] fingerprints the verdict
//! for the smoke job's artifact.

use crate::checker::{check_linearizability, Anomaly};
use crate::sharded::ShardProto;
use paxi_core::config::ClusterConfig;
use paxi_core::faults::{CrashMode, FaultPlan, FaultWindow};
use paxi_core::group::GroupId;
use paxi_core::id::{ClientId, NodeId};
use paxi_core::migration::{KeyRange, MigrationSpec};
use paxi_core::time::Nanos;
use paxi_core::traits::Replica;
use paxi_protocols::paxos::{MultiPaxos, PaxosConfig};
use paxi_protocols::raft::{Raft, RaftConfig};
use paxi_shard::{
    sharded_cluster, spread_leader, Partitioner, RangePartitioner, ShardDisks, ShardSpec,
    ShardedReplica,
};
use paxi_sim::client::uniform_workload;
use paxi_sim::report::{OpRecord, SimReport};
use paxi_sim::{ClientSetup, MigrationWorkload, SimConfig, Simulator, Workload};
use paxi_storage::FsyncPolicy;

/// Which node the nemesis fells inside the hand-off window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationVictim {
    /// The source group's placed leader — the node driving the hand-off.
    SourceLeader,
    /// The destination group's placed leader — the node that must install.
    DestLeader,
    /// A node leading neither group.
    Follower,
}

impl MigrationVictim {
    /// Stable label for step lines and digests.
    pub fn label(&self) -> &'static str {
        match self {
            MigrationVictim::SourceLeader => "source-leader",
            MigrationVictim::DestLeader => "dest-leader",
            MigrationVictim::Follower => "follower",
        }
    }
}

/// Which protocol phase the crash window is aligned with. The window is far
/// wider than one phase (it must be survivable yet disruptive), so the
/// stage picks its *onset*: at the kick-off, during the state stream, or
/// around the commit halves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationStage {
    /// Crash lands as `MigrationStart` is submitted.
    Start,
    /// Crash lands while the frozen range state is streaming.
    Stream,
    /// Crash lands around the `MigrationCommit` halves.
    Commit,
}

impl MigrationStage {
    /// Stable label for step lines and digests.
    pub fn label(&self) -> &'static str {
        match self {
            MigrationStage::Start => "start",
            MigrationStage::Stream => "stream",
            MigrationStage::Commit => "commit",
        }
    }

    /// Offset of the crash window's onset from the kick-off, tuned to the
    /// shard driver's 25 ms control-timer cadence: the install is proposed
    /// on the first tick after `Start` commits and the commit halves one
    /// tick later.
    fn offset(&self) -> Nanos {
        match self {
            MigrationStage::Start => Nanos::ZERO,
            MigrationStage::Stream => Nanos::millis(25),
            MigrationStage::Commit => Nanos::millis(50),
        }
    }
}

/// Tunables of one mid-migration nemesis run.
#[derive(Debug, Clone)]
pub struct MigrationConfig {
    /// Seed for the simulation (all randomness).
    pub seed: u64,
    /// Keys in the workload's space (at least 4; the upper half of group
    /// 0's slice is what migrates).
    pub keys: u64,
    /// Closed-loop clients, attached round-robin across the cluster.
    pub clients: usize,
    /// What the crash does to the victim.
    pub mode: CrashMode,
    /// Fsync policy, consulted under [`CrashMode::Amnesia`].
    pub fsync: FsyncPolicy,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            seed: 1,
            keys: 8,
            clients: 4,
            mode: CrashMode::Freeze,
            fsync: FsyncPolicy::Always,
        }
    }
}

/// Post-run audit of the surviving replica state, relative to one
/// migration.
#[derive(Debug)]
pub struct MigrationAudit {
    /// Every node's final routing epoch, in node order.
    pub routing_epochs: Vec<u64>,
    /// Dual-ownership violations: a source replica still storing range keys
    /// after its commit, or a destination replica storing range keys it
    /// never installed (empty = pass).
    pub dual_ownership: Vec<String>,
    /// Acknowledged writes to the migrated range held by no surviving
    /// replica of either group (empty = pass).
    pub orphaned: Vec<String>,
    /// [`crate::sharded::check_shard_leakage`] extended with a carve-out
    /// for the migrated range: every stored key *outside* it must still
    /// obey the base partitioner on every node (empty = pass).
    pub leakage: Vec<String>,
}

/// The verdict of one mid-migration nemesis run.
#[derive(Debug)]
pub struct MigrationOutcome {
    /// Protocol display name.
    pub proto: String,
    /// The felled node's role.
    pub victim: MigrationVictim,
    /// The phase the crash window was aligned with.
    pub stage: MigrationStage,
    /// Crash semantics applied to the victim.
    pub mode: CrashMode,
    /// Seed the run executed under.
    pub seed: u64,
    /// The migration the run executed.
    pub spec: MigrationSpec,
    /// Operations completed inside the measurement window.
    pub completed: u64,
    /// Completions in the fault-free tail (after the heal point).
    pub tail_completed: u64,
    /// Anomalous reads found by the linearizability checker (empty = pass).
    pub anomalies: Vec<Anomaly>,
    /// Message losses the drop ledger could not attribute to a known cause.
    pub unexplained_drops: u64,
    /// The surviving-state audit.
    pub audit: MigrationAudit,
    /// Human-readable schedule, for logs and the digest.
    pub steps: Vec<String>,
}

impl MigrationOutcome {
    /// Whether the hand-off completed: a majority of nodes report a routing
    /// epoch at least the migration's target. (A minority may still be
    /// catching up when the window closes; the old owner must never win.)
    pub fn cut_over_complete(&self) -> bool {
        let agreeing = self
            .audit
            .routing_epochs
            .iter()
            .filter(|&&e| e >= self.spec.epoch)
            .count();
        agreeing > self.audit.routing_epochs.len() / 2
    }

    /// Whether the run passed in full: anomaly-free, progressed after
    /// healing, fully-attributed losses, a completed cut-over, and a clean
    /// ownership audit.
    pub fn passed(&self) -> bool {
        self.anomalies.is_empty()
            && self.tail_completed > 0
            && self.unexplained_drops == 0
            && self.cut_over_complete()
            && self.audit.dual_ownership.is_empty()
            && self.audit.orphaned.is_empty()
            && self.audit.leakage.is_empty()
    }

    /// FNV-1a fingerprint of the schedule and verdict — the migration smoke
    /// job's artifact lines. Equal digests mean the same run reached the
    /// same verdict.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |bytes: &[u8]| {
            for b in bytes {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= 0x0a;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for s in &self.steps {
            fold(s.as_bytes());
        }
        fold(format!("anomalies={}", self.anomalies.len()).as_bytes());
        fold(format!("unexplained={}", self.unexplained_drops).as_bytes());
        fold(format!("cutover={}", self.cut_over_complete()).as_bytes());
        fold(format!("dual={}", self.audit.dual_ownership.len()).as_bytes());
        fold(format!("orphaned={}", self.audit.orphaned.len()).as_bytes());
        fold(format!("leakage={}", self.audit.leakage.len()).as_bytes());
        h
    }
}

/// Audits surviving replica state against `spec`. Only state transitions a
/// replica has *provably executed* are asserted on — a follower still
/// catching up at the horizon is lag, not a violation:
///
/// * a source replica whose tracker reports the commit executed must hold
///   no range key (the drop is part of the same log entry);
/// * a destination replica must not hold range keys without its tracker
///   reporting the install (state cannot appear out of thin air);
/// * every acknowledged write to the range must survive in *some* replica
///   of either group (frozen state streams, so an acked write is either
///   below `Start` and inside the stream, or executed at the destination);
/// * keys outside the range still obey the base partitioner everywhere —
///   [`crate::sharded::check_shard_leakage`] with the migrated range
///   carved out.
pub fn audit_handoff<R: Replica>(
    nodes: &[ShardedReplica<R>],
    part: &dyn Partitioner,
    spec: &MigrationSpec,
    ops: &[OpRecord],
) -> MigrationAudit {
    let from = spec.from.0 as usize;
    let to = spec.to.0 as usize;
    let mut routing_epochs = Vec::with_capacity(nodes.len());
    let mut dual_ownership = Vec::new();
    let mut leakage = Vec::new();
    for (ni, node) in nodes.iter().enumerate() {
        routing_epochs.push(node.routing().epoch());
        let reps = node.group_replicas();
        let src_done = reps[from].migration().is_some_and(|t| t.done(spec.id));
        if src_done {
            if let Some(store) = reps[from].store() {
                for key in store.keys().filter(|&k| spec.range.contains(k)) {
                    dual_ownership.push(format!(
                        "node {ni}: source group {} still stores key {key} after its commit",
                        spec.from
                    ));
                }
            }
        }
        let installed = reps[to].migration().is_some_and(|t| t.installed(spec.id));
        if !installed {
            if let Some(store) = reps[to].store() {
                for key in store.keys().filter(|&k| spec.range.contains(k)) {
                    dual_ownership.push(format!(
                        "node {ni}: dest group {} stores key {key} without an install",
                        spec.to
                    ));
                }
            }
        }
        for (g, inner) in reps.iter().enumerate() {
            if let Some(store) = inner.store() {
                for key in store.keys() {
                    if spec.range.contains(key) {
                        continue; // judged by the hand-off checks above
                    }
                    if !part.owns(GroupId(g as u32), key) {
                        leakage.push(format!(
                            "node {ni} group {g} stores key {key} owned by group {}",
                            part.group_of(key)
                        ));
                    }
                }
            }
        }
    }
    let mut orphaned = Vec::new();
    for key in spec.range.lo..spec.range.hi {
        let acked = ops
            .iter()
            .any(|o| o.ok && o.write.is_some() && o.key == key);
        if !acked {
            continue;
        }
        let held = nodes.iter().any(|n| {
            let reps = n.group_replicas();
            [from, to]
                .iter()
                .any(|&g| reps[g].store().is_some_and(|s| s.keys().any(|k| k == key)))
        });
        if !held {
            orphaned.push(format!(
                "key {key}: acknowledged write survives in no replica of either group"
            ));
        }
    }
    MigrationAudit {
        routing_epochs,
        dual_ownership,
        orphaned,
        leakage,
    }
}

/// Runs `proto` sharded over two groups through one range hand-off with a
/// crash inside the migration window and checks the history plus the
/// surviving ownership state.
///
/// Geometry (fixed so every run is survivable by construction):
///
/// * 5 nodes in one zone, 2 range-partitioned groups; spread placement
///   puts group 0's leader on node 0 and group 1's on node 1, so node 3 is
///   a follower of both;
/// * the upper half of group 0's slice (keys `[2, 4)` under the default
///   `keys = 8`) migrates to group 1 at epoch 1;
/// * the kick-off is submitted at `warmup + measure·2/5`, the crash window
///   opens at the stage's offset from it and lasts `measure/5`, and
///   everything heals at `horizon·3/4`, leaving the tail clean for
///   re-election, catch-up, re-proposal, and client retries.
///
/// Only [`ShardProto::Paxos`] and [`ShardProto::Raft`] carry migration
/// records through their WALs; passing [`ShardProto::EPaxos`] panics.
pub fn run_migration_nemesis(
    proto: ShardProto,
    mut sim: SimConfig,
    cfg: &MigrationConfig,
    victim: MigrationVictim,
    stage: MigrationStage,
) -> MigrationOutcome {
    assert!(
        cfg.keys >= 4,
        "need at least 4 keys to halve group 0's slice"
    );
    let cluster = ClusterConfig::lan(5);
    let groups = 2u32;
    let (lo0, hi0) = RangePartitioner::even(cfg.keys, groups).range(GroupId(0));
    let spec = MigrationSpec {
        id: 1,
        from: GroupId(0),
        to: GroupId(1),
        range: KeyRange::new(lo0 + (hi0 - lo0) / 2, hi0),
        epoch: 1,
    };
    let victim_node = match victim {
        MigrationVictim::SourceLeader => spread_leader(&cluster, spec.from),
        MigrationVictim::DestLeader => spread_leader(&cluster, spec.to),
        MigrationVictim::Follower => NodeId::new(0, 3),
    };

    sim.seed = cfg.seed;
    sim.record_ops = true;
    sim.metrics = true;
    if sim.client_retry.is_none() {
        sim.client_retry = Some(Nanos::millis(500));
    }
    let horizon = sim.warmup + sim.measure;
    let migrate_at = Nanos(sim.warmup.0 + sim.measure.0 * 2 / 5);
    let crash_at = Nanos(migrate_at.0 + stage.offset().0);
    let crash_dur = Nanos(sim.measure.0 / 5);
    let heal_at = Nanos(horizon.0 * 3 / 4);

    let mut plan = FaultPlan::new();
    plan.crash_mode_in(victim_node, FaultWindow::new(crash_at, crash_dur), cfg.mode);
    plan.heal(heal_at);
    let steps = vec![
        format!(
            "proto=Sharded{}(g={groups}) victim={} stage={} seed={}",
            proto.name(),
            victim.label(),
            stage.label(),
            cfg.seed
        ),
        format!("migrate {spec} at={}", migrate_at.0),
        format!(
            "crash mode={} node={victim_node} at={} dur={}",
            cfg.mode.label(),
            crash_at.0,
            crash_dur.0
        ),
        format!("heal at={}", heal_at.0),
    ];

    let clients: Vec<ClientSetup> = ClientSetup::closed_per_zone(&cluster, cfg.clients);
    // Client 0 (the first setup) carries the migration kick-off.
    let workload =
        MigrationWorkload::new(uniform_workload(cfg.keys), ClientId(0), migrate_at, spec);

    let shard_spec = ShardSpec::range(cfg.keys, groups);
    let disks = match cfg.mode {
        // Amnesia without durable WALs cannot rebuild the tracker — the
        // whole point of the migration WAL records.
        CrashMode::Freeze => None,
        CrashMode::Amnesia => Some(ShardDisks::new(cfg.fsync, groups)),
    };
    let cl = cluster.clone();
    let wal = disks.clone();
    let (report, audit) = match proto {
        ShardProto::Paxos => go(
            sim,
            cluster,
            shard_spec,
            move |id: NodeId, g: GroupId| {
                let pc = PaxosConfig {
                    initial_leader: spread_leader(&cl, g),
                    ..PaxosConfig::default()
                };
                let mut r = MultiPaxos::new(id, cl.clone(), pc);
                r.set_group(g);
                if let Some(d) = &wal {
                    r.attach_storage(Box::new(d.open(id, g)));
                }
                r
            },
            workload,
            clients,
            plan,
            disks,
            spec,
        ),
        ShardProto::Raft => go(
            sim,
            cluster,
            shard_spec,
            move |id: NodeId, g: GroupId| {
                let rc = RaftConfig {
                    preferred_leader: Some(spread_leader(&cl, g)),
                    ..RaftConfig::default()
                };
                let mut r = Raft::new(id, cl.clone(), rc);
                r.set_group(g);
                if let Some(d) = &wal {
                    r.attach_storage(Box::new(d.open(id, g)));
                }
                r
            },
            workload,
            clients,
            plan,
            disks,
            spec,
        ),
        other => panic!("{} does not support shard migration", other.name()),
    };

    let anomalies = check_linearizability(&report.ops);
    let tail_completed = report
        .ops
        .iter()
        .filter(|o| o.ok && o.ret >= heal_at)
        .count() as u64;
    let unexplained_drops = report.metrics.as_ref().map_or(0, |m| m.unexplained_drops());
    MigrationOutcome {
        proto: format!("Sharded{}(g={groups})", proto.name()),
        victim,
        stage,
        mode: cfg.mode,
        seed: cfg.seed,
        spec,
        completed: report.completed,
        tail_completed,
        anomalies,
        unexplained_drops,
        audit,
        steps,
    }
}

/// Builds the sharded simulator (durable when asked), runs it, and audits
/// the surviving replica state before the simulator is dropped — unlike
/// [`crate::sharded`]'s runner the audit needs the replicas *and* the op
/// log together.
#[allow(clippy::too_many_arguments)]
fn go<R, F>(
    sim: SimConfig,
    cluster: ClusterConfig,
    shard_spec: ShardSpec,
    group_factory: F,
    workload: impl Workload + 'static,
    clients: Vec<ClientSetup>,
    plan: FaultPlan,
    disks: Option<ShardDisks>,
    spec: MigrationSpec,
) -> (SimReport, MigrationAudit)
where
    R: Replica,
    F: Fn(NodeId, GroupId) -> R + 'static,
{
    let part = shard_spec.partitioner.clone();
    let factory = sharded_cluster(shard_spec, group_factory);
    let mut s = Simulator::new(sim, cluster, factory, workload, clients);
    if let Some(d) = disks {
        s.set_storage(d);
    }
    *s.faults_mut() = plan;
    let report = s.run();
    let audit = audit_handoff(s.replicas(), part.as_ref(), &spec, &report.ops);
    (report, audit)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_sim() -> SimConfig {
        SimConfig {
            warmup: Nanos::millis(100),
            measure: Nanos::millis(3_900),
            ..SimConfig::default()
        }
    }

    #[test]
    fn paxos_hands_off_through_a_frozen_follower() {
        let out = run_migration_nemesis(
            ShardProto::Paxos,
            quick_sim(),
            &MigrationConfig {
                seed: 3,
                ..Default::default()
            },
            MigrationVictim::Follower,
            MigrationStage::Start,
        );
        // The victim leads neither group under Freeze — still a real fault,
        // but both quorums stay intact, so this doubles as the smoke check.
        assert!(out.anomalies.is_empty(), "anomalies: {:?}", out.anomalies);
        assert!(out.tail_completed > 0, "no post-heal progress");
        assert!(
            out.cut_over_complete(),
            "epochs: {:?}",
            out.audit.routing_epochs
        );
        assert!(
            out.audit.dual_ownership.is_empty(),
            "dual: {:?}",
            out.audit.dual_ownership
        );
        assert!(
            out.audit.orphaned.is_empty(),
            "orphaned: {:?}",
            out.audit.orphaned
        );
        assert!(
            out.audit.leakage.is_empty(),
            "leakage: {:?}",
            out.audit.leakage
        );
    }

    #[test]
    fn digest_is_deterministic_and_stage_sensitive() {
        let cfg = MigrationConfig::default();
        let a = run_migration_nemesis(
            ShardProto::Paxos,
            quick_sim(),
            &cfg,
            MigrationVictim::Follower,
            MigrationStage::Stream,
        );
        let b = run_migration_nemesis(
            ShardProto::Paxos,
            quick_sim(),
            &cfg,
            MigrationVictim::Follower,
            MigrationStage::Stream,
        );
        assert_eq!(a.digest(), b.digest(), "same run, same digest");
        let c = run_migration_nemesis(
            ShardProto::Paxos,
            quick_sim(),
            &cfg,
            MigrationVictim::Follower,
            MigrationStage::Commit,
        );
        assert_ne!(a.digest(), c.digest(), "different stage, different digest");
    }
}
