//! Sharded (multi-group) benchmark runs.
//!
//! The single-group runners in [`crate::runner`] saturate at the leader's
//! per-command service time; this module drives [`paxi_shard`]'s
//! [`ShardedReplica`] through the same simulator to measure how far static
//! keyspace partitioning moves that wall. Groups share every node's one
//! CPU+NIC FIFO queue, so the scaling numbers include cross-group
//! contention — the busiest node of a `g`-group deployment leads one group
//! and follows `g - 1` others.
//!
//! Clients are *routed*: each simulated client is pinned to one group,
//! attaches at that group's placed leader ([`spread_leader`]), and draws
//! keys only from the group's contiguous range — the closed-loop stand-in
//! for a [`paxi_shard::ShardRouter`] with a warm leader cache.
//!
//! Verification helpers treat each group as the independent consensus
//! instance it is: per-shard linearizability ([`check_sharded`]), per-group
//! cross-node consensus ([`check_group_consensus`]), and a cross-shard
//! leakage check ([`check_shard_leakage`]) asserting no group's store ever
//! holds a key the partitioner assigns elsewhere.

use crate::checker::{check_linearizability, Anomaly};
use crate::nemesis::{generate_schedule_with_mode, NemesisConfig, NemesisOutcome};
use crate::runner::SweepPoint;
use paxi_core::command::Command;
use paxi_core::config::ClusterConfig;
use paxi_core::dist::Rng64;
use paxi_core::faults::{CrashMode, FaultPlan};
use paxi_core::group::GroupId;
use paxi_core::id::{ClientId, NodeId};
use paxi_core::store::MultiVersionStore;
use paxi_core::time::Nanos;
use paxi_core::traits::Replica;
use paxi_protocols::epaxos::EPaxos;
use paxi_protocols::paxos::{MultiPaxos, PaxosConfig};
use paxi_protocols::raft::{Raft, RaftConfig};
use paxi_shard::{
    sharded_cluster, spread_leader, Partitioner, RangePartitioner, ShardDisks, ShardSpec,
    ShardedReplica,
};
use paxi_sim::client::{uniform_workload, unique_value};
use paxi_sim::report::{OpRecord, SimReport};
use paxi_sim::{ClientSetup, LoadMode, SimConfig, Simulator, Workload};
use paxi_storage::FsyncPolicy;

/// Protocols the sharded runner can instantiate per group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardProto {
    /// MultiPaxos, one instance per group, leaders spread round-robin.
    Paxos,
    /// Raft, preferred leaders spread round-robin.
    Raft,
    /// EPaxos (leaderless; placement is moot, every node serves).
    EPaxos,
}

impl ShardProto {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ShardProto::Paxos => "Paxos",
            ShardProto::Raft => "Raft",
            ShardProto::EPaxos => "EPaxos",
        }
    }
}

/// The outcome of a checked sharded run.
#[derive(Debug)]
pub struct ShardedRun {
    /// The simulator's report.
    pub report: SimReport,
    /// Cross-shard leakage violations (empty = every stored key is owned by
    /// its group).
    pub leakage: Vec<String>,
    /// First per-group consensus divergence, if any.
    pub divergence: Option<String>,
}

/// `per_group` closed-loop clients per group, each attached at its group's
/// placed leader — the simulator-side model of router-directed traffic.
/// Clients are interleaved so client `i` belongs to group `i % groups`
/// (which is what [`routed_workload`] assumes).
pub fn routed_clients(cluster: &ClusterConfig, groups: u32, per_group: usize) -> Vec<ClientSetup> {
    let mut v = Vec::with_capacity(per_group * groups as usize);
    for _ in 0..per_group {
        for g in 0..groups {
            let leader = spread_leader(cluster, GroupId(g));
            v.push(ClientSetup {
                zone: leader.zone,
                attach: leader,
                mode: LoadMode::Closed { think: Nanos::ZERO },
            });
        }
    }
    v
}

/// 50/50 read/write workload where client `i` draws keys uniformly from
/// group `i % groups`'s slice of `[0, key_space)` under
/// [`RangePartitioner::even`] — group-local traffic that provably agrees
/// with the deployment's partitioner. Write payloads are unique per
/// `(client, seq)` for the linearizability checker.
pub fn routed_workload(key_space: u64, groups: u32) -> impl Workload {
    let part = RangePartitioner::even(key_space, groups);
    move |client: ClientId, _zone: u8, seq: u64, _now: Nanos, rng: &mut Rng64| {
        let g = GroupId(client.0 % groups);
        let (lo, hi) = part.range(g);
        let hi = hi.min(key_space).max(lo + 1);
        let key = lo + rng.below(hi - lo);
        if rng.chance(0.5) {
            Command::get(key)
        } else {
            Command::put(key, unique_value(client, seq))
        }
    }
}

/// The generic body every sharded entry point funnels into: builds a
/// [`ShardedReplica`] cluster from `group_factory`, runs the simulation,
/// and (when `check` is set) audits the surviving replica state.
#[allow(clippy::too_many_arguments)]
fn go<R, F>(
    sim: SimConfig,
    cluster: ClusterConfig,
    spec: ShardSpec,
    group_factory: F,
    workload: impl Workload + 'static,
    clients: Vec<ClientSetup>,
    faults: FaultPlan,
    disks: Option<ShardDisks>,
    check: bool,
) -> ShardedRun
where
    R: Replica,
    F: Fn(NodeId, GroupId) -> R + 'static,
{
    let part = spec.partitioner.clone();
    let factory = sharded_cluster(spec, group_factory);
    let mut s = Simulator::new(sim, cluster, factory, workload, clients);
    if let Some(d) = disks {
        s.set_storage(d);
    }
    *s.faults_mut() = faults;
    let report = s.run();
    let (leakage, divergence) = if check {
        (
            check_shard_leakage(s.replicas(), part.as_ref()),
            check_group_consensus(s.replicas()),
        )
    } else {
        (Vec::new(), None)
    };
    ShardedRun {
        report,
        leakage,
        divergence,
    }
}

/// Dispatches `proto` into [`go`], building per-group inner replicas with
/// spread leader placement and (when `disks` is given) a per-`(node, group)`
/// WAL namespace attached to each.
#[allow(clippy::too_many_arguments)]
fn dispatch(
    proto: ShardProto,
    sim: SimConfig,
    cluster: ClusterConfig,
    spec: ShardSpec,
    workload: impl Workload + 'static,
    clients: Vec<ClientSetup>,
    faults: FaultPlan,
    disks: Option<ShardDisks>,
    check: bool,
) -> ShardedRun {
    let cl = cluster.clone();
    let wal = disks.clone();
    match proto {
        ShardProto::Paxos => go(
            sim,
            cluster,
            spec,
            move |id: NodeId, g: GroupId| {
                let cfg = PaxosConfig {
                    initial_leader: spread_leader(&cl, g),
                    ..PaxosConfig::default()
                };
                let mut r = MultiPaxos::new(id, cl.clone(), cfg);
                r.set_group(g);
                if let Some(d) = &wal {
                    r.attach_storage(Box::new(d.open(id, g)));
                }
                r
            },
            workload,
            clients,
            faults,
            disks,
            check,
        ),
        ShardProto::Raft => go(
            sim,
            cluster,
            spec,
            move |id: NodeId, g: GroupId| {
                let cfg = RaftConfig {
                    preferred_leader: Some(spread_leader(&cl, g)),
                    ..RaftConfig::default()
                };
                let mut r = Raft::new(id, cl.clone(), cfg);
                r.set_group(g);
                if let Some(d) = &wal {
                    r.attach_storage(Box::new(d.open(id, g)));
                }
                r
            },
            workload,
            clients,
            faults,
            disks,
            check,
        ),
        ShardProto::EPaxos => go(
            sim,
            cluster,
            spec,
            move |id: NodeId, g: GroupId| {
                let mut r = EPaxos::new(id, cl.clone());
                if let Some(d) = &wal {
                    r.attach_storage(Box::new(d.open(id, g)));
                }
                r
            },
            workload,
            clients,
            faults,
            disks,
            check,
        ),
    }
}

/// Runs `proto` sharded over `groups` range-partitioned groups with routed
/// clients and no faults, returning the report.
pub fn run_sharded(
    proto: ShardProto,
    groups: u32,
    sim: SimConfig,
    cluster: ClusterConfig,
    key_space: u64,
    per_group_clients: usize,
) -> SimReport {
    let spec = ShardSpec::range(key_space, groups);
    let clients = routed_clients(&cluster, groups, per_group_clients);
    dispatch(
        proto,
        sim,
        cluster,
        spec,
        routed_workload(key_space, groups),
        clients,
        FaultPlan::new(),
        None,
        false,
    )
    .report
}

/// Like [`run_sharded`], but audits the post-run replica state: per-group
/// consensus across nodes and the cross-shard leakage invariant.
pub fn run_sharded_checked(
    proto: ShardProto,
    groups: u32,
    sim: SimConfig,
    cluster: ClusterConfig,
    key_space: u64,
    per_group_clients: usize,
) -> ShardedRun {
    let spec = ShardSpec::range(key_space, groups);
    let clients = routed_clients(&cluster, groups, per_group_clients);
    dispatch(
        proto,
        sim,
        cluster,
        spec,
        routed_workload(key_space, groups),
        clients,
        FaultPlan::new(),
        None,
        true,
    )
}

/// Sweeps the per-group client count and records one [`SweepPoint`] per
/// step — the sharded counterpart of [`crate::runner::sweep`]. The
/// `clients` field of each point is the *total* population (all groups).
pub fn sweep_sharded(
    proto: ShardProto,
    groups: u32,
    sim: &SimConfig,
    cluster: &ClusterConfig,
    key_space: u64,
    per_group_counts: &[usize],
) -> Vec<SweepPoint> {
    per_group_counts
        .iter()
        .map(|&count| {
            let report = run_sharded(
                proto,
                groups,
                sim.clone(),
                cluster.clone(),
                key_space,
                count,
            );
            SweepPoint {
                clients: count * groups as usize,
                throughput: report.throughput,
                mean_ms: report.latency.mean.as_millis_f64(),
                p50_ms: report.latency.p50.as_millis_f64(),
                p99_ms: report.latency.p99.as_millis_f64(),
            }
        })
        .collect()
}

/// Runs `proto` sharded over `groups` groups under a seeded random fault
/// schedule and checks the full history — the sharded twin of
/// [`crate::nemesis::run_nemesis`]. The schedule generator is shared, so a
/// sharded run under `(seed, cluster, horizon, episodes, mode)` applies the
/// *identical* fault plan (and digest) as the unsharded run. Clients attach
/// round-robin (unrouted); wrong-node requests ride each group's internal
/// forwarding. Under [`CrashMode::Amnesia`] every group gets its own WAL
/// namespace in one [`ShardDisks`] array and a crashed node rebuilds all of
/// its group replicas from their WALs.
pub fn run_sharded_nemesis(
    proto: ShardProto,
    groups: u32,
    mut sim: SimConfig,
    cluster: ClusterConfig,
    cfg: &NemesisConfig,
) -> NemesisOutcome {
    let horizon = sim.warmup + sim.measure;
    let schedule =
        generate_schedule_with_mode(cfg.seed, &cluster, horizon, cfg.episodes, cfg.crash_mode);
    sim.seed = cfg.seed;
    sim.record_ops = true;
    if sim.client_retry.is_none() {
        sim.client_retry = Some(Nanos::millis(500));
    }
    let clients = ClientSetup::closed_per_zone(&cluster, cfg.clients_per_zone);
    let heal_at = Nanos(horizon.0 * 3 / 4);
    let spec = ShardSpec::range(cfg.keys, groups);
    let disks = match cfg.crash_mode {
        CrashMode::Freeze => None,
        CrashMode::Amnesia => Some(ShardDisks::new(cfg.fsync, groups)),
    };
    let run = dispatch(
        proto,
        sim,
        cluster,
        spec,
        uniform_workload(cfg.keys),
        clients,
        schedule.plan.clone(),
        disks,
        false,
    );
    let anomalies = check_linearizability(&run.report.ops);
    let tail_completed = run
        .report
        .ops
        .iter()
        .filter(|o| o.ok && o.ret >= heal_at)
        .count() as u64;
    NemesisOutcome {
        proto: format!("Sharded{}(g={groups})", proto.name()),
        seed: cfg.seed,
        schedule,
        completed: run.report.completed,
        tail_completed,
        anomalies,
    }
}

/// Splits `ops` by owning group and checks each shard's history
/// independently, returning `(group, anomalies)` per non-empty shard.
/// Because groups are disjoint consensus instances, a global check could
/// only mask cross-shard bugs; per-shard checking plus the leakage audit is
/// strictly stronger.
pub fn check_sharded(ops: &[OpRecord], part: &dyn Partitioner) -> Vec<(GroupId, Vec<Anomaly>)> {
    let mut by_group: Vec<Vec<OpRecord>> = (0..part.groups()).map(|_| Vec::new()).collect();
    for op in ops {
        by_group[part.group_of(op.key).0 as usize].push(op.clone());
    }
    by_group
        .into_iter()
        .enumerate()
        .filter(|(_, shard)| !shard.is_empty())
        .map(|(g, shard)| (GroupId(g as u32), check_linearizability(&shard)))
        .collect()
}

/// Asserts the partition invariant on surviving state: every key in every
/// group's store must be owned by that group. Returns one line per
/// violation (empty = pass).
pub fn check_shard_leakage<R: Replica>(
    nodes: &[ShardedReplica<R>],
    part: &dyn Partitioner,
) -> Vec<String> {
    let mut violations = Vec::new();
    for (ni, node) in nodes.iter().enumerate() {
        for (g, inner) in node.group_replicas().iter().enumerate() {
            if let Some(store) = inner.store() {
                for key in store.keys() {
                    if !part.owns(GroupId(g as u32), key) {
                        violations.push(format!(
                            "node {ni} group {g} stores key {key} owned by group {}",
                            part.group_of(key)
                        ));
                    }
                }
            }
        }
    }
    violations
}

/// Runs the common-prefix consensus check within every group, across all
/// nodes' instances of it. Returns the first divergence rendered as text.
pub fn check_group_consensus<R: Replica>(nodes: &[ShardedReplica<R>]) -> Option<String> {
    let groups = nodes.first().map(|n| n.group_replicas().len()).unwrap_or(0);
    for g in 0..groups {
        let stores: Vec<&MultiVersionStore> = nodes
            .iter()
            .filter_map(|n| n.group_replicas()[g].store())
            .collect();
        if let Err(d) = crate::consensus::check_consensus(&stores) {
            return Some(format!(
                "group {g}: key {} diverges between replicas {} and {} at version {}",
                d.key, d.node_a, d.node_b, d.at
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> SimConfig {
        SimConfig {
            warmup: Nanos::millis(200),
            measure: Nanos::millis(800),
            ..SimConfig::default()
        }
    }

    #[test]
    fn routed_clients_pin_to_spread_leaders() {
        let cluster = ClusterConfig::lan(5);
        let clients = routed_clients(&cluster, 4, 3);
        assert_eq!(clients.len(), 12);
        // Client i serves group i % 4, attached at node i % 4 (spread).
        for (i, c) in clients.iter().enumerate() {
            assert_eq!(c.attach, spread_leader(&cluster, GroupId(i as u32 % 4)));
        }
    }

    #[test]
    fn routed_workload_stays_in_the_clients_group() {
        let groups = 4;
        let part = RangePartitioner::even(1000, groups);
        let mut w = routed_workload(1000, groups);
        let mut rng = Rng64::seed(3);
        for client in 0..8u32 {
            for seq in 0..200 {
                let cmd = w.next(ClientId(client), 0, seq, Nanos::ZERO, &mut rng);
                assert_eq!(
                    part.group_of(cmd.key),
                    GroupId(client % groups),
                    "client {client} leaked key {}",
                    cmd.key
                );
                assert!(cmd.key < 1000);
            }
        }
    }

    #[test]
    fn sharded_paxos_completes_and_stays_clean() {
        let run = run_sharded_checked(
            ShardProto::Paxos,
            4,
            quick(),
            ClusterConfig::lan(5),
            1000,
            2,
        );
        assert!(
            run.report.completed > 200,
            "completed {}",
            run.report.completed
        );
        assert!(run.leakage.is_empty(), "leakage: {:?}", run.leakage);
        assert!(run.divergence.is_none(), "divergence: {:?}", run.divergence);
    }

    #[test]
    fn sharded_raft_completes() {
        let report = run_sharded(ShardProto::Raft, 2, quick(), ClusterConfig::lan(5), 1000, 2);
        assert!(report.completed > 200, "completed {}", report.completed);
    }

    #[test]
    fn per_shard_histories_are_anomaly_free() {
        let mut sim = quick();
        sim.record_ops = true;
        let groups = 4;
        let spec_part = RangePartitioner::even(1000, groups);
        let clients = routed_clients(&ClusterConfig::lan(5), groups, 2);
        let run = dispatch(
            ShardProto::Paxos,
            sim,
            ClusterConfig::lan(5),
            ShardSpec::range(1000, groups),
            routed_workload(1000, groups),
            clients,
            FaultPlan::new(),
            None,
            false,
        );
        let shards = check_sharded(&run.report.ops, &spec_part);
        assert!(!shards.is_empty());
        for (g, anomalies) in shards {
            assert!(anomalies.is_empty(), "group {g}: {anomalies:?}");
        }
    }
}
