//! Consensus checker.
//!
//! Client-observed linearizability can hold even when the replicas'
//! state-machine histories disagree, so Paxi separately validates that
//! consensus was reached on every state transition: it collects the full
//! per-key version history from every node's multi-version store and checks
//! that, for every key, all nodes share a common prefix.

use paxi_core::command::Key;
use paxi_core::store::MultiVersionStore;

/// A point where two replicas' histories diverge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// The key whose history diverged.
    pub key: Key,
    /// Index of the first replica (in the order given).
    pub node_a: usize,
    /// Index of the second replica.
    pub node_b: usize,
    /// Position in the version chain where they disagree.
    pub at: usize,
}

/// Verifies the common-prefix property across all stores. Returns the first
/// divergence found, or `Ok(())`.
pub fn check_consensus(stores: &[&MultiVersionStore]) -> Result<(), Divergence> {
    let Some(first) = stores.first() else {
        return Ok(());
    };
    // Collect the union of keys across all stores.
    let mut keys: Vec<Key> = stores.iter().flat_map(|s| s.keys()).collect();
    keys.sort_unstable();
    keys.dedup();
    let _ = first;
    for key in keys {
        for a in 0..stores.len() {
            for b in (a + 1)..stores.len() {
                let ha = stores[a].history(key);
                let hb = stores[b].history(key);
                let common = ha.len().min(hb.len());
                for i in 0..common {
                    if ha[i] != hb[i] {
                        return Err(Divergence {
                            key,
                            node_a: a,
                            node_b: b,
                            at: i,
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxi_core::command::Command;

    #[test]
    fn identical_stores_pass() {
        let mut a = MultiVersionStore::new();
        let mut b = MultiVersionStore::new();
        for s in [&mut a, &mut b] {
            s.execute(&Command::put(1, vec![1]));
            s.execute(&Command::put(1, vec![2]));
            s.execute(&Command::put(2, vec![9]));
        }
        assert!(check_consensus(&[&a, &b]).is_ok());
    }

    #[test]
    fn prefix_is_enough() {
        let mut a = MultiVersionStore::new();
        let mut b = MultiVersionStore::new();
        a.execute(&Command::put(1, vec![1]));
        a.execute(&Command::put(1, vec![2]));
        b.execute(&Command::put(1, vec![1])); // lagging replica
        assert!(check_consensus(&[&a, &b]).is_ok());
    }

    #[test]
    fn divergence_is_reported() {
        let mut a = MultiVersionStore::new();
        let mut b = MultiVersionStore::new();
        a.execute(&Command::put(1, vec![1]));
        b.execute(&Command::put(1, vec![2]));
        let d = check_consensus(&[&a, &b]).unwrap_err();
        assert_eq!(d.key, 1);
        assert_eq!(d.at, 0);
    }

    #[test]
    fn empty_store_set_passes() {
        assert!(check_consensus(&[]).is_ok());
    }

    #[test]
    fn keys_only_on_one_node_pass() {
        let mut a = MultiVersionStore::new();
        let b = MultiVersionStore::new();
        a.execute(&Command::put(5, vec![1]));
        assert!(check_consensus(&[&a, &b]).is_ok());
    }
}
