//! Offline linearizability checker.
//!
//! Paxi implements the offline read/write linearizability checker of the
//! Facebook TAO study: given all operations on a record sorted by invocation
//! time, it reports **anomalous reads** — reads that return results they
//! could not return in any linearizable execution. Our workloads give every
//! write a unique value, which makes the constraint graph's cycle check
//! reducible to three local conditions per read of value `v` written by `w`:
//!
//! * **phantom** — `v` was never written;
//! * **future** — the read returned before `w` was even invoked
//!   (`r.ret < w.invoke`);
//! * **stale** — some other successful write `w2` fits entirely between `w`
//!   and the read (`w.ret < w2.invoke` and `w2.ret < r.invoke`), so at the
//!   read's invocation `v` was certainly no longer the latest value. Reads
//!   returning `None` are stale if any successful write completed before
//!   they began.
//!
//! A cycle in the TAO constraint graph for unique-value registers collapses
//! to exactly these conditions, so this checker finds the same anomalies
//! without materializing the graph. Writes that were abandoned (`ok =
//! false`) may or may not have taken effect; they can justify a read but
//! never condemn one.

use paxi_core::command::{Key, Value};
use paxi_core::id::ClientId;
use paxi_core::time::Nanos;
use paxi_sim::OpRecord;
use std::collections::HashMap;

/// Why a read is anomalous.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnomalyKind {
    /// The value was never written by any client.
    PhantomValue,
    /// The read completed before the write of its value began.
    FutureRead,
    /// A newer write fully preceded the read, yet the read returned an older
    /// value.
    StaleRead,
}

/// One anomalous read.
#[derive(Debug, Clone)]
pub struct Anomaly {
    /// What went wrong.
    pub kind: AnomalyKind,
    /// The reading client.
    pub client: ClientId,
    /// The key read.
    pub key: Key,
    /// The value the read returned.
    pub value: Option<Value>,
    /// When the read was invoked.
    pub invoke: Nanos,
}

struct WriteInfo {
    invoke: Nanos,
    ret: Nanos,
    ok: bool,
}

/// Checks the operation log; returns all anomalous reads (empty = pass).
pub fn check_linearizability(ops: &[OpRecord]) -> Vec<Anomaly> {
    // Index successful + attempted writes per key by value.
    let mut writes: HashMap<Key, HashMap<&Value, WriteInfo>> = HashMap::new();
    for op in ops {
        if let Some(v) = &op.write {
            writes.entry(op.key).or_default().insert(
                v,
                WriteInfo {
                    invoke: op.invoke,
                    ret: op.ret,
                    ok: op.ok,
                },
            );
        }
    }
    let mut anomalies = Vec::new();
    for op in ops {
        let Some(read_value) = &op.read else { continue };
        if !op.ok {
            continue;
        }
        let key_writes = writes.get(&op.key);
        match read_value {
            Some(v) => {
                let Some(w) = key_writes.and_then(|m| m.get(v)) else {
                    anomalies.push(Anomaly {
                        kind: AnomalyKind::PhantomValue,
                        client: op.client,
                        key: op.key,
                        value: Some(v.clone()),
                        invoke: op.invoke,
                    });
                    continue;
                };
                if op.ret < w.invoke {
                    anomalies.push(Anomaly {
                        kind: AnomalyKind::FutureRead,
                        client: op.client,
                        key: op.key,
                        value: Some(v.clone()),
                        invoke: op.invoke,
                    });
                    continue;
                }
                // Stale: some *successful* other write fits strictly between.
                let stale = key_writes.map_or(false, |m| {
                    m.values()
                        .any(|w2| w2.ok && w2.invoke > w.ret && w2.ret < op.invoke)
                });
                if stale {
                    anomalies.push(Anomaly {
                        kind: AnomalyKind::StaleRead,
                        client: op.client,
                        key: op.key,
                        value: Some(v.clone()),
                        invoke: op.invoke,
                    });
                }
            }
            None => {
                // Reading "absent" is stale once any successful write to the
                // key fully completed before the read began.
                let stale =
                    key_writes.map_or(false, |m| m.values().any(|w| w.ok && w.ret < op.invoke));
                if stale {
                    anomalies.push(Anomaly {
                        kind: AnomalyKind::StaleRead,
                        client: op.client,
                        key: op.key,
                        value: None,
                        invoke: op.invoke,
                    });
                }
            }
        }
    }
    anomalies
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(key: Key, v: u8, invoke: u64, ret: u64, ok: bool) -> OpRecord {
        OpRecord {
            client: ClientId(0),
            key,
            write: Some(vec![v]),
            read: None,
            invoke: Nanos(invoke),
            ret: Nanos(ret),
            ok,
        }
    }

    fn r(key: Key, v: Option<u8>, invoke: u64, ret: u64) -> OpRecord {
        OpRecord {
            client: ClientId(1),
            key,
            write: None,
            read: Some(v.map(|b| vec![b])),
            invoke: Nanos(invoke),
            ret: Nanos(ret),
            ok: true,
        }
    }

    #[test]
    fn clean_history_passes() {
        let ops = vec![
            w(1, 10, 0, 5, true),
            r(1, Some(10), 6, 8),
            w(1, 11, 9, 12, true),
            r(1, Some(11), 13, 15),
        ];
        assert!(check_linearizability(&ops).is_empty());
    }

    #[test]
    fn concurrent_read_may_return_either() {
        // Read overlaps the second write: both old and new values are legal.
        let ops_old = vec![
            w(1, 10, 0, 5, true),
            w(1, 11, 6, 12, true),
            r(1, Some(10), 7, 9),
        ];
        let ops_new = vec![
            w(1, 10, 0, 5, true),
            w(1, 11, 6, 12, true),
            r(1, Some(11), 7, 9),
        ];
        assert!(check_linearizability(&ops_old).is_empty());
        assert!(check_linearizability(&ops_new).is_empty());
    }

    #[test]
    fn stale_read_detected() {
        // w(10) then w(11) fully done, then read returns 10: stale.
        let ops = vec![
            w(1, 10, 0, 5, true),
            w(1, 11, 6, 9, true),
            r(1, Some(10), 12, 14),
        ];
        let a = check_linearizability(&ops);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].kind, AnomalyKind::StaleRead);
    }

    #[test]
    fn stale_none_read_detected() {
        let ops = vec![w(1, 10, 0, 5, true), r(1, None, 8, 9)];
        let a = check_linearizability(&ops);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].kind, AnomalyKind::StaleRead);
        assert_eq!(a[0].value, None);
    }

    #[test]
    fn future_read_detected() {
        let ops = vec![r(1, Some(10), 0, 2), w(1, 10, 5, 9, true)];
        let a = check_linearizability(&ops);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].kind, AnomalyKind::FutureRead);
    }

    #[test]
    fn phantom_value_detected() {
        let ops = vec![w(1, 10, 0, 5, true), r(1, Some(99), 6, 7)];
        let a = check_linearizability(&ops);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].kind, AnomalyKind::PhantomValue);
    }

    #[test]
    fn abandoned_write_justifies_but_never_condemns() {
        // The abandoned write may have applied: reading it is fine...
        let ops = vec![w(1, 10, 0, 5, false), r(1, Some(10), 6, 7)];
        assert!(check_linearizability(&ops).is_empty());
        // ...and it cannot make an older value stale.
        let ops = vec![
            w(1, 10, 0, 5, true),
            w(1, 11, 6, 9, false),
            r(1, Some(10), 12, 14),
        ];
        assert!(check_linearizability(&ops).is_empty());
        // Nor does it make reading None stale.
        let ops = vec![w(1, 10, 0, 5, false), r(1, None, 8, 9)];
        assert!(check_linearizability(&ops).is_empty());
    }

    #[test]
    fn keys_are_checked_independently() {
        let ops = vec![w(1, 10, 0, 5, true), r(2, None, 8, 9)];
        assert!(check_linearizability(&ops).is_empty());
    }
}
