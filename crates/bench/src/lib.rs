//! # paxi-bench
//!
//! The benchmarking half of the Paxi framework plus the harness that
//! regenerates every table and figure of the paper's evaluation:
//!
//! * [`config`] — the Table 3 benchmark parameters.
//! * [`workload`] — tunable workload generation (distributions, conflicts,
//!   locality, moving hotspot).
//! * [`checker`] — the offline TAO-style linearizability checker.
//! * [`consensus`] — the common-prefix consensus checker over replica stores.
//! * [`runner`] — protocol dispatch and saturation sweeps.
//! * [`nemesis`] — seeded random fault schedules + linearizability verdicts.
//! * [`reconfig`] — mid-reconfiguration nemesis: crashes inside a membership
//!   change's transition window, verdicts over history + final config.
//! * [`migration`] — mid-migration nemesis: crashes inside a shard
//!   hand-off, verdicts over history + surviving ownership state.
//! * [`sharded`] — multi-group (sharded) runs: routed clients, saturation
//!   sweeps, per-shard checking, and the sharded nemesis.
//! * [`table`] — result tables with console + CSV output.
//! * [`figures`] — one module per reproduced table/figure; the `repro`
//!   binary drives them.

#![warn(missing_docs)]

pub mod checker;
pub mod config;
pub mod consensus;
pub mod figures;
pub mod migration;
pub mod nemesis;
pub mod reconfig;
pub mod runner;
pub mod sharded;
pub mod table;
pub mod workload;

pub use checker::{check_linearizability, Anomaly, AnomalyKind};
pub use config::{BenchmarkConfig, Distribution};
pub use consensus::{check_consensus, Divergence};
pub use migration::{
    audit_handoff, run_migration_nemesis, MigrationAudit, MigrationConfig, MigrationOutcome,
    MigrationStage, MigrationVictim,
};
pub use nemesis::{
    generate_schedule, generate_schedule_with_mode, run_nemesis, NemesisConfig, NemesisOutcome,
    NemesisSchedule,
};
pub use reconfig::{run_reconfig_nemesis, ReconfigConfig, ReconfigOutcome, ReconfigVictim};
pub use runner::{run, run_with_faults, run_with_faults_durable, sweep, Proto, SweepPoint};
pub use sharded::{
    check_group_consensus, check_shard_leakage, check_sharded, routed_clients, routed_workload,
    run_sharded, run_sharded_checked, run_sharded_nemesis, sweep_sharded, ShardProto, ShardedRun,
};
pub use table::Table;
pub use workload::{GeneralWorkload, HotKeyWorkload};
