//! Protocol dispatch and load sweeps.
//!
//! The figure harness needs to run "the same experiment" across many
//! protocols; [`Proto`] names a protocol + configuration, and [`run`]
//! instantiates the right `Simulator` for it. [`sweep`] pushes a protocol to
//! saturation by growing the closed-loop client population, producing the
//! latency-vs-throughput series the paper plots in Figures 7 and 9.

use paxi_core::config::ClusterConfig;
use paxi_core::id::NodeId;
use paxi_protocols::epaxos::epaxos_cluster;
use paxi_protocols::paxos::{paxos_cluster, PaxosConfig};
use paxi_protocols::raft::{raft_cluster, RaftConfig};
use paxi_protocols::vpaxos::{vpaxos_cluster, VPaxosConfig};
use paxi_protocols::wankeeper::{wankeeper_cluster, WanKeeperConfig};
use paxi_protocols::wpaxos::{wpaxos_cluster, WPaxosConfig};
use paxi_sim::{ClientSetup, FaultPlan, SimConfig, SimReport, Simulator, Workload};
use paxi_storage::{FsyncPolicy, MemHub};
use serde::Serialize;

/// A protocol under test.
#[derive(Debug, Clone)]
pub enum Proto {
    /// MultiPaxos / FPaxos (via `q2`).
    Paxos(PaxosConfig),
    /// EPaxos with the given CPU penalty for dependency processing.
    EPaxos {
        /// Multiplier on message-processing cost (paper penalizes EPaxos for
        /// conflict detection / dependency computation).
        cpu_penalty: f64,
    },
    /// WPaxos.
    WPaxos(WPaxosConfig),
    /// WanKeeper.
    WanKeeper(WanKeeperConfig),
    /// Vertical Paxos.
    VPaxos(VPaxosConfig),
    /// Raft (with an optional transport overhead, for the etcd comparison).
    Raft {
        /// Raft configuration.
        cfg: RaftConfig,
        /// Multiplier on message-processing cost (models etcd's HTTP
        /// transport overhead in Figure 7).
        cpu_penalty: f64,
    },
}

impl Proto {
    /// Display name.
    pub fn name(&self) -> String {
        match self {
            Proto::Paxos(c) if c.q2.is_some() => format!("FPaxos(|q2|={})", c.q2.unwrap()),
            Proto::Paxos(_) => "Paxos".into(),
            Proto::EPaxos { .. } => "EPaxos".into(),
            Proto::WPaxos(c) => format!("WPaxos(fz={})", c.fz),
            Proto::WanKeeper(_) => "WanKeeper".into(),
            Proto::VPaxos(_) => "VPaxos".into(),
            Proto::Raft { .. } => "Raft".into(),
        }
    }

    /// Stock MultiPaxos.
    pub fn paxos() -> Self {
        Proto::Paxos(PaxosConfig::default())
    }

    /// FPaxos with phase-2 quorum `q2`.
    pub fn fpaxos(q2: usize) -> Self {
        Proto::Paxos(PaxosConfig::flexible(q2))
    }

    /// EPaxos with the default processing penalty.
    ///
    /// The penalty is calibrated to the paper's *experimental* observation
    /// (§5.2): once dependency computation, larger dependency-carrying
    /// messages, and graph-based execution are accounted for, Paxi's EPaxos
    /// lands below the single-leader protocols in LAN throughput. The
    /// analytic model uses a milder 1.3× (`paxi_model::EPaxosModel`), which
    /// reproduces the paper's *model* claim that EPaxos out-throughputs
    /// Paxos even at 100% conflict.
    pub fn epaxos() -> Self {
        Proto::EPaxos { cpu_penalty: 3.5 }
    }
}

/// Runs one simulation of `proto` and returns its report.
pub fn run(
    proto: &Proto,
    sim: SimConfig,
    cluster: ClusterConfig,
    workload: impl Workload + 'static,
    clients: Vec<ClientSetup>,
) -> SimReport {
    run_with_faults(proto, sim, cluster, workload, clients, FaultPlan::new())
}

/// Like [`run`], but installs a [`FaultPlan`] before the simulation starts —
/// the entry point for availability experiments and the nemesis harness.
pub fn run_with_faults(
    proto: &Proto,
    mut sim: SimConfig,
    cluster: ClusterConfig,
    workload: impl Workload + 'static,
    clients: Vec<ClientSetup>,
    faults: FaultPlan,
) -> SimReport {
    fn go<R, F>(
        sim: SimConfig,
        cluster: ClusterConfig,
        factory: F,
        workload: impl Workload + 'static,
        clients: Vec<ClientSetup>,
        faults: FaultPlan,
    ) -> SimReport
    where
        R: paxi_core::traits::Replica,
        F: paxi_core::traits::ReplicaFactory<R = R>,
    {
        let mut s = Simulator::new(sim, cluster, factory, workload, clients);
        *s.faults_mut() = faults;
        s.run()
    }
    match proto {
        Proto::Paxos(cfg) => go(
            sim,
            cluster.clone(),
            paxos_cluster(cluster, cfg.clone()),
            workload,
            clients,
            faults,
        ),
        Proto::EPaxos { cpu_penalty } => {
            sim.cost.cpu_penalty = *cpu_penalty;
            go(
                sim,
                cluster.clone(),
                epaxos_cluster(cluster),
                workload,
                clients,
                faults,
            )
        }
        Proto::WPaxos(cfg) => go(
            sim,
            cluster.clone(),
            wpaxos_cluster(cluster, cfg.clone()),
            workload,
            clients,
            faults,
        ),
        Proto::WanKeeper(cfg) => go(
            sim,
            cluster.clone(),
            wankeeper_cluster(cluster, cfg.clone()),
            workload,
            clients,
            faults,
        ),
        Proto::VPaxos(cfg) => go(
            sim,
            cluster.clone(),
            vpaxos_cluster(cluster, cfg.clone()),
            workload,
            clients,
            faults,
        ),
        Proto::Raft { cfg, cpu_penalty } => {
            sim.cost.cpu_penalty = *cpu_penalty;
            go(
                sim,
                cluster.clone(),
                raft_cluster(cluster, cfg.clone()),
                workload,
                clients,
                faults,
            )
        }
    }
}

/// Like [`run_with_faults`], but with durable replica state: every node
/// writes its WAL to an in-memory disk array under `policy`, replicas are
/// rebuilt from it after [`paxi_core::faults::CrashMode::Amnesia`] crashes,
/// and every fsync is charged [`paxi_sim::CostModel::t_fsync`] of service
/// time — the entry point for the amnesia nemesis and the durability-tax
/// sweep.
pub fn run_with_faults_durable(
    proto: &Proto,
    mut sim: SimConfig,
    cluster: ClusterConfig,
    workload: impl Workload + 'static,
    clients: Vec<ClientSetup>,
    faults: FaultPlan,
    policy: FsyncPolicy,
) -> SimReport {
    fn go<R, F>(
        sim: SimConfig,
        cluster: ClusterConfig,
        factory: F,
        workload: impl Workload + 'static,
        clients: Vec<ClientSetup>,
        faults: FaultPlan,
        policy: FsyncPolicy,
    ) -> SimReport
    where
        R: paxi_core::traits::Replica,
        F: paxi_core::traits::ReplicaFactory<R = R> + 'static,
    {
        let hub: MemHub<NodeId> = MemHub::new(policy);
        let disks = hub.clone();
        let durable_factory = move |id: NodeId| {
            let mut r = factory.make(id);
            r.attach_storage(Box::new(disks.open(id)));
            r
        };
        let mut s = Simulator::new(sim, cluster, durable_factory, workload, clients);
        s.set_storage(hub);
        *s.faults_mut() = faults;
        s.run()
    }
    match proto {
        Proto::Paxos(cfg) => go(
            sim,
            cluster.clone(),
            paxos_cluster(cluster, cfg.clone()),
            workload,
            clients,
            faults,
            policy,
        ),
        Proto::EPaxos { cpu_penalty } => {
            sim.cost.cpu_penalty = *cpu_penalty;
            go(
                sim,
                cluster.clone(),
                epaxos_cluster(cluster),
                workload,
                clients,
                faults,
                policy,
            )
        }
        Proto::WPaxos(cfg) => go(
            sim,
            cluster.clone(),
            wpaxos_cluster(cluster, cfg.clone()),
            workload,
            clients,
            faults,
            policy,
        ),
        Proto::WanKeeper(cfg) => go(
            sim,
            cluster.clone(),
            wankeeper_cluster(cluster, cfg.clone()),
            workload,
            clients,
            faults,
            policy,
        ),
        Proto::VPaxos(cfg) => go(
            sim,
            cluster.clone(),
            vpaxos_cluster(cluster, cfg.clone()),
            workload,
            clients,
            faults,
            policy,
        ),
        Proto::Raft { cfg, cpu_penalty } => {
            sim.cost.cpu_penalty = *cpu_penalty;
            go(
                sim,
                cluster.clone(),
                raft_cluster(cluster, cfg.clone()),
                workload,
                clients,
                faults,
                policy,
            )
        }
    }
}

/// One point of a latency-vs-throughput sweep.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct SweepPoint {
    /// Closed-loop clients driving the system.
    pub clients: usize,
    /// Achieved throughput (ops/s).
    pub throughput: f64,
    /// Mean latency, ms.
    pub mean_ms: f64,
    /// Median latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile latency, ms.
    pub p99_ms: f64,
}

/// Sweeps the closed-loop client count (per zone) and records one point per
/// step — the way Paxi saturates a system.
pub fn sweep<W, F>(
    proto: &Proto,
    sim: &SimConfig,
    cluster: &ClusterConfig,
    counts: &[usize],
    mut workload_factory: F,
) -> Vec<SweepPoint>
where
    W: Workload + 'static,
    F: FnMut() -> W,
{
    counts
        .iter()
        .map(|&count| {
            let clients = ClientSetup::closed_per_zone(cluster, count);
            let report = run(
                proto,
                sim.clone(),
                cluster.clone(),
                workload_factory(),
                clients,
            );
            SweepPoint {
                clients: count * cluster.zones as usize,
                throughput: report.throughput,
                mean_ms: report.latency.mean.as_millis_f64(),
                p50_ms: report.latency.p50.as_millis_f64(),
                p99_ms: report.latency.p99.as_millis_f64(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxi_sim::client::uniform_workload;

    #[test]
    fn dispatch_runs_every_protocol() {
        let quick = SimConfig {
            warmup: paxi_core::Nanos::millis(200),
            measure: paxi_core::Nanos::millis(800),
            ..SimConfig::default()
        };
        // Single-zone protocols on a 3-node LAN.
        for proto in [Proto::paxos(), Proto::fpaxos(2), Proto::epaxos()] {
            let cluster = ClusterConfig::lan(3);
            let clients = ClientSetup::closed_per_zone(&cluster, 2);
            let r = run(
                &proto,
                quick.clone(),
                cluster,
                uniform_workload(20),
                clients,
            );
            assert!(
                r.completed > 100,
                "{} completed {}",
                proto.name(),
                r.completed
            );
        }
        // Zone-structured protocols on a 3x3 grid in a LAN.
        let grid_sim = SimConfig {
            topology: paxi_sim::Topology::lan_zones(3),
            ..quick.clone()
        };
        for proto in [
            Proto::WPaxos(WPaxosConfig::default()),
            Proto::WanKeeper(WanKeeperConfig {
                shared_to_master: false,
                ..Default::default()
            }),
            Proto::VPaxos(VPaxosConfig::default()),
            Proto::Raft {
                cfg: RaftConfig::default(),
                cpu_penalty: 1.0,
            },
        ] {
            let cluster = ClusterConfig::wan(3, 3, 1, 0);
            let clients = ClientSetup::closed_per_zone(&cluster, 2);
            let r = run(
                &proto,
                grid_sim.clone(),
                cluster,
                uniform_workload(20),
                clients,
            );
            assert!(
                r.completed > 100,
                "{} completed {}",
                proto.name(),
                r.completed
            );
        }
    }

    #[test]
    fn sweep_throughput_grows_then_saturates() {
        let cluster = ClusterConfig::lan(5);
        let sim = SimConfig {
            warmup: paxi_core::Nanos::millis(200),
            measure: paxi_core::Nanos::secs(1),
            ..SimConfig::default()
        };
        let points = sweep(&Proto::paxos(), &sim, &cluster, &[1, 4, 16, 64], || {
            uniform_workload(100)
        });
        assert_eq!(points.len(), 4);
        assert!(points[1].throughput > points[0].throughput);
        // Latency at saturation is far above the unloaded latency.
        assert!(points[3].mean_ms > points[0].mean_ms);
    }
}
