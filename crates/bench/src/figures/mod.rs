//! Reproduction harness: one module per table/figure of the paper.
//!
//! Each `run(quick)` returns the figure's data series as [`Table`]s; the
//! `repro` binary prints them and writes CSVs under `results/`. `quick`
//! shrinks simulation windows and sweep grids so the whole suite stays fast
//! in CI; the full mode matches the experiment scales described in
//! EXPERIMENTS.md.

use crate::table::Table;
use paxi_core::time::Nanos;
use paxi_sim::SimConfig;

pub mod ablation;
pub mod availability;
pub mod batching;
pub mod crossval;
pub mod durability;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig3;
pub mod fig4;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod metrics;
pub mod reactor;
pub mod sharding;
pub mod tables;

/// Simulation window presets shared by the experimental figures.
pub(crate) fn sim_preset(quick: bool) -> SimConfig {
    if quick {
        SimConfig {
            warmup: Nanos::millis(300),
            measure: Nanos::secs(1),
            ..SimConfig::default()
        }
    } else {
        SimConfig {
            warmup: Nanos::secs(1),
            measure: Nanos::secs(4),
            ..SimConfig::default()
        }
    }
}

/// Closed-loop client-count grids for saturation sweeps.
pub(crate) fn sweep_counts(quick: bool) -> Vec<usize> {
    if quick {
        vec![1, 4, 16, 48]
    } else {
        vec![1, 2, 4, 8, 16, 32, 64, 96]
    }
}

/// Every experiment in paper order.
pub fn all(quick: bool) -> Vec<(&'static str, Vec<Table>)> {
    vec![
        ("fig3", fig3::run(quick)),
        ("table1", tables::table1()),
        ("fig4", fig4::run(quick)),
        ("fig7", fig7::run(quick)),
        ("fig8", fig8::run(quick)),
        ("fig9", fig9::run(quick)),
        ("fig10", fig10::run(quick)),
        ("fig11", fig11::run(quick)),
        ("fig12", fig12::run(quick)),
        ("fig13", fig13::run(quick)),
        ("table3", tables::table3()),
        ("formulas", tables::formulas()),
        ("fig14", tables::fig14()),
        ("ablation", ablation::run(quick)),
        ("batching", batching::run(quick)),
        ("sharding", sharding::run(quick)),
        ("crossval", crossval::run(quick)),
        ("availability", availability::run(quick)),
        ("durability", durability::run(quick)),
        ("reactor", reactor::run(quick)),
    ]
}

/// Runs one experiment by id, or `None` if the id is unknown.
pub fn by_name(name: &str, quick: bool) -> Option<Vec<Table>> {
    match name {
        "fig3" => Some(fig3::run(quick)),
        "fig4" => Some(fig4::run(quick)),
        "fig7" => Some(fig7::run(quick)),
        "fig8" => Some(fig8::run(quick)),
        "fig9" => Some(fig9::run(quick)),
        "fig10" => Some(fig10::run(quick)),
        "fig11" => Some(fig11::run(quick)),
        "fig12" => Some(fig12::run(quick)),
        "fig13" => Some(fig13::run(quick)),
        "table1" => Some(tables::table1()),
        "table3" => Some(tables::table3()),
        "formulas" => Some(tables::formulas()),
        "fig14" => Some(tables::fig14()),
        "ablation" => Some(ablation::run(quick)),
        "batching" => Some(batching::run(quick)),
        "sharding" => Some(sharding::run(quick)),
        "crossval" => Some(crossval::run(quick)),
        "availability" => Some(availability::run(quick)),
        "durability" => Some(durability::run(quick)),
        "reactor" => Some(reactor::run(quick)),
        _ => None,
    }
}

/// The `BENCH_*.json` perf baseline an experiment ships alongside its CSVs,
/// if it ships one: `(file name, rendered JSON)`. One registry so the
/// `repro` binary (and CI) never special-cases individual figures.
pub fn baseline_for(name: &str, tables: &[Table]) -> Option<(&'static str, String)> {
    match name {
        "batching" => Some(("BENCH_batching.json", batching::baseline_json(tables))),
        "sharding" => Some(("BENCH_sharding.json", sharding::baseline_json(tables))),
        "reactor" => Some(("BENCH_reactor.json", reactor::baseline_json(tables))),
        _ => None,
    }
}
