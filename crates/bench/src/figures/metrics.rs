//! The `--metrics` sidecar: per-node observability snapshots emitted next to
//! a figure's CSVs.
//!
//! Each experimental figure gets a small, drain-mode, metrics-enabled probe
//! run of the protocol family it exercises; the per-node counter snapshot
//! (see [`paxi_core::obs`]) is written as `metrics_<figure>.json` under
//! `results/`. The probe reports its unexplained-drop count so the `repro`
//! binary — and the CI metrics-smoke job — can fail loudly on any loss the
//! drop-cause ledger cannot explain.

use crate::runner::{self, Proto};
use paxi_core::config::ClusterConfig;
use paxi_core::time::Nanos;
use paxi_protocols::raft::RaftConfig;
use paxi_sim::{client, ClientSetup, SimConfig};

/// One figure's metrics sidecar: the snapshot JSON plus the single number CI
/// gates on.
pub struct MetricsSidecar {
    /// File name to write next to the figure's CSVs (under `results/`).
    pub file: String,
    /// Rendered per-node snapshot JSON ([`paxi_core::obs::ClusterMetrics`]).
    pub json: String,
    /// Drops with no recorded cause across all nodes — must be zero.
    pub unexplained_drops: u64,
}

/// The protocol family a figure's probe runs. Analytic-only experiments
/// (model tables, formulas, the advisor, the RTT calibration) have no run to
/// observe and return `None`.
fn probe_proto(name: &str) -> Option<Proto> {
    match name {
        "fig4" | "fig9" | "fig13" | "ablation" | "batching" | "sharding" | "crossval"
        | "availability" | "durability" => Some(Proto::paxos()),
        "fig7" => Some(Proto::Raft {
            cfg: RaftConfig::default(),
            cpu_penalty: 1.0,
        }),
        "fig11" | "fig12" => Some(Proto::epaxos()),
        _ => None,
    }
}

/// Runs the metrics probe for `name`, if it has one: a short LAN run with
/// closed-loop clients, metrics collection, and drain mode (so every issued
/// request accounts for all of its messages before the snapshot is taken).
pub fn snapshot(name: &str, quick: bool) -> Option<MetricsSidecar> {
    let proto = probe_proto(name)?;
    let cluster = ClusterConfig::lan(3);
    let cfg = SimConfig {
        warmup: Nanos::millis(100),
        measure: if quick {
            Nanos::millis(300)
        } else {
            Nanos::secs(1)
        },
        metrics: true,
        trace_capacity: 256,
        drain: true,
        ..SimConfig::default()
    };
    let setups = ClientSetup::closed_per_zone(&cluster, 4);
    let report = runner::run(&proto, cfg, cluster, client::uniform_workload(100), setups);
    let cm = report
        .metrics
        .expect("metrics were enabled for the probe run");
    Some(MetricsSidecar {
        file: format!("metrics_{name}.json"),
        json: cm.to_json(),
        unexplained_drops: cm.unexplained_drops(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_covers_every_experimental_figure() {
        for name in [
            "fig4",
            "fig7",
            "fig11",
            "batching",
            "sharding",
            "availability",
        ] {
            assert!(
                probe_proto(name).is_some(),
                "{name} must have a metrics probe"
            );
        }
        for name in [
            "table1", "table3", "formulas", "fig14", "fig3", "fig8", "fig10",
        ] {
            assert!(probe_proto(name).is_none(), "{name} is analytic-only");
        }
    }

    #[test]
    fn paxos_probe_snapshot_is_clean_and_renderable() {
        let side = snapshot("fig4", true).expect("fig4 has a probe");
        assert_eq!(side.file, "metrics_fig4.json");
        assert_eq!(
            side.unexplained_drops, 0,
            "clean probe must explain all drops"
        );
        assert!(side.json.contains("\"unexplained_drops\""));
        assert!(side.json.contains("\"msgs_sent\""));
    }
}
