//! Figure 12 — modeled EPaxos maximum throughput vs conflict ratio.
//!
//! Five nodes, one per region. The conflict ratio forces the slow path on a
//! growing fraction of commands, costing EPaxos up to ~40% of its capacity
//! between no-conflict and full-conflict — yet it stays above single-leader
//! Paxos, whose capacity a lone leader caps regardless of conflicts.

use crate::table::{f0, Table};
use paxi_model::protocols::{EPaxosModel, PaxosModel, PerfModel};
use paxi_model::Deployment;

/// Builds the throughput-vs-conflict table.
pub fn run(_quick: bool) -> Vec<Table> {
    let d = Deployment::aws5(1);
    let paxos = PaxosModel::multi_paxos().max_throughput(&d);
    let mut t = Table::new(
        "Fig 12: modeled EPaxos max throughput vs conflict (5 regions)",
        &["conflict_pct", "epaxos_tput", "paxos_tput"],
    );
    for pct in (0..=100).step_by(10) {
        let epaxos = EPaxosModel::new(pct as f64 / 100.0).max_throughput(&d);
        t.row(vec![pct.to_string(), f0(epaxos), f0(paxos)]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn degradation_is_25_to_55_percent_and_epaxos_stays_above_paxos() {
        let t = &super::run(true)[0];
        let first: f64 = t.rows[0][1].parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[1].parse().unwrap();
        let drop = 1.0 - last / first;
        assert!((0.25..0.55).contains(&drop), "degradation {drop}");
        let paxos: f64 = t.rows[0][2].parse().unwrap();
        assert!(
            last > paxos,
            "EPaxos at c=1 ({last}) still above Paxos ({paxos})"
        );
        // Paxos line is flat.
        for row in &t.rows {
            assert_eq!(row[2], t.rows[0][2]);
        }
    }
}
