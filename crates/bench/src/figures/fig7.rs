//! Figure 7 — Paxi/Paxos vs etcd/Raft, 9 replicas in one availability zone.
//!
//! The paper's point: two independent single-stable-leader implementations
//! converge to the same leader-bottleneck throughput (~8000 ops/s), with
//! etcd showing somewhat higher latency below saturation, attributed to its
//! HTTP inter-node transport and message serialization. We run our own Raft
//! as the etcd stand-in, giving it a fixed per-hop wire overhead to model
//! the HTTP stack (see DESIGN.md substitutions).

use crate::runner::{sweep, Proto};
use crate::table::{f0, f2, Table};
use paxi_core::config::ClusterConfig;
use paxi_core::time::Nanos;
use paxi_protocols::raft::RaftConfig;
use paxi_sim::client::uniform_workload;

/// Builds the two latency-vs-throughput series.
pub fn run(quick: bool) -> Vec<Table> {
    let cluster = ClusterConfig::lan(9);
    let counts = super::sweep_counts(quick);
    let sim = super::sim_preset(quick);

    let paxos = sweep(&Proto::paxos(), &sim, &cluster, &counts, || {
        uniform_workload(1000)
    });

    // "etcd": our Raft with HTTP-like per-hop overhead on inter-node links.
    let mut etcd_sim = sim.clone();
    etcd_sim.cost.wire_overhead = Nanos::micros(400);
    let raft = sweep(
        &Proto::Raft {
            cfg: RaftConfig::default(),
            cpu_penalty: 1.05,
        },
        &etcd_sim,
        &cluster,
        &counts,
        || uniform_workload(1000),
    );

    let mut t = Table::new(
        "Fig 7: Paxi/Paxos vs etcd/Raft (9 replicas, LAN)",
        &["clients", "paxos_tput", "paxos_ms", "raft_tput", "raft_ms"],
    );
    for (p, r) in paxos.iter().zip(&raft) {
        t.row(vec![
            p.clients.to_string(),
            f0(p.throughput),
            f2(p.mean_ms),
            f0(r.throughput),
            f2(r.mean_ms),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn both_systems_converge_to_similar_max_throughput() {
        let t = &super::run(true)[0];
        let last = t.rows.last().unwrap();
        let paxos_max: f64 = last[1].parse().unwrap();
        let raft_max: f64 = last[3].parse().unwrap();
        assert!(
            (0.6..1.6).contains(&(raft_max / paxos_max)),
            "paxos {paxos_max} raft {raft_max}"
        );
        // Single-leader wall in the 6-11k range (paper: ~8000 ops/s).
        assert!(
            (5_000.0..12_000.0).contains(&paxos_max),
            "paxos max {paxos_max}"
        );
        // etcd-like Raft pays more latency below saturation.
        let first = &t.rows[0];
        let paxos_ms: f64 = first[2].parse().unwrap();
        let raft_ms: f64 = first[4].parse().unwrap();
        assert!(raft_ms > paxos_ms, "raft {raft_ms} vs paxos {paxos_ms}");
    }
}
