//! Sharding scaling sweep (ours, beyond the paper): aggregate saturation
//! throughput vs. the number of consensus groups.
//!
//! The paper's dissection ends at the single-leader wall — §3's model bounds
//! throughput by the busiest node's per-command work. Static keyspace
//! partitioning (`paxi-shard`) is the standard way past it: `N` independent
//! groups with leaders spread round-robin turn one leader pipeline into
//! `min(N, nodes)` of them, while every node still pays follower work for
//! the groups it doesn't lead *in the same FIFO queue* — so scaling is
//! sublinear, and this sweep measures exactly how sublinear.
//!
//! Setup: 9-node LAN, range partitioning over a dense keyspace, routed
//! closed-loop clients (pinned per group at the group's leader, drawing only
//! group-local keys — a warm `ShardRouter` cache). Group counts ∈ {1, 2, 4,
//! 8} per protocol; `groups = 1` is the unsharded baseline and uses the
//! exact single-protocol code path in a cost-free envelope.

use crate::sharded::{sweep_sharded, ShardProto};
use crate::table::{f0, f2, Table};
use paxi_core::config::ClusterConfig;

/// Group counts swept; 1 is the unsharded baseline.
const GROUPS: &[u32] = &[1, 2, 4, 8];

/// Dense keyspace the range partitioner splits (divisible by every group
/// count, so ranges are exactly even).
const KEY_SPACE: u64 = 1024;

/// Builds the sharding scaling table (the title slugs to
/// `ablation_sharding_*.csv` under `results/`).
pub fn run(quick: bool) -> Vec<Table> {
    let cluster = ClusterConfig::lan(9);
    let sim = super::sim_preset(quick);
    // Per-group closed-loop client counts: the first shows near-unloaded
    // latency, the last saturates every group's leader.
    let counts: Vec<usize> = if quick {
        vec![4, 32]
    } else {
        vec![2, 8, 24, 64]
    };
    let protos: &[ShardProto] = if quick {
        &[ShardProto::Paxos, ShardProto::Raft]
    } else {
        &[ShardProto::Paxos, ShardProto::Raft, ShardProto::EPaxos]
    };

    let mut t = Table::new(
        "Ablation: sharding scaling (9-node LAN)",
        &[
            "protocol",
            "groups",
            "clients",
            "max_throughput",
            "mean_ms_at_max",
            "speedup_vs_1_group",
        ],
    );
    for &proto in protos {
        let mut base_tput = f64::NAN;
        for &groups in GROUPS {
            let points = sweep_sharded(proto, groups, &sim, &cluster, KEY_SPACE, &counts);
            let best = points
                .iter()
                .max_by(|a, b| a.throughput.total_cmp(&b.throughput))
                .expect("sweep produced no points");
            if groups == 1 {
                base_tput = best.throughput;
            }
            t.row(vec![
                proto.name().to_string(),
                groups.to_string(),
                best.clients.to_string(),
                f0(best.throughput),
                f2(best.mean_ms),
                f2(best.throughput / base_tput),
            ]);
        }
    }
    vec![t]
}

/// Renders the scaling table as the `BENCH_sharding.json` baseline the CI
/// sharding-smoke job uploads, via the shared [`Table::baseline_json`]
/// writer.
pub fn baseline_json(tables: &[Table]) -> String {
    tables
        .first()
        .map(|t| {
            t.baseline_json(
                "ablation_sharding",
                "9-node LAN, range partitioning, routed closed-loop clients, \
                 groups in {1,2,4,8}",
                &[
                    "protocol",
                    "groups",
                    "clients",
                    "max_throughput_ops_s",
                    "mean_ms_at_max",
                    "speedup_vs_one_group",
                ],
            )
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn four_groups_clear_the_scaling_bar() {
        let tables = super::run(true);
        let t = &tables[0];
        let row = |proto: &str, g: &str| {
            t.rows
                .iter()
                .find(|r| r[0] == proto && r[1] == g)
                .unwrap_or_else(|| panic!("missing row {proto}/g={g}"))
        };
        let tput = |proto: &str, g: &str| -> f64 { row(proto, g)[3].parse().unwrap() };
        // The acceptance bar: with the default LAN cost model, 4 MultiPaxos
        // groups reach at least 2.5x the single-group saturation throughput
        // (analytically ~2.8x: the busiest node goes from pure leader to
        // leader-of-one + follower-of-three).
        assert!(
            tput("Paxos", "4") >= 2.5 * tput("Paxos", "1"),
            "4-group Paxos {} vs single-group {}",
            tput("Paxos", "4"),
            tput("Paxos", "1")
        );
        // Scaling is monotone in the group count for both protocols.
        for proto in ["Paxos", "Raft"] {
            assert!(
                tput(proto, "2") > tput(proto, "1"),
                "{proto} g=2 must beat g=1"
            );
            assert!(
                tput(proto, "8") > tput(proto, "4"),
                "{proto} g=8 must beat g=4"
            );
        }

        // The JSON baseline embeds every row through the shared writer.
        let json = super::baseline_json(&tables);
        assert!(json.contains("\"benchmark\": \"ablation_sharding\""));
        assert!(json.contains("\"protocol\": \"Paxos\", \"groups\": 4,"));
        assert!(json.contains("\"speedup_vs_one_group\""));
    }
}
