//! Figure 8 — modeled LAN performance of the protocol families.
//!
//! 8a sweeps each model to its maximum throughput; 8b zooms into the
//! low-throughput regime where queueing is negligible and the latency gaps
//! come from quorum sizes.

use crate::table::{f0, f2, Table};
use paxi_model::protocols::{EPaxosModel, PaxosModel, PerfModel, WPaxosModel};
use paxi_model::Deployment;

fn lan_grid() -> Deployment {
    // WPaxos views the same 9 LAN nodes as a 3x3 grid.
    let mut d = Deployment::lan(9);
    d.zones = 3;
    d.per_zone = 3;
    d.rtt_ms = vec![vec![paxi_model::params::LAN_RTT_MS; 3]; 3];
    d
}

/// Builds the 8a (full range) and 8b (low-throughput zoom) tables.
pub fn run(_quick: bool) -> Vec<Table> {
    let d = Deployment::lan(9);
    let grid = lan_grid();
    let models: Vec<(String, Box<dyn PerfModel>, &Deployment)> = vec![
        ("MultiPaxos".into(), Box::new(PaxosModel::multi_paxos()), &d),
        ("FPaxos(|q2|=3)".into(), Box::new(PaxosModel::fpaxos(3)), &d),
        ("EPaxos".into(), Box::new(EPaxosModel::new(0.02)), &d),
        ("WPaxos".into(), Box::new(WPaxosModel::new(1.0)), &grid),
    ];

    let mut a = Table::new(
        "Fig 8a: modeled LAN latency vs throughput (to saturation)",
        &["protocol", "throughput_rps", "latency_ms"],
    );
    let mut b = Table::new(
        "Fig 8b: modeled LAN latency at low throughput",
        &["protocol", "throughput_rps", "latency_ms"],
    );
    for (name, model, dep) in &models {
        for (tput, lat) in model.curve(dep, 24) {
            a.row(vec![name.clone(), f0(tput), f2(lat)]);
            if tput <= 8000.0 {
                b.row(vec![name.clone(), f0(tput), f2(lat)]);
            }
        }
    }
    vec![a, b]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_tput(t: &crate::table::Table, proto: &str) -> f64 {
        t.rows
            .iter()
            .filter(|r| r[0] == proto)
            .map(|r| r[1].parse::<f64>().unwrap())
            .fold(0.0, f64::max)
    }

    #[test]
    fn multi_leader_models_outscale_single_leader() {
        let tables = run(true);
        let a = &tables[0];
        let paxos = max_tput(a, "MultiPaxos");
        let fpaxos = max_tput(a, "FPaxos(|q2|=3)");
        let wpaxos = max_tput(a, "WPaxos");
        let epaxos = max_tput(a, "EPaxos");
        assert!(
            (paxos - fpaxos).abs() / paxos < 0.1,
            "FPaxos ~= Paxos in max tput"
        );
        assert!(wpaxos > 1.3 * paxos, "WPaxos {wpaxos} vs Paxos {paxos}");
        assert!(epaxos > paxos, "EPaxos {epaxos} vs Paxos {paxos}");
    }

    #[test]
    fn fpaxos_latency_gain_is_small_in_lan() {
        let tables = run(true);
        let b = &tables[1];
        let first = |proto: &str| -> f64 {
            b.rows.iter().find(|r| r[0] == proto).unwrap()[2]
                .parse()
                .unwrap()
        };
        let gain = first("MultiPaxos") - first("FPaxos(|q2|=3)");
        assert!(gain >= 0.0 && gain < 0.2, "LAN FPaxos gain {gain} ms");
    }
}
