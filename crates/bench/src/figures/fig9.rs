//! Figure 9 — experimental (simulated Paxi) LAN comparison.
//!
//! Uniformly random workload over 1000 objects, 50% reads, 9 nodes in one
//! availability zone. Single-leader protocols hit the leader wall around
//! 8 k ops/s; the multi-leader WPaxos and the hierarchical WanKeeper spread
//! the per-round message work and go further; EPaxos pays dependency
//! processing on every message and lands last (paper §5.2).

use crate::config::BenchmarkConfig;
use crate::runner::{sweep, Proto};
use crate::table::{f0, f2, Table};
use crate::workload::GeneralWorkload;
use paxi_core::config::ClusterConfig;
use paxi_protocols::wankeeper::WanKeeperConfig;
use paxi_protocols::wpaxos::WPaxosConfig;
use paxi_sim::Topology;

/// Builds the five latency-vs-throughput series.
pub fn run(quick: bool) -> Vec<Table> {
    let counts = super::sweep_counts(quick);
    let sim = super::sim_preset(quick);
    let bench = BenchmarkConfig::uniform(1000, 0.5);

    let mut t = Table::new(
        "Fig 9: experimental LAN performance (1000 keys, 50% reads)",
        &["protocol", "clients", "throughput_ops", "latency_ms"],
    );

    // Flat 9-node LAN for the single-leader and leaderless protocols.
    let lan = ClusterConfig::lan(9);
    for proto in [Proto::paxos(), Proto::fpaxos(3), Proto::epaxos()] {
        let bench = bench.clone();
        let points = sweep(&proto, &sim, &lan, &counts, || {
            GeneralWorkload::new(bench.clone(), 1)
        });
        for p in points {
            t.row(vec![
                proto.name(),
                p.clients.to_string(),
                f0(p.throughput),
                f2(p.mean_ms),
            ]);
        }
    }

    // The same 9 nodes as a 3x3 grid for the zone-structured protocols.
    let grid = ClusterConfig::wan(3, 3, 1, 0);
    let grid_sim = paxi_sim::SimConfig {
        topology: Topology::lan_zones(3),
        ..sim.clone()
    };
    let zone_protos = [
        Proto::WPaxos(WPaxosConfig::default()),
        // In a LAN there is no reason to centralize shared objects at the
        // master; the decentralized forwarding variant matches the paper's
        // LAN deployment (see EXPERIMENTS.md).
        Proto::WanKeeper(WanKeeperConfig {
            shared_to_master: false,
            ..Default::default()
        }),
    ];
    for proto in zone_protos {
        let bench = bench.clone();
        let points = sweep(&proto, &grid_sim, &grid, &counts, || {
            GeneralWorkload::new(bench.clone(), 3)
        });
        for p in points {
            t.row(vec![
                proto.name(),
                p.clients.to_string(),
                f0(p.throughput),
                f2(p.mean_ms),
            ]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn ranking_matches_paper() {
        let t = &super::run(true)[0];
        let max_tput = |proto: &str| -> f64 {
            t.rows
                .iter()
                .filter(|r| r[0] == proto)
                .map(|r| r[2].parse::<f64>().unwrap())
                .fold(0.0, f64::max)
        };
        let paxos = max_tput("Paxos");
        let fpaxos = max_tput("FPaxos(|q2|=3)");
        let epaxos = max_tput("EPaxos");
        let wpaxos = max_tput("WPaxos(fz=0)");
        let wankeeper = max_tput("WanKeeper");
        // Paper §5.2: multi-leader beats single leader; WanKeeper beats
        // WPaxos by being hierarchical; EPaxos is the worst performer in the
        // Paxi LAN experiments.
        assert!(wpaxos > 1.2 * paxos, "wpaxos {wpaxos} paxos {paxos}");
        assert!(wankeeper > wpaxos, "wankeeper {wankeeper} wpaxos {wpaxos}");
        assert!(
            epaxos < wpaxos,
            "epaxos {epaxos} should trail wpaxos {wpaxos}"
        );
        assert!(
            (0.8..1.25).contains(&(fpaxos / paxos)),
            "fpaxos {fpaxos} ~ paxos {paxos}"
        );
    }
}
