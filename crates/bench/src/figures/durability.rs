//! Durability tax: what persist-before-ack costs under each fsync policy.
//!
//! The paper's evaluation runs every protocol with volatile state — crashed
//! nodes freeze and thaw with memory intact — which flatters latency: a real
//! deployment must make the acceptor promise durable before acknowledging
//! it. This experiment quantifies the gap for MultiPaxos on a 5-node LAN:
//! the same workload runs with no storage attached (the seed behavior),
//! then with a WAL under each [`FsyncPolicy`] — `never` (buffered, lost on
//! crash), `batch(8)` (group commit), and `always` (one fsync per append,
//! charged `t_fsync` of service time each).
//!
//! Expected shape: `never` tracks the volatile baseline (appends are memory
//! copies), `always` pays the full per-op fsync on the leader's critical
//! path, and `batch` lands between — the classic group-commit trade
//! reproduced inside the simulator's cost model.

use crate::runner::{run_with_faults_durable, Proto};
use crate::table::Table;
use paxi_core::config::ClusterConfig;
use paxi_core::time::Nanos;
use paxi_sim::client::uniform_workload;
use paxi_sim::{ClientSetup, FaultPlan, SimConfig, SimReport};
use paxi_storage::FsyncPolicy;

fn base(quick: bool) -> SimConfig {
    let measure = if quick {
        Nanos::secs(1)
    } else {
        Nanos::secs(4)
    };
    SimConfig {
        warmup: Nanos::millis(300),
        measure,
        ..SimConfig::default()
    }
}

fn run_policy(quick: bool, policy: FsyncPolicy) -> SimReport {
    let cluster = ClusterConfig::lan(5);
    let clients = ClientSetup::closed_per_zone(&cluster, 4);
    run_with_faults_durable(
        &Proto::paxos(),
        base(quick),
        cluster,
        uniform_workload(64),
        clients,
        FaultPlan::new(),
        policy,
    )
}

fn run_volatile(quick: bool) -> SimReport {
    let cluster = ClusterConfig::lan(5);
    let clients = ClientSetup::closed_per_zone(&cluster, 4);
    crate::runner::run(
        &Proto::paxos(),
        base(quick),
        cluster,
        uniform_workload(64),
        clients,
    )
}

/// Builds the durability-tax table: one row per fsync policy.
pub fn run(quick: bool) -> Vec<Table> {
    let mut t = Table::new(
        "Durability tax: MultiPaxos LAN(5), WAL per fsync policy",
        &["policy", "throughput_ops_s", "p50_ms", "p99_ms"],
    );
    let mut push = |label: &str, r: &SimReport| {
        t.row(vec![
            label.to_string(),
            format!("{:.0}", r.throughput),
            format!("{:.3}", r.latency.p50.as_millis_f64()),
            format!("{:.3}", r.latency.p99.as_millis_f64()),
        ]);
    };
    push("volatile", &run_volatile(quick));
    push(
        &FsyncPolicy::Never.label(),
        &run_policy(quick, FsyncPolicy::Never),
    );
    push(
        &FsyncPolicy::batch8().label(),
        &run_policy(quick, FsyncPolicy::batch8()),
    );
    push(
        &FsyncPolicy::Always.label(),
        &run_policy(quick, FsyncPolicy::Always),
    );
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_pays_more_latency_than_never() {
        let t = &run(true)[0];
        let p50 = |label: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == label).expect(label)[2]
                .parse()
                .unwrap()
        };
        let never = p50("never");
        let always = p50("always");
        assert!(
            always > never,
            "per-append fsync must show up in median latency: never={never} always={always}"
        );
        // Group commit sits at or below the per-append policy.
        let batch = p50(&FsyncPolicy::batch8().label());
        assert!(batch <= always, "batch={batch} always={always}");
    }
}
