//! Figure 11 — per-region latency under a conflict workload (WAN).
//!
//! Five AWS regions, three nodes each. One designated "hot" object lives in
//! Ohio; each request targets it with probability `c` (the conflict ratio)
//! and a zone-private object otherwise. The paper reads three regions off
//! the resulting curves (VA, OH, CA):
//!
//! * protocols that commit within one region (WPaxos fz=0, WanKeeper,
//!   VPaxos) keep flat latency — interfering commands are forwarded to the
//!   hot object's home region;
//! * the home region (OH) enjoys local latency under any conflict ratio for
//!   every leader-ful protocol, while EPaxos suffers even there;
//! * WPaxos fz=1 stays best among the region-fault-tolerant protocols.

use crate::runner::{run as run_sim, Proto};
use crate::table::{f2, Table};
use crate::workload::HotKeyWorkload;
use paxi_core::config::ClusterConfig;
use paxi_core::id::NodeId;
use paxi_protocols::paxos::PaxosConfig;
use paxi_protocols::vpaxos::VPaxosConfig;
use paxi_protocols::wankeeper::WanKeeperConfig;
use paxi_protocols::wpaxos::WPaxosConfig;
use paxi_sim::{ClientSetup, Topology};

/// Ohio hosts the hot object (zone 1 in the VA/OH/CA/IR/JP order).
const OH: u8 = 1;

fn protocols() -> Vec<Proto> {
    vec![
        Proto::WPaxos(WPaxosConfig {
            initial_owner: Some(NodeId::new(OH, 0)),
            ..WPaxosConfig::default()
        }),
        Proto::WPaxos(WPaxosConfig {
            fz: 1,
            initial_owner: Some(NodeId::new(OH, 0)),
            ..WPaxosConfig::default()
        }),
        Proto::WanKeeper(WanKeeperConfig {
            master_zone: OH,
            ..Default::default()
        }),
        Proto::epaxos(),
        Proto::VPaxos(VPaxosConfig {
            master_zone: OH,
            initial_zone: OH,
            window: 3,
        }),
        Proto::Paxos(PaxosConfig {
            initial_leader: NodeId::new(OH, 0),
            ..Default::default()
        }),
    ]
}

/// Builds one table per displayed region (VA, OH, CA).
pub fn run(quick: bool) -> Vec<Table> {
    let conflicts: Vec<u8> = if quick {
        vec![0, 40, 100]
    } else {
        vec![0, 20, 40, 60, 80, 100]
    };
    let cluster = ClusterConfig::wan(5, 3, 1, 0);
    // Migration of each zone's private objects away from Ohio is gated on
    // client-paced WAN round trips, so the warmup must cover it (the paper
    // measures steady state over 60-second runs).
    let sim = paxi_sim::SimConfig {
        topology: Topology::aws5(),
        warmup: paxi_core::Nanos::secs(if quick { 5 } else { 10 }),
        measure: paxi_core::Nanos::secs(if quick { 2 } else { 5 }),
        ..super::sim_preset(quick)
    };
    let protos = protocols();
    let names: Vec<String> = protos.iter().map(|p| p.name()).collect();

    // results[zone][conflict_idx][proto_idx] = mean ms
    let mut results = vec![vec![vec![f64::NAN; protos.len()]; conflicts.len()]; 3];
    for (ci, &c) in conflicts.iter().enumerate() {
        for (pi, proto) in protos.iter().enumerate() {
            let cluster = if matches!(proto, Proto::WPaxos(cfg) if cfg.fz == 1) {
                ClusterConfig::wan(5, 3, 1, 1)
            } else {
                cluster.clone()
            };
            let clients = ClientSetup::closed_per_zone(&cluster, 2);
            let workload = HotKeyWorkload {
                conflict: c as f64 / 100.0,
                hot_key: 0,
                private_keys: 20,
            };
            let report = run_sim(proto, sim.clone(), cluster, workload, clients);
            for zone in 0..3u8 {
                if let Some(s) = report.zone_latency.get(&zone) {
                    results[zone as usize][ci][pi] = s.mean.as_millis_f64();
                }
            }
        }
    }

    let region_names = ["Virginia", "Ohio", "California"];
    let mut tables = Vec::new();
    for (zone, region) in region_names.iter().enumerate() {
        let mut cols: Vec<&str> = vec!["conflict_pct"];
        cols.extend(names.iter().map(String::as_str));
        let mut t = Table::new(
            format!(
                "Fig 11{}: conflict workload latency in {region}",
                (b'a' + zone as u8) as char
            ),
            &cols,
        );
        for (ci, &c) in conflicts.iter().enumerate() {
            let mut row = vec![c.to_string()];
            row.extend(results[zone][ci].iter().map(|&v| f2(v)));
            t.row(row);
        }
        tables.push(t);
    }
    tables
}

#[cfg(test)]
mod tests {
    #[test]
    fn conflict_shapes_match_the_papers_observations() {
        let tables = super::run(true);
        let va = &tables[0];
        let oh = &tables[1];
        let col = |t: &crate::table::Table, name: &str| -> usize {
            t.columns.iter().position(|c| c == name).unwrap()
        };
        // (1) Region-committing protocols (WanKeeper, VPaxos, WPaxos fz=0)
        // forward interfering commands to the hot object's home region: VA's
        // latency climbs from local (~1ms) toward one VA->OH round trip
        // (~11ms RTT), never to Paxos's quorum-bound level.
        for proto in ["WanKeeper", "VPaxos", "WPaxos(fz=0)"] {
            let c = col(va, proto);
            let at0: f64 = va.rows.first().unwrap()[c].parse().unwrap();
            let at100: f64 = va.rows.last().unwrap()[c].parse().unwrap();
            assert!(
                at0 < 6.0,
                "{proto} VA at 0% conflict should be local: {at0}"
            );
            assert!(
                at100 > 6.0 && at100 < 35.0,
                "{proto} VA at 100% should pay ~one VA-OH trip: {at100}"
            );
        }
        // (2) The hot object's home region keeps (near-)local latency for
        // every owner-ful protocol even at 100% conflict.
        for proto in ["WanKeeper", "VPaxos", "WPaxos(fz=0)"] {
            let c = col(oh, proto);
            let at100: f64 = oh.rows.last().unwrap()[c].parse().unwrap();
            assert!(at100 < 8.0, "{proto} OH at 100% conflict: {at100}");
        }
        // (3) Paxos pays the OH-leader WAN quorum everywhere, regardless of
        // the conflict ratio (flat and high in VA).
        let px = col(va, "Paxos");
        let px_first: f64 = va.rows.first().unwrap()[px].parse().unwrap();
        let px_last: f64 = va.rows.last().unwrap()[px].parse().unwrap();
        assert!(
            px_first > 20.0,
            "Paxos VA should pay WAN quorum: {px_first}"
        );
        assert!(
            (px_last / px_first - 1.0).abs() < 0.5,
            "Paxos is conflict-insensitive"
        );
        // (4) EPaxos suffers from interference even in the hot object's
        // home region (no leader advantage there).
        let ep = col(oh, "EPaxos");
        let ep_last: f64 = oh.rows.last().unwrap()[ep].parse().unwrap();
        assert!(
            ep_last > 8.0,
            "EPaxos OH at 100% conflict pays WAN rounds: {ep_last}"
        );
    }
}
