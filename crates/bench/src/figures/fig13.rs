//! Figure 13 — locality workload across five regions (WAN).
//!
//! Objects start in Ohio; each region then draws keys from a Normal
//! distribution centered on its own slice of the key space (the paper's
//! locality workload, Figure 6). Locality-aware protocols migrate objects
//! toward their users: WPaxos steals them with per-key phase-1s, VPaxos
//! relocates them through its configuration master, and WanKeeper moves
//! tokens down — except objects shared across regions, which its master
//! keeps, giving Ohio the best latency at the other regions' expense.
//! 13a reports per-region mean latency; 13b the global latency CDF.

use crate::config::BenchmarkConfig;
use crate::runner::{run as run_sim, Proto};
use crate::table::{f2, Table};
use crate::workload::GeneralWorkload;
use paxi_core::config::ClusterConfig;
use paxi_core::id::NodeId;
use paxi_protocols::paxos::PaxosConfig;
use paxi_protocols::vpaxos::VPaxosConfig;
use paxi_protocols::wankeeper::WanKeeperConfig;
use paxi_protocols::wpaxos::WPaxosConfig;
use paxi_sim::{ClientSetup, Topology};

const OH: u8 = 1;

fn protocols() -> Vec<Proto> {
    vec![
        Proto::WPaxos(WPaxosConfig {
            initial_owner: Some(NodeId::new(OH, 0)),
            ..WPaxosConfig::default()
        }),
        Proto::WanKeeper(WanKeeperConfig {
            master_zone: OH,
            ..Default::default()
        }),
        Proto::VPaxos(VPaxosConfig {
            master_zone: OH,
            initial_zone: OH,
            window: 3,
        }),
        Proto::WPaxos(WPaxosConfig {
            fz: 2,
            initial_owner: Some(NodeId::new(OH, 0)),
            ..WPaxosConfig::default()
        }),
        Proto::Paxos(PaxosConfig {
            initial_leader: NodeId::new(OH, 0),
            ..Default::default()
        }),
        Proto::epaxos(),
    ]
}

/// Builds the per-region latency table (13a) and the CDF table (13b).
pub fn run(quick: bool) -> Vec<Table> {
    // Ownership migration away from Ohio is gated on cross-WAN phase-1s /
    // relocations (hundreds of ms each), so the warmup must cover the full
    // migration phase before the steady-state window opens — the paper runs
    // this workload for 60 seconds.
    let sim = paxi_sim::SimConfig {
        topology: Topology::aws5(),
        warmup: paxi_core::Nanos::secs(if quick { 30 } else { 50 }),
        measure: paxi_core::Nanos::secs(if quick { 5 } else { 10 }),
        ..super::sim_preset(quick)
    };
    let keys = if quick { 120 } else { 300 };
    let protos = protocols();
    let names: Vec<String> = protos.iter().map(|p| p.name()).collect();
    let bench = BenchmarkConfig::locality(keys, 60.0 * keys as f64 / 1000.0);

    let mut region_rows: Vec<Vec<String>> = Vec::new();
    let mut cdf_table = Table::new(
        "Fig 13b: latency CDF under the locality workload",
        &["protocol", "latency_ms", "cum_fraction"],
    );
    // zone display order follows the paper's x axis: T C O V I.
    let display: [(u8, &str); 5] = [
        (4, "Tokyo"),
        (2, "California"),
        (1, "Ohio"),
        (0, "Virginia"),
        (3, "Ireland"),
    ];
    let mut per_zone: Vec<Vec<f64>> = vec![vec![f64::NAN; protos.len()]; 5];

    for (pi, proto) in protos.iter().enumerate() {
        let cluster = match proto {
            Proto::WPaxos(cfg) => ClusterConfig::wan(5, 3, 1, cfg.fz),
            _ => ClusterConfig::wan(5, 3, 1, 0),
        };
        let clients = ClientSetup::closed_per_zone(&cluster, 3);
        let workload = GeneralWorkload::new(bench.clone(), 5);
        let report = run_sim(proto, sim.clone(), cluster, workload, clients);
        for (di, (zone, _)) in display.iter().enumerate() {
            if let Some(s) = report.zone_latency.get(zone) {
                per_zone[di][pi] = s.mean.as_millis_f64();
            }
        }
        // Downsample the CDF to ~24 points.
        let cdf = report.histogram.cdf();
        let step = (cdf.len() / 24).max(1);
        for (i, (lat, frac)) in cdf.iter().enumerate() {
            if i % step == 0 || i + 1 == cdf.len() {
                cdf_table.row(vec![
                    names[pi].clone(),
                    f2(lat.as_millis_f64()),
                    format!("{frac:.3}"),
                ]);
            }
        }
    }
    for (di, (_, region)) in display.iter().enumerate() {
        let mut row = vec![region.to_string()];
        row.extend(per_zone[di].iter().map(|&v| f2(v)));
        region_rows.push(row);
    }

    let mut cols: Vec<&str> = vec!["region"];
    cols.extend(names.iter().map(String::as_str));
    let mut a = Table::new(
        "Fig 13a: average latency per region (locality workload)",
        &cols,
    );
    for row in region_rows {
        a.row(row);
    }
    vec![a, cdf_table]
}

#[cfg(test)]
mod tests {
    #[test]
    fn locality_aware_protocols_balance_and_wankeeper_favors_ohio() {
        let tables = super::run(true);
        let a = &tables[0];
        let col = |name: &str| a.columns.iter().position(|c| c == name).unwrap();
        let cell = |region: &str, c: usize| -> f64 {
            a.rows.iter().find(|r| r[0] == region).unwrap()[c]
                .parse()
                .unwrap()
        };
        let wk = col("WanKeeper");
        let wp = col("WPaxos(fz=0)");
        // WanKeeper: Ohio (the master) sees the best latency of its column —
        // other regions pay WAN trips for objects shared across regions,
        // which the master keeps (allow sub-ms jitter between all-local
        // regions).
        let oh = cell("Ohio", wk);
        let mut worst = 0.0f64;
        for region in ["Tokyo", "California", "Virginia", "Ireland"] {
            let v = cell(region, wk);
            assert!(v >= oh - 0.5, "WanKeeper {region} ({v}) vs Ohio ({oh})");
            worst = worst.max(v);
        }
        assert!(
            worst > oh + 5.0,
            "some region pays for shared objects: worst {worst} vs OH {oh}"
        );
        // WPaxos balances: once objects migrate, every region is far below
        // the single-leader WAN cost (remote regions like Tokyo keep a tail
        // of boundary objects contested with neighbors, so the mean stays
        // above pure-LAN).
        for region in ["Tokyo", "California", "Virginia", "Ireland", "Ohio"] {
            let v = cell(region, wp);
            assert!(v < 120.0, "WPaxos {region} latency {v}");
        }
        // Single-leader Paxos punishes distant regions (Tokyo >> Ohio)...
        let px = col("Paxos");
        assert!(cell("Tokyo", px) > cell("Ohio", px) + 50.0);
        // ...and WPaxos beats Paxos decisively in those distant regions.
        assert!(
            cell("Tokyo", wp) + 50.0 < cell("Tokyo", px),
            "WPaxos Tokyo {} vs Paxos Tokyo {}",
            cell("Tokyo", wp),
            cell("Tokyo", px)
        );
    }

    #[test]
    fn cdf_is_monotone_per_protocol() {
        let tables = super::run(true);
        let cdf = &tables[1];
        let mut last: std::collections::HashMap<String, f64> = Default::default();
        for row in &cdf.rows {
            let f: f64 = row[2].parse().unwrap();
            let prev = last.insert(row[0].clone(), f).unwrap_or(0.0);
            assert!(f >= prev - 1e-9, "{} CDF not monotone", row[0]);
        }
    }
}
