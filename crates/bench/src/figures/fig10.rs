//! Figure 10 — modeled WAN performance across five AWS regions.
//!
//! Series: MultiPaxos and FPaxos with the leader pinned to California,
//! EPaxos at a fixed 30% conflict rate, EPaxos whose conflict rate grows
//! with load (the paper's `[0.02, 0.70]` ramp — longer WAN rounds raise the
//! chance of contention), and WPaxos with 0.7 access locality. The spread
//! between the slowest and fastest protocol exceeds 100 ms.

use crate::table::{f0, f2, Table};
use paxi_model::protocols::{EPaxosModel, PaxosModel, PerfModel, WPaxosModel};
use paxi_model::Deployment;

/// California's zone index in [`Deployment::aws5`] (VA, OH, CA, IR, JP).
const CA: usize = 2;

/// Builds the modeled WAN latency-vs-throughput table.
pub fn run(_quick: bool) -> Vec<Table> {
    let d = Deployment::aws5(3);
    let mut t = Table::new(
        "Fig 10: modeled WAN performance (VA/OH/CA/IR/JP)",
        &["protocol", "throughput_rps", "latency_ms"],
    );

    let fixed: Vec<(String, Box<dyn PerfModel>)> = vec![
        (
            "MultiPaxos (CA leader)".into(),
            Box::new(PaxosModel::multi_paxos().with_leader_zone(CA)),
        ),
        (
            "FPaxos (CA leader)".into(),
            Box::new(PaxosModel::fpaxos(3).with_leader_zone(CA)),
        ),
        ("EPaxos (c=0.3)".into(), Box::new(EPaxosModel::new(0.3))),
        (
            "WPaxos (l=0.7)".into(),
            Box::new(WPaxosModel {
                fz: 0,
                f: 1,
                locality: 0.7,
            }),
        ),
    ];
    for (name, model) in &fixed {
        for (tput, lat) in model.curve(&d, 20) {
            t.row(vec![name.clone(), f0(tput), f2(lat)]);
        }
    }

    // EPaxos with load-dependent conflicts: c ramps 0.02 -> 0.70 with λ.
    let cap = EPaxosModel::new(0.70).max_throughput(&d);
    for i in 1..=20 {
        let lambda = cap * i as f64 / 20.5;
        let c = 0.02 + (0.70 - 0.02) * (i as f64 / 20.0);
        if let Some(lat) = EPaxosModel::new(c).latency_ms(&d, lambda) {
            t.row(vec!["EPaxos (c=[0.02,0.70])".into(), f0(lambda), f2(lat)]);
        }
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn wan_latency_spread_exceeds_100ms() {
        let t = &super::run(true)[0];
        let low_load_lat = |proto: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == proto).unwrap()[2]
                .parse()
                .unwrap()
        };
        let paxos = low_load_lat("MultiPaxos (CA leader)");
        let wpaxos = low_load_lat("WPaxos (l=0.7)");
        // The paper reports "more than a 100 ms difference"; our RTT matrix
        // approximation lands within a few ms of that.
        assert!(
            paxos - wpaxos > 90.0,
            "spread {} (paxos {paxos}, wpaxos {wpaxos})",
            paxos - wpaxos
        );
        // Flexible quorums cut a large slice off Paxos in WAN.
        let fpaxos = low_load_lat("FPaxos (CA leader)");
        assert!(paxos - fpaxos > 20.0, "fpaxos {fpaxos} vs paxos {paxos}");
    }

    #[test]
    fn ramping_conflicts_bend_the_epaxos_curve() {
        let t = &super::run(true)[0];
        let ramp: Vec<f64> = t
            .rows
            .iter()
            .filter(|r| r[0] == "EPaxos (c=[0.02,0.70])")
            .map(|r| r[2].parse().unwrap())
            .collect();
        assert!(ramp.len() > 10);
        // Latency grows substantially across the ramp (conflicts + queueing).
        assert!(
            ramp.last().unwrap() > &(ramp[0] * 1.3),
            "ramp {:?}",
            &ramp[..3]
        );
    }
}
