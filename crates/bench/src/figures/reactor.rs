//! Connection scalability sweep (ours, beyond the paper): throughput vs.
//! concurrent client connections, threaded TCP runtime against the
//! nonblocking reactor runtime.
//!
//! The paper's dissection holds the client population small and closed-loop;
//! real deployments fan thousands of connections into each replica. The
//! threaded runtime pays one OS thread per inbound connection, so its
//! connection ceiling is the process's thread budget; the reactor runtime
//! ([`paxi_transport::reactor`]) multiplexes every socket of a node onto one
//! `poll(2)` loop, so its ceiling is the fd limit. This sweep drives both
//! against the same 3-node batched-MultiPaxos cluster on localhost and
//! reports, per connection count: connections actually established,
//! sustained throughput, and unexplained drops (asserted zero — every shed
//! frame must be on the cause ledger, including the reactor's
//! `backpressure` cause).
//!
//! The threaded grid stops at 256 connections (one closed-loop blocking
//! client thread each); the reactor grid climbs to 10,240 pipelined
//! connections driven by a single swarm thread ([`paxi_transport::run_swarm`]).
//! `PAXI_REACTOR_MAX_CONNS` caps the reactor grid for fd-limited
//! environments (CI runs with a 1,000-connection cap and a raised ulimit).

use crate::table::Table;

/// Column layout shared by the real run and the non-unix stub.
const COLS: &[&str] = &[
    "runtime",
    "conns_target",
    "conns_achieved",
    "tput_ops_s",
    "unexplained_drops",
];

const TITLE: &str = "Connection scalability: threaded vs reactor runtime (3-node TCP Paxos)";

#[cfg(unix)]
mod imp {
    use super::{COLS, TITLE};
    use crate::table::{f0, Table};
    use paxi_core::config::ClusterConfig;
    use paxi_core::id::NodeId;
    use paxi_core::obs::DropCause;
    use paxi_protocols::paxos::{paxos_cluster, PaxosConfig};
    use paxi_transport::{run_swarm, ReactorCluster, TcpCluster};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    /// Requests each swarm connection keeps in flight.
    const PIPELINE_WINDOW: usize = 4;

    /// Optional ceiling on the reactor connection grid, for fd-limited
    /// environments.
    fn conns_cap() -> usize {
        std::env::var("PAXI_REACTOR_MAX_CONNS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(usize::MAX)
    }

    pub(super) fn run(quick: bool) -> Vec<Table> {
        let cluster = ClusterConfig::lan(3);
        let window = if quick {
            Duration::from_millis(400)
        } else {
            Duration::from_secs(2)
        };
        let threaded_grid: Vec<usize> = if quick {
            vec![1, 8, 32]
        } else {
            vec![1, 16, 64, 256]
        };
        let cap = conns_cap();
        let mut reactor_grid: Vec<usize> = if quick {
            vec![1, 32, 256]
        } else {
            vec![1, 64, 1024, 10_240]
        };
        for c in &mut reactor_grid {
            *c = (*c).min(cap);
        }
        reactor_grid.dedup();

        let mut t = Table::new(TITLE, COLS);
        for &conns in &threaded_grid {
            let (achieved, tput, unexplained) = threaded_point(&cluster, conns, window);
            t.row(vec![
                "threaded".to_string(),
                conns.to_string(),
                achieved.to_string(),
                f0(tput),
                unexplained.to_string(),
            ]);
        }
        for &conns in &reactor_grid {
            let (achieved, tput, unexplained) = reactor_point(&cluster, conns, window);
            t.row(vec![
                "reactor".to_string(),
                conns.to_string(),
                achieved.to_string(),
                f0(tput),
                unexplained.to_string(),
            ]);
        }
        vec![t]
    }

    /// One threaded-runtime point: `conns` blocking clients, each on its own
    /// thread, closed-loop puts until the window closes.
    fn threaded_point(
        cluster: &ClusterConfig,
        conns: usize,
        window: Duration,
    ) -> (usize, f64, u64) {
        let run = TcpCluster::launch(
            cluster.clone(),
            paxos_cluster(cluster.clone(), PaxosConfig::batched(8)),
        )
        .expect("launch threaded cluster");
        let attach = NodeId::new(0, 0);
        let mut clients = Vec::new();
        for _ in 0..conns {
            // Brief retry: a burst of connects can transiently outrun the
            // accept loop.
            for attempt in 0..20u32 {
                match run.client(attach) {
                    Ok(c) => {
                        clients.push(c);
                        break;
                    }
                    Err(e) if attempt == 19 => panic!("threaded client connect: {e}"),
                    Err(_) => std::thread::sleep(Duration::from_millis(5)),
                }
            }
        }
        let achieved = clients.len();
        let stop = Arc::new(AtomicBool::new(false));
        let start = Instant::now();
        let mut workers = Vec::new();
        for (i, mut client) in clients.into_iter().enumerate() {
            let stop = Arc::clone(&stop);
            workers.push(std::thread::spawn(move || {
                client.set_timeout(Duration::from_secs(2));
                let mut done = 0u64;
                let mut seq = 0u64;
                let key_base = (i as u64 * 131) % 1024;
                while !stop.load(Ordering::Relaxed) {
                    if let Some(resp) = client.put(key_base, vec![seq as u8]) {
                        if resp.ok {
                            done += 1;
                        }
                    }
                    seq += 1;
                }
                done
            }));
        }
        std::thread::sleep(window);
        stop.store(true, Ordering::Relaxed);
        let completed: u64 = workers.into_iter().map(|w| w.join().unwrap_or(0)).sum();
        let elapsed = start.elapsed();
        let unexplained = run.drops().get(DropCause::Unexplained);
        run.shutdown();
        (
            achieved,
            completed as f64 / elapsed.as_secs_f64().max(1e-9),
            unexplained,
        )
    }

    /// One reactor-runtime point: `conns` pipelined connections driven from
    /// a single swarm thread.
    fn reactor_point(
        cluster: &ClusterConfig,
        conns: usize,
        window: Duration,
    ) -> (usize, f64, u64) {
        let run = ReactorCluster::launch(
            cluster.clone(),
            paxos_cluster(cluster.clone(), PaxosConfig::batched(8)),
        )
        .expect("launch reactor cluster");
        let report = run_swarm(
            run.addr(NodeId::new(0, 0)),
            conns,
            PIPELINE_WINDOW,
            4_000_000,
            window,
        )
        .expect("swarm");
        let unexplained = run.drops().get(DropCause::Unexplained);
        run.shutdown();
        (report.connected, report.throughput(), unexplained)
    }
}

/// Builds the connection-scalability table. On non-unix targets (no
/// `poll(2)` reactor) the table is emitted empty rather than lying with
/// threaded-only numbers.
#[cfg(unix)]
pub fn run(quick: bool) -> Vec<Table> {
    imp::run(quick)
}

/// Non-unix stub: the reactor needs `poll(2)`.
#[cfg(not(unix))]
pub fn run(_quick: bool) -> Vec<Table> {
    vec![Table::new(TITLE, COLS)]
}

/// Renders the sweep as the `BENCH_reactor.json` baseline the CI
/// reactor-smoke job uploads, via the shared [`Table::baseline_json`]
/// writer.
pub fn baseline_json(tables: &[Table]) -> String {
    tables
        .first()
        .map(|t| {
            t.baseline_json(
                "connection_scalability",
                "3-node LAN, batched MultiPaxos over TCP; threaded runtime = one \
                 blocking closed-loop client thread per connection, reactor \
                 runtime = pipelined connections (window 4) from one swarm thread",
                &[
                    "runtime",
                    "conns_target",
                    "conns_achieved",
                    "tput_ops_s",
                    "unexplained_drops",
                ],
            )
        })
        .unwrap_or_default()
}

#[cfg(all(test, unix))]
mod tests {
    #[test]
    fn reactor_outscales_threaded_runtime() {
        let tables = super::run(true);
        let t = &tables[0];
        let rows = |rt: &str| -> Vec<&Vec<String>> {
            t.rows.iter().filter(|r| r[0] == rt).collect()
        };
        let threaded = rows("threaded");
        let reactor = rows("reactor");
        assert!(!threaded.is_empty() && !reactor.is_empty());
        // Every reactor point established every connection it asked for,
        // and every shed frame is on the cause ledger.
        for r in &reactor {
            assert_eq!(r[1], r[2], "reactor fell short of its connection target");
            assert_eq!(r[4], "0", "unexplained drops in a reactor run");
        }
        let max_col = |rows: &[&Vec<String>], col: usize| -> f64 {
            rows.iter()
                .map(|r| r[col].parse::<f64>().expect("numeric cell"))
                .fold(f64::MIN, f64::max)
        };
        // The reactor's connection ceiling clears the threaded grid's.
        let reactor_conns = max_col(&reactor, 2);
        let threaded_conns = max_col(&threaded, 2);
        assert!(
            reactor_conns > threaded_conns,
            "reactor sustained {reactor_conns} conns vs threaded {threaded_conns}"
        );
        if std::env::var("PAXI_REACTOR_MAX_CONNS").is_err() {
            assert!(reactor_conns >= 256.0, "quick grid tops out at 256");
        }
        // Saturation throughput: the reactor must not regress the threaded
        // runtime (0.8 factor absorbs wall-clock noise in CI).
        let reactor_tput = max_col(&reactor, 3);
        let threaded_tput = max_col(&threaded, 3);
        assert!(
            reactor_tput >= 0.8 * threaded_tput,
            "reactor saturation {reactor_tput} ops/s vs threaded {threaded_tput} ops/s"
        );
        // The JSON baseline embeds every row through the shared writer.
        let json = super::baseline_json(&tables);
        assert!(json.contains("\"benchmark\": \"connection_scalability\""));
        assert!(json.contains("\"runtime\": \"reactor\""));
        assert!(json.contains("\"unexplained_drops\": 0"));
    }
}
