//! Model ↔ simulator cross-validation (the paper's two-pronged methodology).
//!
//! "The Paxi experiments cross-validate the analytical model" (§1.1): here
//! the analytic models and the simulator run the *same* deployments and the
//! table reports both predictions side by side — max throughput and
//! low-load latency for each protocol family, LAN and WAN.

use crate::runner::{sweep, Proto};
use crate::table::{f0, f2, Table};
use paxi_core::config::ClusterConfig;
use paxi_model::protocols::{EPaxosModel, PaxosModel, PerfModel, WPaxosModel};
use paxi_model::Deployment;
use paxi_protocols::wpaxos::WPaxosConfig;
use paxi_sim::client::uniform_workload;
use paxi_sim::Topology;

/// Builds the cross-validation table.
pub fn run(quick: bool) -> Vec<Table> {
    let sim = super::sim_preset(quick);
    let counts = super::sweep_counts(quick);

    let mut t = Table::new(
        "Cross-validation: analytic model vs simulator (LAN, 9 nodes)",
        &[
            "protocol",
            "model_max_tput",
            "sim_max_tput",
            "ratio",
            "model_ms_low",
            "sim_ms_low",
        ],
    );

    // MultiPaxos and FPaxos on the flat LAN.
    let lan_model = Deployment::lan(9);
    let lan_cluster = ClusterConfig::lan(9);
    let entries: Vec<(Proto, Box<dyn PerfModel>)> = vec![
        (Proto::paxos(), Box::new(PaxosModel::multi_paxos())),
        (Proto::fpaxos(3), Box::new(PaxosModel::fpaxos(3))),
    ];
    for (proto, model) in entries {
        let points = sweep(&proto, &sim, &lan_cluster, &counts, || {
            uniform_workload(1000)
        });
        let sim_max = points.iter().map(|p| p.throughput).fold(0.0, f64::max);
        let sim_low = points.first().map(|p| p.mean_ms).unwrap_or(f64::NAN);
        let model_max = model.max_throughput(&lan_model);
        let model_low = model
            .latency_ms(&lan_model, model_max * 0.05)
            .unwrap_or(f64::NAN);
        t.row(vec![
            proto.name(),
            f0(model_max),
            f0(sim_max),
            f2(sim_max / model_max),
            f2(model_low),
            f2(sim_low),
        ]);
    }

    // WPaxos on the 3x3 grid-in-a-LAN.
    {
        let mut grid_model = Deployment::lan(9);
        grid_model.zones = 3;
        grid_model.per_zone = 3;
        grid_model.rtt_ms = vec![vec![paxi_model::params::LAN_RTT_MS; 3]; 3];
        let model = WPaxosModel::new(1.0);
        let cluster = ClusterConfig::wan(3, 3, 1, 0);
        let grid_sim = paxi_sim::SimConfig {
            topology: Topology::lan_zones(3),
            ..sim.clone()
        };
        let points = sweep(
            &Proto::WPaxos(WPaxosConfig::default()),
            &grid_sim,
            &cluster,
            &counts,
            || uniform_workload(1000),
        );
        let sim_max = points.iter().map(|p| p.throughput).fold(0.0, f64::max);
        let sim_low = points.first().map(|p| p.mean_ms).unwrap_or(f64::NAN);
        let model_max = model.max_throughput(&grid_model);
        let model_low = model
            .latency_ms(&grid_model, model_max * 0.05)
            .unwrap_or(f64::NAN);
        t.row(vec![
            "WPaxos(fz=0)".into(),
            f0(model_max),
            f0(sim_max),
            f2(sim_max / model_max),
            f2(model_low),
            f2(sim_low),
        ]);
    }

    // EPaxos: the model uses the light analytic cost, the simulator pays the
    // experimental dependency-processing penalty — compare the *shape* only.
    {
        let model = EPaxosModel::new(0.02);
        let points = sweep(&Proto::epaxos(), &sim, &lan_cluster, &counts, || {
            uniform_workload(1000)
        });
        let sim_max = points.iter().map(|p| p.throughput).fold(0.0, f64::max);
        let sim_low = points.first().map(|p| p.mean_ms).unwrap_or(f64::NAN);
        let model_max = model.max_throughput(&lan_model);
        let model_low = model
            .latency_ms(&lan_model, model_max * 0.05)
            .unwrap_or(f64::NAN);
        t.row(vec![
            "EPaxos (model c=0.02 / sim penalized)".into(),
            f0(model_max),
            f0(sim_max),
            f2(sim_max / model_max),
            f2(model_low),
            f2(sim_low),
        ]);
    }

    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn model_and_simulator_agree_for_leaderful_protocols() {
        let t = &super::run(true)[0];
        for row in &t.rows {
            if row[0].starts_with("EPaxos") {
                continue; // deliberately different cost assumptions
            }
            let ratio: f64 = row[3].parse().unwrap();
            assert!(
                (0.6..1.6).contains(&ratio),
                "{}: sim/model throughput ratio {ratio}",
                row[0]
            );
            let model_ms: f64 = row[4].parse().unwrap();
            let sim_ms: f64 = row[5].parse().unwrap();
            assert!(
                (model_ms - sim_ms).abs() < 1.0,
                "{}: low-load latency model {model_ms} vs sim {sim_ms}",
                row[0]
            );
        }
    }
}
