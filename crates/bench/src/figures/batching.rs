//! Batching ablation (beyond the paper's figures, motivated by its §3 cost
//! model): how command batching amortizes the leader bottleneck.
//!
//! The model bounds throughput by the per-command work at the busiest node.
//! A leader that packs `k` commands into one slot pays the fixed per-message
//! costs (`t_in`, `t_out`, NIC per-message bytes, one WAL fsync) once per
//! batch and only the marginal `t_cmd`/`cmd_bytes` per additional command,
//! so per-command service time falls toward the marginal floor as `k` grows
//! — the saturation point shifts right while unloaded latency pays at most
//! one `batch_delay` hold-down.
//!
//! Sweeps MultiPaxos on the 9-node LAN config used throughout `results/`
//! over `max_batch ∈ {1, 4, 16}`. `max_batch = 1` is the exact pre-batching
//! code path and serves as the baseline.

use crate::runner::{sweep, Proto};
use crate::table::{f0, f2, Table};
use paxi_core::config::ClusterConfig;
use paxi_protocols::paxos::PaxosConfig;
use paxi_sim::client::uniform_workload;

/// Batch sizes swept; 1 is the unbatched baseline.
const BATCHES: &[usize] = &[1, 4, 16];

/// Builds the batching ablation table (the title slugs to
/// `ablation_batching_*.csv` under `results/`).
pub fn run(quick: bool) -> Vec<Table> {
    let cluster = ClusterConfig::lan(9);
    let sim = super::sim_preset(quick);
    // First count is the unloaded point (one closed-loop client); the tail
    // saturates the leader so max throughput is actually reached.
    let counts = if quick {
        vec![1, 16, 64]
    } else {
        vec![1, 4, 16, 48, 96, 160]
    };

    let mut t = Table::new(
        "Ablation: batching MultiPaxos (9-node LAN)",
        &[
            "max_batch",
            "max_throughput",
            "unloaded_p50_ms",
            "unloaded_mean_ms",
            "speedup_vs_1",
        ],
    );
    let mut base_tput = f64::NAN;
    for &batch in BATCHES {
        let cfg = PaxosConfig::batched(batch);
        let points = sweep(&Proto::Paxos(cfg), &sim, &cluster, &counts, || {
            uniform_workload(1000)
        });
        let max_tput = points.iter().map(|p| p.throughput).fold(0.0, f64::max);
        let p50 = points.first().map(|p| p.p50_ms).unwrap_or(f64::NAN);
        let mean = points.first().map(|p| p.mean_ms).unwrap_or(f64::NAN);
        if batch == 1 {
            base_tput = max_tput;
        }
        t.row(vec![
            batch.to_string(),
            f0(max_tput),
            f2(p50),
            f2(mean),
            f2(max_tput / base_tput),
        ]);
    }
    vec![t]
}

/// Renders the ablation table as the `BENCH_batching.json` baseline the CI
/// bench-smoke job uploads, via the shared [`Table::baseline_json`] writer.
pub fn baseline_json(tables: &[Table]) -> String {
    tables
        .first()
        .map(|t| {
            t.baseline_json(
                "ablation_batching",
                "MultiPaxos, 9-node LAN, uniform keys, closed-loop clients",
                &[
                    "max_batch",
                    "max_throughput_ops_s",
                    "unloaded_p50_ms",
                    "unloaded_mean_ms",
                    "speedup_vs_unbatched",
                ],
            )
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    #[test]
    fn batching_doubles_saturation_without_hurting_unloaded_latency() {
        let tables = super::run(true);
        let t = &tables[0];
        let row = |b: &str| t.rows.iter().find(|r| r[0] == b).expect("batch row");
        let tput = |b: &str| -> f64 { row(b)[1].parse().unwrap() };
        let p50 = |b: &str| -> f64 { row(b)[2].parse().unwrap() };
        // The acceptance bar: 16-deep batches at least double saturation
        // throughput, and amortization is already visible at 4.
        assert!(
            tput("16") >= 2.0 * tput("1"),
            "batch=16 {} vs baseline {}",
            tput("16"),
            tput("1")
        );
        assert!(
            tput("4") > tput("1"),
            "batch=4 {} vs baseline {}",
            tput("4"),
            tput("1")
        );
        // Unloaded p50 pays at most the batch_delay hold-down: within 1.5x.
        assert!(
            p50("16") <= 1.5 * p50("1"),
            "unloaded p50 regressed: batch=16 {} vs baseline {}",
            p50("16"),
            p50("1")
        );

        // The JSON baseline embeds every sweep row.
        let json = super::baseline_json(&tables);
        assert!(json.contains("\"max_batch\": 1,"));
        assert!(json.contains("\"max_batch\": 16,"));
        assert!(json.contains("\"speedup_vs_unbatched\""));
    }
}
