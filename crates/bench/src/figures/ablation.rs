//! Ablation study (beyond the paper's figures, called out in DESIGN.md):
//! the two Paxos message-flow optimizations the paper's cost model bakes in.
//!
//! * **Piggybacked commit** (default) vs **eager commit**: an explicit
//!   phase-3 broadcast adds one serialization per round at the leader, which
//!   the model predicts costs `to/ts ≈ 5%` throughput plus the extra NIC
//!   transmissions.
//! * **Full broadcast** (default, the paper's full-replication assumption)
//!   vs **thrifty**: phase-2a goes to exactly `|q2|−1` followers. The leader
//!   sheds `N − |q2|` incoming acks per round, trading fault-tolerance slack
//!   and follower freshness for throughput — the `Q = N − 1` remark under
//!   Formula 3.

use crate::runner::{sweep, Proto};
use crate::table::{f0, f2, Table};
use paxi_core::config::ClusterConfig;
use paxi_protocols::paxos::PaxosConfig;
use paxi_sim::client::uniform_workload;

/// Builds the ablation comparison table.
pub fn run(quick: bool) -> Vec<Table> {
    let cluster = ClusterConfig::lan(9);
    let sim = super::sim_preset(quick);
    let counts = if quick {
        vec![2, 16, 48]
    } else {
        vec![2, 8, 16, 32, 64, 96]
    };

    let variants: Vec<(&str, PaxosConfig)> = vec![
        ("piggyback+broadcast (paper)", PaxosConfig::default()),
        (
            "eager commit",
            PaxosConfig {
                eager_commit: true,
                ..Default::default()
            },
        ),
        (
            "thrifty",
            PaxosConfig {
                thrifty: true,
                ..Default::default()
            },
        ),
        (
            "thrifty FPaxos |q2|=3",
            PaxosConfig {
                thrifty: true,
                ..PaxosConfig::flexible(3)
            },
        ),
    ];

    let mut t = Table::new(
        "Ablation: Paxos message-flow optimizations (9-node LAN)",
        &["variant", "max_throughput", "low_load_latency_ms"],
    );
    for (name, cfg) in variants {
        let points = sweep(&Proto::Paxos(cfg), &sim, &cluster, &counts, || {
            uniform_workload(1000)
        });
        let max_tput = points.iter().map(|p| p.throughput).fold(0.0, f64::max);
        let low_lat = points.first().map(|p| p.mean_ms).unwrap_or(f64::NAN);
        t.row(vec![name.into(), f0(max_tput), f2(low_lat)]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn optimizations_rank_as_the_cost_model_predicts() {
        let t = &super::run(true)[0];
        let tput = |name: &str| -> f64 {
            t.rows.iter().find(|r| r[0].starts_with(name)).unwrap()[1]
                .parse()
                .unwrap()
        };
        let piggyback = tput("piggyback");
        let eager = tput("eager");
        let thrifty = tput("thrifty");
        // Eager commit costs throughput vs the piggybacked default.
        assert!(eager < piggyback, "eager {eager} vs piggyback {piggyback}");
        // Thrifty sheds follower acks and gains throughput.
        assert!(
            thrifty > piggyback * 1.1,
            "thrifty {thrifty} vs piggyback {piggyback}"
        );
        // Thrifty FPaxos with |q2|=3 sheds even more.
        let thrifty_fp = tput("thrifty FPaxos");
        assert!(
            thrifty_fp > thrifty,
            "thrifty-fpaxos {thrifty_fp} vs thrifty {thrifty}"
        );
    }
}
