//! Figure 4 — queueing-model comparison against a reference Paxos run.
//!
//! The paper evaluates M/M/1, M/D/1, M/G/1, and G/G/1 against the Paxi Paxos
//! implementation in a 9-node LAN under open-loop (Poisson) load, and picks
//! M/D/1. We regenerate every series: four model curves from
//! `paxi_model::queueing`, and the reference from the simulator running the
//! real MultiPaxos replica under Poisson arrivals.

use crate::runner::{run as run_sim, Proto};
use crate::table::{f0, f2, Table};
use paxi_core::config::ClusterConfig;
use paxi_model::protocols::{PaxosModel, PerfModel};
use paxi_model::queueing::QueueKind;
use paxi_model::Deployment;
use paxi_sim::client::uniform_workload;
use paxi_sim::ClientSetup;

/// Rates swept in the figure (requests/second).
fn rates(quick: bool) -> Vec<f64> {
    if quick {
        vec![3000.0, 5000.0, 7000.0]
    } else {
        vec![
            3000.0, 3500.0, 4000.0, 4500.0, 5000.0, 5500.0, 6000.0, 6500.0, 7000.0, 7500.0, 8000.0,
        ]
    }
}

/// Builds the model-vs-reference latency table.
pub fn run_figure(quick: bool) -> Vec<Table> {
    let d = Deployment::lan(9);
    let ts = d.cost.paxos_service_time(9);
    // Service-time variability for the general models: the simulator's
    // service time is deterministic per message mix, with mild variation
    // from the broadcast/ack asymmetry; 15% CV matches what the sim exhibits.
    let cv2 = 0.15f64 * 0.15;
    let models: Vec<(&str, PaxosModel)> = vec![
        ("MM1", PaxosModel::multi_paxos().with_queue(QueueKind::MM1)),
        ("MD1", PaxosModel::multi_paxos().with_queue(QueueKind::MD1)),
        (
            "MG1",
            PaxosModel::multi_paxos().with_queue(QueueKind::MG1 {
                service_var: cv2 * ts * ts,
            }),
        ),
        (
            "GG1",
            PaxosModel::multi_paxos().with_queue(QueueKind::GG1 { ca2: 1.0, cs2: cv2 }),
        ),
    ];

    let mut t = Table::new(
        "Fig 4: queueing models vs Paxi reference (9-node LAN Paxos)",
        &[
            "throughput_rps",
            "MM1_ms",
            "MD1_ms",
            "MG1_ms",
            "GG1_ms",
            "Paxi_sim_ms",
        ],
    );
    let cluster = ClusterConfig::lan(9);
    for rate in rates(quick) {
        let mut cells = vec![f0(rate)];
        for (_, m) in &models {
            match m.latency_ms(&d, rate) {
                Some(ms) => cells.push(f2(ms)),
                None => cells.push("sat".into()),
            }
        }
        // Reference: the simulator under open-loop Poisson arrivals at the
        // same aggregate rate.
        let sim = super::sim_preset(quick);
        let clients = ClientSetup::open_single(rate);
        let report = run_sim(
            &Proto::paxos(),
            sim,
            cluster.clone(),
            uniform_workload(1000),
            clients,
        );
        cells.push(f2(report.latency.mean.as_millis_f64()));
        t.row(cells);
    }
    vec![t]
}

/// Alias used by the dispatch table.
pub fn run(quick: bool) -> Vec<Table> {
    run_figure(quick)
}

#[cfg(test)]
mod tests {
    #[test]
    fn md1_tracks_the_simulator_within_50_percent() {
        let tables = super::run_figure(true);
        let t = &tables[0];
        for row in &t.rows {
            let md1: f64 = row[2].parse().unwrap_or(f64::NAN);
            let simv: f64 = row[5].parse().unwrap_or(f64::NAN);
            if md1.is_finite() && simv.is_finite() {
                assert!(
                    (md1 - simv).abs() / simv < 0.5,
                    "MD1 {md1} vs sim {simv} at {}",
                    row[0]
                );
            }
        }
    }
}
