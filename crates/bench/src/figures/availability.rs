//! Availability experiment (the paper's §1.2 claim; no published figure).
//!
//! "In Paxos, failure of the single leader leads to unavailability until a
//! new leader is elected, but in multi-leader protocols most requests do not
//! experience any disruption in availability, as the failed leader is not in
//! their critical path."
//!
//! Both systems lose one leader node at t = 2 s; the table shows completions
//! per 250 ms bucket around the crash.

use crate::table::Table;
use paxi_core::config::ClusterConfig;
use paxi_core::dist::Rng64;
use paxi_core::id::{ClientId, NodeId};
use paxi_core::time::Nanos;
use paxi_core::Command;
use paxi_protocols::paxos::{paxos_cluster, PaxosConfig};
use paxi_protocols::wpaxos::{wpaxos_cluster, WPaxosConfig};
use paxi_sim::{ClientSetup, SimConfig, Simulator, Topology};

fn zone_writes(client: ClientId, zone: u8, seq: u64, _now: Nanos, rng: &mut Rng64) -> Command {
    Command::put(
        zone as u64 * 1000 + rng.below(20),
        paxi_sim::client::unique_value(client, seq),
    )
}

fn timeline(report: &paxi_sim::SimReport) -> Vec<(f64, u64)> {
    report
        .timeline
        .iter()
        .map(|(t, c)| (t.as_secs_f64(), *c))
        .collect()
}

/// Builds the availability timeline table.
pub fn run(quick: bool) -> Vec<Table> {
    let measure = if quick {
        Nanos::secs(4)
    } else {
        Nanos::secs(6)
    };
    let base = SimConfig {
        warmup: Nanos::millis(100),
        measure,
        client_retry: Some(Nanos::millis(500)),
        timeline_bucket: Some(Nanos::millis(250)),
        ..SimConfig::default()
    };

    // Paxos: crash the leader.
    let cluster = ClusterConfig::lan(5);
    let mut paxos_sim = Simulator::new(
        base.clone(),
        cluster.clone(),
        paxos_cluster(
            cluster,
            PaxosConfig {
                election_timeout: Nanos::millis(400),
                ..Default::default()
            },
        ),
        zone_writes,
        ClientSetup::closed_per_zone(&ClusterConfig::lan(5), 4),
    );
    paxos_sim
        .faults_mut()
        .crash(NodeId::new(0, 0), Nanos::secs(2), Nanos::secs(60));
    let paxos = paxos_sim.run();

    // WPaxos: crash one of the three zone leaders; other zones unaffected.
    let cluster = ClusterConfig::wan(3, 3, 1, 0);
    let mut wpaxos_sim = Simulator::new(
        SimConfig {
            topology: Topology::lan_zones(3),
            ..base
        },
        cluster.clone(),
        wpaxos_cluster(cluster.clone(), WPaxosConfig::default()),
        zone_writes,
        ClientSetup::closed_per_zone(&cluster, 4),
    );
    wpaxos_sim
        .faults_mut()
        .crash(NodeId::new(2, 0), Nanos::secs(2), Nanos::secs(60));
    let wpaxos = wpaxos_sim.run();

    let mut t = Table::new(
        "Availability: completions per 250ms, one leader crashed at t=2s",
        &["t_s", "paxos_ops", "wpaxos_ops"],
    );
    let p = timeline(&paxos);
    let w = timeline(&wpaxos);
    let buckets: std::collections::BTreeSet<u64> = p
        .iter()
        .chain(&w)
        .map(|(t, _)| (t * 4.0).round() as u64)
        .collect();
    for b in buckets {
        let ts = b as f64 / 4.0;
        let find = |series: &[(f64, u64)]| {
            series
                .iter()
                .find(|(t, _)| ((t * 4.0).round() as u64) == b)
                .map(|(_, c)| c.to_string())
                .unwrap_or_else(|| "0".into())
        };
        t.row(vec![format!("{ts:.2}"), find(&p), find(&w)]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn paxos_dips_while_wpaxos_keeps_most_of_its_throughput() {
        let t = &super::run(true)[0];
        let at = |ts: &str, col: usize| -> u64 {
            t.rows
                .iter()
                .find(|r| r[0] == ts)
                .map(|r| r[col].parse().unwrap())
                .unwrap_or(0)
        };
        let paxos_before = at("1.75", 1);
        let paxos_outage = at("2.25", 1);
        assert!(
            paxos_outage < paxos_before / 3,
            "paxos outage {paxos_outage} vs before {paxos_before}"
        );
        let wpaxos_before = at("1.75", 2);
        let wpaxos_after = at("2.50", 2);
        // Two of three zones keep committing: well above half throughput.
        assert!(
            wpaxos_after * 2 > wpaxos_before,
            "wpaxos after {wpaxos_after} vs before {wpaxos_before}"
        );
    }
}
