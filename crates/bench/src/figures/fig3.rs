//! Figure 3 — histogram of local-area RTTs within an AWS EC2 region.
//!
//! The paper measured μ = 0.4271 ms, σ = 0.0476 ms and concluded LAN RTTs
//! are approximately Normal — the assumption the whole LAN model rests on.
//! We reproduce the figure by pinging through the simulator's network model
//! (which was calibrated to exactly those moments) and histogramming the
//! measured RTTs.

use crate::table::{f2, Table};
use paxi_core::dist::Rng64;
use paxi_sim::topology::{Topology, AWS_LAN_RTT_MEAN_MS, AWS_LAN_RTT_STD_MS};

/// Builds the RTT histogram table (bucket midpoint, probability density).
pub fn run(quick: bool) -> Vec<Table> {
    let samples = if quick { 20_000 } else { 200_000 };
    let topo = Topology::lan();
    let mut rng = Rng64::seed(3);
    // An RTT is two one-way samples, like a real ping.
    let rtts: Vec<f64> = (0..samples)
        .map(|_| {
            (topo.sample_one_way(&mut rng, 0, 0) + topo.sample_one_way(&mut rng, 0, 0))
                .as_millis_f64()
        })
        .collect();

    let lo = 0.30;
    let hi = 0.60;
    let buckets = 30;
    let width = (hi - lo) / buckets as f64;
    let mut counts = vec![0usize; buckets];
    for &r in &rtts {
        if r >= lo && r < hi {
            counts[((r - lo) / width) as usize] += 1;
        }
    }
    let n = rtts.len() as f64;
    let mean = rtts.iter().sum::<f64>() / n;
    let var = rtts.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / n;

    let mut t = Table::new(
        format!(
            "Fig 3: LAN RTT histogram (measured mu={:.4} sigma={:.4}; paper mu={} sigma={})",
            mean,
            var.sqrt(),
            AWS_LAN_RTT_MEAN_MS,
            AWS_LAN_RTT_STD_MS
        ),
        &["rtt_ms", "density"],
    );
    for (i, &c) in counts.iter().enumerate() {
        let mid = lo + (i as f64 + 0.5) * width;
        let density = c as f64 / n / width;
        t.row(vec![format!("{mid:.3}"), f2(density)]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_moments_match_paper() {
        let t = &run(true)[0];
        // Title embeds the measured moments; sanity check shape instead:
        // the density peaks near 0.427 ms.
        let peak = t
            .rows
            .iter()
            .max_by(|a, b| {
                a[1].parse::<f64>()
                    .unwrap()
                    .partial_cmp(&b[1].parse::<f64>().unwrap())
                    .unwrap()
            })
            .unwrap();
        let peak_ms: f64 = peak[0].parse().unwrap();
        assert!((peak_ms - 0.427).abs() < 0.05, "peak at {peak_ms}");
        // Peak density ~ N(mu, sigma_rtt): sigma of the ping RTT is
        // sqrt(2)*(sigma/2)*2 = sigma*sqrt(2)/... just require > 4.
        let peak_density: f64 = peak[1].parse().unwrap();
        assert!(peak_density > 4.0, "peak density {peak_density}");
    }
}
