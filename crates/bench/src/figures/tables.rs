//! Table 1, Table 3, the §6 formulas, and the Figure 14 flowchart.

use crate::config::BenchmarkConfig;
use crate::table::{f2, Table};
use paxi_model::advisor::{recommend, Answers};
use paxi_model::formulas;
use paxi_model::queueing::{wait_time, QueueKind};

/// Table 1 — the four queue types with their Wq expressions, evaluated at a
/// grid of utilizations for a 100 µs service time.
pub fn table1() -> Vec<Table> {
    let mut t = Table::new(
        "Table 1: queue types (Wq in microseconds, service = 100us)",
        &[
            "model",
            "arrivals",
            "service",
            "Wq_rho_0.5",
            "Wq_rho_0.8",
            "Wq_rho_0.95",
        ],
    );
    let s = 100e-6;
    let cv2 = 0.15 * 0.15;
    let rows: Vec<(&str, &str, &str, QueueKind)> = vec![
        ("M/M/1", "Poisson", "Exponential", QueueKind::MM1),
        ("M/D/1", "Poisson", "Constant", QueueKind::MD1),
        (
            "M/G/1",
            "Poisson",
            "General",
            QueueKind::MG1 {
                service_var: cv2 * s * s,
            },
        ),
        (
            "G/G/1",
            "General",
            "General",
            QueueKind::GG1 { ca2: 1.0, cs2: cv2 },
        ),
    ];
    for (name, arr, svc, kind) in rows {
        let wq = |rho: f64| -> String {
            match wait_time(kind, rho / s, s) {
                Some(w) => f2(w * 1e6),
                None => "unstable".into(),
            }
        };
        t.row(vec![
            name.into(),
            arr.into(),
            svc.into(),
            wq(0.5),
            wq(0.8),
            wq(0.95),
        ]);
    }
    vec![t]
}

/// Table 3 — the benchmark parameters and their defaults.
pub fn table3() -> Vec<Table> {
    let c = BenchmarkConfig::default();
    let mut t = Table::new(
        "Table 3: benchmark parameters (defaults)",
        &["parameter", "default", "description"],
    );
    let rows: Vec<(&str, String, &str)> = vec![
        ("T", c.T.to_string(), "Run for T seconds"),
        ("N", c.N.to_string(), "Run for N operations (if N>0)"),
        ("K", c.K.to_string(), "Total number of keys"),
        ("W", c.W.to_string(), "Write ratio"),
        (
            "Concurrency",
            c.concurrency.to_string(),
            "Number of concurrent clients",
        ),
        (
            "LinearizabilityCheck",
            c.linearizability_check.to_string(),
            "Check linearizability at the end of benchmark",
        ),
        (
            "Distribution",
            format!("{:?}", c.distribution),
            "Key generation distribution",
        ),
        ("Min", c.min.to_string(), "Random: minimum key number"),
        (
            "Conflicts",
            c.conflicts.to_string(),
            "Random: percentage of conflicting keys",
        ),
        ("Mu", c.mu.to_string(), "Normal: mean"),
        ("Sigma", c.sigma.to_string(), "Normal: standard deviation"),
        (
            "Move",
            c.move_hotspot.to_string(),
            "Normal: moving average (mu)",
        ),
        (
            "Speed",
            c.speed_ms.to_string(),
            "Normal: moving speed in milliseconds",
        ),
        ("Zipfian_s", c.zipfian_s.to_string(), "Zipfian: s parameter"),
        ("Zipfian_v", c.zipfian_v.to_string(), "Zipfian: v parameter"),
    ];
    for (p, d, desc) in rows {
        t.row(vec![p.into(), d, desc.into()]);
    }
    vec![t]
}

/// §6 — the load/capacity formulas evaluated for the three protocol shapes
/// at N = 9, and the latency formula at representative WAN parameters.
pub fn formulas() -> Vec<Table> {
    let mut load = Table::new(
        "Formulas 3-6: load L(S) = (1+c)(Q+L-2)/L at N=9",
        &[
            "protocol",
            "leaders_L",
            "quorum_Q",
            "conflict_c",
            "load",
            "capacity",
        ],
    );
    let rows: Vec<(&str, usize, usize, f64)> = vec![
        ("Paxos", 1, 5, 0.0),
        ("EPaxos c=0", 9, 5, 0.0),
        ("EPaxos c=0.5", 9, 5, 0.5),
        ("EPaxos c=1", 9, 5, 1.0),
        ("WPaxos 3x3", 3, 3, 0.0),
    ];
    for (name, l, q, c) in rows {
        let ld = formulas::load(l, q, c);
        load.row(vec![
            name.into(),
            l.to_string(),
            q.to_string(),
            c.to_string(),
            f2(ld),
            f2(1.0 / ld),
        ]);
    }

    let mut lat = Table::new(
        "Formula 7: latency (1+c)((1-l)(DL+DQ) + l*DQ), DL=80ms DQ=10ms",
        &["conflict_c", "locality_l", "latency_ms"],
    );
    for &(c, l) in &[(0.0, 0.0), (0.0, 0.5), (0.0, 1.0), (0.3, 1.0), (1.0, 0.0)] {
        lat.row(vec![
            c.to_string(),
            l.to_string(),
            f2(formulas::latency(c, l, 80.0, 10.0)),
        ]);
    }
    vec![load, lat]
}

/// Figure 14 — every path through the protocol-selection flowchart.
pub fn fig14() -> Vec<Table> {
    let mut t = Table::new(
        "Fig 14: protocol selection flowchart (all paths)",
        &[
            "consensus",
            "wan",
            "read_heavy",
            "locality",
            "dynamic",
            "dc_failure",
            "recommendation",
        ],
    );
    let b = |v: bool| if v { "y" } else { "n" }.to_string();
    let mut emit = |a: Answers| {
        let r = recommend(a);
        t.row(vec![
            b(a.needs_consensus),
            b(a.wan),
            b(a.read_heavy),
            b(a.locality),
            b(a.dynamic_locality),
            b(a.datacenter_failure_concern),
            r.protocols.join(" / "),
        ]);
    };
    let base = Answers {
        needs_consensus: true,
        wan: false,
        read_heavy: false,
        locality: false,
        dynamic_locality: false,
        datacenter_failure_concern: false,
    };
    emit(Answers {
        needs_consensus: false,
        ..base
    });
    emit(base);
    emit(Answers {
        read_heavy: true,
        ..base
    });
    emit(Answers { wan: true, ..base });
    emit(Answers {
        wan: true,
        read_heavy: true,
        ..base
    });
    emit(Answers {
        wan: true,
        locality: true,
        ..base
    });
    emit(Answers {
        wan: true,
        locality: true,
        dynamic_locality: true,
        ..base
    });
    emit(Answers {
        wan: true,
        locality: true,
        dynamic_locality: true,
        datacenter_failure_concern: true,
        ..base
    });
    vec![t]
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_md1_is_half_mm1() {
        let t = &super::table1()[0];
        let mm1: f64 = t.rows[0][4].parse().unwrap();
        let md1: f64 = t.rows[1][4].parse().unwrap();
        assert!((md1 / mm1 - 0.5).abs() < 0.01);
    }

    #[test]
    fn table3_has_all_15_parameters() {
        let t = &super::table3()[0];
        assert_eq!(t.rows.len(), 15);
    }

    #[test]
    fn formulas_table_matches_section_6() {
        let t = &super::formulas()[0];
        let load_of = |name: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == name).unwrap()[4]
                .parse()
                .unwrap()
        };
        assert_eq!(load_of("Paxos"), 4.0);
        assert!((load_of("EPaxos c=0") - 4.0 / 3.0).abs() < 0.01);
        assert!((load_of("WPaxos 3x3") - 4.0 / 3.0).abs() < 0.01);
        assert!((load_of("EPaxos c=1") - 8.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn fig14_covers_eight_paths() {
        let t = &super::fig14()[0];
        assert_eq!(t.rows.len(), 8);
        assert!(t.rows.iter().any(|r| r[6].contains("WPaxos")));
        assert!(t.rows.iter().any(|r| r[6].contains("Chain Replication")));
    }
}
