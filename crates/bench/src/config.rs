//! Benchmark configuration (paper Table 3).
//!
//! Field names and defaults follow the paper's benchmark parameter table
//! verbatim, so a Paxi user recognizes every knob.

use serde::{Deserialize, Serialize};

/// Key-popularity distribution selector (Table 3 "Distribution").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Distribution {
    /// Every key equally likely.
    Uniform,
    /// Normal popularity around `mu` (used for locality workloads).
    Normal,
    /// Zipfian popularity.
    Zipfian,
    /// Exponential popularity.
    Exponential,
}

/// The benchmarker's workload definition (paper Table 3).
#[derive(Debug, Clone, Serialize, Deserialize)]
#[allow(non_snake_case)]
pub struct BenchmarkConfig {
    /// Run for `T` seconds.
    pub T: u64,
    /// Run for `N` operations instead, when `N > 0`.
    pub N: u64,
    /// Total number of keys.
    pub K: u64,
    /// Write ratio.
    pub W: f64,
    /// Number of concurrent (closed-loop) clients.
    pub concurrency: usize,
    /// Check linearizability at the end of the benchmark.
    pub linearizability_check: bool,
    /// Name of the distribution used for key generation.
    pub distribution: Distribution,
    /// Random: minimum key number.
    pub min: u64,
    /// Random: percentage of conflicting keys (0–100). The conflicting
    /// portion of requests is drawn from a shared pool; the rest from
    /// client-private keys.
    pub conflicts: u8,
    /// Normal: mean.
    pub mu: f64,
    /// Normal: standard deviation.
    pub sigma: f64,
    /// Normal: moving average (hotspot drifts across the key space).
    pub move_hotspot: bool,
    /// Normal: moving speed in milliseconds (one σ of drift per interval).
    pub speed_ms: u64,
    /// Zipfian: `s` parameter.
    pub zipfian_s: f64,
    /// Zipfian: `v` parameter.
    pub zipfian_v: f64,
}

impl Default for BenchmarkConfig {
    /// The paper's Table 3 default values.
    fn default() -> Self {
        BenchmarkConfig {
            T: 60,
            N: 0,
            K: 1000,
            W: 0.5,
            concurrency: 1,
            linearizability_check: true,
            distribution: Distribution::Uniform,
            min: 0,
            conflicts: 100,
            mu: 0.0,
            sigma: 60.0,
            move_hotspot: false,
            speed_ms: 500,
            zipfian_s: 2.0,
            zipfian_v: 1.0,
        }
    }
}

impl BenchmarkConfig {
    /// A uniform workload over `k` keys with the given write ratio.
    pub fn uniform(k: u64, write_ratio: f64) -> Self {
        BenchmarkConfig {
            K: k,
            W: write_ratio,
            ..Default::default()
        }
    }

    /// A locality workload: each zone's keys cluster (Normal) around a
    /// zone-specific center; `sigma` controls the overlap between zones.
    pub fn locality(k: u64, sigma: f64) -> Self {
        BenchmarkConfig {
            K: k,
            distribution: Distribution::Normal,
            sigma,
            ..Default::default()
        }
    }

    /// A conflict workload: `percent`% of requests target one shared hot
    /// key, the rest are client-private.
    pub fn conflict(percent: u8) -> Self {
        BenchmarkConfig {
            conflicts: percent,
            K: 1000,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_table_3() {
        let c = BenchmarkConfig::default();
        assert_eq!(c.T, 60);
        assert_eq!(c.N, 0);
        assert_eq!(c.K, 1000);
        assert_eq!(c.W, 0.5);
        assert_eq!(c.concurrency, 1);
        assert!(c.linearizability_check);
        assert_eq!(c.distribution, Distribution::Uniform);
        assert_eq!(c.min, 0);
        assert_eq!(c.conflicts, 100);
        assert_eq!(c.mu, 0.0);
        assert_eq!(c.sigma, 60.0);
        assert!(!c.move_hotspot);
        assert_eq!(c.speed_ms, 500);
        assert_eq!(c.zipfian_s, 2.0);
        assert_eq!(c.zipfian_v, 1.0);
    }
}
