//! Criterion benches over the analytic models — one group per modeled
//! table/figure (Table 1, Fig 4 models, Fig 8, Fig 10, Fig 12, Formulas).
//!
//! These measure how cheap back-of-the-envelope forecasting is compared to
//! running the simulator: entire figure-series regenerate in microseconds to
//! milliseconds.

use criterion::{criterion_group, criterion_main, Criterion};
use paxi_model::formulas;
use paxi_model::orderstat::kth_of_n_normal;
use paxi_model::protocols::{EPaxosModel, PaxosModel, PerfModel, WPaxosModel};
use paxi_model::queueing::{wait_time, QueueKind};
use paxi_model::Deployment;
use std::hint::black_box;

fn table1_queue_formulas(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_queue_formulas");
    let s = 100e-6;
    for (name, kind) in [
        ("mm1", QueueKind::MM1),
        ("md1", QueueKind::MD1),
        ("mg1", QueueKind::MG1 { service_var: 2.25e-10 }),
        ("gg1", QueueKind::GG1 { ca2: 1.0, cs2: 0.0225 }),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| wait_time(black_box(kind), black_box(8_000.0), black_box(s)))
        });
    }
    g.finish();
}

fn fig4_order_statistics(c: &mut Criterion) {
    c.bench_function("fig4_kth_order_statistic_monte_carlo", |b| {
        b.iter(|| kth_of_n_normal(black_box(4), black_box(8), 0.4271, 0.0476, 1_000, 7))
    });
}

fn fig8_lan_curves(c: &mut Criterion) {
    let d = Deployment::lan(9);
    let mut g = c.benchmark_group("fig8_lan_model_curves");
    g.bench_function("multipaxos", |b| {
        let m = PaxosModel::multi_paxos();
        b.iter(|| m.curve(black_box(&d), 24))
    });
    g.bench_function("fpaxos", |b| {
        let m = PaxosModel::fpaxos(3);
        b.iter(|| m.curve(black_box(&d), 24))
    });
    g.bench_function("epaxos", |b| {
        let m = EPaxosModel::new(0.02);
        b.iter(|| m.curve(black_box(&d), 24))
    });
    g.finish();
}

fn fig10_wan_curves(c: &mut Criterion) {
    let d = Deployment::aws5(3);
    let mut g = c.benchmark_group("fig10_wan_model_curves");
    g.bench_function("paxos_ca_leader", |b| {
        let m = PaxosModel::multi_paxos().with_leader_zone(2);
        b.iter(|| m.curve(black_box(&d), 20))
    });
    g.bench_function("wpaxos_locality_07", |b| {
        let m = WPaxosModel { fz: 0, f: 1, locality: 0.7 };
        b.iter(|| m.curve(black_box(&d), 20))
    });
    g.finish();
}

fn fig12_conflict_sweep(c: &mut Criterion) {
    let d = Deployment::aws5(1);
    c.bench_function("fig12_epaxos_conflict_sweep", |b| {
        b.iter(|| {
            (0..=10)
                .map(|i| EPaxosModel::new(i as f64 / 10.0).max_throughput(black_box(&d)))
                .sum::<f64>()
        })
    });
}

fn formulas_load_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("formulas");
    g.bench_function("load", |b| {
        b.iter(|| formulas::load(black_box(3), black_box(3), black_box(0.2)))
    });
    g.bench_function("latency", |b| {
        b.iter(|| formulas::latency(black_box(0.3), black_box(0.7), black_box(80.0), black_box(10.0)))
    });
    g.finish();
}

criterion_group!(
    benches,
    table1_queue_formulas,
    fig4_order_statistics,
    fig8_lan_curves,
    fig10_wan_curves,
    fig12_conflict_sweep,
    formulas_load_latency
);
criterion_main!(benches);
