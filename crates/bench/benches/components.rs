//! Criterion benches of the framework's hot building blocks: histogram
//! recording, quorum trackers, the multi-version store, and the Table 3
//! workload generator.

use criterion::{criterion_group, criterion_main, Criterion};
use paxi_bench::{BenchmarkConfig, Distribution, GeneralWorkload};
use paxi_core::dist::Rng64;
use paxi_core::id::ClientId;
use paxi_core::metrics::Histogram;
use paxi_core::quorum::{FlexibleGridQuorum, GridPhase, MajorityQuorum, QuorumTracker};
use paxi_core::store::MultiVersionStore;
use paxi_core::{Command, Nanos, NodeId};
use paxi_sim::Workload;
use std::hint::black_box;

fn histogram_record(c: &mut Criterion) {
    c.bench_function("histogram_record", |b| {
        let mut h = Histogram::new();
        let mut v = 1u64;
        b.iter(|| {
            v = v.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(Nanos(black_box(v % 10_000_000)));
        })
    });
    c.bench_function("histogram_p99", |b| {
        let mut h = Histogram::new();
        let mut rng = Rng64::seed(5);
        for _ in 0..100_000 {
            h.record(Nanos(rng.below(10_000_000)));
        }
        b.iter(|| black_box(&h).p99())
    });
}

fn quorum_trackers(c: &mut Criterion) {
    c.bench_function("majority_quorum_round", |b| {
        b.iter(|| {
            let mut q = MajorityQuorum::new(9);
            for i in 0..5u8 {
                q.ack(NodeId::new(0, i));
            }
            black_box(q.satisfied())
        })
    });
    c.bench_function("flexible_grid_round", |b| {
        b.iter(|| {
            let mut q = FlexibleGridQuorum::new(5, 3, 1, 1, GridPhase::Two);
            q.ack(NodeId::new(0, 0));
            q.ack(NodeId::new(0, 1));
            q.ack(NodeId::new(1, 0));
            q.ack(NodeId::new(1, 1));
            black_box(q.satisfied())
        })
    });
}

fn store_execute(c: &mut Criterion) {
    c.bench_function("store_put_get", |b| {
        let mut store = MultiVersionStore::new();
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 1) % 1000;
            store.execute(&Command::put(k, vec![k as u8; 12]));
            black_box(store.execute(&Command::get(k)))
        })
    });
}

fn workload_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_next");
    for (name, dist) in [
        ("uniform", Distribution::Uniform),
        ("zipfian", Distribution::Zipfian),
        ("normal_locality", Distribution::Normal),
    ] {
        g.bench_function(name, |b| {
            let cfg = BenchmarkConfig { distribution: dist, ..BenchmarkConfig::uniform(1000, 0.5) };
            let mut w = GeneralWorkload::new(cfg, 5);
            let mut rng = Rng64::seed(3);
            let mut seq = 0u64;
            b.iter(|| {
                seq += 1;
                black_box(w.next(ClientId(1), 2, seq, Nanos(seq * 1000), &mut rng))
            })
        });
    }
    g.finish();
}

criterion_group!(benches, histogram_record, quorum_trackers, store_execute, workload_generation);
criterion_main!(benches);
