//! Criterion benches for the wire codec: serialization throughput of the
//! actual protocol messages the transports ship.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use paxi_core::{Ballot, Command, NodeId, RequestId};
use paxi_core::id::ClientId;
use paxi_protocols::paxos::PaxosMsg;
use paxi_protocols::epaxos::{EpaxosMsg, IRef};
use std::hint::black_box;

fn paxos_p2a() -> PaxosMsg {
    PaxosMsg::P2a {
        ballot: Ballot::first(NodeId::new(0, 0)),
        slot: 123_456,
        cmds: vec![(Command::put(42, vec![7u8; 64]), Some(RequestId::new(ClientId(3), 999)))],
        commit_upto: 123_450,
    }
}

fn epaxos_preaccept() -> EpaxosMsg {
    EpaxosMsg::PreAccept {
        iref: IRef { leader: NodeId::new(2, 0), idx: 77 },
        cmd: Command::put(7, vec![1u8; 64]),
        seq: 19,
        deps: (0..5).map(|i| IRef { leader: NodeId::new(i, 0), idx: i as u64 * 10 }).collect(),
    }
}

fn encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec_encode");
    let p2a = paxos_p2a();
    let bytes = paxi_codec::to_bytes(&p2a).unwrap();
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("paxos_p2a", |b| b.iter(|| paxi_codec::to_bytes(black_box(&p2a)).unwrap()));
    let pre = epaxos_preaccept();
    g.bench_function("epaxos_preaccept", |b| {
        b.iter(|| paxi_codec::to_bytes(black_box(&pre)).unwrap())
    });
    g.finish();
}

fn decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("codec_decode");
    let p2a_bytes = paxi_codec::to_bytes(&paxos_p2a()).unwrap();
    g.throughput(Throughput::Bytes(p2a_bytes.len() as u64));
    g.bench_function("paxos_p2a", |b| {
        b.iter(|| paxi_codec::from_bytes::<PaxosMsg>(black_box(&p2a_bytes)).unwrap())
    });
    let pre_bytes = paxi_codec::to_bytes(&epaxos_preaccept()).unwrap();
    g.bench_function("epaxos_preaccept", |b| {
        b.iter(|| paxi_codec::from_bytes::<EpaxosMsg>(black_box(&pre_bytes)).unwrap())
    });
    g.finish();
}

fn framing(c: &mut Criterion) {
    let payload = paxi_codec::to_bytes(&paxos_p2a()).unwrap();
    c.bench_function("codec_frame_roundtrip", |b| {
        b.iter(|| {
            let framed = paxi_codec::encode_frame(black_box(&payload));
            let mut dec = paxi_codec::FrameDecoder::new();
            dec.feed(&framed);
            dec.next_frame().unwrap().unwrap()
        })
    });
}

criterion_group!(benches, encode, decode, framing);
criterion_main!(benches);
