//! Criterion benches driving the discrete-event simulator — the kernels
//! behind the experimental figures (Fig 7, Fig 9, Fig 11), at reduced
//! windows so each iteration stays sub-second.

use criterion::{criterion_group, criterion_main, Criterion};
use paxi_bench::runner::{run, Proto};
use paxi_bench::workload::HotKeyWorkload;
use paxi_bench::{BenchmarkConfig, GeneralWorkload};
use paxi_core::{ClusterConfig, Nanos};
use paxi_protocols::raft::RaftConfig;
use paxi_protocols::wankeeper::WanKeeperConfig;
use paxi_protocols::wpaxos::WPaxosConfig;
use paxi_sim::{ClientSetup, SimConfig, Topology};
use std::hint::black_box;

fn short_lan() -> SimConfig {
    SimConfig { warmup: Nanos::millis(50), measure: Nanos::millis(300), ..SimConfig::default() }
}

/// Fig 7 kernel: a 9-node LAN round under Paxos and Raft.
fn fig7_single_leader(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_sim_lan9");
    g.sample_size(10);
    for (name, proto) in [
        ("paxos", Proto::paxos()),
        ("raft", Proto::Raft { cfg: RaftConfig::default(), cpu_penalty: 1.0 }),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let cluster = ClusterConfig::lan(9);
                let clients = ClientSetup::closed_per_zone(&cluster, 8);
                let r = run(
                    &proto,
                    short_lan(),
                    cluster,
                    paxi_sim::client::uniform_workload(1000),
                    clients,
                );
                black_box(r.completed)
            })
        });
    }
    g.finish();
}

/// Fig 9 kernel: each protocol family on its LAN deployment.
fn fig9_protocol_families(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_sim_families");
    g.sample_size(10);
    g.bench_function("epaxos", |b| {
        b.iter(|| {
            let cluster = ClusterConfig::lan(9);
            let clients = ClientSetup::closed_per_zone(&cluster, 8);
            let r = run(
                &Proto::epaxos(),
                short_lan(),
                cluster,
                GeneralWorkload::new(BenchmarkConfig::uniform(1000, 0.5), 1),
                clients,
            );
            black_box(r.completed)
        })
    });
    for (name, proto) in [
        ("wpaxos", Proto::WPaxos(WPaxosConfig::default())),
        (
            "wankeeper",
            Proto::WanKeeper(WanKeeperConfig { shared_to_master: false, ..Default::default() }),
        ),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let cluster = ClusterConfig::wan(3, 3, 1, 0);
                let clients = ClientSetup::closed_per_zone(&cluster, 8);
                let sim = SimConfig { topology: Topology::lan_zones(3), ..short_lan() };
                let r = run(
                    &proto,
                    sim,
                    cluster,
                    GeneralWorkload::new(BenchmarkConfig::uniform(1000, 0.5), 3),
                    clients,
                );
                black_box(r.completed)
            })
        });
    }
    g.finish();
}

/// Fig 11 kernel: a WAN conflict run (hot key in Ohio).
fn fig11_wan_conflict(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_sim_wan_conflict");
    g.sample_size(10);
    g.bench_function("wpaxos_fz0_c50", |b| {
        b.iter(|| {
            let cluster = ClusterConfig::wan(5, 3, 1, 0);
            let clients = ClientSetup::closed_per_zone(&cluster, 2);
            let sim = SimConfig {
                topology: Topology::aws5(),
                warmup: Nanos::millis(200),
                measure: Nanos::millis(500),
                ..SimConfig::default()
            };
            let workload = HotKeyWorkload { conflict: 0.5, hot_key: 0, private_keys: 20 };
            let r = run(
                &Proto::WPaxos(WPaxosConfig {
                    initial_owner: Some(paxi_core::NodeId::new(1, 0)),
                    ..Default::default()
                }),
                sim,
                cluster,
                workload,
                clients,
            );
            black_box(r.completed)
        })
    });
    g.finish();
}

criterion_group!(benches, fig7_single_leader, fig9_protocol_families, fig11_wan_conflict);
criterion_main!(benches);
