//! # paxi-core
//!
//! Shared building blocks of the Paxi replication-protocol framework, a Rust
//! reproduction of the system described in *"Dissecting the Performance of
//! Strongly-Consistent Replication Protocols"* (SIGMOD 2019).
//!
//! The paper's framework factors every strongly-consistent replication
//! protocol into common components — identifiers, ballots, quorum systems, a
//! multi-version key-value state machine, configuration, and an event-handler
//! replica interface — so that a protocol is defined by only its message
//! types and replica logic. This crate provides those components:
//!
//! * [`id`] — `zone.node` addressing, client and request ids.
//! * [`ballot`] — totally-ordered Paxos ballots.
//! * [`command`] — commands, interference relation, client request/response.
//! * [`store`] — the multi-version in-memory key-value state machine.
//! * [`quorum`] — majority, fast, grid, flexible-grid, and group quorums.
//! * [`config`] — cluster deployment description.
//! * [`traits`] — the [`traits::Replica`] / [`traits::Context`]
//!   protocol abstraction shared by the simulator and wall-clock runtimes.
//! * [`time`] — nanosecond virtual time.
//! * [`metrics`] — latency histograms, CDFs, throughput meters.
//! * [`obs`] — per-replica typed counters / drop causes / gauges and the
//!   request-lifecycle trace ring, wired through every runtime.
//! * [`faults`] — the Crash / Drop / Slow / Flaky fault plan shared by the
//!   simulator and the live transports.
//! * [`group`] — group ids and the group-tagged message envelope for
//!   multi-group (sharded) deployments.
//! * [`membership`] — dynamic membership: config-change deltas, stable and
//!   joint (C_old,new) configurations, and the dual-majority quorum.
//! * [`migration`] — elastic shard migration: replicated freeze / install /
//!   commit records and the per-replica hand-off tracker.

#![warn(missing_docs)]

pub mod ballot;
pub mod command;
pub mod config;
pub mod dist;
pub mod faults;
pub mod group;
pub mod id;
pub mod membership;
pub mod metrics;
pub mod migration;
pub mod obs;
pub mod quorum;
pub mod store;
pub mod time;
pub mod traits;

pub use ballot::Ballot;
pub use command::{ClientRequest, ClientResponse, Command, Handoff, Key, Op, Value};
pub use config::{BatchConfig, ClusterConfig};
pub use dist::{KeyDist, KeySampler, Rng64};
pub use faults::{CrashMode, FaultPlan, FaultWindow, MsgFate};
pub use group::{GroupId, GroupMsg};
pub use id::{ClientId, NodeId, RequestId};
pub use membership::{ConfigChange, JointQuorum, Membership, CONFIG_KEY};
pub use metrics::{Histogram, LatencySummary, Meter};
pub use migration::{
    as_migration_record, migration_command, CommitHalf, KeyRange, MigrationAction, MigrationPhase,
    MigrationRecord, MigrationReject, MigrationSpec, MigrationTracker, MIGRATION_KEY,
};
pub use obs::{
    ClusterMetrics, DropCause, Gauge, Metric, MetricsRegistry, MetricsSnapshot, TraceEvent,
    TraceRing, TraceStage,
};
pub use quorum::{
    fast_quorum_size, majority, CountQuorum, FastQuorum, FlexibleGridQuorum, GridPhase, GridQuorum,
    GroupQuorum, MajorityQuorum, QuorumTracker,
};
pub use store::{MultiVersionStore, StoreDump, Version};
pub use time::Nanos;
pub use traits::{Context, Replica, ReplicaFactory};
