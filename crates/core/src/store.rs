//! Multi-version in-memory key-value datastore.
//!
//! Paxi ships an in-memory multi-version key-value store private to every
//! node; it is the deterministic state machine the replication protocols
//! drive. Every write produces a new [`Version`] that records its parent, so
//! the full per-key history forms a chain (a degenerate DAG). The consensus
//! checker collects these histories from every node and verifies that they
//! share a common prefix, and the linearizability checker uses version values
//! to validate reads.

use crate::command::{Command, Key, Op, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One committed version of a key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Version {
    /// Per-key sequence number, starting at 1 for the first write.
    pub seq: u64,
    /// Sequence number of the predecessor version (0 = none).
    pub parent: u64,
    /// The value installed by this version; `None` is a delete tombstone.
    pub value: Option<Value>,
}

/// Multi-version store: the deterministic state machine replicas execute
/// committed commands against.
///
/// The store is deliberately single-threaded — each replica owns its private
/// instance and executes commands from its protocol handler, which the
/// runtimes guarantee to be serial.
#[derive(Debug, Default, Clone)]
pub struct MultiVersionStore {
    data: HashMap<Key, Vec<Version>>,
    executed: u64,
}

impl MultiVersionStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Executes one committed command, returning the value the client should
    /// see: the current value for `Get`, the *previous* value for
    /// `Put`/`Delete`.
    pub fn execute(&mut self, cmd: &Command) -> Option<Value> {
        self.executed += 1;
        match &cmd.op {
            Op::Get => self.get(cmd.key).cloned(),
            Op::Put(v) => self.install(cmd.key, Some(v.clone())),
            Op::Delete => self.install(cmd.key, None),
        }
    }

    fn install(&mut self, key: Key, value: Option<Value>) -> Option<Value> {
        let chain = self.data.entry(key).or_default();
        let parent = chain.last().map(|v| v.seq).unwrap_or(0);
        let prev = chain.last().and_then(|v| v.value.clone());
        chain.push(Version {
            seq: parent + 1,
            parent,
            value,
        });
        prev
    }

    /// Current (latest non-tombstone) value of `key`.
    pub fn get(&self, key: Key) -> Option<&Value> {
        self.data.get(&key)?.last()?.value.as_ref()
    }

    /// Full version history of `key`, oldest first. Used by the consensus
    /// checker's common-prefix validation.
    pub fn history(&self, key: Key) -> &[Version] {
        self.data.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Keys with at least one version.
    pub fn keys(&self) -> impl Iterator<Item = Key> + '_ {
        self.data.keys().copied()
    }

    /// Number of commands executed so far (reads included).
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Number of versions across all keys.
    pub fn version_count(&self) -> usize {
        self.data.values().map(Vec::len).sum()
    }

    /// Serializable dump of the whole store, for protocol snapshots. Keys
    /// are sorted so the same state always dumps to the same bytes
    /// (snapshots stay deterministic across replicas and runs).
    pub fn dump(&self) -> StoreDump {
        let mut data: Vec<(Key, Vec<Version>)> =
            self.data.iter().map(|(k, v)| (*k, v.clone())).collect();
        data.sort_unstable_by_key(|(k, _)| *k);
        StoreDump {
            data,
            executed: self.executed,
        }
    }

    /// Rebuilds a store from a [`MultiVersionStore::dump`].
    pub fn restore(dump: StoreDump) -> Self {
        MultiVersionStore {
            data: dump.data.into_iter().collect(),
            executed: dump.executed,
        }
    }

    /// Dumps only the keys in `[lo, hi)` — what a shard migration streams to
    /// the destination group. Sorted by key like [`MultiVersionStore::dump`],
    /// so every replica that froze the range extracts identical bytes. The
    /// dump carries `executed: 0`: the executed counter is replica-local
    /// bookkeeping, not part of the range.
    pub fn extract_range(&self, lo: Key, hi: Key) -> StoreDump {
        let mut data: Vec<(Key, Vec<Version>)> = self
            .data
            .iter()
            .filter(|(k, _)| **k >= lo && **k < hi)
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        data.sort_unstable_by_key(|(k, _)| *k);
        StoreDump { data, executed: 0 }
    }

    /// Splices a migrated range's version chains into this store, replacing
    /// any chain already present for those keys (idempotent re-install).
    /// The executed counter is untouched — installs are not executions.
    pub fn install_range(&mut self, dump: StoreDump) {
        for (key, versions) in dump.data {
            self.data.insert(key, versions);
        }
    }

    /// Removes every key in `[lo, hi)` — the source side of a committed
    /// migration dropping the range it handed off.
    pub fn remove_range(&mut self, lo: Key, hi: Key) {
        self.data.retain(|k, _| *k < lo || *k >= hi);
    }
}

/// A serializable image of a [`MultiVersionStore`] — what protocol snapshots
/// embed when they compact their WAL.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreDump {
    /// Per-key version chains, sorted by key.
    pub data: Vec<(Key, Vec<Version>)>,
    /// Commands executed so far (reads included).
    pub executed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_on_empty_store_returns_none() {
        let mut s = MultiVersionStore::new();
        assert_eq!(s.execute(&Command::get(1)), None);
        assert_eq!(s.executed(), 1);
    }

    #[test]
    fn put_returns_previous_value() {
        let mut s = MultiVersionStore::new();
        assert_eq!(s.execute(&Command::put(1, vec![1])), None);
        assert_eq!(s.execute(&Command::put(1, vec![2])), Some(vec![1]));
        assert_eq!(s.execute(&Command::get(1)), Some(vec![2]));
    }

    #[test]
    fn delete_installs_tombstone() {
        let mut s = MultiVersionStore::new();
        s.execute(&Command::put(7, vec![9]));
        assert_eq!(s.execute(&Command::delete(7)), Some(vec![9]));
        assert_eq!(s.get(7), None);
        // History keeps all three versions? (put + delete = 2 versions)
        assert_eq!(s.history(7).len(), 2);
        assert_eq!(s.history(7)[1].value, None);
    }

    #[test]
    fn history_chains_parents() {
        let mut s = MultiVersionStore::new();
        for i in 0..5u8 {
            s.execute(&Command::put(3, vec![i]));
        }
        let h = s.history(3);
        assert_eq!(h.len(), 5);
        for (i, v) in h.iter().enumerate() {
            assert_eq!(v.seq, i as u64 + 1);
            assert_eq!(v.parent, i as u64);
        }
    }

    #[test]
    fn reads_do_not_create_versions() {
        let mut s = MultiVersionStore::new();
        s.execute(&Command::put(1, vec![1]));
        s.execute(&Command::get(1));
        s.execute(&Command::get(1));
        assert_eq!(s.version_count(), 1);
        assert_eq!(s.executed(), 3);
    }

    #[test]
    fn dump_and_restore_roundtrip() {
        let mut s = MultiVersionStore::new();
        for i in 0..4u8 {
            s.execute(&Command::put(9, vec![i]));
            s.execute(&Command::put(u64::from(i), vec![i, i]));
        }
        s.execute(&Command::get(9));
        let back = MultiVersionStore::restore(s.dump());
        assert_eq!(back.executed(), s.executed());
        assert_eq!(back.history(9), s.history(9));
        assert_eq!(back.get(2), s.get(2));
        assert_eq!(back.version_count(), s.version_count());
    }

    #[test]
    fn range_extract_install_remove() {
        let mut src = MultiVersionStore::new();
        for k in 0..8u64 {
            src.execute(&Command::put(k, vec![k as u8]));
            src.execute(&Command::put(k, vec![k as u8, k as u8]));
        }
        let dump = src.extract_range(2, 4);
        assert_eq!(
            dump.data.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(dump.executed, 0, "executed counter stays local");

        let mut dst = MultiVersionStore::new();
        dst.execute(&Command::put(9, vec![9]));
        let before = dst.executed();
        dst.install_range(dump.clone());
        assert_eq!(dst.history(2), src.history(2), "full chains move");
        assert_eq!(dst.executed(), before, "install is not an execution");
        dst.install_range(dump); // idempotent
        assert_eq!(dst.history(3).len(), 2);

        src.remove_range(2, 4);
        assert_eq!(src.get(2), None);
        assert_eq!(src.history(3), &[]);
        assert!(
            src.get(1).is_some() && src.get(4).is_some(),
            "outside keys stay"
        );
    }

    #[test]
    fn dumps_of_equal_state_are_identical() {
        // HashMap iteration order must not leak into the dump.
        let mk = |order: &[u64]| {
            let mut s = MultiVersionStore::new();
            for &k in order {
                s.execute(&Command::put(k, vec![k as u8]));
            }
            s
        };
        let a = mk(&[1, 2, 3]);
        // Same final state, different insertion history per key set.
        let b = mk(&[1, 2, 3]);
        assert_eq!(a.dump(), b.dump());
    }
}
